// Shared infrastructure for the table benchmarks: the synthetic stand-in
// datasets (DESIGN.md §3), query workloads, and table formatting.
//
// Every bench accepts two environment variables:
//   ISLABEL_SCALE    multiplies dataset sizes (default 1.0; the defaults
//                    are laptop-scale, ~2-6% of the paper's |V|)
//   ISLABEL_QUERIES  number of random queries per measurement (default 400;
//                    the paper uses 1000)

#ifndef ISLABEL_BENCH_BENCH_COMMON_H_
#define ISLABEL_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/stats.h"

namespace islabel {
namespace bench {

/// One synthetic stand-in for a paper dataset.
struct Dataset {
  std::string name;        // e.g. "synth-btc"
  std::string paper_name;  // e.g. "BTC"
  /// The paper's Table 2 row for the real dataset, for side-by-side shape
  /// comparison.
  std::string paper_row;
  Graph graph;
};

/// Names in the paper's order: btc, web, skitter, wiki, google.
std::vector<std::string> DatasetNames();

/// Builds one stand-in (largest connected component, weights per spec).
Dataset MakeDataset(const std::string& name, double scale);

/// All five, in paper order.
std::vector<Dataset> MakeAllDatasets(double scale);

double ScaleFromEnv();
std::size_t QueriesFromEnv();

/// Uniform random query pairs (the paper's "1000 random queries").
std::vector<std::pair<VertexId, VertexId>> MakeQueries(const Graph& g,
                                                       std::size_t count,
                                                       std::uint64_t seed);

/// Prints a horizontal rule + centered title.
void PrintHeader(const std::string& title, const std::string& subtitle);

}  // namespace bench
}  // namespace islabel

#endif  // ISLABEL_BENCH_BENCH_COMMON_H_
