// Ablation: the µ pruning of Algorithm 1. µ — the Equation-1 bound over
// the label intersection — both caps the bi-Dijkstra and can answer
// queries outright; disabling it (µ = ∞) shows how much work the labels
// save the residual search.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/index.h"
#include "core/labeling.h"
#include "core/query.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

namespace {

// µ only bites when label(s) ∩ label(t) is non-empty, i.e. for *local*
// pairs whose ancestor cones meet below the core. Uniform random pairs on
// small-diameter graphs almost never intersect (measured: the searches are
// identical), so this ablation uses short-random-walk pairs — the workload
// where Equation 1 can answer outright or tightly cap the search.
std::vector<std::pair<VertexId, VertexId>> LocalPairs(const Graph& g,
                                                      std::size_t count,
                                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> out;
  while (out.size() < count) {
    VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    VertexId t = s;
    const int hops = 2 + static_cast<int>(rng.Uniform(3));
    for (int h = 0; h < hops; ++h) {
      auto nbrs = g.Neighbors(t);
      if (nbrs.empty()) break;
      t = nbrs[rng.Uniform(nbrs.size())];
    }
    if (t != s) out.emplace_back(s, t);
  }
  return out;
}

}  // namespace

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_queries = QueriesFromEnv();
  PrintHeader("Ablation: Equation-1 mu pruning in the label-based "
              "bi-Dijkstra (Algorithm 1)",
              "workload: local pairs (2-4 hop random walks), where labels "
              "intersect");
  std::printf("%-14s %-9s %12s %14s %14s\n", "dataset", "pruning",
              "Query(us)", "settled/query", "relaxed/query");

  for (const std::string& name : {std::string("synth-web"),
                                  std::string("synth-google")}) {
    Dataset d = MakeDataset(name, scale);
    auto built = ISLabelIndex::Build(d.graph, IndexOptions{});
    if (!built.ok()) continue;
    ISLabelIndex index = std::move(built).value();
    auto queries = LocalPairs(d.graph, num_queries, 77);

    // Drive the engine directly so the ablation toggle is accessible.
    QueryEngine engine(&index.hierarchy(), LabelProvider(&index.labels()));
    for (bool disable : {false, true}) {
      engine.set_disable_mu_pruning(disable);
      std::uint64_t settled = 0, relaxed = 0;
      WallTimer t;
      for (auto [s, u] : queries) {
        Distance dist = 0;
        QueryStats stats;
        (void)engine.Query(s, u, &dist, &stats);
        settled += stats.settled;
        relaxed += stats.relaxed;
      }
      std::printf("%-14s %-9s %12.1f %14.1f %14.1f\n", d.name.c_str(),
                  disable ? "OFF" : "ON",
                  t.ElapsedMicros() * 1.0 / num_queries,
                  static_cast<double>(settled) / num_queries,
                  static_cast<double>(relaxed) / num_queries);
    }
  }
  std::printf("\nShape check: without the label-derived mu the search "
              "settles many more vertices —\nthe design-choice the paper's "
              "Algorithm 1 lines 5-6/8 encode.\n");
  return 0;
}
