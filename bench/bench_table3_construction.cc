// Table 3: index construction with threshold σ = 0.95 — k, core size,
// label size, indexing time. (Table 7 is the same sweep at σ = 0.90.)

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "core/index.h"
#include "graph/stats.h"
#include "storage/label_store.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

namespace {

// Shared by bench_table3 (σ=0.95) and bench_table7 (σ=0.90).
int RunConstructionTable(double sigma, const char* table_name,
                         const char* paper_reference) {
  const double scale = ScaleFromEnv();
  PrintHeader(std::string(table_name) + ": index construction, sigma = " +
                  std::to_string(sigma).substr(0, 4),
              paper_reference);
  std::printf("%-14s %4s %10s %10s %12s %12s %8s\n", "dataset", "k",
              "|V_Gk|", "|E_Gk|", "LabelBytes", "LabelEntries", "Time(s)");

  const std::string tmp = "/tmp/islabel_bench_t3";
  std::filesystem::create_directories(tmp);
  for (const std::string& name : DatasetNames()) {
    Dataset d = MakeDataset(name, scale);
    IndexOptions opts;
    opts.sigma = sigma;
    WallTimer t;
    auto built = ISLabelIndex::Build(d.graph, opts);
    if (!built.ok()) {
      std::printf("%-14s build failed: %s\n", d.name.c_str(),
                  built.status().ToString().c_str());
      continue;
    }
    const double secs = t.ElapsedSeconds();
    const BuildStats& bs = built->build_stats();
    // The paper's "Label size" is the on-disk footprint; persist and stat.
    std::uint64_t label_bytes = 0;
    if (built->Save(tmp).ok()) {
      LabelStore store;
      if (store.Open(tmp + "/labels.isl").ok()) {
        label_bytes = store.LabelBytes();
      }
    }
    std::printf("%-14s %4u %10s %10s %12s %12s %8.2f\n", d.name.c_str(), bs.k,
                HumanCount(bs.core_vertices).c_str(),
                HumanCount(bs.core_edges).c_str(),
                HumanBytes(label_bytes).c_str(),
                HumanCount(bs.label_entries).c_str(), secs);
  }
  std::error_code ec;
  std::filesystem::remove_all(tmp, ec);
  std::printf("\nShape check vs the paper: low-degree hubs-and-leaves "
              "graphs terminate at small k\nwith |V_Gk| a small fraction of "
              "|V|; the dense web stand-in keeps shrinking for\nmore levels "
              "(paper: k=19 on Web vs 5-7 elsewhere).\n");
  return 0;
}

}  // namespace

#ifndef ISLABEL_TABLE7_VARIANT
int main() {
  return RunConstructionTable(
      0.95, "Table 3",
      "paper @0.95: BTC k=6 |V_Gk|=134K label 10.6GB 2514s | Web k=19 "
      "242K 13.1GB 2274s |\nas-Skitter k=6 86K 678MB 484s | wiki-Talk k=5 "
      "14K 152MB 239s | Google k=7 87K 199MB 35s");
}
#else
int main() {
  return RunConstructionTable(
      0.90, "Table 7",
      "paper @0.90: BTC k=5 |V_Gk|=167K label 7.2GB 1818s | Web k=7 808K "
      "1.6GB 753s |\nas-Skitter k=4 160K 222MB 247s | wiki-Talk k=4 17K "
      "99MB 182s | Google k=6 107K 127MB 26s");
}
#endif
