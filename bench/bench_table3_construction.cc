// Table 3: index construction with threshold σ = 0.95 — k, core size,
// label size, indexing time. (Table 7 is the same sweep at σ = 0.90;
// the shared implementation lives in bench_construction_impl.h.)

#include "bench/bench_construction_impl.h"

int main() {
  return islabel::bench::RunConstructionTable(
      0.95, "Table 3",
      "paper @0.95: BTC k=6 |V_Gk|=134K label 10.6GB 2514s | Web k=19 "
      "242K 13.1GB 2274s |\nas-Skitter k=6 86K 678MB 484s | wiki-Talk k=5 "
      "14K 152MB 239s | Google k=7 87K 199MB 35s");
}
