// IM-ISL query throughput bench with machine-readable output.
//
// For every built-in generator dataset this bench:
//   * builds the index and records build/labeling times and label size,
//   * times ComputeLabelsTopDown at 1/2/4 threads (the level-parallel
//     Algorithm 4) to track labeling scalability,
//   * measures in-memory query QPS and p50/p99 latency over the arena
//     layout, and — unless --no-ab — over the legacy nested layout served
//     through the same engine (the arena-vs-nested A/B),
//   * splits latency by the paper's three query location types (Table 5),
//   * measures multi-threaded serving QPS through the QueryEnginePool at
//     1/2/4/hw threads, in IM mode and against a disk-resident reload of
//     the same index (concurrent pread path), checking every concurrent
//     answer against the single-threaded ones, and
//   * validates answers against a Dijkstra differential baseline.
//
// Results are printed as a table and written as JSON (default
// BENCH_query.json, override with ISLABEL_BENCH_JSON) so CI can archive a
// perf trajectory. Environment: ISLABEL_SCALE, ISLABEL_QUERIES as usual.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "baseline/dijkstra.h"
#include "bench/bench_common.h"
#include "core/index.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

namespace {

struct LocationBucket {
  std::uint64_t count = 0;
  double total_us = 0.0;
  double MeanUs() const { return count == 0 ? 0.0 : total_us / count; }
};

struct LayoutResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  LocationBucket by_location[3];  // index = LocationType - 1
};

double Percentile(std::vector<double>* lat, double p) {
  if (lat->empty()) return 0.0;
  std::sort(lat->begin(), lat->end());
  const std::size_t i = std::min(
      lat->size() - 1, static_cast<std::size_t>(p * (lat->size() - 1)));
  return (*lat)[i];
}

/// Times one layout in three sweeps: warmup; a pure-throughput sweep timed
/// only by the outer clock (no per-query instrumentation, so fixed harness
/// overhead cannot compress the A/B ratio); and a per-query sweep for the
/// latency percentiles and the per-location split.
LayoutResult MeasureLayout(QueryEngine* engine,
                           const std::vector<std::pair<VertexId, VertexId>>&
                               queries) {
  LayoutResult r;
  Distance d = 0;
  for (auto [s, t] : queries) (void)engine->Query(s, t, &d);

  WallTimer total;
  for (auto [s, t] : queries) (void)engine->Query(s, t, &d);
  const double secs = total.ElapsedSeconds();
  r.qps = secs > 0 ? static_cast<double>(queries.size()) / secs : 0.0;

  std::vector<double> lat;
  lat.reserve(queries.size());
  QueryStats stats;
  for (auto [s, t] : queries) {
    WallTimer one;
    (void)engine->Query(s, t, &d, &stats);
    const double us = one.ElapsedSeconds() * 1e6;
    lat.push_back(us);
    auto& bucket = r.by_location[static_cast<int>(stats.location) - 1];
    ++bucket.count;
    bucket.total_us += us;
  }
  double sum = 0.0;
  for (double u : lat) sum += u;
  r.mean_us = lat.empty() ? 0.0 : sum / static_cast<double>(lat.size());
  r.p50_us = Percentile(&lat, 0.50);
  r.p99_us = Percentile(&lat, 0.99);
  return r;
}

/// Concurrent serving sweep: QPS through the index's QueryEnginePool at
/// each thread count, all answers checked against `expect` (built single-
/// threaded). A warmup batch populates the pool before timing.
struct ConcurrencyResult {
  std::vector<unsigned> threads;
  std::vector<double> qps;
  std::uint64_t mismatches = 0;
};

std::vector<unsigned> ThreadCounts() {
  std::vector<unsigned> counts = {1, 2, 4};
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 1;
  if (std::find(counts.begin(), counts.end(), hw) == counts.end()) {
    counts.push_back(hw);
  }
  return counts;
}

ConcurrencyResult MeasureConcurrent(
    ISLabelIndex* index,
    const std::vector<std::pair<VertexId, VertexId>>& queries,
    const std::vector<Distance>& expect) {
  ConcurrencyResult r;
  r.threads = ThreadCounts();
  std::vector<Distance> got;
  (void)index->QueryBatch(queries, &got, r.threads.back());  // warmup
  for (unsigned t : r.threads) {
    WallTimer timer;
    (void)index->QueryBatch(queries, &got, t);
    const double secs = timer.ElapsedSeconds();
    r.qps.push_back(secs > 0 ? static_cast<double>(queries.size()) / secs
                             : 0.0);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (got[i] != expect[i]) ++r.mismatches;
    }
  }
  return r;
}

void JsonQpsArray(std::string* out, const char* name,
                  const ConcurrencyResult& r) {
  *out += std::string("\"") + name + "\": [";
  char buf[64];
  for (std::size_t i = 0; i < r.qps.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.1f%s", r.qps[i],
                  i + 1 < r.qps.size() ? ", " : "");
    *out += buf;
  }
  *out += "]";
}

void JsonLayout(std::string* out, const char* name, const LayoutResult& r) {
  static const char* kLocNames[3] = {"both_in_core", "one_in_core",
                                     "none_in_core"};
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "      \"%s\": {\"qps\": %.1f, \"p50_us\": %.3f, "
                "\"p99_us\": %.3f, \"mean_us\": %.3f, \"by_location\": {",
                name, r.qps, r.p50_us, r.p99_us, r.mean_us);
  *out += buf;
  for (int i = 0; i < 3; ++i) {
    std::snprintf(buf, sizeof(buf),
                  "\"%s\": {\"count\": %llu, \"mean_us\": %.3f}%s",
                  kLocNames[i],
                  static_cast<unsigned long long>(r.by_location[i].count),
                  r.by_location[i].MeanUs(), i < 2 ? ", " : "");
    *out += buf;
  }
  *out += "}}";
}

}  // namespace

int main(int argc, char** argv) {
  bool run_ab = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-ab") == 0) run_ab = false;
    if (std::strcmp(argv[i], "--ab") == 0) run_ab = true;
  }
  const double scale = ScaleFromEnv();
  const std::size_t num_queries = QueriesFromEnv();
  std::uint64_t total_mismatches = 0;
  const char* json_env = std::getenv("ISLABEL_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_query.json";

  PrintHeader("Query throughput (IM-ISL, arena layout)",
              run_ab ? "A/B: contiguous LabelArena vs legacy nested vectors"
                     : "arena layout only (--no-ab)");
  std::printf("%-14s %9s %9s %9s %9s %9s %8s %9s\n", "dataset", "QPS",
              "p50(us)", "p99(us)", "nestQPS", "A/B", "build(s)",
              "lab x4");

  std::string json = "{\n  \"bench\": \"query_throughput\",\n";
  {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "  \"scale\": %.3f,\n  \"queries\": %zu,\n  \"ab\": %s,\n"
                  "  \"datasets\": [\n",
                  scale, num_queries, run_ab ? "true" : "false");
    json += buf;
  }

  bool first_dataset = true;
  for (const std::string& name : DatasetNames()) {
    Dataset d = MakeDataset(name, scale);
    WallTimer build_timer;
    auto built = ISLabelIndex::Build(d.graph, IndexOptions{});
    if (!built.ok()) {
      std::printf("%-14s build failed: %s\n", d.name.c_str(),
                  built.status().ToString().c_str());
      continue;
    }
    ISLabelIndex index = std::move(built).value();
    const double build_seconds = build_timer.ElapsedSeconds();
    const BuildStats& bs = index.build_stats();

    // Labeling scalability: same hierarchy, 1/2/4 threads. The arenas are
    // byte-identical by construction (tests assert it); only time varies.
    auto hierarchy = BuildHierarchy(d.graph, IndexOptions{});
    double labeling_seconds[3] = {0, 0, 0};
    const std::uint32_t thread_counts[3] = {1, 2, 4};
    if (hierarchy.ok()) {
      for (int i = 0; i < 3; ++i) {
        WallTimer t;
        LabelArena arena =
            ComputeLabelsTopDown(*hierarchy, nullptr, thread_counts[i]);
        labeling_seconds[i] = t.ElapsedSeconds();
        (void)arena;
      }
    }
    const double labeling_speedup_at_4 =
        labeling_seconds[2] > 0 ? labeling_seconds[0] / labeling_seconds[2]
                                : 0.0;

    const auto queries = MakeQueries(d.graph, num_queries, 99);

    // Arena layout (the production path).
    QueryEngine arena_engine(&index.hierarchy(),
                             LabelProvider(&index.labels()));
    const LayoutResult arena = MeasureLayout(&arena_engine, queries);

    // Legacy nested layout through the same engine (layout-only A/B).
    LayoutResult nested;
    LabelSet nested_labels;
    if (run_ab) {
      nested_labels.resize(index.NumVertices());
      for (VertexId v = 0; v < index.NumVertices(); ++v) {
        nested_labels[v] = index.labels().View(v).ToVector();
      }
      QueryEngine nested_engine(&index.hierarchy(),
                                LabelProvider(&nested_labels));
      nested = MeasureLayout(&nested_engine, queries);
    }

    // Dijkstra differential: every answer must match exactly.
    const std::size_t validate =
        std::min<std::size_t>(queries.size(), 200);
    std::uint64_t mismatches = 0;
    for (std::size_t i = 0; i < validate; ++i) {
      Distance got = 0;
      if (!arena_engine.Query(queries[i].first, queries[i].second, &got)
               .ok() ||
          got != DijkstraP2P(d.graph, queries[i].first, queries[i].second)) {
        ++mismatches;
      }
    }

    // Multi-threaded serving through the engine pool, answers checked
    // against the single-threaded engine.
    std::vector<Distance> expect(queries.size(), kInfDistance);
    for (std::size_t i = 0; i < queries.size(); ++i) {
      (void)arena_engine.Query(queries[i].first, queries[i].second,
                               &expect[i]);
    }
    const ConcurrencyResult conc_im = MeasureConcurrent(&index, queries,
                                                        expect);

    // Disk-resident leg: reload the saved index with labels on disk so
    // every query pays its label preads, then run the same sweep.
    ConcurrencyResult conc_disk;
    {
      const std::string dir =
          (std::filesystem::temp_directory_path() /
           ("islabel_bench_mt_" + d.name))
              .string();
      const Status saved = index.Save(dir);
      if (saved.ok()) {
        auto disk = ISLabelIndex::Load(dir, /*labels_in_memory=*/false);
        if (disk.ok()) {
          conc_disk = MeasureConcurrent(&disk.value(), queries, expect);
        } else {
          std::fprintf(stderr,
                       "!! disk concurrency leg skipped (%s): load: %s\n",
                       d.name.c_str(), disk.status().ToString().c_str());
        }
      } else {
        std::fprintf(stderr,
                     "!! disk concurrency leg skipped (%s): save: %s\n",
                     d.name.c_str(), saved.ToString().c_str());
      }
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);
    }

    const double ab_ratio = run_ab && nested.qps > 0 ? arena.qps / nested.qps
                                                     : 0.0;
    std::printf("%-14s %9.0f %9.2f %9.2f %9.0f %8.2fx %8.2f %8.2fx\n",
                d.name.c_str(), arena.qps, arena.p50_us, arena.p99_us,
                nested.qps, ab_ratio, build_seconds, labeling_speedup_at_4);
    std::printf("  mt-QPS");
    for (std::size_t i = 0; i < conc_im.threads.size(); ++i) {
      std::printf(" im@%u=%.0f", conc_im.threads[i], conc_im.qps[i]);
    }
    for (std::size_t i = 0; i < conc_disk.threads.size(); ++i) {
      std::printf(" disk@%u=%.0f", conc_disk.threads[i], conc_disk.qps[i]);
    }
    std::printf("\n");
    if (mismatches != 0) {
      std::printf("  !! %llu of %zu validated queries mismatch Dijkstra\n",
                  static_cast<unsigned long long>(mismatches), validate);
    }
    const std::uint64_t conc_mismatches =
        conc_im.mismatches + conc_disk.mismatches;
    if (conc_mismatches != 0) {
      std::printf(
          "  !! %llu concurrent answers disagree with the single-threaded "
          "engine\n",
          static_cast<unsigned long long>(conc_mismatches));
    }
    total_mismatches += mismatches + conc_mismatches;

    char buf[512];
    if (!first_dataset) json += ",\n";
    first_dataset = false;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"vertices\": %u, \"edges\": %llu, "
        "\"k\": %u,\n"
        "     \"build_seconds\": %.4f, \"hierarchy_seconds\": %.4f, "
        "\"labeling_seconds\": %.4f,\n"
        "     \"label_entries\": %llu, \"label_bytes\": %llu,\n"
        "     \"labeling_scaling\": {\"threads\": [1, 2, 4], \"seconds\": "
        "[%.4f, %.4f, %.4f], \"speedup_at_4\": %.3f},\n",
        d.name.c_str(), d.graph.NumVertices(),
        static_cast<unsigned long long>(d.graph.NumEdges()), index.k(),
        build_seconds, bs.hierarchy_seconds, bs.labeling_seconds,
        static_cast<unsigned long long>(bs.label_entries),
        static_cast<unsigned long long>(bs.label_bytes), labeling_seconds[0],
        labeling_seconds[1], labeling_seconds[2], labeling_speedup_at_4);
    json += buf;
    json += "     \"concurrency\": {\"threads\": [";
    for (std::size_t i = 0; i < conc_im.threads.size(); ++i) {
      std::snprintf(buf, sizeof(buf), "%u%s", conc_im.threads[i],
                    i + 1 < conc_im.threads.size() ? ", " : "");
      json += buf;
    }
    json += "], ";
    JsonQpsArray(&json, "im_qps", conc_im);
    json += ", ";
    JsonQpsArray(&json, "disk_qps", conc_disk);
    std::snprintf(buf, sizeof(buf), ", \"mismatches\": %llu},\n",
                  static_cast<unsigned long long>(conc_im.mismatches +
                                                  conc_disk.mismatches));
    json += buf;
    json += "     \"layouts\": {\n";
    JsonLayout(&json, "arena", arena);
    if (run_ab) {
      json += ",\n";
      JsonLayout(&json, "nested", nested);
    }
    json += "\n     },\n";
    std::snprintf(buf, sizeof(buf),
                  "     \"arena_vs_nested_qps\": %.3f, "
                  "\"validated_queries\": %zu, \"mismatches\": %llu}",
                  ab_ratio, validate,
                  static_cast<unsigned long long>(mismatches));
    json += buf;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\ncould not write %s\n", json_path.c_str());
    return 1;
  }
  // Correctness is part of the bench contract: mismatching Dijkstra is a
  // failure, not a footnote.
  return total_mismatches == 0 ? 0 : 2;
}
