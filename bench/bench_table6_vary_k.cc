// Table 6: the k trade-off on the BTC and Web stand-ins — construction
// cost, label size, G_k size, and query time at the auto-selected k and
// one level below/above it. Deeper k shrinks G_k (faster bi-Dijkstra) but
// grows labels (slower label scans): the paper's conclusion is that the
// σ-selected k sits near the sweet spot.

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "core/index.h"
#include "storage/label_store.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_queries = QueriesFromEnv();
  PrintHeader("Table 6: construction + query vs forced k",
              "paper (BTC): k=5 7.2GB 1555s 10.45ms | k=6 10.6GB 2514s "
              "11.55ms | k=7 17.1GB 7227s 12.37ms\npaper (Web): k=18 "
              "12.2GB 2115s 30.72ms | k=19 13.1GB 2274s 28.02ms | k=20 "
              "13.9GB 2485s 33.65ms");
  std::printf("%-14s %4s %10s %10s %12s %10s %12s\n", "dataset", "k",
              "|V_Gk|", "|E_Gk|", "LabelBytes", "Build(s)", "Query(ms)");

  const std::string tmp = "/tmp/islabel_bench_t6";
  for (const std::string& name : {std::string("synth-btc"),
                                  std::string("synth-web")}) {
    Dataset d = MakeDataset(name, scale);

    // Auto-selected k first.
    auto auto_built = ISLabelIndex::Build(d.graph, IndexOptions{});
    if (!auto_built.ok()) continue;
    const std::uint32_t auto_k = auto_built->k();

    for (std::uint32_t k : {auto_k > 2 ? auto_k - 1 : auto_k, auto_k,
                            auto_k + 1}) {
      IndexOptions opts;
      opts.forced_k = k;
      WallTimer build_timer;
      auto built = ISLabelIndex::Build(d.graph, opts);
      if (!built.ok()) continue;
      const double build_s = build_timer.ElapsedSeconds();
      const BuildStats& bs = built->build_stats();

      std::filesystem::create_directories(tmp);
      std::uint64_t label_bytes = 0;
      if (built->Save(tmp).ok()) {
        LabelStore store;
        if (store.Open(tmp + "/labels.isl").ok()) {
          label_bytes = store.LabelBytes();
        }
      }
      auto loaded = ISLabelIndex::Load(tmp, /*labels_in_memory=*/false);
      if (!loaded.ok()) continue;
      ISLabelIndex index = std::move(loaded).value();

      WallTimer query_timer;
      for (auto [s, t] : MakeQueries(d.graph, num_queries, 7)) {
        Distance dist = 0;
        (void)index.Query(s, t, &dist);
      }
      const double query_ms = query_timer.ElapsedMillis() / num_queries;
      std::printf("%-14s %4u%s %9s %10s %12s %10.2f %12.3f\n",
                  d.name.c_str(), k, k == auto_k ? "*" : " ",
                  HumanCount(bs.core_vertices).c_str(),
                  HumanCount(bs.core_edges).c_str(),
                  HumanBytes(label_bytes).c_str(), build_s, query_ms);
      std::error_code ec;
      std::filesystem::remove_all(tmp, ec);
    }
  }
  std::printf("\n(* = the sigma-selected k.) Shape check: |V_Gk| falls and "
              "LabelBytes grows with k;\nquery time is roughly flat near "
              "the auto-selected k — the paper's trade-off.\n");
  return 0;
}
