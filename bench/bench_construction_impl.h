// Shared implementation of the index-construction tables: Table 3 runs the
// sweep at threshold σ = 0.95, Table 7 at σ = 0.90 (the trade-off §7.2
// discusses — a smaller threshold stops peeling earlier: smaller k, larger
// G_k, smaller labels, shorter indexing time). Each table binary is a thin
// main() over RunConstructionTable.

#ifndef ISLABEL_BENCH_BENCH_CONSTRUCTION_IMPL_H_
#define ISLABEL_BENCH_BENCH_CONSTRUCTION_IMPL_H_

#include <cstdio>
#include <filesystem>
#include <string>

#include "bench/bench_common.h"
#include "core/index.h"
#include "graph/stats.h"
#include "storage/label_store.h"
#include "util/timer.h"

namespace islabel {
namespace bench {

inline int RunConstructionTable(double sigma, const char* table_name,
                                const char* paper_reference) {
  const double scale = ScaleFromEnv();
  PrintHeader(std::string(table_name) + ": index construction, sigma = " +
                  std::to_string(sigma).substr(0, 4),
              paper_reference);
  std::printf("%-14s %4s %10s %10s %12s %12s %8s\n", "dataset", "k",
              "|V_Gk|", "|E_Gk|", "LabelBytes", "LabelEntries", "Time(s)");

  const std::string tmp = "/tmp/islabel_bench_t3";
  std::filesystem::create_directories(tmp);
  for (const std::string& name : DatasetNames()) {
    Dataset d = MakeDataset(name, scale);
    IndexOptions opts;
    opts.sigma = sigma;
    WallTimer t;
    auto built = ISLabelIndex::Build(d.graph, opts);
    if (!built.ok()) {
      std::printf("%-14s build failed: %s\n", d.name.c_str(),
                  built.status().ToString().c_str());
      continue;
    }
    const double secs = t.ElapsedSeconds();
    const BuildStats& bs = built->build_stats();
    // The paper's "Label size" is the on-disk footprint; persist and stat.
    std::uint64_t label_bytes = 0;
    if (built->Save(tmp).ok()) {
      LabelStore store;
      if (store.Open(tmp + "/labels.isl").ok()) {
        label_bytes = store.LabelBytes();
      }
    }
    std::printf("%-14s %4u %10s %10s %12s %12s %8.2f\n", d.name.c_str(), bs.k,
                HumanCount(bs.core_vertices).c_str(),
                HumanCount(bs.core_edges).c_str(),
                HumanBytes(label_bytes).c_str(),
                HumanCount(bs.label_entries).c_str(), secs);
  }
  std::error_code ec;
  std::filesystem::remove_all(tmp, ec);
  std::printf("\nShape check vs the paper: low-degree hubs-and-leaves "
              "graphs terminate at small k\nwith |V_Gk| a small fraction of "
              "|V|; the dense web stand-in keeps shrinking for\nmore levels "
              "(paper: k=19 on Web vs 5-7 elsewhere).\n");
  return 0;
}

}  // namespace bench
}  // namespace islabel

#endif  // ISLABEL_BENCH_BENCH_CONSTRUCTION_IMPL_H_
