// Table 4: query time with threshold 0.95, split into Time (a) — label
// retrieval from the disk-resident store — and Time (b) — the label-seeded
// bi-Dijkstra on G_k.
//
// The paper's Time (a) is dominated by a 7200 RPM disk (~10 ms per label
// I/O); this machine's storage is far faster, so alongside the measured
// wall time we report the modeled HDD time (label I/Os x 10 ms), which is
// the column comparable to the paper's.

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "core/index.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_queries = QueriesFromEnv();
  PrintHeader("Table 4: query time (sigma = 0.95, disk-resident labels)",
              "paper: BTC total 11.55ms (a:11.47 b:0.08) | Web 28.02 "
              "(a:20.08 b:7.94) | as-Skitter 20.05\n(a:12.68 b:7.37) | "
              "wiki-Talk 12.22 (a:10.85 b:1.37) | Google 12.97 (a:10.37 "
              "b:2.60)");
  std::printf("%-14s %4s %12s %12s %12s %14s\n", "dataset", "k",
              "Total(ms)", "Time(a)(ms)", "Time(b)(ms)", "HDD-model(a)");

  const std::string tmp = "/tmp/islabel_bench_t4";
  for (const std::string& name : DatasetNames()) {
    Dataset d = MakeDataset(name, scale);
    auto built = ISLabelIndex::Build(d.graph, IndexOptions{});
    if (!built.ok()) {
      std::printf("%-14s build failed: %s\n", d.name.c_str(),
                  built.status().ToString().c_str());
      continue;
    }
    std::filesystem::create_directories(tmp);
    if (!built->Save(tmp).ok()) continue;
    auto loaded = ISLabelIndex::Load(tmp, /*labels_in_memory=*/false);
    if (!loaded.ok()) continue;
    ISLabelIndex index = std::move(loaded).value();

    double time_a = 0.0, time_b = 0.0;
    std::uint64_t ios = 0;
    WallTimer total;
    for (auto [s, t] : MakeQueries(d.graph, num_queries, 99)) {
      Distance dist = 0;
      QueryStats stats;
      if (!index.Query(s, t, &dist, &stats).ok()) continue;
      time_a += stats.label_fetch_seconds;
      time_b += stats.search_seconds;
      ios += stats.label_ios;
    }
    const double total_ms = total.ElapsedMillis() / num_queries;
    const double a_ms = time_a * 1e3 / num_queries;
    const double b_ms = time_b * 1e3 / num_queries;
    // One seek (~10 ms on the paper's 7200 RPM disk) per label fetch.
    const double hdd_a_ms =
        static_cast<double>(ios) * 10.0 / num_queries;
    std::printf("%-14s %4u %12.3f %12.3f %12.3f %14.1f\n", d.name.c_str(),
                index.k(), total_ms, a_ms, b_ms, hdd_a_ms);
    std::error_code ec;
    std::filesystem::remove_all(tmp, ec);
  }
  std::printf("\nShape check: Time (b) is sub-millisecond-to-millisecond "
              "(tiny pruned search on G_k);\nwith the HDD model, Time (a) "
              "~= 2 label I/Os x 10 ms ~= 20 ms dominates, matching the\n"
              "paper's finding that label retrieval is the bottleneck on "
              "disk.\n");
  return 0;
}
