// Ablation: the vertex-consideration order of Algorithm 2. The paper
// adopts min-degree-first greedy [16] to maximize |L_i|; this bench
// quantifies what random or max-degree-first order would cost in levels,
// core size, and label volume.

#include <cstdio>

#include "bench/bench_common.h"
#include "core/index.h"
#include "graph/stats.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

int main() {
  const double scale = ScaleFromEnv();
  PrintHeader("Ablation: independent-set order (Algorithm 2 greedy choice)",
              "paper's design: min-degree greedy maximizes |L_i| => fewer "
              "levels, smaller core");
  std::printf("%-14s %-10s %4s %10s %10s %12s %9s\n", "dataset", "order",
              "k", "|L_1|", "|V_Gk|", "LabelEntries", "Build(s)");

  struct OrderCase {
    IsOrder order;
    const char* name;
  };
  const OrderCase cases[] = {{IsOrder::kMinDegree, "min-deg"},
                             {IsOrder::kRandom, "random"},
                             {IsOrder::kMaxDegree, "max-deg"}};

  for (const std::string& name : {std::string("synth-btc"),
                                  std::string("synth-google")}) {
    Dataset d = MakeDataset(name, scale);
    for (const OrderCase& c : cases) {
      IndexOptions opts;
      opts.is_order = c.order;
      WallTimer t;
      auto built = ISLabelIndex::Build(d.graph, opts);
      if (!built.ok()) continue;
      const BuildStats& bs = built->build_stats();
      const std::uint64_t l1 =
          bs.level_stats.size() > 0 ? bs.level_stats[0].is_size : 0;
      std::printf("%-14s %-10s %4u %10s %10s %12s %9.2f\n", d.name.c_str(),
                  c.name, bs.k, HumanCount(l1).c_str(),
                  HumanCount(bs.core_vertices).c_str(),
                  HumanCount(bs.label_entries).c_str(), t.ElapsedSeconds());
    }
  }
  std::printf("\nShape check: min-degree yields the largest first "
              "independent set |L_1| and the\nsmallest residual core for a "
              "given sigma; max-degree-first is the worst order.\n");
  return 0;
}
