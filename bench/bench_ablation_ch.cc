// Ablation: Contraction Hierarchies on road-like vs power-law graphs —
// the paper's §3 argument quantified. CH (the road-network state of the
// art it cites as [14]) relies on low highway dimension: on a grid it
// needs few shortcuts and answers with tiny searches, while on
// hub-dominated graphs contraction fills in densely and the advantage
// evaporates; IS-LABEL behaves consistently on both.

#include <cstdio>

#include "baseline/contraction_hierarchy.h"
#include "bench/bench_common.h"
#include "core/index.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_queries = QueriesFromEnv();
  PrintHeader("Ablation: Contraction Hierarchies vs IS-LABEL across graph "
              "classes (paper §3)",
              "CH = road-network method [14]; expected to degrade off "
              "road-like topology");
  std::printf("%-16s %-9s %10s %12s %12s %14s\n", "graph", "method",
              "Build(s)", "Query(us)", "IndexDeg", "settled/query");

  struct Case {
    const char* name;
    Graph graph;
  };
  Rng rng(3);
  // Sizes kept modest: CH preprocessing on the power-law graph is the
  // degeneration being measured and scales super-linearly.
  const VertexId side = static_cast<VertexId>(80 * scale) + 20;
  EdgeList grid = GenerateGrid2D(side, side);
  AssignUniformWeights(&grid, 1, 9, &rng);
  std::vector<Case> cases;
  cases.push_back({"grid(road-like)", Graph::FromEdgeList(std::move(grid))});
  cases.push_back(
      {"power-law(BA)",
       ExtractLargestComponent(
           Graph::FromEdgeList(GenerateBarabasiAlbert(
               static_cast<VertexId>(1500 * scale), 3, &rng)))
           .graph});

  for (Case& c : cases) {
    auto queries = MakeQueries(c.graph, num_queries, 9);
    {
      WallTimer t;
      auto ch = ContractionHierarchy::Build(c.graph);
      const double build_s = t.ElapsedSeconds();
      if (ch.ok()) {
        std::uint64_t settled = 0;
        WallTimer qt;
        for (auto [s, u] : queries) {
          std::uint64_t st = 0;
          (void)ch->Query(s, u, &st);
          settled += st;
        }
        std::printf("%-16s %-9s %10.2f %12.1f %12.2f %14.1f\n", c.name, "CH",
                    build_s, qt.ElapsedMicros() * 1.0 / num_queries,
                    ch->MeanUpDegree(),
                    static_cast<double>(settled) / num_queries);
      }
    }
    {
      WallTimer t;
      auto idx = ISLabelIndex::Build(c.graph, IndexOptions{});
      const double build_s = t.ElapsedSeconds();
      if (idx.ok()) {
        std::uint64_t settled = 0;
        WallTimer qt;
        for (auto [s, u] : queries) {
          Distance d = 0;
          QueryStats stats;
          (void)idx->Query(s, u, &d, &stats);
          settled += stats.settled;
        }
        const double mean_label =
            static_cast<double>(idx->build_stats().label_entries) /
            c.graph.NumVertices();
        std::printf("%-16s %-9s %10.2f %12.1f %12.2f %14.1f\n", c.name,
                    "IS-LABEL", build_s,
                    qt.ElapsedMicros() * 1.0 / num_queries, mean_label,
                    static_cast<double>(settled) / num_queries);
      }
    }
  }
  std::printf("\nShape check: on the grid CH builds fast with small upward "
              "degree and tiny searches;\non the power-law graph CH's "
              "build/degree blow up while IS-LABEL stays consistent —\nthe "
              "reason the paper develops a method that does not rely on "
              "road-network structure.\n");
  return 0;
}
