// Table 5: query time by query location type —
//   Type 1: both endpoints in G_k (no label lookup needed beyond the
//           trivial self labels),
//   Type 2: exactly one endpoint in G_k (one real label retrieved),
//   Type 3: neither endpoint in G_k (two labels retrieved).
// Reproduced on the BTC and Web stand-ins like the paper.

#include <cstdio>
#include <filesystem>

#include "bench/bench_common.h"
#include "core/index.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_queries = QueriesFromEnv();
  PrintHeader("Table 5: query time by location type (disk-resident labels)",
              "paper (BTC): type1 0.08ms (a:0.0) type2 5.85 (a:5.73) type3 "
              "9.03 (a:8.94)\npaper (Web): type1 10.40 (a:0.0) type2 19.61 "
              "(a:10.14) type3 29.81 (a:20.37)");
  std::printf("%-14s %5s %10s %12s %12s %14s\n", "dataset", "type",
              "Total(ms)", "Time(a)(ms)", "Time(b)(ms)", "HDD-model(a)");

  const std::string tmp = "/tmp/islabel_bench_t5";
  for (const std::string& name : {std::string("synth-btc"),
                                  std::string("synth-web")}) {
    Dataset d = MakeDataset(name, scale);
    auto built = ISLabelIndex::Build(d.graph, IndexOptions{});
    if (!built.ok()) continue;
    std::filesystem::create_directories(tmp);
    if (!built->Save(tmp).ok()) continue;
    auto loaded = ISLabelIndex::Load(tmp, /*labels_in_memory=*/false);
    if (!loaded.ok()) continue;
    ISLabelIndex index = std::move(loaded).value();

    // Vertex pools per side of the core.
    std::vector<VertexId> core, below;
    for (VertexId v = 0; v < d.graph.NumVertices(); ++v) {
      (index.InCore(v) ? core : below).push_back(v);
    }
    Rng rng(41);
    auto pick = [&rng](const std::vector<VertexId>& pool) {
      return pool[rng.Uniform(pool.size())];
    };

    for (int type = 1; type <= 3; ++type) {
      if ((type != 3 && core.empty()) || (type != 1 && below.empty())) {
        std::printf("%-14s %5d (no vertices of this type)\n", d.name.c_str(),
                    type);
        continue;
      }
      double time_a = 0.0, time_b = 0.0;
      std::uint64_t ios = 0;
      WallTimer total;
      for (std::size_t i = 0; i < num_queries; ++i) {
        VertexId s = type == 3 ? pick(below) : pick(core);
        VertexId t = type == 1 ? pick(core) : pick(below);
        Distance dist = 0;
        QueryStats stats;
        if (!index.Query(s, t, &dist, &stats).ok()) continue;
        time_a += stats.label_fetch_seconds;
        time_b += stats.search_seconds;
        ios += stats.label_ios;
      }
      std::printf("%-14s %5d %10.3f %12.3f %12.3f %14.1f\n", d.name.c_str(),
                  type, total.ElapsedMillis() / num_queries,
                  time_a * 1e3 / num_queries, time_b * 1e3 / num_queries,
                  static_cast<double>(ios) * 10.0 / num_queries);
    }
    std::error_code ec;
    std::filesystem::remove_all(tmp, ec);
  }
  std::printf("\nShape check: under the HDD model Time (a) grows ~0 -> "
              "~10ms -> ~20ms from type 1 to 3\n(0, 1, then 2 label "
              "retrievals) while Time (b) stays flat — the paper's "
              "pattern.\nNote: core labels are the trivial {(v,0)}; the "
              "store serves them from the in-memory\noffset table without "
              "touching disk, hence 0 I/Os for type-1 endpoints.\n");
  return 0;
}
