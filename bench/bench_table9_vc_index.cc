// Table 9: VC-Index construction costs (time and index size), the
// companion to Table 8's query comparison.

#include <cstdio>

#include "baseline/vc_index.h"
#include "bench/bench_common.h"
#include "graph/stats.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

int main() {
  const double scale = ScaleFromEnv();
  PrintHeader("Table 9: VC-Index construction",
              "paper: BTC 6221s 3.1GB | Web 3544s 3.0GB | as-Skitter 1013s "
              "486MB | wiki-Talk 53s 137MB |\nGoogle 70s 211MB");
  std::printf("%-14s %8s %12s %10s %10s %10s\n", "dataset", "Time(s)",
              "IndexSize", "levels", "top|V|", "top|E|");
  for (const std::string& name : DatasetNames()) {
    Dataset d = MakeDataset(name, scale);
    WallTimer t;
    auto vc = VcIndex::Build(d.graph);
    if (!vc.ok()) {
      std::printf("%-14s build failed: %s\n", d.name.c_str(),
                  vc.status().ToString().c_str());
      continue;
    }
    std::printf("%-14s %8.2f %12s %10u %10s %10s\n", d.name.c_str(),
                t.ElapsedSeconds(), HumanBytes(vc->SizeBytes()).c_str(),
                vc->num_levels(), HumanCount(vc->top_vertices()).c_str(),
                HumanCount(vc->top_edges()).c_str());
  }
  std::printf("\nShape check: VC-Index construction is the same order as "
              "IS-LABEL's (both are\nindependent-set reductions); its "
              "index is smaller than IS-LABEL's labels — the\npaper's "
              "trade: cheaper index, far slower P2P queries (Table 8).\n");
  return 0;
}
