// Table 7: index construction with threshold σ = 0.90. The smaller
// threshold stops peeling earlier: smaller k, larger G_k, smaller labels,
// shorter indexing time (the trade-off §7.2 discusses). Implementation
// shared with bench_table3_construction.cc.

#define ISLABEL_TABLE7_VARIANT 1
#include "bench/bench_table3_construction.cc"  // NOLINT(build/include)
