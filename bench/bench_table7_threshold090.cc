// Table 7: index construction with threshold σ = 0.90. The smaller
// threshold stops peeling earlier: smaller k, larger G_k, smaller labels,
// shorter indexing time (the trade-off §7.2 discusses). Implementation
// shared with Table 3 via bench_construction_impl.h.

#include "bench/bench_construction_impl.h"

int main() {
  return islabel::bench::RunConstructionTable(
      0.90, "Table 7",
      "paper @0.90: BTC k=5 |V_Gk|=167K label 7.2GB 1818s | Web k=7 808K "
      "1.6GB 753s |\nas-Skitter k=4 160K 222MB 247s | wiki-Talk k=4 17K "
      "99MB 182s | Google k=6 107K 127MB 26s");
}
