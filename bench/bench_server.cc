// TCP serving bench: loopback clients against the epoll server.
//
// For every generator dataset this bench builds the index, starts the
// TCP server on an ephemeral loopback port, and drives it with four
// concurrent client connections sending a Zipf-skewed repeated-pair
// workload (the scale-free query skew that makes a result cache pay),
// pipelined in chunks. Four legs per dataset:
//   * no cache        — baseline server QPS,
//   * sharded cache   — same workload, cache hit-rate recorded,
//   * telemetry A/B   — same cached workload against a fully
//     instrumented server (registry + pool + cache + per-stage traces),
//     once recording and once with the registry flipped to no-op; the
//     QPS delta is the instrumentation overhead (DESIGN.md §16 budgets
//     <2%). A Prometheus snapshot of the instrumented run goes to
//     METRICS_server.prom (override: ISLABEL_BENCH_METRICS).
//   * flight recorder A/B — same cached workload with a flight
//     recorder wired into the dispatcher alongside the live registry
//     (so per-stage tracing runs in both legs), once recording and
//     once disabled; the QPS delta isolates Record() (DESIGN.md §17
//     budgets <5%). A tracez dump of the recording run goes to
//     TRACEZ_server.txt (override: ISLABEL_BENCH_TRACEZ).
//   * after an update — InsertVertex bumps the cache generation; served
//     answers are re-verified against a fresh engine, proving invalidated
//     entries are recomputed, not served stale.
// Every response in every leg is checked against the single-threaded
// engine; any mismatch fails the bench with exit code 2 (same contract
// as bench_query_throughput). Results go to BENCH_server.json (override:
// ISLABEL_BENCH_JSON). ISLABEL_SCALE / ISLABEL_QUERIES as usual.
//
// A final catalog leg exercises the multi-dataset serving layer: two
// disconnected datasets built as partitioned catalogs and hosted by one
// catalog-mode server, four clients switching datasets with `use` while
// a fifth connection issues `reload` continuously. Served answers are
// re-verified against fresh per-part engines (routing map + one
// QueryEngine per component); results go to BENCH_catalog.json
// (override: ISLABEL_BENCH_CATALOG_JSON), mismatches exit 2.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "catalog/catalog.h"
#include "catalog/partitioned_index.h"
#include "core/index.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "server/protocol.h"
#include "server/query_cache.h"
#include "server/tcp_server.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

namespace {

constexpr unsigned kClients = 4;
constexpr std::size_t kPipelineChunk = 64;

/// Blocking loopback client: sends a chunk of requests in one write,
/// reads the same number of response lines back.
class BenchClient {
 public:
  explicit BenchClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

struct WorkloadOp {
  VertexId s = 0;
  VertexId t = 0;
  std::string expect;
};

/// One client's request stream: `count` ops drawn Zipf-ish (quadratic
/// skew toward low indices) from the distinct-pair pool, so popular
/// pairs repeat both within and across clients.
std::vector<std::size_t> SkewedIndices(std::size_t count, std::size_t pool,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::size_t> indices;
  indices.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t u = rng.Uniform(pool);
    indices.push_back(static_cast<std::size_t>(u * u / pool));  // quadratic skew
  }
  return indices;
}

struct LegResult {
  double seconds = 0.0;
  double qps = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t mismatches = 0;
};

/// Runs the full multi-client workload against a started server; every
/// response is compared with its precomputed expectation.
LegResult RunWorkload(std::uint16_t port,
                      const std::vector<std::vector<WorkloadOp>>& per_client) {
  LegResult result;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> completed{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(per_client.size());
  for (const std::vector<WorkloadOp>& ops : per_client) {
    threads.emplace_back([&, ops_ptr = &ops] {
      BenchClient client(port);
      if (!client.ok()) {
        mismatches.fetch_add(ops_ptr->size());
        return;
      }
      const std::vector<WorkloadOp>& work = *ops_ptr;
      std::string line;
      for (std::size_t begin = 0; begin < work.size();
           begin += kPipelineChunk) {
        const std::size_t end =
            std::min(begin + kPipelineChunk, work.size());
        std::string burst;
        for (std::size_t i = begin; i < end; ++i) {
          burst += std::to_string(work[i].s);
          burst += ' ';
          burst += std::to_string(work[i].t);
          burst += '\n';
        }
        if (!client.Send(burst)) {
          mismatches.fetch_add(end - begin);
          return;
        }
        for (std::size_t i = begin; i < end; ++i) {
          if (!client.ReadLine(&line) || line != work[i].expect) {
            mismatches.fetch_add(1);
          }
          completed.fetch_add(1);
        }
      }
      client.Send("quit\n");
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = timer.ElapsedSeconds();
  result.requests = completed.load();
  result.mismatches = mismatches.load();
  result.qps = result.seconds > 0
                   ? static_cast<double>(result.requests) / result.seconds
                   : 0.0;
  return result;
}

// ---------------------------------------------------------------------------
// Catalog leg: multi-dataset hosting + reload under load
// ---------------------------------------------------------------------------

/// Answers queries the way the catalog must: route via the partition
/// map, then one fresh QueryEngine per part — the independent ground
/// truth the served responses are verified against.
class FreshPartEngines {
 public:
  explicit FreshPartEngines(PartitionedIndex* index) : index_(index) {
    engines_.reserve(index->num_parts());
    for (std::uint32_t p = 0; p < index->num_parts(); ++p) {
      // The bench builds its catalogs with the default (IS-LABEL)
      // backend, so the downcast is structural, not speculative.
      auto* part = dynamic_cast<ISLabelIndex*>(index->mutable_part(p));
      engines_.push_back(std::make_unique<QueryEngine>(
          &part->hierarchy(), LabelProvider(&part->labels())));
    }
  }

  std::string Expect(VertexId s, VertexId t) {
    if (index_->ComponentOf(s) != index_->ComponentOf(t)) {
      return server::FormatDistance(kInfDistance);
    }
    const std::uint32_t p = index_->PartOf(s);
    if (p == GraphPartition::kNoPart) return server::FormatDistance(0);
    Distance d = 0;
    (void)engines_[p]->Query(index_->LocalId(s), index_->LocalId(t), &d);
    return server::FormatDistance(d);
  }

 private:
  PartitionedIndex* index_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
};

struct CatalogLegResult {
  double seconds = 0.0;
  double qps = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t reloads = 0;
  std::uint64_t mismatches = 0;
  std::uint32_t parts = 0;
};

/// Builds two disconnected datasets (each dataset = two offset copies of
/// a generator graph, so the partitioner produces multiple parts), saves
/// them as catalog directories, and serves both from one catalog-mode
/// TCP server while clients switch datasets and a reloader hot-swaps
/// them continuously.
CatalogLegResult RunCatalogLeg(double scale, std::size_t num_pairs) {
  CatalogLegResult result;
  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("islabel_bench_catalog_" + std::to_string(::getpid())))
          .string();
  // Unconditional cleanup: the early-failure returns below must not
  // leak the temp catalog directories.
  struct TempDirGuard {
    std::string path;
    ~TempDirGuard() {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  } guard{root};
  const std::vector<std::string> sources = {DatasetNames()[0],
                                            DatasetNames()[1]};
  const std::vector<std::string> names = {"cat0", "cat1"};

  Catalog catalog;
  std::vector<std::unique_ptr<PartitionedIndex>> verify;
  std::vector<std::vector<std::pair<VertexId, VertexId>>> pairs(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    Dataset d = MakeDataset(sources[i], scale);
    // Two offset copies of the component → a genuinely partitioned
    // dataset with guaranteed cross-component pairs.
    EdgeList edges = d.graph.ToEdgeList();
    const VertexId half = d.graph.NumVertices();
    const std::size_t original = edges.size();
    for (std::size_t e = 0; e < original; ++e) {
      const Edge copy = edges.edges()[e];
      edges.Add(copy.u + half, copy.v + half, copy.w);
    }
    Graph g = Graph::FromEdgeList(std::move(edges));
    auto built = PartitionedIndex::Build(g);
    if (!built.ok()) {
      std::fprintf(stderr, "!! catalog dataset build failed: %s\n",
                   built.status().ToString().c_str());
      ++result.mismatches;
      return result;
    }
    const std::string dir = root + "/" + names[i];
    if (!built->Save(dir).ok() || !catalog.Add(names[i], dir).ok()) {
      std::fprintf(stderr, "!! catalog dataset save/add failed\n");
      ++result.mismatches;
      return result;
    }
    result.parts += built->num_parts();
    // Ground truth: an independently loaded copy + fresh per-part
    // engines. Queries mix same-component and cross-component pairs.
    auto fresh = PartitionedIndex::Load(dir);
    if (!fresh.ok()) {
      std::fprintf(stderr, "!! catalog dataset reload failed\n");
      ++result.mismatches;
      return result;
    }
    verify.push_back(
        std::make_unique<PartitionedIndex>(std::move(fresh).value()));
    pairs[i] = MakeQueries(g, num_pairs, 400 + i);
  }
  if (!catalog.WaitReady().ok()) {
    std::fprintf(stderr, "!! catalog load failed\n");
    ++result.mismatches;
    return result;
  }
  for (const std::string& name : names) {
    (void)catalog.SetDistanceCache(name,
                                   std::make_shared<server::QueryCache>());
  }

  // Per-client rounds alternating datasets; expectations from the fresh
  // per-part engines.
  struct Round {
    std::string use_line;
    std::string burst;
    std::vector<std::string> expect;
  };
  constexpr int kRounds = 4;
  std::vector<std::vector<Round>> plans(kClients);
  {
    std::vector<FreshPartEngines> engines;
    engines.reserve(verify.size());
    for (auto& v : verify) engines.emplace_back(v.get());
    for (unsigned c = 0; c < kClients; ++c) {
      for (int r = 0; r < kRounds; ++r) {
        const std::size_t d = (c + static_cast<unsigned>(r)) % names.size();
        Round round;
        round.use_line = "use " + names[d] + "\n";
        const auto indices =
            SkewedIndices(pairs[d].size(), pairs[d].size(), 500 + 10 * c + r);
        for (std::size_t idx : indices) {
          const auto [s, t] = pairs[d][idx];
          round.burst += std::to_string(s) + " " + std::to_string(t) + "\n";
          round.expect.push_back(engines[d].Expect(s, t));
        }
        plans[c].push_back(std::move(round));
      }
    }
  }

  server::TcpServerOptions sopts;
  sopts.port = 0;
  sopts.num_workers = kClients + 1;  // clients + the reloader
  server::TcpServer srv(&catalog, names[0], sopts);
  if (!srv.Start().ok()) {
    std::fprintf(stderr, "!! catalog server failed to start\n");
    ++result.mismatches;
    return result;
  }

  std::atomic<bool> stop_reloading{false};
  std::atomic<std::uint64_t> reloads{0};
  std::thread reloader([&] {
    BenchClient client(srv.port());
    if (!client.ok()) return;
    std::string line;
    int flips = 0;
    while (!stop_reloading.load(std::memory_order_acquire)) {
      const std::string name = names[static_cast<std::size_t>(flips++) %
                                     names.size()];
      if (!client.Send("reload " + name + "\n") || !client.ReadLine(&line) ||
          line != "ok: reloaded " + name) {
        return;
      }
      reloads.fetch_add(1, std::memory_order_relaxed);
    }
    client.Send("quit\n");
  });

  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> completed{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      BenchClient client(srv.port());
      if (!client.ok()) {
        mismatches.fetch_add(1);
        return;
      }
      std::string line;
      for (const Round& round : plans[c]) {
        if (!client.Send(round.use_line + round.burst) ||
            !client.ReadLine(&line) ||
            line.rfind("ok: using ", 0) != 0) {
          mismatches.fetch_add(round.expect.size());
          return;
        }
        for (const std::string& expect : round.expect) {
          if (!client.ReadLine(&line) || line != expect) {
            mismatches.fetch_add(1);
          }
          completed.fetch_add(1);
        }
      }
      client.Send("quit\n");
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = timer.ElapsedSeconds();
  stop_reloading.store(true, std::memory_order_release);
  reloader.join();
  srv.Stop();
  srv.Wait();

  result.requests = completed.load();
  result.reloads = reloads.load();
  result.mismatches += mismatches.load();
  result.qps = result.seconds > 0
                   ? static_cast<double>(result.requests) / result.seconds
                   : 0.0;
  // A leg with zero reloads never exercised hot swap: count it as an
  // infrastructure failure rather than a vacuous pass.
  if (result.reloads == 0) {
    std::fprintf(stderr, "!! catalog leg completed without any reload\n");
    ++result.mismatches;
  }
  return result;
}

}  // namespace

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_pairs = QueriesFromEnv();
  const char* json_env = std::getenv("ISLABEL_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_server.json";
  const char* metrics_env = std::getenv("ISLABEL_BENCH_METRICS");
  const std::string metrics_path =
      metrics_env != nullptr ? metrics_env : "METRICS_server.prom";
  const char* tracez_env = std::getenv("ISLABEL_BENCH_TRACEZ");
  const std::string tracez_path =
      tracez_env != nullptr ? tracez_env : "TRACEZ_server.txt";
  bool wrote_metrics_snapshot = false;
  bool wrote_tracez_snapshot = false;
  std::uint64_t total_mismatches = 0;

  PrintHeader("TCP serving (epoll server, 4 loopback clients)",
              "Zipf-skewed repeated pairs; cached vs uncached vs "
              "post-update");
  std::printf("%-14s %10s %10s %8s %9s %10s\n", "dataset", "QPS",
              "QPS+cache", "hit%", "post-upd", "requests");

  std::string json = "{\n  \"bench\": \"server\",\n";
  {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  \"scale\": %.3f, \"clients\": %u, \"distinct_pairs\": "
                  "%zu,\n  \"datasets\": [\n",
                  scale, kClients, num_pairs);
    json += buf;
  }

  bool first_dataset = true;
  for (const std::string& name : DatasetNames()) {
    Dataset d = MakeDataset(name, scale);
    auto built = ISLabelIndex::Build(d.graph, IndexOptions{});
    if (!built.ok()) {
      std::printf("%-14s build failed: %s\n", d.name.c_str(),
                  built.status().ToString().c_str());
      continue;
    }
    // Declared before the index so the instruments the pool bridge
    // hands out stay valid for the index's whole lifetime.
    obs::MetricRegistry registry;
    ISLabelIndex index = std::move(built).value();

    // Distinct pairs + single-threaded ground truth.
    const auto pairs = MakeQueries(d.graph, num_pairs, 99);
    QueryEngine engine(&index.hierarchy(), LabelProvider(&index.labels()));
    std::vector<std::string> expect(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      Distance dist = 0;
      (void)engine.Query(pairs[i].first, pairs[i].second, &dist);
      expect[i] = server::FormatDistance(dist);
    }

    // Per-client skewed request streams (4x the distinct pool each, so
    // repeats are guaranteed).
    std::vector<std::vector<WorkloadOp>> workload(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
      const auto indices =
          SkewedIndices(4 * pairs.size(), pairs.size(), 1000 + c);
      workload[c].reserve(indices.size());
      for (std::size_t idx : indices) {
        workload[c].push_back(
            {pairs[idx].first, pairs[idx].second, expect[idx]});
      }
    }

    server::TcpServerOptions sopts;
    sopts.port = 0;
    sopts.num_workers = kClients;

    // A leg that cannot even start must fail the gate, not vacuously
    // pass it with zero verified answers.
    std::uint64_t infra_failures = 0;

    // Leg 1: no cache.
    LegResult uncached;
    {
      server::TcpServer srv(&index, nullptr, sopts);
      if (srv.Start().ok()) {
        uncached = RunWorkload(srv.port(), workload);
        srv.Stop();
        srv.Wait();
      } else {
        std::fprintf(stderr, "!! uncached leg failed to start (%s)\n",
                     d.name.c_str());
        ++infra_failures;
      }
    }

    // Leg 2: sharded LRU cache in front of the engine.
    auto cache = std::make_shared<server::QueryCache>();
    index.set_distance_cache(cache);
    LegResult cached;
    server::QueryCacheStats cache_stats;
    {
      server::TcpServer srv(&index, cache.get(), sopts);
      if (srv.Start().ok()) {
        cached = RunWorkload(srv.port(), workload);
        cache_stats = cache->GetStats();
        srv.Stop();
        srv.Wait();
      } else {
        std::fprintf(stderr, "!! cached leg failed to start (%s)\n",
                     d.name.c_str());
        ++infra_failures;
      }
    }
    const double hit_rate =
        cache_stats.hits + cache_stats.misses > 0
            ? static_cast<double>(cache_stats.hits) /
                  static_cast<double>(cache_stats.hits + cache_stats.misses)
            : 0.0;

    // Leg 3: telemetry A/B. The same cached workload against a server
    // wired with the full metrics stack (pool bridge, metric-backed
    // cache, per-verb/per-stage histograms), run twice: once recording,
    // once with the registry flipped to no-op. Each run gets a fresh
    // cache so the comparison is symmetric (both start cold). The QPS
    // delta is the cost of instrumentation — DESIGN.md §16 budgets <2%.
    LegResult metrics_on;
    LegResult metrics_off;
    index.InstallMetrics(&registry);
    {
      server::TcpServerOptions mopts = sopts;
      mopts.metrics = &registry;
      const auto run_ab = [&](bool enabled, LegResult* out) {
        server::QueryCacheOptions copts;
        copts.metrics = &registry;
        auto mcache = std::make_shared<server::QueryCache>(copts);
        index.set_distance_cache(mcache);
        registry.set_enabled(enabled);
        server::TcpServer srv(&index, mcache.get(), mopts);
        if (!srv.Start().ok()) {
          std::fprintf(stderr, "!! telemetry %s leg failed to start (%s)\n",
                       enabled ? "on" : "off", d.name.c_str());
          ++infra_failures;
          return;
        }
        *out = RunWorkload(srv.port(), workload);
        srv.Stop();
        srv.Wait();
      };
      run_ab(true, &metrics_on);
      if (!wrote_metrics_snapshot && metrics_on.requests > 0) {
        // Snapshot the instrumented run's exposition so CI archives a
        // real scrape next to the JSON numbers.
        const std::string prom = registry.RenderPrometheus();
        std::FILE* pf = std::fopen(metrics_path.c_str(), "w");
        if (pf != nullptr) {
          std::fwrite(prom.data(), 1, prom.size(), pf);
          std::fclose(pf);
          wrote_metrics_snapshot = true;
        }
      }
      run_ab(false, &metrics_off);
      registry.set_enabled(true);
      // Leg 4 reuses the leg-2 cache (its generation-bump semantics are
      // what the leg verifies), so point the index back at it.
      index.set_distance_cache(cache);
    }
    const double overhead_pct =
        metrics_off.qps > 0.0
            ? (metrics_off.qps - metrics_on.qps) / metrics_off.qps * 100.0
            : 0.0;

    // Leg 3b: flight recorder A/B. Same cached workload with the
    // flight recorder wired into the dispatcher alongside the live
    // registry — per-stage tracing runs in BOTH legs (the dispatcher
    // traces whenever metrics are on), so toggling the recorder's
    // enable flag isolates the Record() cost from the trace-stamping
    // cost leg 3 already priced. DESIGN.md §17 budgets <5%.
    LegResult recorder_on;
    LegResult recorder_off;
    {
      obs::FlightRecorder recorder{obs::FlightRecorderOptions{}};
      server::TcpServerOptions fopts = sopts;
      fopts.metrics = &registry;
      fopts.flight_recorder = &recorder;
      const auto run_fr = [&](bool enabled, LegResult* out) {
        // Fresh cache per run so the comparison is symmetric (both
        // start cold).
        auto fcache = std::make_shared<server::QueryCache>();
        index.set_distance_cache(fcache);
        recorder.set_enabled(enabled);
        server::TcpServer srv(&index, fcache.get(), fopts);
        if (!srv.Start().ok()) {
          std::fprintf(stderr, "!! recorder %s leg failed to start (%s)\n",
                       enabled ? "on" : "off", d.name.c_str());
          ++infra_failures;
          return;
        }
        *out = RunWorkload(srv.port(), workload);
        srv.Stop();
        srv.Wait();
      };
      run_fr(true, &recorder_on);
      if (!wrote_tracez_snapshot && recorder.total_recorded() > 0) {
        // Archive a real tracez scrape of the recording run next to the
        // Prometheus snapshot.
        const std::string tracez = recorder.RenderTracez(
            obs::FlightRecorder::TracezMode::kRecent, 0, 64);
        std::FILE* tf = std::fopen(tracez_path.c_str(), "w");
        if (tf != nullptr) {
          std::fwrite(tracez.data(), 1, tracez.size(), tf);
          std::fputc('\n', tf);
          std::fclose(tf);
          wrote_tracez_snapshot = true;
        }
      }
      run_fr(false, &recorder_off);
      // Leg 4 reuses the leg-2 cache; point the index back at it.
      index.set_distance_cache(cache);
    }
    const double recorder_overhead_pct =
        recorder_off.qps > 0.0
            ? (recorder_off.qps - recorder_on.qps) / recorder_off.qps * 100.0
            : 0.0;

    // Leg 4: update invalidation. InsertVertex bumps the cache
    // generation; the served answers must match a FRESH engine on the
    // updated index — bit-identical cached vs uncached across the update.
    LegResult post_update;
    {
      std::vector<std::pair<VertexId, Weight>> adj = {
          {0, 1}, {d.graph.NumVertices() / 2, 1}};
      const Status updated = index.InsertVertex(index.NumVertices(), adj);
      if (updated.ok()) {
        QueryEngine fresh(&index.hierarchy(),
                          LabelProvider(&index.labels()));
        const std::size_t sample = std::min<std::size_t>(pairs.size(), 200);
        std::vector<std::vector<WorkloadOp>> verify(kClients);
        for (unsigned c = 0; c < kClients; ++c) {
          verify[c].reserve(2 * sample);
          // Two passes per client: the first misses (generation bumped),
          // the second hits — both must match the fresh engine.
          for (int pass = 0; pass < 2; ++pass) {
            for (std::size_t i = 0; i < sample; ++i) {
              Distance dist = 0;
              (void)fresh.Query(pairs[i].first, pairs[i].second, &dist);
              verify[c].push_back({pairs[i].first, pairs[i].second,
                                   server::FormatDistance(dist)});
            }
          }
        }
        server::TcpServer srv(&index, cache.get(), sopts);
        if (srv.Start().ok()) {
          post_update = RunWorkload(srv.port(), verify);
          srv.Stop();
          srv.Wait();
        } else {
          std::fprintf(stderr, "!! post-update leg failed to start (%s)\n",
                       d.name.c_str());
          ++infra_failures;
        }
      } else {
        std::fprintf(stderr, "!! post-update leg skipped (%s): %s\n",
                     d.name.c_str(), updated.ToString().c_str());
        ++infra_failures;
      }
    }

    const std::uint64_t mismatches =
        uncached.mismatches + cached.mismatches + metrics_on.mismatches +
        metrics_off.mismatches + recorder_on.mismatches +
        recorder_off.mismatches + post_update.mismatches + infra_failures;
    total_mismatches += mismatches;
    const std::uint64_t dataset_requests =
        uncached.requests + cached.requests + metrics_on.requests +
        metrics_off.requests + recorder_on.requests + recorder_off.requests +
        post_update.requests;
    std::printf("%-14s %10.0f %10.0f %7.1f%% %9.0f %10llu\n", d.name.c_str(),
                uncached.qps, cached.qps, hit_rate * 100, post_update.qps,
                static_cast<unsigned long long>(dataset_requests));
    std::printf("  telemetry A/B: on %.0f QPS, off %.0f QPS, overhead "
                "%+.2f%%\n",
                metrics_on.qps, metrics_off.qps, overhead_pct);
    std::printf("  flight recorder A/B: on %.0f QPS, off %.0f QPS, overhead "
                "%+.2f%%\n",
                recorder_on.qps, recorder_off.qps, recorder_overhead_pct);
    if (mismatches != 0) {
      std::printf("  !! %llu served answers mismatch the single-threaded "
                  "engine\n",
                  static_cast<unsigned long long>(mismatches));
    }

    char buf[1024];
    if (!first_dataset) json += ",\n";
    first_dataset = false;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"vertices\": %u, \"edges\": %llu,\n"
        "     \"qps_uncached\": %.1f, \"qps_cached\": %.1f, "
        "\"qps_post_update\": %.1f,\n"
        "     \"cache_hits\": %llu, \"cache_misses\": %llu, "
        "\"cache_hit_rate\": %.4f, \"cache_entries\": %llu,\n"
        "     \"qps_metrics_on\": %.1f, \"qps_metrics_off\": %.1f, "
        "\"metrics_overhead_pct\": %.2f,\n"
        "     \"qps_recorder_on\": %.1f, \"qps_recorder_off\": %.1f, "
        "\"recorder_overhead_pct\": %.2f,\n"
        "     \"requests\": %llu, \"mismatches\": %llu}",
        d.name.c_str(), d.graph.NumVertices(),
        static_cast<unsigned long long>(d.graph.NumEdges()), uncached.qps,
        cached.qps, post_update.qps,
        static_cast<unsigned long long>(cache_stats.hits),
        static_cast<unsigned long long>(cache_stats.misses), hit_rate,
        static_cast<unsigned long long>(cache_stats.entries), metrics_on.qps,
        metrics_off.qps, overhead_pct, recorder_on.qps, recorder_off.qps,
        recorder_overhead_pct,
        static_cast<unsigned long long>(dataset_requests),
        static_cast<unsigned long long>(mismatches));
    json += buf;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\ncould not write %s\n", json_path.c_str());
    return 1;
  }
  if (wrote_metrics_snapshot) {
    std::printf("wrote %s\n", metrics_path.c_str());
  }
  if (wrote_tracez_snapshot) {
    std::printf("wrote %s\n", tracez_path.c_str());
  }

  // ---- Catalog leg: multi-dataset + reload under load ----
  PrintHeader("Partitioned catalog (2 datasets, reload under load)",
              "4 clients switching datasets + continuous hot-swap reloads; "
              "answers re-verified against fresh per-part engines");
  std::printf("%-14s %10s %10s %8s %9s\n", "leg", "QPS", "requests",
              "reloads", "parts");
  const CatalogLegResult catalog_leg =
      RunCatalogLeg(scale, std::min<std::size_t>(num_pairs, 400));
  total_mismatches += catalog_leg.mismatches;
  std::printf("%-14s %10.0f %10llu %8llu %9u\n", "catalog", catalog_leg.qps,
              static_cast<unsigned long long>(catalog_leg.requests),
              static_cast<unsigned long long>(catalog_leg.reloads),
              catalog_leg.parts);
  if (catalog_leg.mismatches != 0) {
    std::printf("  !! %llu catalog answers mismatch the fresh per-part "
                "engines\n",
                static_cast<unsigned long long>(catalog_leg.mismatches));
  }
  const char* catalog_env = std::getenv("ISLABEL_BENCH_CATALOG_JSON");
  const std::string catalog_json_path =
      catalog_env != nullptr ? catalog_env : "BENCH_catalog.json";
  {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\n  \"bench\": \"catalog\",\n  \"scale\": %.3f, \"clients\": %u,\n"
        "  \"qps\": %.1f, \"requests\": %llu, \"reloads\": %llu,\n"
        "  \"parts\": %u, \"seconds\": %.3f, \"mismatches\": %llu\n}\n",
        scale, kClients, catalog_leg.qps,
        static_cast<unsigned long long>(catalog_leg.requests),
        static_cast<unsigned long long>(catalog_leg.reloads),
        catalog_leg.parts, catalog_leg.seconds,
        static_cast<unsigned long long>(catalog_leg.mismatches));
    std::FILE* cf = std::fopen(catalog_json_path.c_str(), "w");
    if (cf != nullptr) {
      std::fputs(buf, cf);
      std::fclose(cf);
      std::printf("wrote %s\n", catalog_json_path.c_str());
    } else {
      std::printf("could not write %s\n", catalog_json_path.c_str());
      return 1;
    }
  }
  return total_mismatches == 0 ? 0 : 2;
}
