// TCP serving bench: loopback clients against the epoll server.
//
// For every generator dataset this bench builds the index, starts the
// TCP server on an ephemeral loopback port, and drives it with four
// concurrent client connections sending a Zipf-skewed repeated-pair
// workload (the scale-free query skew that makes a result cache pay),
// pipelined in chunks. Three legs per dataset:
//   * no cache        — baseline server QPS,
//   * sharded cache   — same workload, cache hit-rate recorded,
//   * after an update — InsertVertex bumps the cache generation; served
//     answers are re-verified against a fresh engine, proving invalidated
//     entries are recomputed, not served stale.
// Every response in every leg is checked against the single-threaded
// engine; any mismatch fails the bench with exit code 2 (same contract
// as bench_query_throughput). Results go to BENCH_server.json (override:
// ISLABEL_BENCH_JSON). ISLABEL_SCALE / ISLABEL_QUERIES as usual.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/index.h"
#include "server/protocol.h"
#include "server/query_cache.h"
#include "server/tcp_server.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

namespace {

constexpr unsigned kClients = 4;
constexpr std::size_t kPipelineChunk = 64;

/// Blocking loopback client: sends a chunk of requests in one write,
/// reads the same number of response lines back.
class BenchClient {
 public:
  explicit BenchClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~BenchClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool ok() const { return fd_ >= 0; }

  bool Send(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n <= 0) return false;
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  bool ReadLine(std::string* line) {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        line->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[8192];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

struct WorkloadOp {
  VertexId s = 0;
  VertexId t = 0;
  std::string expect;
};

/// One client's request stream: `count` ops drawn Zipf-ish (quadratic
/// skew toward low indices) from the distinct-pair pool, so popular
/// pairs repeat both within and across clients.
std::vector<std::size_t> SkewedIndices(std::size_t count, std::size_t pool,
                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::size_t> indices;
  indices.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t u = rng.Uniform(pool);
    indices.push_back(static_cast<std::size_t>(u * u / pool));  // quadratic skew
  }
  return indices;
}

struct LegResult {
  double seconds = 0.0;
  double qps = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t mismatches = 0;
};

/// Runs the full multi-client workload against a started server; every
/// response is compared with its precomputed expectation.
LegResult RunWorkload(std::uint16_t port,
                      const std::vector<std::vector<WorkloadOp>>& per_client) {
  LegResult result;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> completed{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(per_client.size());
  for (const std::vector<WorkloadOp>& ops : per_client) {
    threads.emplace_back([&, ops_ptr = &ops] {
      BenchClient client(port);
      if (!client.ok()) {
        mismatches.fetch_add(ops_ptr->size());
        return;
      }
      const std::vector<WorkloadOp>& work = *ops_ptr;
      std::string line;
      for (std::size_t begin = 0; begin < work.size();
           begin += kPipelineChunk) {
        const std::size_t end =
            std::min(begin + kPipelineChunk, work.size());
        std::string burst;
        for (std::size_t i = begin; i < end; ++i) {
          burst += std::to_string(work[i].s);
          burst += ' ';
          burst += std::to_string(work[i].t);
          burst += '\n';
        }
        if (!client.Send(burst)) {
          mismatches.fetch_add(end - begin);
          return;
        }
        for (std::size_t i = begin; i < end; ++i) {
          if (!client.ReadLine(&line) || line != work[i].expect) {
            mismatches.fetch_add(1);
          }
          completed.fetch_add(1);
        }
      }
      client.Send("quit\n");
    });
  }
  for (std::thread& t : threads) t.join();
  result.seconds = timer.ElapsedSeconds();
  result.requests = completed.load();
  result.mismatches = mismatches.load();
  result.qps = result.seconds > 0
                   ? static_cast<double>(result.requests) / result.seconds
                   : 0.0;
  return result;
}

}  // namespace

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_pairs = QueriesFromEnv();
  const char* json_env = std::getenv("ISLABEL_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_server.json";
  std::uint64_t total_mismatches = 0;

  PrintHeader("TCP serving (epoll server, 4 loopback clients)",
              "Zipf-skewed repeated pairs; cached vs uncached vs "
              "post-update");
  std::printf("%-14s %10s %10s %8s %9s %10s\n", "dataset", "QPS",
              "QPS+cache", "hit%", "post-upd", "requests");

  std::string json = "{\n  \"bench\": \"server\",\n";
  {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  \"scale\": %.3f, \"clients\": %u, \"distinct_pairs\": "
                  "%zu,\n  \"datasets\": [\n",
                  scale, kClients, num_pairs);
    json += buf;
  }

  bool first_dataset = true;
  for (const std::string& name : DatasetNames()) {
    Dataset d = MakeDataset(name, scale);
    auto built = ISLabelIndex::Build(d.graph, IndexOptions{});
    if (!built.ok()) {
      std::printf("%-14s build failed: %s\n", d.name.c_str(),
                  built.status().ToString().c_str());
      continue;
    }
    ISLabelIndex index = std::move(built).value();

    // Distinct pairs + single-threaded ground truth.
    const auto pairs = MakeQueries(d.graph, num_pairs, 99);
    QueryEngine engine(&index.hierarchy(), LabelProvider(&index.labels()));
    std::vector<std::string> expect(pairs.size());
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      Distance dist = 0;
      (void)engine.Query(pairs[i].first, pairs[i].second, &dist);
      expect[i] = server::FormatDistance(dist);
    }

    // Per-client skewed request streams (4x the distinct pool each, so
    // repeats are guaranteed).
    std::vector<std::vector<WorkloadOp>> workload(kClients);
    for (unsigned c = 0; c < kClients; ++c) {
      const auto indices =
          SkewedIndices(4 * pairs.size(), pairs.size(), 1000 + c);
      workload[c].reserve(indices.size());
      for (std::size_t idx : indices) {
        workload[c].push_back(
            {pairs[idx].first, pairs[idx].second, expect[idx]});
      }
    }

    server::TcpServerOptions sopts;
    sopts.port = 0;
    sopts.num_workers = kClients;

    // A leg that cannot even start must fail the gate, not vacuously
    // pass it with zero verified answers.
    std::uint64_t infra_failures = 0;

    // Leg 1: no cache.
    LegResult uncached;
    {
      server::TcpServer srv(&index, nullptr, sopts);
      if (srv.Start().ok()) {
        uncached = RunWorkload(srv.port(), workload);
        srv.Stop();
        srv.Wait();
      } else {
        std::fprintf(stderr, "!! uncached leg failed to start (%s)\n",
                     d.name.c_str());
        ++infra_failures;
      }
    }

    // Leg 2: sharded LRU cache in front of the engine.
    auto cache = std::make_shared<server::QueryCache>();
    index.set_distance_cache(cache);
    LegResult cached;
    server::QueryCacheStats cache_stats;
    {
      server::TcpServer srv(&index, cache.get(), sopts);
      if (srv.Start().ok()) {
        cached = RunWorkload(srv.port(), workload);
        cache_stats = cache->GetStats();
        srv.Stop();
        srv.Wait();
      } else {
        std::fprintf(stderr, "!! cached leg failed to start (%s)\n",
                     d.name.c_str());
        ++infra_failures;
      }
    }
    const double hit_rate =
        cache_stats.hits + cache_stats.misses > 0
            ? static_cast<double>(cache_stats.hits) /
                  static_cast<double>(cache_stats.hits + cache_stats.misses)
            : 0.0;

    // Leg 3: update invalidation. InsertVertex bumps the cache
    // generation; the served answers must match a FRESH engine on the
    // updated index — bit-identical cached vs uncached across the update.
    LegResult post_update;
    {
      std::vector<std::pair<VertexId, Weight>> adj = {
          {0, 1}, {d.graph.NumVertices() / 2, 1}};
      const Status updated = index.InsertVertex(index.NumVertices(), adj);
      if (updated.ok()) {
        QueryEngine fresh(&index.hierarchy(),
                          LabelProvider(&index.labels()));
        const std::size_t sample = std::min<std::size_t>(pairs.size(), 200);
        std::vector<std::vector<WorkloadOp>> verify(kClients);
        for (unsigned c = 0; c < kClients; ++c) {
          verify[c].reserve(2 * sample);
          // Two passes per client: the first misses (generation bumped),
          // the second hits — both must match the fresh engine.
          for (int pass = 0; pass < 2; ++pass) {
            for (std::size_t i = 0; i < sample; ++i) {
              Distance dist = 0;
              (void)fresh.Query(pairs[i].first, pairs[i].second, &dist);
              verify[c].push_back({pairs[i].first, pairs[i].second,
                                   server::FormatDistance(dist)});
            }
          }
        }
        server::TcpServer srv(&index, cache.get(), sopts);
        if (srv.Start().ok()) {
          post_update = RunWorkload(srv.port(), verify);
          srv.Stop();
          srv.Wait();
        } else {
          std::fprintf(stderr, "!! post-update leg failed to start (%s)\n",
                       d.name.c_str());
          ++infra_failures;
        }
      } else {
        std::fprintf(stderr, "!! post-update leg skipped (%s): %s\n",
                     d.name.c_str(), updated.ToString().c_str());
        ++infra_failures;
      }
    }

    const std::uint64_t mismatches = uncached.mismatches + cached.mismatches +
                                     post_update.mismatches + infra_failures;
    total_mismatches += mismatches;
    std::printf("%-14s %10.0f %10.0f %7.1f%% %9.0f %10llu\n", d.name.c_str(),
                uncached.qps, cached.qps, hit_rate * 100, post_update.qps,
                static_cast<unsigned long long>(uncached.requests +
                                                cached.requests +
                                                post_update.requests));
    if (mismatches != 0) {
      std::printf("  !! %llu served answers mismatch the single-threaded "
                  "engine\n",
                  static_cast<unsigned long long>(mismatches));
    }

    char buf[512];
    if (!first_dataset) json += ",\n";
    first_dataset = false;
    std::snprintf(
        buf, sizeof(buf),
        "    {\"name\": \"%s\", \"vertices\": %u, \"edges\": %llu,\n"
        "     \"qps_uncached\": %.1f, \"qps_cached\": %.1f, "
        "\"qps_post_update\": %.1f,\n"
        "     \"cache_hits\": %llu, \"cache_misses\": %llu, "
        "\"cache_hit_rate\": %.4f, \"cache_entries\": %llu,\n"
        "     \"requests\": %llu, \"mismatches\": %llu}",
        d.name.c_str(), d.graph.NumVertices(),
        static_cast<unsigned long long>(d.graph.NumEdges()), uncached.qps,
        cached.qps, post_update.qps,
        static_cast<unsigned long long>(cache_stats.hits),
        static_cast<unsigned long long>(cache_stats.misses), hit_rate,
        static_cast<unsigned long long>(cache_stats.entries),
        static_cast<unsigned long long>(
            uncached.requests + cached.requests + post_update.requests),
        static_cast<unsigned long long>(mismatches));
    json += buf;
  }
  json += "\n  ]\n}\n";

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\ncould not write %s\n", json_path.c_str());
    return 1;
  }
  return total_mismatches == 0 ? 0 : 2;
}
