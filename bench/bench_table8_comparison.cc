// Table 8: query time across methods — IS-LABEL (disk-resident labels),
// IM-ISL (labels in memory), VC-Index converted to P2P, and the in-memory
// bidirectional Dijkstra IM-DIJ. Table 9's VC-Index construction costs are
// produced by bench_table9_vc_index.

#include <cstdio>
#include <filesystem>

#include "baseline/bidijkstra.h"
#include "baseline/vc_index.h"
#include "bench/bench_common.h"
#include "core/index.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_queries = QueriesFromEnv();
  PrintHeader("Table 8: query time of IS-LABEL, IM-ISL, VC-Index(P2P), "
              "IM-DIJ",
              "paper: BTC 11.55ms / - / 4246ms / - | Web 28.02 / - / 31656 "
              "/ 430.67 |\nas-Skitter 20.05 / 7.15 / 3712 / 23.16 | "
              "wiki-Talk 12.22 / 1.23 / 554 / 9.97 |\nGoogle 12.97 / 2.44 "
              "/ 1285 / 9.09   (all ms; '-' = did not fit in memory)");
  std::printf("%-14s %14s %14s %12s %12s %12s\n", "dataset",
              "IS-LABEL(ms)", "+HDD-model", "IM-ISL(ms)", "VC-P2P(ms)",
              "IM-DIJ(ms)");

  const std::string tmp = "/tmp/islabel_bench_t8";
  for (const std::string& name : DatasetNames()) {
    Dataset d = MakeDataset(name, scale);
    auto queries = MakeQueries(d.graph, num_queries, 2024);

    // IS-LABEL, disk-resident.
    auto built = ISLabelIndex::Build(d.graph, IndexOptions{});
    if (!built.ok()) continue;
    std::filesystem::create_directories(tmp);
    double disk_ms = -1.0, hdd_model_ms = -1.0;
    if (built->Save(tmp).ok()) {
      auto loaded = ISLabelIndex::Load(tmp, /*labels_in_memory=*/false);
      if (loaded.ok()) {
        std::uint64_t ios = 0;
        WallTimer t;
        for (auto [s, u] : queries) {
          Distance dist = 0;
          QueryStats stats;
          (void)loaded->Query(s, u, &dist, &stats);
          ios += stats.label_ios;
        }
        disk_ms = t.ElapsedMillis() / num_queries;
        hdd_model_ms =
            disk_ms + static_cast<double>(ios) * 10.0 / num_queries;
      }
    }

    // IM-ISL: same index, labels in memory.
    double imisl_ms = -1.0;
    {
      WallTimer t;
      for (auto [s, u] : queries) {
        Distance dist = 0;
        (void)built->Query(s, u, &dist);
      }
      imisl_ms = t.ElapsedMillis() / num_queries;
    }

    // VC-Index converted to P2P.
    double vc_ms = -1.0;
    {
      auto vc = VcIndex::Build(d.graph);
      if (vc.ok()) {
        WallTimer t;
        for (auto [s, u] : queries) (void)vc->QueryP2P(s, u);
        vc_ms = t.ElapsedMillis() / num_queries;
      }
    }

    // IM-DIJ.
    double dij_ms = -1.0;
    {
      BidirectionalDijkstra bidij(&d.graph);
      WallTimer t;
      for (auto [s, u] : queries) (void)bidij.Query(s, u);
      dij_ms = t.ElapsedMillis() / num_queries;
    }

    std::printf("%-14s %14.3f %14.1f %12.3f %12.3f %12.3f\n", d.name.c_str(),
                disk_ms, hdd_model_ms, imisl_ms, vc_ms, dij_ms);
    std::error_code ec;
    std::filesystem::remove_all(tmp, ec);
  }
  std::printf("\nShape check (the paper's ordering): VC-Index(P2P) is "
              "orders of magnitude slower than\nIS-LABEL; IM-ISL beats "
              "IM-DIJ; with the HDD model IS-LABEL's disk mode sits in "
              "the\n~10-30ms band the paper reports.\n");
  return 0;
}
