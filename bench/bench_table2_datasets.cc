// Table 2: the real datasets of the paper vs. the synthetic stand-ins this
// reproduction evaluates on (DESIGN.md §3 explains each substitution).

#include <cstdio>

#include "bench/bench_common.h"
#include "graph/stats.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

int main() {
  const double scale = ScaleFromEnv();
  PrintHeader("Table 2: Real datasets (paper) vs synthetic stand-ins "
              "(measured)",
              "scale factor " + std::to_string(scale) +
                  "  (ISLABEL_SCALE to change)");

  std::printf("%-14s %10s %10s %9s %9s %10s\n", "dataset", "|V|", "|E|",
              "AvgDeg", "MaxDeg", "DiskSize");
  for (const std::string& name : DatasetNames()) {
    WallTimer t;
    Dataset d = MakeDataset(name, scale);
    GraphStats s = ComputeStats(d.graph);
    std::printf("%-14s %10s %10s %9.2f %9u %10s   (generated in %.1fs)\n",
                d.name.c_str(), HumanCount(s.num_vertices).c_str(),
                HumanCount(s.num_edges).c_str(), s.avg_degree, s.max_degree,
                HumanBytes(s.disk_size_bytes).c_str(), t.ElapsedSeconds());
    std::printf("%-14s   paper %s: %s\n", "", d.paper_name.c_str(),
                d.paper_row.c_str());
  }
  std::printf("\nShape check: avg degree within ~2x of the paper's dataset; "
              "max degree far above avg\n(power-law hubs); sizes scaled to "
              "laptop scale.\n");
  return 0;
}
