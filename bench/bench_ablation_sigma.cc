// Ablation: the σ termination threshold (§5.1). The paper uses 0.95 by
// default and 0.90 in Table 7; this sweep maps the whole trade-off curve
// between indexing cost (labels, build time) and query cost (core size).

#include <cstdio>

#include "bench/bench_common.h"
#include "core/index.h"
#include "graph/stats.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_queries = QueriesFromEnv();
  PrintHeader("Ablation: sigma threshold sweep (k-selection criterion)",
              "the paper's Table 3 (0.95) and Table 7 (0.90) are two points "
              "on this curve");
  std::printf("%-14s %6s %4s %10s %10s %12s %9s %11s\n", "dataset", "sigma",
              "k", "|V_Gk|", "|E_Gk|", "LabelEntries", "Build(s)",
              "Query(us)");

  for (const std::string& name : {std::string("synth-btc"),
                                  std::string("synth-wiki")}) {
    Dataset d = MakeDataset(name, scale);
    auto queries = MakeQueries(d.graph, num_queries, 5);
    for (double sigma : {0.80, 0.85, 0.90, 0.95, 0.99}) {
      IndexOptions opts;
      opts.sigma = sigma;
      WallTimer t;
      auto built = ISLabelIndex::Build(d.graph, opts);
      if (!built.ok()) continue;
      const double build_s = t.ElapsedSeconds();
      const BuildStats& bs = built->build_stats();
      WallTimer qt;
      for (auto [s, u] : queries) {
        Distance dist = 0;
        (void)built->Query(s, u, &dist);
      }
      const double query_us = qt.ElapsedMicros() * 1.0 / num_queries;
      std::printf("%-14s %6.2f %4u %10s %10s %12s %9.2f %11.1f\n",
                  d.name.c_str(), sigma, bs.k,
                  HumanCount(bs.core_vertices).c_str(),
                  HumanCount(bs.core_edges).c_str(),
                  HumanCount(bs.label_entries).c_str(), build_s, query_us);
    }
  }
  std::printf("\nShape check: raising sigma peels more levels (larger k): "
              "the core shrinks, labels\nand build time grow; in-memory "
              "query time is fairly insensitive near the default —\nthe "
              "robustness the paper claims in §7.2.\n");
  return 0;
}
