// Replication bench: replica read-scaling and the failover window.
//
// One primary (catalog-mode TCP server + PrimaryHooks) snapshots a
// partitioned dataset to real ReplicaAgents over loopback; each replica
// installs through the generation-ordered hot-swap path and serves the
// same dataset. Two legs:
//
//   * read scaling — 4 ReplicaSetClient threads spread a fixed workload
//     round-robin over 1 replica, then 2 replicas; QPS per leg.
//   * failover window — a single client streams queries across
//     {primary, r0, r1} with per-request latency recorded; the primary
//     is killed a third of the way in. The p99/max latency of the leg
//     IS the failover window: exactly the requests that had their
//     first-choice endpoint die pay it.
//
// Every served answer in every leg is verified against fresh per-part
// engines built from an independently loaded copy of the dataset; any
// mismatch fails the bench with exit code 2 (same contract as
// bench_server). Results go to BENCH_repl.json (override:
// ISLABEL_BENCH_JSON). ISLABEL_SCALE / ISLABEL_QUERIES as usual.
// After the legs, replica 0's Prometheus exposition is written to
// METRICS_repl.prom (override: ISLABEL_BENCH_METRICS) so the run
// leaves a real scrape of the replication metric families behind.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "catalog/catalog.h"
#include "catalog/partitioned_index.h"
#include "obs/metrics.h"
#include "repl/primary.h"
#include "repl/replica.h"
#include "repl/replica_set_client.h"
#include "repl/transport.h"
#include "server/protocol.h"
#include "server/tcp_server.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;
using namespace islabel::bench;

namespace {

constexpr unsigned kClients = 4;

/// Routing map + one fresh QueryEngine per part: the independent ground
/// truth every served response is verified against.
class FreshPartEngines {
 public:
  explicit FreshPartEngines(PartitionedIndex* index) : index_(index) {
    engines_.reserve(index->num_parts());
    for (std::uint32_t p = 0; p < index->num_parts(); ++p) {
      auto* part = dynamic_cast<ISLabelIndex*>(index->mutable_part(p));
      engines_.push_back(std::make_unique<QueryEngine>(
          &part->hierarchy(), LabelProvider(&part->labels())));
    }
  }

  std::string Expect(VertexId s, VertexId t) {
    if (index_->ComponentOf(s) != index_->ComponentOf(t)) {
      return server::FormatDistance(kInfDistance);
    }
    const std::uint32_t p = index_->PartOf(s);
    if (p == GraphPartition::kNoPart) return server::FormatDistance(0);
    Distance d = 0;
    (void)engines_[p]->Query(index_->LocalId(s), index_->LocalId(t), &d);
    return server::FormatDistance(d);
  }

 private:
  PartitionedIndex* index_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
};

/// A full replica node: its own catalog, a real-network agent that
/// pulled the snapshot from the primary, and a serving TCP server.
struct ReplicaNode {
  Catalog catalog;
  repl::TcpTransport transport;
  SystemClock clock;
  Rng rng{12345};
  std::unique_ptr<repl::ReplicaAgent> agent;
  std::unique_ptr<server::TcpServer> server;
  std::string endpoint;
};

struct Workload {
  std::string line;    // "s t"
  std::string expect;  // verified response
};

struct LegResult {
  double qps = 0.0;
  std::uint64_t requests = 0;
  std::uint64_t mismatches = 0;
};

/// kClients threads, each with its own ReplicaSetClient over
/// `endpoints`, all draining the same request list.
LegResult RunReadLeg(const std::vector<std::string>& endpoints,
                     const std::vector<Workload>& work) {
  LegResult result;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> completed{0};
  WallTimer timer;
  std::vector<std::thread> threads;
  for (unsigned c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      repl::TcpTransport transport;
      SystemClock clock;
      Rng rng(9000 + c);
      repl::ReplicaSetOptions opts;
      opts.endpoints = endpoints;
      repl::ReplicaSetClient client(&transport, &clock, &rng, opts);
      for (const Workload& w : work) {
        Result<std::string> got = client.Query(w.line);
        if (!got.ok() || *got != w.expect) mismatches.fetch_add(1);
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double seconds = timer.ElapsedSeconds();
  result.requests = completed.load();
  result.mismatches = mismatches.load();
  result.qps = seconds > 0 ? static_cast<double>(result.requests) / seconds
                           : 0.0;
  return result;
}

double PercentileMs(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const std::size_t idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(sorted.size())));
  return sorted[idx];
}

}  // namespace

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_pairs = QueriesFromEnv();
  const char* json_env = std::getenv("ISLABEL_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_repl.json";

  const std::string root =
      (std::filesystem::temp_directory_path() /
       ("islabel_bench_repl_" + std::to_string(::getpid())))
          .string();
  struct TempDirGuard {
    std::string path;
    ~TempDirGuard() {
      std::error_code ec;
      std::filesystem::remove_all(path, ec);
    }
  } guard{root};

  // ---- Dataset: two offset copies of a generator graph, so the
  // partitioner produces multiple parts and cross-component pairs exist.
  Dataset d = MakeDataset(DatasetNames()[0], scale);
  EdgeList edges = d.graph.ToEdgeList();
  const VertexId half = d.graph.NumVertices();
  const std::size_t original = edges.size();
  for (std::size_t e = 0; e < original; ++e) {
    const Edge copy = edges.edges()[e];
    edges.Add(copy.u + half, copy.v + half, copy.w);
  }
  Graph g = Graph::FromEdgeList(std::move(edges));
  auto built = PartitionedIndex::Build(g);
  if (!built.ok()) {
    std::fprintf(stderr, "!! dataset build failed: %s\n",
                 built.status().ToString().c_str());
    return 2;
  }
  const std::string data_dir = root + "/data";
  if (!built->Save(data_dir).ok()) {
    std::fprintf(stderr, "!! dataset save failed\n");
    return 2;
  }

  // Ground truth from an independently loaded copy.
  auto fresh = PartitionedIndex::Load(data_dir);
  if (!fresh.ok()) {
    std::fprintf(stderr, "!! dataset reload failed\n");
    return 2;
  }
  PartitionedIndex verify_index = std::move(fresh).value();
  FreshPartEngines engines(&verify_index);

  const auto pairs = MakeQueries(g, num_pairs, 99);
  std::vector<Workload> work;
  work.reserve(pairs.size());
  for (const auto& [s, t] : pairs) {
    work.push_back({std::to_string(s) + " " + std::to_string(t),
                    engines.Expect(s, t)});
  }

  // ---- Primary: catalog-mode server + replication hooks.
  Catalog primary_catalog;
  if (!primary_catalog.Add("d", data_dir).ok() ||
      !primary_catalog.WaitReady().ok()) {
    std::fprintf(stderr, "!! primary catalog load failed\n");
    return 2;
  }
  repl::PrimaryHooks primary_hooks(&primary_catalog);
  server::TcpServerOptions sopts;
  sopts.port = 0;
  sopts.num_workers = kClients;
  auto primary = std::make_unique<server::TcpServer>(&primary_catalog, "d",
                                                     sopts);
  primary->SetReplicationHooks(&primary_hooks);
  if (!primary->Start().ok()) {
    std::fprintf(stderr, "!! primary failed to start\n");
    return 2;
  }
  const std::string primary_endpoint =
      "127.0.0.1:" + std::to_string(primary->port());

  // ---- Replicas: pull the snapshot over loopback, then serve it.
  constexpr unsigned kReplicas = 2;
  std::vector<std::unique_ptr<ReplicaNode>> replicas;
  for (unsigned i = 0; i < kReplicas; ++i) {
    auto node = std::make_unique<ReplicaNode>();
    repl::ReplicaOptions ropts;
    ropts.primary = primary_endpoint;
    ropts.root = root + "/replica" + std::to_string(i);
    node->agent = std::make_unique<repl::ReplicaAgent>(
        &node->catalog, &node->transport, &node->clock, &node->rng, ropts);
    const Status synced = node->agent->SyncNow();
    if (!synced.ok()) {
      std::fprintf(stderr, "!! replica %u sync failed: %s\n", i,
                   synced.ToString().c_str());
      return 2;
    }
    node->server =
        std::make_unique<server::TcpServer>(&node->catalog, "d", sopts);
    node->server->SetReplicationHooks(node->agent.get());
    if (!node->server->Start().ok()) {
      std::fprintf(stderr, "!! replica %u failed to start\n", i);
      return 2;
    }
    node->endpoint = "127.0.0.1:" + std::to_string(node->server->port());
    replicas.push_back(std::move(node));
  }

  std::uint64_t total_mismatches = 0;

  // ---- Leg 1: read scaling across replica counts.
  PrintHeader("Replica read scaling (ReplicaSetClient, 4 client threads)",
              "same workload over 1 replica, then 2; answers verified "
              "against fresh per-part engines");
  std::printf("%-14s %10s %10s %10s\n", "endpoints", "QPS", "requests",
              "mismatch");
  std::vector<LegResult> scaling;
  for (unsigned n = 1; n <= kReplicas; ++n) {
    std::vector<std::string> endpoints;
    for (unsigned i = 0; i < n; ++i) endpoints.push_back(replicas[i]->endpoint);
    const LegResult leg = RunReadLeg(endpoints, work);
    total_mismatches += leg.mismatches;
    scaling.push_back(leg);
    std::printf("%u replica%-6s %10.0f %10llu %10llu\n", n,
                n == 1 ? "" : "s", leg.qps,
                static_cast<unsigned long long>(leg.requests),
                static_cast<unsigned long long>(leg.mismatches));
  }

  // ---- Leg 2: failover window. One client over {primary, r0, r1};
  // the primary dies a third of the way through the request stream.
  PrintHeader("Failover window (primary killed mid-stream)",
              "per-request latency across the kill; p99/max = the window");
  std::vector<double> latencies_ms;
  std::uint64_t failover_mismatches = 0;
  std::uint64_t failovers = 0;
  {
    repl::TcpTransport transport;
    SystemClock clock;
    Rng rng(4242);
    repl::ReplicaSetOptions opts;
    opts.endpoints = {primary_endpoint};
    for (const auto& node : replicas) opts.endpoints.push_back(node->endpoint);
    repl::ReplicaSetClient client(&transport, &clock, &rng, opts);

    const std::size_t requests = 3 * std::min<std::size_t>(work.size(), 600);
    const std::size_t kill_at = requests / 3;
    latencies_ms.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
      if (i == kill_at && primary != nullptr) {
        primary->Stop();
        primary->Wait();
        primary.reset();
      }
      const Workload& w = work[i % work.size()];
      const auto start = std::chrono::steady_clock::now();
      Result<std::string> got = client.Query(w.line);
      const auto stop = std::chrono::steady_clock::now();
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(stop - start).count());
      if (!got.ok() || *got != w.expect) ++failover_mismatches;
    }
    failovers = client.failovers();
    // The kill must actually have been observed: a leg where no request
    // ever left its first-choice endpoint never measured failover.
    if (failovers == 0) {
      std::fprintf(stderr, "!! failover leg saw no failovers\n");
      ++failover_mismatches;
    }
  }
  total_mismatches += failover_mismatches;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double p50 = PercentileMs(latencies_ms, 0.50);
  const double p99 = PercentileMs(latencies_ms, 0.99);
  const double mx = latencies_ms.empty() ? 0.0 : latencies_ms.back();
  std::printf("%-14s %10s %10s %10s %10s %10s\n", "leg", "requests",
              "p50 ms", "p99 ms", "max ms", "failovers");
  std::printf("%-14s %10zu %10.3f %10.3f %10.3f %10llu\n", "failover",
              latencies_ms.size(), p50, p99, mx,
              static_cast<unsigned long long>(failovers));
  if (failover_mismatches != 0) {
    std::printf("  !! %llu failover-leg answers mismatch the fresh engines\n",
                static_cast<unsigned long long>(failover_mismatches));
  }

  // Snapshot replica 0's Prometheus exposition (its catalog owns the
  // registry the server, pool, and replication gauges feed) so CI
  // archives a real scrape of the replication families next to the JSON.
  {
    const char* metrics_env = std::getenv("ISLABEL_BENCH_METRICS");
    const std::string metrics_path =
        metrics_env != nullptr ? metrics_env : "METRICS_repl.prom";
    const std::string prom =
        replicas[0]->catalog.metrics()->RenderPrometheus();
    std::FILE* pf = std::fopen(metrics_path.c_str(), "w");
    if (pf != nullptr) {
      std::fwrite(prom.data(), 1, prom.size(), pf);
      std::fclose(pf);
      std::printf("wrote %s\n", metrics_path.c_str());
    }
  }

  for (auto& node : replicas) {
    node->server->Stop();
    node->server->Wait();
  }

  // ---- JSON.
  std::string json = "{\n  \"bench\": \"repl\",\n";
  {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "  \"scale\": %.3f, \"clients\": %u, \"distinct_pairs\": "
                  "%zu,\n  \"read_scaling\": [\n",
                  scale, kClients, work.size());
    json += buf;
  }
  for (std::size_t i = 0; i < scaling.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"replicas\": %zu, \"qps\": %.1f, \"requests\": "
                  "%llu, \"mismatches\": %llu}%s\n",
                  i + 1, scaling[i].qps,
                  static_cast<unsigned long long>(scaling[i].requests),
                  static_cast<unsigned long long>(scaling[i].mismatches),
                  i + 1 < scaling.size() ? "," : "");
    json += buf;
  }
  {
    char buf[384];
    std::snprintf(buf, sizeof(buf),
                  "  ],\n  \"failover\": {\"requests\": %zu, \"p50_ms\": "
                  "%.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f, \"failovers\": "
                  "%llu, \"mismatches\": %llu}\n}\n",
                  latencies_ms.size(), p50, p99, mx,
                  static_cast<unsigned long long>(failovers),
                  static_cast<unsigned long long>(failover_mismatches));
    json += buf;
  }
  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::printf("\ncould not write %s\n", json_path.c_str());
    return 1;
  }
  return total_mismatches == 0 ? 0 : 2;
}
