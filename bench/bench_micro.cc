// Micro-benchmarks (google-benchmark) for the data-structure choices the
// paper's §6.2 mentions and DESIGN.md §2.1 calls out:
//   * binary heap with decrease-key vs monotone radix heap inside Dijkstra,
//   * sorted-merge label intersection (the on-disk label order) vs a hash
//     set intersection,
//   * the greedy independent-set scan,
//   * varint label coding.

#include <benchmark/benchmark.h>

#include <unordered_map>

#include "baseline/dijkstra.h"
#include "core/independent_set.h"
#include "core/label.h"
#include "core/level_graph.h"
#include "graph/generators.h"
#include "util/indexed_heap.h"
#include "util/radix_heap.h"
#include "util/random.h"
#include "util/varint.h"

namespace islabel {
namespace {

Graph BenchGraph() {
  static Graph g = [] {
    Rng rng(1);
    EdgeList el = GenerateBarabasiAlbert(20000, 5, &rng);
    AssignUniformWeights(&el, 1, 16, &rng);
    return Graph::FromEdgeList(std::move(el));
  }();
  return g;
}

void BM_DijkstraIndexedHeap(benchmark::State& state) {
  Graph g = BenchGraph();
  Rng rng(2);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    benchmark::DoNotOptimize(DijkstraP2P(g, s, t));
  }
}
BENCHMARK(BM_DijkstraIndexedHeap);

// Same P2P Dijkstra but with the monotone radix heap + lazy deletion.
Distance RadixDijkstra(const Graph& g, VertexId s, VertexId t) {
  if (s == t) return 0;
  std::vector<Distance> dist(g.NumVertices(), kInfDistance);
  RadixHeap heap;
  dist[s] = 0;
  heap.Push(s, 0);
  while (!heap.Empty()) {
    auto [v, d] = heap.PopMin();
    if (d != dist[v]) continue;  // stale
    if (v == t) return d;
    auto nbrs = g.Neighbors(v);
    auto ws = g.NeighborWeights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const Distance nd = d + ws[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        heap.Push(nbrs[i], nd);
      }
    }
  }
  return kInfDistance;
}

void BM_DijkstraRadixHeap(benchmark::State& state) {
  Graph g = BenchGraph();
  Rng rng(2);
  for (auto _ : state) {
    VertexId s = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    VertexId t = static_cast<VertexId>(rng.Uniform(g.NumVertices()));
    benchmark::DoNotOptimize(RadixDijkstra(g, s, t));
  }
}
BENCHMARK(BM_DijkstraRadixHeap);

std::vector<LabelEntry> SyntheticLabel(std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<LabelEntry> label;
  VertexId node = 0;
  for (std::size_t i = 0; i < len; ++i) {
    node += 1 + static_cast<VertexId>(rng.Uniform(8));
    label.emplace_back(node, rng.Uniform(1000));
  }
  return label;
}

void BM_Eq1MergeIntersect(benchmark::State& state) {
  auto a = SyntheticLabel(static_cast<std::size_t>(state.range(0)), 3);
  auto b = SyntheticLabel(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EvaluateEq1(a, b));
  }
}
BENCHMARK(BM_Eq1MergeIntersect)->Arg(16)->Arg(128)->Arg(1024);

void BM_Eq1HashIntersect(benchmark::State& state) {
  auto a = SyntheticLabel(static_cast<std::size_t>(state.range(0)), 3);
  auto b = SyntheticLabel(static_cast<std::size_t>(state.range(0)), 4);
  for (auto _ : state) {
    std::unordered_map<VertexId, Distance> map;
    map.reserve(a.size());
    for (const LabelEntry& e : a) map.emplace(e.node, e.dist);
    Distance best = kInfDistance;
    for (const LabelEntry& e : b) {
      auto it = map.find(e.node);
      if (it != map.end()) best = std::min(best, it->second + e.dist);
    }
    benchmark::DoNotOptimize(best);
  }
}
BENCHMARK(BM_Eq1HashIntersect)->Arg(16)->Arg(128)->Arg(1024);

void BM_IndependentSet(benchmark::State& state) {
  Graph g = BenchGraph();
  Rng rng(9);
  for (auto _ : state) {
    LevelGraph lg = LevelGraph::FromGraph(g);
    benchmark::DoNotOptimize(
        ComputeIndependentSet(lg, IsOrder::kMinDegree, &rng));
  }
}
BENCHMARK(BM_IndependentSet);

void BM_VarintEncodeDecode(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::uint64_t> values(1024);
  for (auto& v : values) v = rng.Uniform(1u << 20);
  for (auto _ : state) {
    std::string buf;
    for (std::uint64_t v : values) PutVarint64(&buf, v);
    Decoder dec(buf);
    std::uint64_t sum = 0, v = 0;
    while (dec.GetVarint64(&v)) sum += v;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_VarintEncodeDecode);

void BM_HeapPushPop(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    IndexedHeap heap(4096);
    for (std::uint32_t i = 0; i < 4096; ++i) {
      heap.Push(i, rng.Uniform(1u << 20));
    }
    std::uint64_t sum = 0;
    while (!heap.Empty()) sum += heap.PopMin().second;
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_HeapPushPop);

}  // namespace
}  // namespace islabel

BENCHMARK_MAIN();
