#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>

#include "graph/components.h"
#include "graph/generators.h"
#include "util/random.h"

namespace islabel {
namespace bench {

std::vector<std::string> DatasetNames() {
  return {"synth-btc", "synth-web", "synth-skitter", "synth-wiki",
          "synth-google"};
}

namespace {

Graph Lcc(EdgeList edges) {
  Graph full = Graph::FromEdgeList(std::move(edges));
  return ExtractLargestComponent(full).graph;
}

}  // namespace

Dataset MakeDataset(const std::string& name, double scale) {
  Rng rng(2013);
  Dataset d;
  d.name = name;
  if (name == "synth-btc") {
    // BTC: 164.7M vertices, avg degree 2.19, max degree 105,618 — the very
    // sparse, hub-dominated semantic graph. A preferential-attachment tree
    // (avg degree ~2, power-law hubs) plus ~10% extra random edges
    // reproduces the regime that gives IS-LABEL its largest wins (huge
    // independent sets, tiny G_k).
    d.paper_name = "BTC";
    d.paper_row = "|V|=164.7M |E|=361.1M avg=2.19 max=105618 5.6GB";
    const VertexId n = static_cast<VertexId>(250000 * scale);
    EdgeList el = GenerateBarabasiAlbert(n, 1, &rng);
    for (VertexId i = 0; i < n / 10; ++i) {
      el.Add(static_cast<VertexId>(rng.Uniform(n)),
             static_cast<VertexId>(rng.Uniform(n)), 1);
    }
    d.graph = Lcc(std::move(el));
  } else if (name == "synth-web") {
    // Web: 6.9M vertices, avg degree 16.4, weights in {1, 2} (the w-hop
    // conversion of the UK web graph), LCC extracted. Web graphs are
    // heavily *clustered* (host-level link blocks): clique communities
    // keep the hierarchy shrinking level after level — the regime that
    // gives the paper's Web its deep k = 19 — while chains add the
    // URL-hierarchy periphery.
    d.paper_name = "Web";
    d.paper_row = "|V|=6.9M |E|=113.0M avg=16.40 max=31734 1.1GB (w in 1,2)";
    const VertexId n = static_cast<VertexId>(30000 * scale);
    EdgeList el = GenerateCliqueCommunity(n, 18, 0.25, 0.10, 48.0, &rng);
    AssignUniformWeights(&el, 1, 2, &rng);
    d.graph = Lcc(std::move(el));
  } else if (name == "synth-skitter") {
    // as-Skitter: 1.7M vertices, avg degree 13.08 — internet topology:
    // clustered AS neighborhoods plus sparse long links and some
    // single-homed chains.
    d.paper_name = "as-Skitter";
    d.paper_row = "|V|=1.7M |E|=22.2M avg=13.08 max=35455 200MB";
    const VertexId n = static_cast<VertexId>(40000 * scale);
    d.graph = Lcc(GenerateCliqueCommunity(n, 14, 0.5, 0.10, 24.0, &rng));
  } else if (name == "synth-wiki") {
    // wiki-Talk: 2.4M vertices, avg degree 3.89, max degree 100,029 (~4% of
    // |V|) — a sparse communication graph with one dominant hub. Small
    // discussion cliques + long reply chains + a star overlay from vertex
    // 0 (the dominant talk hub).
    d.paper_name = "wiki-Talk";
    d.paper_row = "|V|=2.4M |E|=9.3M avg=3.89 max=100029 100MB";
    const VertexId n = static_cast<VertexId>(65000 * scale);
    EdgeList el = GenerateCliqueCommunity(n, 5, 0.3, 0.30, 16.0, &rng);
    for (VertexId i = 0; i < n / 25; ++i) {
      el.Add(0, static_cast<VertexId>(rng.Uniform(n)), 1);
    }
    d.graph = Lcc(std::move(el));
  } else if (name == "synth-google") {
    // web-Google: 0.9M vertices, avg degree 9.87 — a moderate power-law
    // web crawl with the same clustered-host structure as synth-web but
    // smaller link blocks.
    d.paper_name = "Google";
    d.paper_row = "|V|=0.9M |E|=8.6M avg=9.87 max=6332 80MB";
    const VertexId n = static_cast<VertexId>(45000 * scale);
    d.graph = Lcc(GenerateCliqueCommunity(n, 11, 0.4, 0.10, 24.0, &rng));
  } else {
    std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
    std::abort();
  }
  return d;
}

std::vector<Dataset> MakeAllDatasets(double scale) {
  std::vector<Dataset> out;
  for (const std::string& name : DatasetNames()) {
    out.push_back(MakeDataset(name, scale));
  }
  return out;
}

double ScaleFromEnv() {
  const char* env = std::getenv("ISLABEL_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0.0 ? v : 1.0;
}

std::size_t QueriesFromEnv() {
  const char* env = std::getenv("ISLABEL_QUERIES");
  if (env == nullptr) return 400;
  long v = std::atol(env);
  return v > 0 ? static_cast<std::size_t>(v) : 400;
}

std::vector<std::pair<VertexId, VertexId>> MakeQueries(const Graph& g,
                                                       std::size_t count,
                                                       std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<VertexId, VertexId>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.emplace_back(static_cast<VertexId>(rng.Uniform(g.NumVertices())),
                     static_cast<VertexId>(rng.Uniform(g.NumVertices())));
  }
  return out;
}

void PrintHeader(const std::string& title, const std::string& subtitle) {
  std::printf("\n============================================================"
              "====================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("=============================================================="
              "==================\n");
}

}  // namespace bench
}  // namespace islabel
