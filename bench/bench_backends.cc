// Backend A/B/C: IS-LABEL vs CH vs --backend auto, per generator dataset.
//
// For each dataset (a road-like grid, a small-world ring, a scale-free
// BA graph) the bench builds a PartitionedIndex three times — backend
// islabel, ch, and auto — and measures build time, index size
// (entries/bytes from DistanceIndexInfo), and query latency (QPS,
// p50/p99 microseconds) over the same uniform workload. Every measured
// run is spot-verified against Dijkstra; any mismatch exits 2, so a
// "fast" backend that went wrong can never post a number.
//
// The point of the auto column: on the grid it must match the ch column
// (the heuristic picks CH), on the BA graph the islabel column — the
// reader sees what the heuristic costs (nothing) and what picking the
// wrong family costs (the off-diagonal cells).
//
// Results go to BENCH_backends.json (override: ISLABEL_BENCH_JSON).
// ISLABEL_SCALE / ISLABEL_QUERIES as usual.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "baseline/dijkstra.h"
#include "bench/bench_common.h"
#include "catalog/partitioned_index.h"
#include "core/distance_index.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;
using bench::MakeQueries;
using bench::PrintHeader;
using bench::QueriesFromEnv;
using bench::ScaleFromEnv;

namespace {

struct BenchDataset {
  std::string name;
  std::string kind;  // "road-like" | "small-world" | "scale-free"
  Graph graph;
};

std::vector<BenchDataset> MakeDatasets(double scale) {
  std::vector<BenchDataset> out;
  Rng rng(4242);
  {
    std::uint32_t side = static_cast<std::uint32_t>(70.0 * scale);
    if (side < 10) side = 10;
    EdgeList edges = GenerateGrid2D(side, side);
    AssignUniformWeights(&edges, 1, 32, &rng);
    out.push_back({"grid2d", "road-like", Graph::FromEdgeList(std::move(edges))});
  }
  {
    VertexId n = static_cast<VertexId>(3000.0 * scale);
    if (n < 100) n = 100;
    EdgeList edges = GenerateWattsStrogatz(n, 3, 0.05, &rng);
    AssignUniformWeights(&edges, 1, 32, &rng);
    out.push_back(
        {"smallworld", "small-world", Graph::FromEdgeList(std::move(edges))});
  }
  {
    // Deliberately the smallest dataset: the ch cell here is the
    // worst case the auto heuristic exists to avoid (witness-capped
    // contraction degrades on hubs), and its build time dominates the
    // whole bench. Keep it big enough to show the off-diagonal cost,
    // small enough that the bench stays a smoke test.
    VertexId n = static_cast<VertexId>(400.0 * scale);
    if (n < 100) n = 100;
    EdgeList edges = GenerateBarabasiAlbert(n, 4, &rng);
    AssignUniformWeights(&edges, 1, 32, &rng);
    out.push_back(
        {"scalefree", "scale-free", Graph::FromEdgeList(std::move(edges))});
  }
  return out;
}

struct RunResult {
  std::string backend_flag;    // "islabel" | "ch" | "auto"
  std::string backend_chosen;  // Info().backend: may differ under auto
  double build_seconds = 0;
  std::uint64_t entries = 0;
  std::uint64_t bytes = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

double Percentile(std::vector<double>* us, double p) {
  if (us->empty()) return 0;
  std::sort(us->begin(), us->end());
  const std::size_t i = static_cast<std::size_t>(
      p * static_cast<double>(us->size() - 1) + 0.5);
  return (*us)[i];
}

/// Builds + measures one (dataset, backend) cell. Returns false on a
/// build error or a Dijkstra mismatch (already reported to stderr).
bool RunCell(const BenchDataset& d,
             const std::vector<std::pair<VertexId, VertexId>>& queries,
             BackendKind kind, RunResult* out) {
  out->backend_flag = BackendKindName(kind);
  PartitionOptions opts;
  opts.backend = kind;
  WallTimer build_timer;
  auto built = PartitionedIndex::Build(d.graph, opts);
  if (!built.ok()) {
    std::fprintf(stderr, "%s/%s build failed: %s\n", d.name.c_str(),
                 out->backend_flag.c_str(),
                 built.status().ToString().c_str());
    return false;
  }
  out->build_seconds = build_timer.ElapsedSeconds();
  const DistanceIndexInfo info = built->Info();
  out->backend_chosen = info.backend;
  out->entries = info.entries;
  out->bytes = info.bytes;

  // Verify before timing: a sample of the workload pinned to Dijkstra.
  const std::size_t step = queries.size() > 64 ? queries.size() / 64 : 1;
  for (std::size_t i = 0; i < queries.size(); i += step) {
    Distance got = 0;
    const auto [s, t] = queries[i];
    if (!built->Query(s, t, &got).ok() || got != DijkstraP2P(d.graph, s, t)) {
      std::fprintf(stderr, "%s/%s MISMATCH vs Dijkstra on (%u, %u)\n",
                   d.name.c_str(), out->backend_flag.c_str(), s, t);
      return false;
    }
  }

  std::vector<double> micros;
  micros.reserve(queries.size());
  WallTimer total;
  for (const auto& [s, t] : queries) {
    Distance got = 0;
    WallTimer q;
    (void)built->Query(s, t, &got);
    micros.push_back(q.ElapsedSeconds() * 1e6);
  }
  const double seconds = total.ElapsedSeconds();
  out->qps = seconds > 0
                 ? static_cast<double>(queries.size()) / seconds
                 : 0;
  out->p50_us = Percentile(&micros, 0.50);
  out->p99_us = Percentile(&micros, 0.99);
  return true;
}

void AppendRunJson(std::string* json, const RunResult& r, bool last) {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "      {\"backend\": \"%s\", \"chosen\": \"%s\", "
      "\"build_seconds\": %.4f, \"entries\": %llu, \"bytes\": %llu, "
      "\"qps\": %.1f, \"p50_us\": %.3f, \"p99_us\": %.3f}%s\n",
      r.backend_flag.c_str(), r.backend_chosen.c_str(), r.build_seconds,
      static_cast<unsigned long long>(r.entries),
      static_cast<unsigned long long>(r.bytes), r.qps, r.p50_us, r.p99_us,
      last ? "" : ",");
  *json += buf;
}

}  // namespace

int main() {
  const double scale = ScaleFromEnv();
  const std::size_t num_queries = QueriesFromEnv();
  const char* json_env = std::getenv("ISLABEL_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "BENCH_backends.json";

  PrintHeader("Backend A/B: IS-LABEL vs CH vs auto",
              "per-dataset build / size / latency, all runs "
              "Dijkstra-verified");
  std::printf("%-12s %-8s %-8s %9s %10s %10s %9s %9s %9s\n", "dataset",
              "backend", "chosen", "build(s)", "entries", "bytes", "QPS",
              "p50(us)", "p99(us)");

  std::string json = "{\n  \"bench\": \"backends\",\n";
  {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "  \"scale\": %.3f,\n  \"queries\": %zu,\n"
                  "  \"datasets\": [\n",
                  scale, num_queries);
    json += buf;
  }

  bool ok = true;
  const std::vector<BenchDataset> datasets = MakeDatasets(scale);
  const BackendKind kinds[3] = {BackendKind::kISLabel, BackendKind::kCH,
                                BackendKind::kAuto};
  for (std::size_t di = 0; di < datasets.size(); ++di) {
    const BenchDataset& d = datasets[di];
    const auto queries = MakeQueries(d.graph, num_queries, 1234 + di);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "    {\"name\": \"%s\", \"kind\": \"%s\", "
                  "\"vertices\": %u, \"edges\": %llu, \"runs\": [\n",
                  d.name.c_str(), d.kind.c_str(), d.graph.NumVertices(),
                  static_cast<unsigned long long>(d.graph.NumEdges()));
    json += buf;
    for (int ki = 0; ki < 3; ++ki) {
      RunResult r;
      if (!RunCell(d, queries, kinds[ki], &r)) {
        ok = false;
        continue;
      }
      std::printf("%-12s %-8s %-8s %9.3f %10llu %10llu %9.0f %9.3f %9.3f\n",
                  d.name.c_str(), r.backend_flag.c_str(),
                  r.backend_chosen.c_str(), r.build_seconds,
                  static_cast<unsigned long long>(r.entries),
                  static_cast<unsigned long long>(r.bytes), r.qps, r.p50_us,
                  r.p99_us);
      AppendRunJson(&json, r, ki == 2);
    }
    json += "    ]}";
    json += di + 1 < datasets.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }
  return ok ? 0 : 2;
}
