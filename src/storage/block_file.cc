#include "storage/block_file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace islabel {

Status BlockFile::Open(const std::string& path, bool truncate,
                       std::size_t block_size) {
  Close();
  file_ = std::fopen(path.c_str(), truncate ? "w+b" : "r+b");
  if (file_ == nullptr && !truncate) {
    // Allow opening a not-yet-existing file for read/write.
    file_ = std::fopen(path.c_str(), "w+b");
  }
  if (file_ == nullptr) {
    return Status::IOError("open failed: " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  block_size_ = block_size;
  std::fseek(file_, 0, SEEK_END);
  file_size_ = static_cast<std::uint64_t>(std::ftell(file_));
  next_sequential_read_ = UINT64_MAX;
  next_sequential_write_ = UINT64_MAX;
  stats_.Clear();
  return Status::OK();
}

void BlockFile::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void BlockFile::Account(std::uint64_t offset, std::size_t n, bool is_write) {
  const std::uint64_t blocks =
      (offset % block_size_ + n + block_size_ - 1) / block_size_;
  std::uint64_t& next_seq =
      is_write ? next_sequential_write_ : next_sequential_read_;
  if (offset != next_seq) ++stats_.seeks;
  next_seq = offset + n;
  if (is_write) {
    stats_.block_writes += blocks;
    stats_.bytes_written += n;
  } else {
    stats_.block_reads += blocks;
    stats_.bytes_read += n;
  }
}

Status BlockFile::Append(const void* data, std::size_t n,
                         std::uint64_t* offset) {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  if (std::fseek(file_, 0, SEEK_END) != 0) {
    return Status::IOError("seek failed: " + path_);
  }
  std::uint64_t at = static_cast<std::uint64_t>(std::ftell(file_));
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("append failed: " + path_);
  }
  Account(at, n, /*is_write=*/true);
  file_size_ = at + n;
  if (offset != nullptr) *offset = at;
  return Status::OK();
}

Status BlockFile::ReadAt(std::uint64_t offset, void* dst, std::size_t n) {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  if (offset + n > file_size_) {
    return Status::OutOfRange("read past EOF in " + path_);
  }
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed: " + path_);
  }
  if (std::fread(dst, 1, n, file_) != n) {
    return Status::IOError("short read: " + path_);
  }
  Account(offset, n, /*is_write=*/false);
  return Status::OK();
}

Status BlockFile::WriteAt(std::uint64_t offset, const void* data,
                          std::size_t n) {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed: " + path_);
  }
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("write failed: " + path_);
  }
  Account(offset, n, /*is_write=*/true);
  file_size_ = std::max(file_size_, offset + n);
  return Status::OK();
}

Status BlockFile::Flush() {
  if (file_ == nullptr) return Status::FailedPrecondition("file not open");
  if (std::fflush(file_) != 0) {
    return Status::IOError("flush failed: " + path_);
  }
  return Status::OK();
}

}  // namespace islabel
