#include "storage/block_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace islabel {

Status BlockFile::Open(const std::string& path, bool truncate,
                       std::size_t block_size) {
  Close();
  const int flags = O_RDWR | O_CREAT | (truncate ? O_TRUNC : 0);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) {
    return Status::IOError("open failed: " + path + ": " +
                           std::strerror(errno));
  }
  path_ = path;
  block_size_ = block_size;
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    fd_ = -1;
    return Status::IOError("stat failed: " + path + ": " +
                           std::strerror(errno));
  }
  file_size_.store(static_cast<std::uint64_t>(st.st_size),
                   std::memory_order_relaxed);
  ResetStats();
  return Status::OK();
}

void BlockFile::ResetStats() {
  next_sequential_read_.store(UINT64_MAX, std::memory_order_relaxed);
  next_sequential_write_.store(UINT64_MAX, std::memory_order_relaxed);
  block_reads_.store(0, std::memory_order_relaxed);
  block_writes_.store(0, std::memory_order_relaxed);
  bytes_read_.store(0, std::memory_order_relaxed);
  bytes_written_.store(0, std::memory_order_relaxed);
  seeks_.store(0, std::memory_order_relaxed);
}

void BlockFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void BlockFile::Account(std::uint64_t offset, std::size_t n, bool is_write) {
  const std::uint64_t blocks =
      (offset % block_size_ + n + block_size_ - 1) / block_size_;
  std::atomic<std::uint64_t>& next_seq =
      is_write ? next_sequential_write_ : next_sequential_read_;
  // exchange (not load+store) so two interleaved readers cannot both
  // claim the same continuation offset; the classification stays
  // approximate under concurrency but the counter never loses updates.
  if (next_seq.exchange(offset + n, std::memory_order_relaxed) != offset) {
    seeks_.fetch_add(1, std::memory_order_relaxed);
  }
  if (is_write) {
    block_writes_.fetch_add(blocks, std::memory_order_relaxed);
    bytes_written_.fetch_add(n, std::memory_order_relaxed);
  } else {
    block_reads_.fetch_add(blocks, std::memory_order_relaxed);
    bytes_read_.fetch_add(n, std::memory_order_relaxed);
  }
}

Status BlockFile::PReadFull(std::uint64_t offset, void* dst, std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t r =
        ::pread(fd_, static_cast<char*>(dst) + done, n - done,
                static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read failed: " + path_ + ": " +
                             std::strerror(errno));
    }
    if (r == 0) return Status::IOError("short read: " + path_);
    done += static_cast<std::size_t>(r);
  }
  return Status::OK();
}

Status BlockFile::PWriteFull(std::uint64_t offset, const void* data,
                             std::size_t n) {
  std::size_t done = 0;
  while (done < n) {
    const ssize_t w =
        ::pwrite(fd_, static_cast<const char*>(data) + done, n - done,
                 static_cast<off_t>(offset + done));
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("write failed: " + path_ + ": " +
                             std::strerror(errno));
    }
    done += static_cast<std::size_t>(w);
  }
  return Status::OK();
}

Status BlockFile::Append(const void* data, std::size_t n,
                         std::uint64_t* offset) {
  if (fd_ < 0) return Status::FailedPrecondition("file not open");
  MutexLock lock(&mu_);
  const std::uint64_t at = file_size_.load(std::memory_order_relaxed);
  ISLABEL_RETURN_IF_ERROR(PWriteFull(at, data, n));
  Account(at, n, /*is_write=*/true);
  file_size_.store(at + n, std::memory_order_relaxed);
  if (offset != nullptr) *offset = at;
  return Status::OK();
}

Status BlockFile::ReadAt(std::uint64_t offset, void* dst, std::size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("file not open");
  if (offset + n > file_size_.load(std::memory_order_relaxed)) {
    return Status::OutOfRange("read past EOF in " + path_);
  }
  ISLABEL_RETURN_IF_ERROR(PReadFull(offset, dst, n));
  Account(offset, n, /*is_write=*/false);
  return Status::OK();
}

Status BlockFile::WriteAt(std::uint64_t offset, const void* data,
                          std::size_t n) {
  if (fd_ < 0) return Status::FailedPrecondition("file not open");
  MutexLock lock(&mu_);
  ISLABEL_RETURN_IF_ERROR(PWriteFull(offset, data, n));
  Account(offset, n, /*is_write=*/true);
  std::uint64_t size = file_size_.load(std::memory_order_relaxed);
  if (offset + n > size) {
    file_size_.store(offset + n, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status BlockFile::Flush() {
  if (fd_ < 0) return Status::FailedPrecondition("file not open");
  // pwrite lands directly in the OS page cache — there is no user-space
  // buffer to drain (the stdio-era behavior this preserves). Durability
  // (fsync) has never been part of the contract.
  return Status::OK();
}

}  // namespace islabel
