// BlockFile: a page-granular file abstraction with logical I/O accounting.
//
// The paper's algorithms are analyzed in the external-memory model
// (scan/sort, block size B); every disk touch in this library goes through
// BlockFile so the harness can report block reads/writes and modeled HDD
// time next to measured wall time (util/io_stats.h). Reads and writes at
// an offset adjacent to the previous access count as sequential; others
// count a seek.

#ifndef ISLABEL_STORAGE_BLOCK_FILE_H_
#define ISLABEL_STORAGE_BLOCK_FILE_H_

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/io_stats.h"
#include "util/status.h"

namespace islabel {

/// Default logical block size (B in the I/O model): 64 KB.
inline constexpr std::size_t kDefaultBlockSize = 64 * 1024;

/// Random-access file with block-level accounting. Not thread-safe.
class BlockFile {
 public:
  BlockFile() = default;
  ~BlockFile() { Close(); }

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  /// Opens (creating if needed, truncating if `truncate`).
  Status Open(const std::string& path, bool truncate,
              std::size_t block_size = kDefaultBlockSize);
  void Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  std::size_t block_size() const { return block_size_; }

  /// Appends `n` bytes at the end; returns the offset written at via *offset
  /// (may be null).
  Status Append(const void* data, std::size_t n, std::uint64_t* offset);

  /// Reads exactly `n` bytes at `offset`.
  Status ReadAt(std::uint64_t offset, void* dst, std::size_t n);

  /// Writes exactly `n` bytes at `offset` (for in-place header patching).
  Status WriteAt(std::uint64_t offset, const void* data, std::size_t n);

  Status Flush();

  std::uint64_t FileSize() const { return file_size_; }

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_.Clear(); }

 private:
  void Account(std::uint64_t offset, std::size_t n, bool is_write);

  std::FILE* file_ = nullptr;
  std::string path_;
  std::size_t block_size_ = kDefaultBlockSize;
  std::uint64_t file_size_ = 0;
  std::uint64_t next_sequential_read_ = UINT64_MAX;
  std::uint64_t next_sequential_write_ = UINT64_MAX;
  IoStats stats_;
};

}  // namespace islabel

#endif  // ISLABEL_STORAGE_BLOCK_FILE_H_
