// BlockFile: a page-granular file abstraction with logical I/O accounting.
//
// The paper's algorithms are analyzed in the external-memory model
// (scan/sort, block size B); every disk touch in this library goes through
// BlockFile so the harness can report block reads/writes and modeled HDD
// time next to measured wall time (util/io_stats.h). Reads and writes at
// an offset adjacent to the previous access count as sequential; others
// count a seek.
//
// Reads use positioned I/O (pread) against a plain file descriptor, so
// concurrent ReadAt calls from different threads never share a file
// position — this is what lets the disk-resident query mode (DB-ISL)
// serve many QueryEngines over one open LabelStore, with no lock anywhere
// on the read path (the I/O counters are relaxed atomics). Writes are
// serialized internally. stats() is a consistent snapshot at quiescence;
// under concurrency the totals stay exact but the sequential-vs-seek
// split is approximate (interleaved readers legitimately break each
// other's sequentiality).

#ifndef ISLABEL_STORAGE_BLOCK_FILE_H_
#define ISLABEL_STORAGE_BLOCK_FILE_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/io_stats.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace islabel {

/// Default logical block size (B in the I/O model): 64 KB.
inline constexpr std::size_t kDefaultBlockSize = 64 * 1024;

/// Random-access file with block-level accounting. Open/Close and writes
/// must not race with other calls; ReadAt is safe to call concurrently
/// from any number of threads once the file is open.
class BlockFile {
 public:
  BlockFile() = default;
  ~BlockFile() { Close(); }

  BlockFile(const BlockFile&) = delete;
  BlockFile& operator=(const BlockFile&) = delete;

  /// Opens (creating if needed, truncating if `truncate`).
  Status Open(const std::string& path, bool truncate,
              std::size_t block_size = kDefaultBlockSize);
  void Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  std::size_t block_size() const { return block_size_; }

  /// Appends `n` bytes at the end; returns the offset written at via *offset
  /// (may be null).
  Status Append(const void* data, std::size_t n, std::uint64_t* offset);

  /// Reads exactly `n` bytes at `offset`. Thread-safe (one pread per call;
  /// no shared file position).
  Status ReadAt(std::uint64_t offset, void* dst, std::size_t n);

  /// Writes exactly `n` bytes at `offset` (for in-place header patching).
  Status WriteAt(std::uint64_t offset, const void* data, std::size_t n);

  Status Flush();

  std::uint64_t FileSize() const {
    return file_size_.load(std::memory_order_relaxed);
  }

  /// Materializes the atomic counters into an IoStats snapshot. Meant for
  /// quiescent points (after a build phase, between query sweeps); safe to
  /// call any time, but mid-traffic snapshots are a moving target.
  const IoStats& stats() const {
    MutexLock lock(&mu_);
    stats_snapshot_.block_reads = block_reads_.load(std::memory_order_relaxed);
    stats_snapshot_.block_writes =
        block_writes_.load(std::memory_order_relaxed);
    stats_snapshot_.bytes_read = bytes_read_.load(std::memory_order_relaxed);
    stats_snapshot_.bytes_written =
        bytes_written_.load(std::memory_order_relaxed);
    stats_snapshot_.seeks = seeks_.load(std::memory_order_relaxed);
    return stats_snapshot_;
  }
  void ResetStats();

 private:
  /// Lock-free accounting (relaxed atomics; totals exact, the
  /// sequential/seek classification approximate under concurrent reads).
  void Account(std::uint64_t offset, std::size_t n, bool is_write);
  Status PReadFull(std::uint64_t offset, void* dst, std::size_t n);
  Status PWriteFull(std::uint64_t offset, const void* data, std::size_t n);

  int fd_ = -1;
  std::string path_;
  std::size_t block_size_ = kDefaultBlockSize;
  std::atomic<std::uint64_t> file_size_{0};
  /// Serializes writers (Append needs a stable end-of-file) and the
  /// stats() snapshot; the read path never takes it.
  mutable Mutex mu_;
  std::atomic<std::uint64_t> next_sequential_read_{UINT64_MAX};
  std::atomic<std::uint64_t> next_sequential_write_{UINT64_MAX};
  std::atomic<std::uint64_t> block_reads_{0};
  std::atomic<std::uint64_t> block_writes_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<std::uint64_t> seeks_{0};
  mutable IoStats stats_snapshot_ GUARDED_BY(mu_);
};

}  // namespace islabel

#endif  // ISLABEL_STORAGE_BLOCK_FILE_H_
