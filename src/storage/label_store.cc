#include "storage/label_store.h"

#include "util/varint.h"

namespace islabel {

namespace {

constexpr std::uint32_t kLabelMagic = 0x49534C4C;  // "ISLL"
constexpr std::uint32_t kLabelVersion = 1;
constexpr std::size_t kHeaderBytes = 4 + 4 + 4 + 4;  // magic, ver, n, vias
// Footer: offset-table position (8) + total entries (8) + magic (4).
constexpr std::size_t kFooterBytes = 8 + 8 + 4;

}  // namespace

Status LabelStoreWriter::Open(const std::string& path, VertexId num_vertices,
                              bool store_vias) {
  num_vertices_ = num_vertices;
  next_vertex_ = 0;
  store_vias_ = store_vias;
  entry_bytes_ = 0;
  offsets_.clear();
  offsets_.reserve(static_cast<std::size_t>(num_vertices) + 1);
  offsets_.push_back(kHeaderBytes);
  ISLABEL_RETURN_IF_ERROR(file_.Open(path, /*truncate=*/true));
  std::string header;
  PutFixed32(&header, kLabelMagic);
  PutFixed32(&header, kLabelVersion);
  PutFixed32(&header, num_vertices);
  PutFixed32(&header, store_vias ? 1 : 0);
  return file_.Append(header.data(), header.size(), nullptr);
}

Status LabelStoreWriter::Add(LabelView label) {
  if (next_vertex_ >= num_vertices_) {
    return Status::FailedPrecondition("more labels than vertices");
  }
  // Delta-code ancestor ids (sorted ascending) and varint the rest.
  VertexId prev = 0;
  std::size_t before = pending_.size();
  for (std::size_t i = 0; i < label.size(); ++i) {
    const LabelEntry& e = label[i];
    if (i > 0 && e.node <= prev) {
      return Status::InvalidArgument("label entries not sorted by ancestor");
    }
    PutVarint64(&pending_, i == 0 ? e.node : e.node - prev);
    PutVarint64(&pending_, e.dist);
    if (store_vias_) {
      PutVarint64(&pending_, e.via == kInvalidVertex ? 0 : e.via + 1ULL);
    }
    prev = e.node;
  }
  entry_bytes_ += pending_.size() - before;
  offsets_.push_back(offsets_.back() + (pending_.size() - before));
  ++next_vertex_;
  if (pending_.size() >= (1u << 20)) return FlushPending();
  return Status::OK();
}

Status LabelStoreWriter::FlushPending() {
  if (pending_.empty()) return Status::OK();
  ISLABEL_RETURN_IF_ERROR(
      file_.Append(pending_.data(), pending_.size(), nullptr));
  pending_.clear();
  return Status::OK();
}

Status LabelStoreWriter::Finish() {
  if (next_vertex_ != num_vertices_) {
    return Status::FailedPrecondition(
        "Finish() before all labels were added");
  }
  ISLABEL_RETURN_IF_ERROR(FlushPending());
  const std::uint64_t table_at = file_.FileSize();
  std::string table;
  table.reserve(offsets_.size() * 8 + kFooterBytes);
  for (std::uint64_t off : offsets_) PutFixed64(&table, off);
  PutFixed64(&table, table_at);
  PutFixed64(&table, 0);  // reserved (total entries, filled by readers)
  PutFixed32(&table, kLabelMagic);
  ISLABEL_RETURN_IF_ERROR(file_.Append(table.data(), table.size(), nullptr));
  return file_.Flush();
}

Status LabelStore::Open(const std::string& path) {
  ISLABEL_RETURN_IF_ERROR(file_.Open(path, /*truncate=*/false));
  if (file_.FileSize() < kHeaderBytes + kFooterBytes) {
    return Status::Corruption("label store too small: " + path);
  }
  char header[kHeaderBytes];
  ISLABEL_RETURN_IF_ERROR(file_.ReadAt(0, header, sizeof(header)));
  Decoder hd(header, sizeof(header));
  std::uint32_t magic, version, n, vias;
  hd.GetFixed32(&magic);
  hd.GetFixed32(&version);
  hd.GetFixed32(&n);
  hd.GetFixed32(&vias);
  if (magic != kLabelMagic) return Status::Corruption("bad magic: " + path);
  if (version != kLabelVersion) {
    return Status::Corruption("unsupported version: " + path);
  }
  num_vertices_ = n;
  store_vias_ = vias != 0;

  char footer[kFooterBytes];
  ISLABEL_RETURN_IF_ERROR(
      file_.ReadAt(file_.FileSize() - kFooterBytes, footer, sizeof(footer)));
  Decoder fd(footer, sizeof(footer));
  std::uint64_t table_at, reserved;
  std::uint32_t footer_magic;
  fd.GetFixed64(&table_at);
  fd.GetFixed64(&reserved);
  fd.GetFixed32(&footer_magic);
  if (footer_magic != kLabelMagic) {
    return Status::Corruption("bad footer magic: " + path);
  }
  const std::uint64_t table_bytes =
      (static_cast<std::uint64_t>(num_vertices_) + 1) * 8;
  if (table_at + table_bytes + kFooterBytes != file_.FileSize()) {
    return Status::Corruption("offset table size mismatch: " + path);
  }
  std::vector<char> raw(table_bytes);
  ISLABEL_RETURN_IF_ERROR(file_.ReadAt(table_at, raw.data(), raw.size()));
  Decoder td(raw.data(), raw.size());
  offsets_.resize(static_cast<std::size_t>(num_vertices_) + 1);
  for (auto& off : offsets_) td.GetFixed64(&off);
  entry_region_bytes_ = offsets_.back() - kHeaderBytes;
  file_.ResetStats();  // open-time reads don't count against queries
  return Status::OK();
}

Status LabelStore::DecodeLabel(const char* data, std::size_t size,
                               std::vector<LabelEntry>* out) const {
  out->clear();
  return DecodeInto(data, size, out);
}

Status LabelStore::DecodeInto(const char* data, std::size_t size,
                              std::vector<LabelEntry>* out) const {
  Decoder dec(data, size);
  VertexId prev = 0;
  bool first = true;
  while (!dec.Done()) {
    std::uint64_t delta, dist, via_plus1 = 0;
    if (!dec.GetVarint64(&delta) || !dec.GetVarint64(&dist)) {
      return Status::Corruption("truncated label entry");
    }
    if (store_vias_ && !dec.GetVarint64(&via_plus1)) {
      return Status::Corruption("truncated label via");
    }
    VertexId node = first ? static_cast<VertexId>(delta)
                          : prev + static_cast<VertexId>(delta);
    out->emplace_back(node, dist,
                      via_plus1 == 0
                          ? kInvalidVertex
                          : static_cast<VertexId>(via_plus1 - 1));
    prev = node;
    first = false;
  }
  return Status::OK();
}

Status LabelStore::GetLabel(VertexId v, std::vector<LabelEntry>* out) {
  if (v >= num_vertices_) {
    return Status::OutOfRange("vertex id out of range");
  }
  const std::uint64_t lo = offsets_[v], hi = offsets_[v + 1];
  out->clear();
  if (lo == hi) return Status::OK();
  // Typical labels are tens-to-hundreds of delta-varint bytes; a stack
  // buffer keeps the concurrent query hot path allocation-free, with a
  // heap fallback for outlier labels.
  const std::size_t len = static_cast<std::size_t>(hi - lo);
  char stack_buf[4096];
  std::vector<char> heap_buf;
  char* raw = stack_buf;
  if (len > sizeof(stack_buf)) {
    heap_buf.resize(len);
    raw = heap_buf.data();
  }
  ISLABEL_RETURN_IF_ERROR(file_.ReadAt(lo, raw, len));
  return DecodeLabel(raw, len, out);
}

Status LabelStore::LoadAll(std::vector<std::vector<LabelEntry>>* labels) {
  // Nested layout, implemented on top of the arena bulk load so the
  // read+decode skeleton exists exactly once.
  LabelArena arena;
  ISLABEL_RETURN_IF_ERROR(LoadAll(&arena));
  labels->assign(num_vertices_, {});
  for (VertexId v = 0; v < num_vertices_; ++v) {
    (*labels)[v] = arena.View(v).ToVector();
  }
  return Status::OK();
}

Status LabelStore::LoadAll(LabelArena* arena) {
  // One sequential sweep over the entry region, decoded straight into the
  // arena slab — no per-vertex reads, no per-vertex heap vectors.
  const std::uint64_t lo = kHeaderBytes;
  const std::uint64_t hi = offsets_.back();
  std::vector<char> raw(static_cast<std::size_t>(hi - lo));
  if (!raw.empty()) {
    ISLABEL_RETURN_IF_ERROR(file_.ReadAt(lo, raw.data(), raw.size()));
  }
  // Exact slab size in one cheap pre-scan: every varint ends at a byte
  // with the continuation bit clear, and an entry is 2 (or 3, with vias)
  // varints — so the allocation is exact, no regrowth and no shrink copy.
  std::size_t varints = 0;
  for (char c : raw) varints += (static_cast<unsigned char>(c) & 0x80) == 0;
  std::vector<LabelEntry> slab;
  slab.reserve(varints / (store_vias_ ? 3 : 2));
  std::vector<std::uint64_t> csr(static_cast<std::size_t>(num_vertices_) + 1,
                                 0);
  for (VertexId v = 0; v < num_vertices_; ++v) {
    csr[v] = slab.size();
    ISLABEL_RETURN_IF_ERROR(
        DecodeInto(raw.data() + (offsets_[v] - lo),
                   static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]),
                   &slab));
  }
  csr[num_vertices_] = slab.size();
  *arena = LabelArena(std::move(slab), std::move(csr));
  return Status::OK();
}

double LabelStore::MeanEntries() const {
  // total_entries_ is only tracked when labels are decoded; estimate from
  // bytes instead: entries average ~3-5 bytes. Kept simple on purpose —
  // exact counts come from the in-memory labeling statistics.
  if (num_vertices_ == 0) return 0.0;
  return static_cast<double>(entry_region_bytes_) /
         static_cast<double>(num_vertices_);
}

}  // namespace islabel
