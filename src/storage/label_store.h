// LabelStore: disk-resident vertex labels.
//
// The paper stores labels on disk, sorted by ancestor id within each label,
// and observes that "retrieving a vertex label from disk takes only one
// I/O" (§6.2) — the dominant cost of query Time (a) in Tables 4/5. This
// class reproduces that layout:
//
//   [header][entry region][offset table][footer]
//
// The offset table (8 bytes per vertex) is loaded into memory at Open();
// each GetLabel(v) issues exactly one positioned read covering the label's
// contiguous byte range. Entries are delta-varint coded. An optional
// LoadAll() materializes every label in memory — the paper's IM-ISL mode.

#ifndef ISLABEL_STORAGE_LABEL_STORE_H_
#define ISLABEL_STORAGE_LABEL_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/label_arena.h"
#include "core/label_entry.h"
#include "core/label_view.h"
#include "storage/block_file.h"
#include "util/result.h"
#include "util/status.h"

namespace islabel {

/// Sequential writer; labels must be added for v = 0, 1, ..., n-1 in order
/// (vertices with empty labels are allowed and stored as zero-length).
class LabelStoreWriter {
 public:
  /// Creates/truncates the store for `num_vertices` labels. `store_vias`
  /// controls whether path-reconstruction via vertices are persisted.
  Status Open(const std::string& path, VertexId num_vertices,
              bool store_vias);

  /// Appends label(v) for the next vertex id. Entries must be sorted by
  /// ancestor id (Definition 3 order). Accepts any contiguous label —
  /// arena views and plain vectors alike.
  Status Add(LabelView label);

  /// Writes the offset table + footer and flushes.
  Status Finish();

  std::uint64_t bytes_written() const { return entry_bytes_; }

 private:
  BlockFile file_;
  std::vector<std::uint64_t> offsets_;
  VertexId num_vertices_ = 0;
  VertexId next_vertex_ = 0;
  bool store_vias_ = false;
  std::uint64_t entry_bytes_ = 0;
  std::string pending_;

  Status FlushPending();
};

/// Read side; see file comment for the layout.
class LabelStore {
 public:
  Status Open(const std::string& path);

  VertexId num_vertices() const { return num_vertices_; }
  bool store_vias() const { return store_vias_; }

  /// Reads label(v) from disk with a single positioned read. Safe to call
  /// concurrently from many threads after Open(): the offset table is
  /// immutable, BlockFile reads are positioned (pread), and the decode
  /// lands in the caller-owned scratch — this is what lets one store back
  /// every engine of a QueryEnginePool in disk-resident mode.
  Status GetLabel(VertexId v, std::vector<LabelEntry>* out);

  /// Total byte size of the entry region — the paper's "Label size" column.
  std::uint64_t LabelBytes() const { return entry_region_bytes_; }
  /// Whole-file size including the offset table.
  std::uint64_t FileBytes() const { return file_.FileSize(); }

  /// Loads every label into memory (IM-ISL mode), nested layout.
  Status LoadAll(std::vector<std::vector<LabelEntry>>* labels);

  /// Loads every label into one contiguous LabelArena: the whole entry
  /// region is fetched with a single positioned read and decoded straight
  /// into the slab. Seed cuts are left for the caller (they need the
  /// hierarchy's level assignment).
  Status LoadAll(LabelArena* arena);

  /// Average entries per label (diagnostics).
  double MeanEntries() const;
  /// Total label entries across all vertices (the Info() size report).
  std::uint64_t TotalEntries() const { return total_entries_; }

  const IoStats& stats() const { return file_.stats(); }
  void ResetStats() { file_.ResetStats(); }

 private:
  Status DecodeLabel(const char* data, std::size_t size,
                     std::vector<LabelEntry>* out) const;
  /// DecodeLabel without the clear: appends, for bulk slab decoding.
  Status DecodeInto(const char* data, std::size_t size,
                    std::vector<LabelEntry>* out) const;

  BlockFile file_;
  std::vector<std::uint64_t> offsets_;  // size num_vertices_+1
  VertexId num_vertices_ = 0;
  bool store_vias_ = false;
  std::uint64_t entry_region_bytes_ = 0;
  std::uint64_t total_entries_ = 0;
};

}  // namespace islabel

#endif  // ISLABEL_STORAGE_LABEL_STORE_H_
