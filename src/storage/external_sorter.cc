#include "storage/external_sorter.h"

#include <atomic>

#include <unistd.h>

namespace islabel {

std::string NextTempPath(const std::string& dir, const char* tag) {
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t id = counter.fetch_add(1, std::memory_order_relaxed);
  return dir + "/" + tag + "." + std::to_string(::getpid()) + "." +
         std::to_string(id) + ".tmp";
}

}  // namespace islabel
