// ExternalSorter: sort more records than fit in the memory budget.
//
// This is the sort(N) primitive of the paper's I/O analysis (§6): run
// generation (fill a memory buffer, sort, spill) followed by a k-way merge.
// Algorithm 2 uses it to order adjacency lists by degree; Algorithm 3 uses
// it to sort the augmenting-edge array EA by vertex ids; the labeling
// pipeline uses it to sort label entries.
//
// Records must be trivially copyable; the comparator is a template
// parameter so keys need not be materialized.

#ifndef ISLABEL_STORAGE_EXTERNAL_SORTER_H_
#define ISLABEL_STORAGE_EXTERNAL_SORTER_H_

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "storage/block_file.h"
#include "util/status.h"

namespace islabel {

/// Returns a unique temp file path under `dir` (process-local counter).
std::string NextTempPath(const std::string& dir, const char* tag);

template <typename Record, typename Less = std::less<Record>>
class ExternalSorter {
  static_assert(std::is_trivially_copyable_v<Record>,
                "ExternalSorter requires trivially copyable records");

 public:
  /// `memory_budget_bytes` bounds the in-memory run buffer (M in the I/O
  /// model). `tmp_dir` receives spill runs; pass "" to sort purely in
  /// memory regardless of budget (used by tests and small graphs).
  ExternalSorter(std::string tmp_dir, std::size_t memory_budget_bytes,
                 Less less = Less())
      : tmp_dir_(std::move(tmp_dir)),
        max_buffer_records_(
            std::max<std::size_t>(16, memory_budget_bytes / sizeof(Record))),
        less_(less) {}

  ~ExternalSorter() {
    runs_.clear();  // closes the run files
    for (const std::string& path : run_paths_) std::remove(path.c_str());
  }

  ExternalSorter(const ExternalSorter&) = delete;
  ExternalSorter& operator=(const ExternalSorter&) = delete;

  /// Adds one record; may spill a sorted run.
  Status Add(const Record& r) {
    buffer_.push_back(r);
    if (!tmp_dir_.empty() && buffer_.size() >= max_buffer_records_) {
      return SpillRun();
    }
    return Status::OK();
  }

  /// Finalizes input and prepares the merge cursor.
  Status Finish() {
    std::sort(buffer_.begin(), buffer_.end(), less_);
    if (runs_.empty()) {
      // Pure in-memory path.
      mem_pos_ = 0;
      finished_ = true;
      return Status::OK();
    }
    ISLABEL_RETURN_IF_ERROR(SpillRun());
    // Open a buffered cursor on each run and prime the heap.
    for (auto& run : runs_) {
      ISLABEL_RETURN_IF_ERROR(run->Prime());
      if (run->valid) heap_.push_back(run.get());
    }
    std::make_heap(heap_.begin(), heap_.end(), HeapGreater{this});
    finished_ = true;
    return Status::OK();
  }

  /// Pops the next record in sorted order; returns false at end.
  /// Must be called only after Finish() succeeded.
  bool Next(Record* out) {
    if (runs_.empty()) {
      if (mem_pos_ >= buffer_.size()) return false;
      *out = buffer_[mem_pos_++];
      return true;
    }
    if (heap_.empty()) return false;
    std::pop_heap(heap_.begin(), heap_.end(), HeapGreater{this});
    RunCursor* run = heap_.back();
    heap_.pop_back();
    *out = run->current;
    if (run->Advance()) {
      heap_.push_back(run);
      std::push_heap(heap_.begin(), heap_.end(), HeapGreater{this});
    }
    return true;
  }

  /// Total I/O performed by spill runs and the merge.
  IoStats stats() const {
    IoStats s;
    for (const auto& run : runs_) s += run->file.stats();
    return s;
  }

  std::uint64_t num_runs() const { return runs_.size(); }

 private:
  struct RunCursor {
    BlockFile file;
    std::uint64_t read_offset = 0;
    std::vector<Record> chunk;
    std::size_t chunk_pos = 0;
    Record current;
    bool valid = false;
    std::size_t chunk_records = 0;

    Status Prime() {
      chunk_records = std::max<std::size_t>(
          1, kDefaultBlockSize / sizeof(Record));
      valid = false;
      return RefillThenAdvance();
    }

    bool Advance() {
      if (chunk_pos < chunk.size()) {
        current = chunk[chunk_pos++];
        return true;
      }
      Status st = RefillThenAdvance();
      return st.ok() && valid;
    }

    Status RefillThenAdvance() {
      const std::uint64_t remaining = file.FileSize() - read_offset;
      if (remaining == 0) {
        valid = false;
        return Status::OK();
      }
      const std::size_t n = static_cast<std::size_t>(
          std::min<std::uint64_t>(remaining, chunk_records * sizeof(Record)));
      chunk.resize(n / sizeof(Record));
      ISLABEL_RETURN_IF_ERROR(file.ReadAt(read_offset, chunk.data(), n));
      read_offset += n;
      chunk_pos = 0;
      current = chunk[chunk_pos++];
      valid = true;
      return Status::OK();
    }
  };

  struct HeapGreater {
    ExternalSorter* self;
    // std heap functions build a max-heap; invert to get min-heap.
    bool operator()(const RunCursor* a, const RunCursor* b) const {
      return self->less_(b->current, a->current);
    }
  };

  Status SpillRun() {
    if (buffer_.empty()) return Status::OK();
    std::sort(buffer_.begin(), buffer_.end(), less_);
    auto run = std::make_unique<RunCursor>();
    run_paths_.push_back(NextTempPath(tmp_dir_, "sort_run"));
    ISLABEL_RETURN_IF_ERROR(
        run->file.Open(run_paths_.back(), /*truncate=*/true));
    ISLABEL_RETURN_IF_ERROR(run->file.Append(
        buffer_.data(), buffer_.size() * sizeof(Record), nullptr));
    ISLABEL_RETURN_IF_ERROR(run->file.Flush());
    runs_.push_back(std::move(run));
    buffer_.clear();
    return Status::OK();
  }

  std::string tmp_dir_;
  std::size_t max_buffer_records_;
  Less less_;
  std::vector<Record> buffer_;
  std::size_t mem_pos_ = 0;
  std::vector<std::unique_ptr<RunCursor>> runs_;
  std::vector<std::string> run_paths_;
  std::vector<RunCursor*> heap_;
  bool finished_ = false;
};

}  // namespace islabel

#endif  // ISLABEL_STORAGE_EXTERNAL_SORTER_H_
