// Backend registry: the one place that knows every concrete
// DistanceIndex family — how to build one from a graph, how to recognize
// and load a saved index directory, and how `--backend auto` picks a
// family per graph.
//
// The catalog (partitioned_index.cc) and the CLI route all backend
// construction through these functions, so adding a backend means
// touching this file and nothing above it.

#ifndef ISLABEL_BACKENDS_REGISTRY_H_
#define ISLABEL_BACKENDS_REGISTRY_H_

#include <memory>
#include <string>

#include "core/distance_index.h"
#include "core/options.h"
#include "graph/graph.h"
#include "util/result.h"

namespace islabel {

/// Resolves kAuto to a concrete family for `g` using the degree-skew
/// heuristic (graph/stats.h LooksRoadLike): road-like graphs contract
/// well → kCH; skewed/scale-free graphs → kISLabel. Never returns kAuto.
BackendKind ChooseBackendAuto(const Graph& g);

/// Builds an index of the given family over `g`. kAuto resolves via
/// ChooseBackendAuto first. `options` configures IS-LABEL builds (σ,
/// forced k, vias, threads); CH ignores it (contraction has no
/// equivalent knobs and always records path vias).
Result<std::unique_ptr<DistanceIndex>> BuildBackend(
    BackendKind kind, const Graph& g, const IndexOptions& options = {});

/// Loads the index saved in `dir` as the given concrete family (kAuto is
/// not loadable). labels_in_memory selects IS-LABEL's IM vs disk-resident
/// mode and is ignored by CH (always memory-resident).
Result<std::unique_ptr<DistanceIndex>> LoadBackend(
    BackendKind kind, const std::string& dir, bool labels_in_memory = true);

/// Identifies which backend family saved `dir` from its self-identifying
/// files (meta.islm → kISLabel, ch.islc → kCH). NotFound when neither
/// marker exists.
Result<BackendKind> SniffBackendDir(const std::string& dir);

}  // namespace islabel

#endif  // ISLABEL_BACKENDS_REGISTRY_H_
