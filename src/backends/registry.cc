#include "backends/registry.h"

#include <filesystem>
#include <utility>

#include "backends/ch_index.h"
#include "core/index.h"
#include "graph/stats.h"

namespace islabel {

BackendKind ChooseBackendAuto(const Graph& g) {
  return LooksRoadLike(ComputeStats(g)) ? BackendKind::kCH
                                        : BackendKind::kISLabel;
}

Result<std::unique_ptr<DistanceIndex>> BuildBackend(
    BackendKind kind, const Graph& g, const IndexOptions& options) {
  if (kind == BackendKind::kAuto) kind = ChooseBackendAuto(g);
  switch (kind) {
    case BackendKind::kISLabel: {
      auto built = ISLabelIndex::Build(g, options);
      if (!built.ok()) return built.status();
      return std::unique_ptr<DistanceIndex>(
          std::make_unique<ISLabelIndex>(std::move(built).value()));
    }
    case BackendKind::kCH: {
      auto built = CHIndex::Build(g);
      if (!built.ok()) return built.status();
      return std::unique_ptr<DistanceIndex>(
          std::make_unique<CHIndex>(std::move(built).value()));
    }
    case BackendKind::kAuto:
      break;
  }
  return Status::Internal("unresolved backend kind");
}

Result<std::unique_ptr<DistanceIndex>> LoadBackend(BackendKind kind,
                                                   const std::string& dir,
                                                   bool labels_in_memory) {
  switch (kind) {
    case BackendKind::kISLabel: {
      auto loaded = ISLabelIndex::Load(dir, labels_in_memory);
      if (!loaded.ok()) return loaded.status();
      return std::unique_ptr<DistanceIndex>(
          std::make_unique<ISLabelIndex>(std::move(loaded).value()));
    }
    case BackendKind::kCH: {
      auto loaded = CHIndex::Load(dir);
      if (!loaded.ok()) return loaded.status();
      return std::unique_ptr<DistanceIndex>(
          std::make_unique<CHIndex>(std::move(loaded).value()));
    }
    case BackendKind::kAuto:
      break;
  }
  return Status::InvalidArgument("cannot load backend 'auto' from " + dir);
}

Result<BackendKind> SniffBackendDir(const std::string& dir) {
  std::error_code ec;
  if (std::filesystem::exists(dir + "/meta.islm", ec)) {
    return BackendKind::kISLabel;
  }
  if (std::filesystem::exists(dir + "/ch.islc", ec)) {
    return BackendKind::kCH;
  }
  return Status::NotFound("no recognizable index files in " + dir);
}

}  // namespace islabel
