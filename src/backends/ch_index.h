// CHIndex: the contraction-hierarchy serving backend.
//
// Wraps baseline/contraction_hierarchy behind the DistanceIndex
// interface so the catalog and server can host CH indexes next to
// IS-LABEL ones — the right family per graph class (CH wins on road-like
// inputs, IS-LABEL on scale-free ones; see backends/registry.h for the
// auto heuristic and bench_backends for the numbers).
//
// Concurrency follows the engine-pool pattern of core/engine_pool.h: the
// hierarchy is immutable after Build/Load, each query leases a
// ContractionHierarchy::Scratch from a mutex-guarded free list (grown on
// demand, never shrunk), so any number of threads may query one CHIndex
// concurrently.
//
// Persistence: Save() writes `<dir>/ch.islc` (magic-tagged, versioned,
// varint-encoded order + up lists). The file is self-identifying, which
// is how the registry distinguishes a CH directory from an IS-LABEL one.
// labels_in_memory has no meaning here: a CH is always memory-resident
// (documented in DESIGN.md §13).
//
// Update semantics: rebuild-only. The contraction order bakes the whole
// graph into the shortcut set; there is no counterpart to the paper's
// §8.3 lazy label maintenance. Mutating a CH dataset means rebuilding its
// directory and issuing `reload`.

#ifndef ISLABEL_BACKENDS_CH_INDEX_H_
#define ISLABEL_BACKENDS_CH_INDEX_H_

#include <memory>
#include <string>
#include <vector>

#include "baseline/contraction_hierarchy.h"
#include "core/distance_index.h"
#include "graph/graph.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace islabel {

/// Exact P2P distance backend over a contraction hierarchy. Movable, not
/// copyable; all query entry points are thread-safe.
class CHIndex : public DistanceIndex {
 public:
  CHIndex();
  CHIndex(CHIndex&&) = default;
  CHIndex& operator=(CHIndex&&) = default;

  /// Contracts `g`. Fails (OutOfRange) if a shortcut weight would
  /// overflow Weight.
  static Result<CHIndex> Build(const Graph& g);

  /// Loads `<dir>/ch.islc`; corrupt or truncated files yield Corruption.
  static Result<CHIndex> Load(const std::string& dir);

  /// Writes `<dir>/ch.islc`.
  Status Save(const std::string& dir) const override;

  /// CH always records shortcut middles, so paths are always available.
  Status ShortestPath(VertexId s, VertexId t, std::vector<VertexId>* path,
                      Distance* dist) override;

  VertexId NumVertices() const override { return ch_.NumVertices(); }
  bool has_vias() const override { return true; }
  DistanceIndexInfo Info() const override;

  std::uint64_t num_shortcuts() const { return ch_.num_shortcuts(); }
  const ContractionHierarchy& hierarchy() const { return ch_; }
  double build_seconds() const { return build_seconds_; }

 protected:
  Status QueryUncached(VertexId s, VertexId t, Distance* out,
                       QueryStats* stats) override;

 private:
  /// Mutex-guarded free list of query scratch (engine-pool pattern).
  /// Heap-allocated so CHIndex stays movable despite the mutex.
  struct ScratchPool {
    Mutex mu;
    std::vector<std::unique_ptr<ContractionHierarchy::Scratch>> free_list
        GUARDED_BY(mu);
  };

  /// RAII lease: returns the scratch to the pool on destruction.
  class ScratchLease {
   public:
    explicit ScratchLease(ScratchPool* pool);
    ~ScratchLease();
    ScratchLease(const ScratchLease&) = delete;
    ScratchLease& operator=(const ScratchLease&) = delete;
    ContractionHierarchy::Scratch* get() { return scratch_.get(); }

   private:
    ScratchPool* pool_;
    std::unique_ptr<ContractionHierarchy::Scratch> scratch_;
  };

  ContractionHierarchy ch_;
  std::unique_ptr<ScratchPool> pool_ = std::make_unique<ScratchPool>();
  double build_seconds_ = 0.0;
};

}  // namespace islabel

#endif  // ISLABEL_BACKENDS_CH_INDEX_H_
