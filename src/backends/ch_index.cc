#include "backends/ch_index.h"

#include <filesystem>
#include <limits>
#include <utility>

#include "core/query.h"
#include "storage/block_file.h"
#include "util/timer.h"
#include "util/varint.h"

namespace islabel {

namespace {

constexpr std::uint32_t kChMagic = 0x49534C43;  // "ISLC"
constexpr std::uint32_t kChVersion = 1;

std::string ChPath(const std::string& dir) { return dir + "/ch.islc"; }

}  // namespace

CHIndex::CHIndex() = default;

CHIndex::ScratchLease::ScratchLease(ScratchPool* pool) : pool_(pool) {
  MutexLock lock(&pool_->mu);
  if (!pool_->free_list.empty()) {
    scratch_ = std::move(pool_->free_list.back());
    pool_->free_list.pop_back();
  } else {
    scratch_ = std::make_unique<ContractionHierarchy::Scratch>();
  }
}

CHIndex::ScratchLease::~ScratchLease() {
  MutexLock lock(&pool_->mu);
  pool_->free_list.push_back(std::move(scratch_));
}

Result<CHIndex> CHIndex::Build(const Graph& g) {
  WallTimer timer;
  auto ch = ContractionHierarchy::Build(g);
  if (!ch.ok()) return ch.status();
  CHIndex index;
  index.ch_ = std::move(ch).value();
  index.build_seconds_ = timer.ElapsedSeconds();
  return index;
}

Status CHIndex::QueryUncached(VertexId s, VertexId t, Distance* out,
                              QueryStats* stats) {
  ScratchLease lease(pool_.get());
  std::uint64_t settled = 0;
  *out = ch_.Query(s, t, lease.get(), &settled);
  if (stats != nullptr) {
    *stats = QueryStats{};
    stats->used_search = true;
    stats->settled = settled;
  }
  return Status::OK();
}

Status CHIndex::ShortestPath(VertexId s, VertexId t,
                             std::vector<VertexId>* path, Distance* dist) {
  ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, t));
  ScratchLease lease(pool_.get());
  *dist = ch_.Path(s, t, lease.get(), path);
  return Status::OK();
}

DistanceIndexInfo CHIndex::Info() const {
  DistanceIndexInfo info;
  info.backend = BackendKindName(BackendKind::kCH);
  info.vertices = ch_.NumVertices();
  info.entries = ch_.NumUpEdges();
  info.bytes = info.entries * sizeof(ContractionHierarchy::UpEdge);
  info.detail = "shortcuts=" + std::to_string(ch_.num_shortcuts());
  return info;
}

Status CHIndex::Save(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create index directory " + dir + ": " +
                           ec.message());
  }
  const VertexId n = ch_.NumVertices();
  std::string blob;
  PutFixed32(&blob, kChMagic);
  PutFixed32(&blob, kChVersion);
  PutFixed32(&blob, n);
  PutFixed32(&blob, 0);  // flags, reserved
  PutVarint64(&blob, ch_.num_shortcuts());
  for (VertexId v = 0; v < n; ++v) {
    PutVarint64(&blob, ch_.order()[v]);
  }
  for (VertexId v = 0; v < n; ++v) {
    const auto& list = ch_.up()[v];
    PutVarint64(&blob, list.size());
    for (const ContractionHierarchy::UpEdge& e : list) {
      PutVarint64(&blob, e.to);
      PutVarint64(&blob, e.w);
      // via + 1 so "no via" (original edge) encodes as a 1-byte 0.
      PutVarint64(&blob, e.via == kInvalidVertex
                             ? 0
                             : static_cast<std::uint64_t>(e.via) + 1);
    }
  }
  BlockFile file;
  ISLABEL_RETURN_IF_ERROR(file.Open(ChPath(dir), /*truncate=*/true));
  ISLABEL_RETURN_IF_ERROR(file.Append(blob.data(), blob.size(), nullptr));
  return file.Flush();
}

Result<CHIndex> CHIndex::Load(const std::string& dir) {
  BlockFile file;
  ISLABEL_RETURN_IF_ERROR(file.Open(ChPath(dir), /*truncate=*/false));
  std::string blob(file.FileSize(), '\0');
  ISLABEL_RETURN_IF_ERROR(file.ReadAt(0, blob.data(), blob.size()));
  Decoder dec(blob);
  std::uint32_t magic, version, n, flags;
  if (!dec.GetFixed32(&magic) || magic != kChMagic) {
    return Status::Corruption("bad CH index magic in " + dir);
  }
  if (!dec.GetFixed32(&version) || version != kChVersion) {
    return Status::Corruption("unsupported CH index version in " + dir);
  }
  if (!dec.GetFixed32(&n) || !dec.GetFixed32(&flags)) {
    return Status::Corruption("truncated CH index header in " + dir);
  }
  // Bound the vertex count by the blob before trusting it with
  // allocations (corrupt files must yield Corruption, not bad_alloc):
  // every vertex takes at least 2 bytes (order varint + degree varint).
  if (n > blob.size() / 2) {
    return Status::Corruption("implausible CH vertex count in " + dir);
  }
  std::uint64_t num_shortcuts = 0;
  if (!dec.GetVarint64(&num_shortcuts)) {
    return Status::Corruption("truncated CH index in " + dir);
  }

  std::vector<std::uint32_t> order(n);
  std::vector<bool> rank_seen(n, false);
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t rank;
    if (!dec.GetVarint64(&rank)) {
      return Status::Corruption("truncated CH order in " + dir);
    }
    if (rank >= n || rank_seen[rank]) {
      return Status::Corruption("CH order is not a permutation in " + dir);
    }
    rank_seen[rank] = true;
    order[v] = static_cast<std::uint32_t>(rank);
  }

  std::vector<std::vector<ContractionHierarchy::UpEdge>> up(n);
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t degree;
    if (!dec.GetVarint64(&degree)) {
      return Status::Corruption("truncated CH up lists in " + dir);
    }
    // Each edge takes >= 3 bytes (to, w, via varints).
    if (degree > blob.size() / 3) {
      return Status::Corruption("implausible CH degree in " + dir);
    }
    up[v].reserve(degree);
    VertexId prev_to = kInvalidVertex;
    for (std::uint64_t i = 0; i < degree; ++i) {
      std::uint64_t to, w, via;
      if (!dec.GetVarint64(&to) || !dec.GetVarint64(&w) ||
          !dec.GetVarint64(&via)) {
        return Status::Corruption("truncated CH up edge in " + dir);
      }
      if (to >= n || w > std::numeric_limits<Weight>::max() || via > n) {
        return Status::Corruption("CH up edge out of range in " + dir);
      }
      const VertexId to_id = static_cast<VertexId>(to);
      // Invariants the query relies on: upward-only and sorted by target
      // (FindUpEdge binary-searches).
      if (order[to_id] <= order[v]) {
        return Status::Corruption("CH up edge is not upward in " + dir);
      }
      if (!up[v].empty() && prev_to >= to_id) {
        return Status::Corruption("CH up list is not sorted in " + dir);
      }
      prev_to = to_id;
      up[v].push_back(ContractionHierarchy::UpEdge{
          to_id, static_cast<Weight>(w),
          via == 0 ? kInvalidVertex : static_cast<VertexId>(via - 1)});
    }
  }

  CHIndex index;
  index.ch_ = ContractionHierarchy::FromParts(std::move(order), std::move(up),
                                              num_shortcuts);
  return index;
}

}  // namespace islabel
