// Bridges util/io_stats.h into the metric registry (DESIGN.md §16).
//
// IoStats is a plain struct accumulated by the storage layer (BlockFile
// keeps a mutex-guarded snapshot); rather than teach storage about
// metrics, the serving front end registers one snapshot callback here
// and the registry scrapes it. The callback runs at exposition time
// only — the disk-read hot path stays untouched.
//
// The callback must return a consistent snapshot and outlive the
// registry (in practice: the CLI registers the index's BlockFile stats,
// and the index outlives the server).

#ifndef ISLABEL_OBS_IO_BRIDGE_H_
#define ISLABEL_OBS_IO_BRIDGE_H_

#include <functional>
#include <utility>

#include "obs/metrics.h"
#include "util/io_stats.h"

namespace islabel {
namespace obs {

inline void BridgeIoStats(MetricRegistry* registry, const Labels& labels,
                          std::function<IoStats()> snapshot) {
  if (registry == nullptr) return;
  auto fn = std::make_shared<std::function<IoStats()>>(std::move(snapshot));
  registry->RegisterCallbackGauge(
      "islabel_io_block_reads", "Logical block reads (label store)", labels,
      [fn] { return static_cast<double>((*fn)().block_reads); });
  registry->RegisterCallbackGauge(
      "islabel_io_block_writes", "Logical block writes (label store)", labels,
      [fn] { return static_cast<double>((*fn)().block_writes); });
  registry->RegisterCallbackGauge(
      "islabel_io_bytes_read", "Bytes read from disk-resident labels", labels,
      [fn] { return static_cast<double>((*fn)().bytes_read); });
  registry->RegisterCallbackGauge(
      "islabel_io_bytes_written", "Bytes written by the storage layer",
      labels, [fn] { return static_cast<double>((*fn)().bytes_written); });
  registry->RegisterCallbackGauge(
      "islabel_io_seeks", "Random (non-sequential) block accesses", labels,
      [fn] { return static_cast<double>((*fn)().seeks); });
}

}  // namespace obs
}  // namespace islabel

#endif  // ISLABEL_OBS_IO_BRIDGE_H_
