// FlightRecorder: fixed-capacity, per-thread ring buffers of completed
// request traces (DESIGN.md §17) — the always-on "black box" a live
// server is interrogated through with the `tracez` verb.
//
// Hot path (Record, one call per completed request):
//
//   * wait-free and allocation-free: the recording thread claims a
//     global sequence number with one relaxed fetch_add, then writes
//     the next slot of ITS OWN ring — no lock, no CAS loop, no
//     contention with other recording threads;
//   * every slot field is a relaxed std::atomic guarded by a per-slot
//     seqlock version (odd while a write is in flight), so concurrent
//     `tracez` scrapes read without locks and without data races
//     (ThreadSanitizer-clean): a reader that observes a torn slot
//     simply skips it;
//   * a registry-style enable flag (obs/metrics.h convention) is the
//     first check — set_enabled(false) turns Record into one relaxed
//     load and a branch, which is what the bench A/B leg measures.
//
// A thread's ring is created on its first Record through a small
// mutex-guarded registry (amortized; never on the per-request path
// again thanks to a thread-local cache keyed by recorder id — ids are
// never reused, so a destroyed recorder's stale cache entries can
// never false-hit). Eviction is per ring: each thread overwrites its
// own oldest slot, so total memory is exactly
// threads × capacity_per_thread × sizeof(slot), fixed at construction.
//
// Snapshot() / RenderTracez() (the scrape path) take the registry
// mutex only to walk the ring list, read slots via the seqlock, merge
// by global sequence number, and render the stable text format pinned
// in DESIGN.md §17.

#ifndef ISLABEL_OBS_FLIGHT_RECORDER_H_
#define ISLABEL_OBS_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace islabel {
namespace obs {

/// One decoded record, as returned by Snapshot() (newest first).
struct FlightRecord {
  std::uint64_t seq = 0;       // global completion order (1-based)
  std::uint64_t trace_id = 0;  // 0 = untagged request
  std::uint64_t end_ms = 0;    // clock ms when the request completed
  std::uint64_t total_us = 0;
  std::uint64_t stage_us[kNumStages] = {};
  const char* verb = "";  // static literal (server VerbName)
  std::string dataset;    // truncated to 15 chars on record
  bool error = false;
  bool cache_hit = false;
};

struct FlightRecorderOptions {
  /// Ring capacity per recording thread, in records. Rounded up to a
  /// power of two; minimum 2.
  std::size_t capacity_per_thread = 8192;
  /// Timestamp source for end_ms / age rendering; nullptr = the
  /// process-wide SystemClock. Must outlive the recorder.
  const Clock* clock = nullptr;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(const FlightRecorderOptions& options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Registry-style enable flag: disabled → Record is a relaxed load
  /// and a branch (the A/B no-op mode).
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Records one completed request. `verb` must be a static string
  /// literal (it is stored by pointer); `dataset` is copied (truncated
  /// to 15 bytes). Wait-free, no allocation except a thread's first
  /// ever Record into this recorder.
  void Record(const char* verb, std::string_view dataset, bool error,
              std::uint64_t total_us, const QueryTrace& trace);

  /// All currently-readable records, newest (highest seq) first.
  /// `max_records` = 0 means no cap. Slots being overwritten during the
  /// scrape are skipped, never torn.
  std::vector<FlightRecord> Snapshot(std::size_t max_records) const;

  /// The `tracez` response body (DESIGN.md §17): a header line, one
  /// "trace ..." line per record, and a final "# EOF" terminator, no
  /// trailing '\n'. Modes: kRecent = newest `limit`; kSlow = top
  /// `limit` by total_us; kErrors = newest `limit` error responses;
  /// kById = every record with trace id `id` (oldest first, the
  /// request's causal order).
  enum class TracezMode { kRecent, kSlow, kErrors, kById };
  std::string RenderTracez(TracezMode mode, std::uint64_t id,
                           std::size_t limit) const;

  std::size_t capacity_per_thread() const { return capacity_; }
  /// Rings created so far (== threads that have recorded).
  std::size_t num_rings() const;
  /// Total records ever accepted (not just retained).
  std::uint64_t total_recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }

 private:
  struct Slot;
  struct Ring;

  Ring* RingForThisThread();

  const std::size_t capacity_;  // power of two
  const Clock* clock_;          // never null
  const std::uint64_t recorder_id_;
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> seq_{0};

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Ring>> rings_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace islabel

#endif  // ISLABEL_OBS_FLIGHT_RECORDER_H_
