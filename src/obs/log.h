// EventLog: leveled, structured JSON-lines event log (DESIGN.md §17).
//
// One event is one JSON object on one line, with reserved keys written
// first — ts_ms (injected Clock), level, event (a literal
// "islabel."-prefixed name, lint-enforced), tid (the active trace id,
// auto-attached from the thread's CurrentTrace when one is installed
// and nonzero) — followed by the caller's key/value fields in order.
//
// The log replaces ad-hoc fprintf diagnostics in the serving stack: the
// sink is pluggable (the CLI wires stderr or --log-file; tests capture
// lines in a vector), levels below min_level are dropped before any
// lock, and each event NAME has its own token bucket so a hot failure
// path (a replica that cannot reach its primary, a slow-query storm)
// cannot flood the sink — drops are counted, not silent.
//
// Log() is a cold-path API: it takes a Mutex for the rate-limit buckets
// and allocates while rendering. Nothing on the query hot path calls
// it; per-request capture is the flight recorder's job
// (obs/flight_recorder.h).

#ifndef ISLABEL_OBS_LOG_H_
#define ISLABEL_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace islabel {
namespace obs {

enum class EventLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

const char* EventLevelName(EventLevel level);

/// Parses "debug" / "info" / "warn" / "error" (the --log-level grammar).
bool ParseEventLevel(std::string_view text, EventLevel* out);

struct EventLogOptions {
  /// Timestamp source; nullptr = the process-wide SystemClock. Must
  /// outlive the log.
  const Clock* clock = nullptr;
  /// Events below this level are dropped (no lock, no allocation).
  EventLevel min_level = EventLevel::kInfo;
  /// Receives each rendered JSON line (no trailing '\n'). Null drops
  /// everything (still counts drops); must be thread-safe, called under
  /// no EventLog lock.
  std::function<void(const std::string&)> sink;
  /// Token bucket per event name: sustained events/sec and burst
  /// capacity. rate_limit_per_sec <= 0 disables rate limiting.
  double rate_limit_per_sec = 10.0;
  double rate_limit_burst = 20.0;
};

class EventLog {
 public:
  explicit EventLog(const EventLogOptions& options);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Ordered key/value fields appended after the reserved keys. Every
  /// field value renders as a JSON string (ts_ms is the one numeric
  /// key); U64() is the convenience spelling for numeric values.
  using Fields = std::vector<std::pair<std::string, std::string>>;

  /// A numeric field value (decimal text).
  static std::string U64(std::uint64_t v);

  /// Emits one event. `event` must be a literal "islabel."-prefixed
  /// name (tools/lint_invariants.py `log-events` rule, mirrored by the
  /// DESIGN.md <!-- log-events: --> marker). A field explicitly named
  /// "tid" suppresses the auto-attached one.
  void Log(EventLevel level, const char* event, const Fields& fields = {});

  /// Events dropped by rate limiting since construction.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  EventLevel min_level() const { return options_.min_level; }

 private:
  struct Bucket {
    double tokens = 0;
    std::uint64_t last_ms = 0;
    bool primed = false;
  };

  /// True when `event` may fire now (consumes a token).
  bool Admit(const std::string& event, std::uint64_t now_ms);

  EventLogOptions options_;
  const Clock* clock_;  // never null after construction
  Mutex mu_;
  std::map<std::string, Bucket> buckets_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> dropped_{0};
};

}  // namespace obs
}  // namespace islabel

#endif  // ISLABEL_OBS_LOG_H_
