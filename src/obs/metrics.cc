#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace islabel {
namespace obs {
namespace {

// Prometheus label values escape backslash, double-quote and newline.
void AppendEscapedLabelValue(std::string* out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '"':
        out->append("\\\"");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

// HELP text escapes backslash and newline only.
void AppendEscapedHelp(std::string* out, const std::string& v) {
  for (char c : v) {
    switch (c) {
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        out->push_back(c);
    }
  }
}

void AppendU64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

void AppendI64(std::string* out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

// `name{a="b",c="d"}` with an optional extra label appended last (the
// histogram `le`). Omits the braces when there are no labels at all.
void AppendSeriesName(std::string* out, const std::string& name,
                      const Labels& labels, const char* extra_key,
                      const std::string& extra_value) {
  out->append(name);
  if (labels.empty() && extra_key == nullptr) return;
  out->push_back('{');
  bool first = true;
  for (const auto& kv : labels) {
    if (!first) out->push_back(',');
    first = false;
    out->append(kv.first);
    out->append("=\"");
    AppendEscapedLabelValue(out, kv.second);
    out->push_back('"');
  }
  if (extra_key != nullptr) {
    if (!first) out->push_back(',');
    out->append(extra_key);
    out->append("=\"");
    AppendEscapedLabelValue(out, extra_value);
    out->push_back('"');
  }
  out->push_back('}');
}

}  // namespace

int Histogram::BucketIndex(std::uint64_t micros) {
  if (micros <= 1) return 0;
#if defined(__GNUC__) || defined(__clang__)
  // Smallest i with 2^i >= micros, i.e. ceil(log2(micros)).
  int i = 64 - __builtin_clzll(micros - 1);
#else
  int i = 0;
  while (i < kNumFiniteBuckets && BucketUpperMicros(i) < micros) ++i;
#endif
  return i < kNumFiniteBuckets ? i : kNumFiniteBuckets;
}

double Histogram::QuantileMicros(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t counts[kNumFiniteBuckets + 1];
  std::uint64_t total = 0;
  for (int i = 0; i <= kNumFiniteBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (int i = 0; i <= kNumFiniteBuckets; ++i) {
    if (counts[i] == 0) continue;
    const double prev = static_cast<double>(cum);
    cum += counts[i];
    if (static_cast<double>(cum) >= target) {
      if (i == kNumFiniteBuckets) {
        // Overflow bucket: report the top finite bound — a floor.
        return static_cast<double>(BucketUpperMicros(kNumFiniteBuckets - 1));
      }
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(BucketUpperMicros(i - 1));
      const double upper = static_cast<double>(BucketUpperMicros(i));
      double frac = (target - prev) / static_cast<double>(counts[i]);
      if (frac < 0.0) frac = 0.0;
      if (frac > 1.0) frac = 1.0;
      return lower + frac * (upper - lower);
    }
  }
  return static_cast<double>(BucketUpperMicros(kNumFiniteBuckets - 1));
}

MetricRegistry::Family* MetricRegistry::GetFamily(const std::string& name,
                                                  const std::string& help,
                                                  Kind kind) {
  for (auto& f : families_) {
    if (f->name == name) return f->kind == kind ? f.get() : nullptr;
  }
  auto f = std::make_unique<Family>();
  f->name = name;
  f->help = help;
  f->kind = kind;
  families_.push_back(std::move(f));
  return families_.back().get();
}

MetricRegistry::Series* MetricRegistry::GetSeries(Family* family,
                                                  const Labels& labels) {
  for (auto& s : family->series) {
    if (s->labels == labels) return s.get();
  }
  auto s = std::make_unique<Series>();
  s->labels = labels;
  family->series.push_back(std::move(s));
  return family->series.back().get();
}

Counter* MetricRegistry::GetCounter(const std::string& name,
                                    const std::string& help,
                                    const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = GetFamily(name, help, Kind::kCounter);
  if (family == nullptr) return &scratch_counter_;
  Series* s = GetSeries(family, labels);
  if (s->counter == nullptr) {
    s->counter = std::make_unique<Counter>();
    s->counter->enabled_ = &enabled_;
  }
  return s->counter.get();
}

Gauge* MetricRegistry::GetGauge(const std::string& name,
                                const std::string& help,
                                const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = GetFamily(name, help, Kind::kGauge);
  if (family == nullptr) return &scratch_gauge_;
  Series* s = GetSeries(family, labels);
  if (s->gauge == nullptr) {
    s->gauge = std::make_unique<Gauge>();
    s->gauge->enabled_ = &enabled_;
  }
  return s->gauge.get();
}

Histogram* MetricRegistry::GetHistogram(const std::string& name,
                                        const std::string& help,
                                        const Labels& labels) {
  MutexLock lock(&mu_);
  Family* family = GetFamily(name, help, Kind::kHistogram);
  if (family == nullptr) return &scratch_histogram_;
  Series* s = GetSeries(family, labels);
  if (s->histogram == nullptr) {
    s->histogram = std::make_unique<Histogram>();
    s->histogram->enabled_ = &enabled_;
  }
  return s->histogram.get();
}

void MetricRegistry::RegisterCallbackGauge(const std::string& name,
                                           const std::string& help,
                                           const Labels& labels,
                                           std::function<double()> fn) {
  MutexLock lock(&mu_);
  Family* family = GetFamily(name, help, Kind::kCallbackGauge);
  if (family == nullptr) return;
  Series* s = GetSeries(family, labels);
  s->callback = std::move(fn);
}

std::string MetricRegistry::RenderPrometheus() const {
  MutexLock lock(&mu_);
  std::string out;
  out.reserve(4096);
  for (const auto& f : families_) {
    out.append("# HELP ");
    out.append(f->name);
    out.push_back(' ');
    AppendEscapedHelp(&out, f->help);
    out.push_back('\n');
    out.append("# TYPE ");
    out.append(f->name);
    switch (f->kind) {
      case Kind::kCounter:
        out.append(" counter\n");
        break;
      case Kind::kGauge:
      case Kind::kCallbackGauge:
        out.append(" gauge\n");
        break;
      case Kind::kHistogram:
        out.append(" histogram\n");
        break;
    }
    for (const auto& s : f->series) {
      switch (f->kind) {
        case Kind::kCounter: {
          AppendSeriesName(&out, f->name, s->labels, nullptr, "");
          out.push_back(' ');
          AppendU64(&out, s->counter->Value());
          out.push_back('\n');
          break;
        }
        case Kind::kGauge: {
          AppendSeriesName(&out, f->name, s->labels, nullptr, "");
          out.push_back(' ');
          AppendI64(&out, s->gauge->Value());
          out.push_back('\n');
          break;
        }
        case Kind::kCallbackGauge: {
          AppendSeriesName(&out, f->name, s->labels, nullptr, "");
          out.push_back(' ');
          AppendDouble(&out, s->callback ? s->callback() : 0.0);
          out.push_back('\n');
          break;
        }
        case Kind::kHistogram: {
          const Histogram& h = *s->histogram;
          std::uint64_t cum = 0;
          for (int i = 0; i <= Histogram::kNumFiniteBuckets; ++i) {
            cum += h.BucketCount(i);
            std::string le;
            if (i == Histogram::kNumFiniteBuckets) {
              le = "+Inf";
            } else {
              char buf[40];
              std::snprintf(buf, sizeof(buf), "%.9g",
                            static_cast<double>(
                                Histogram::BucketUpperMicros(i)) /
                                1e6);
              le = buf;
            }
            std::string bucket_name = f->name + "_bucket";
            AppendSeriesName(&out, bucket_name, s->labels, "le", le);
            out.push_back(' ');
            AppendU64(&out, cum);
            out.push_back('\n');
          }
          AppendSeriesName(&out, f->name + "_sum", s->labels, nullptr, "");
          out.push_back(' ');
          AppendDouble(&out, static_cast<double>(h.SumMicros()) / 1e6);
          out.push_back('\n');
          AppendSeriesName(&out, f->name + "_count", s->labels, nullptr, "");
          out.push_back(' ');
          AppendU64(&out, h.Count());
          out.push_back('\n');
          break;
        }
      }
    }
  }
  out.append("# EOF\n");
  return out;
}

std::vector<std::string> MetricRegistry::FamilyNames() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(families_.size());
  for (const auto& f : families_) names.push_back(f->name);
  return names;
}

}  // namespace obs
}  // namespace islabel
