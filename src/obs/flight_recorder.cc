#include "obs/flight_recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>

namespace islabel {
namespace obs {

namespace {

const Clock* DefaultRecorderClock() {
  static const SystemClock clock;
  return &clock;
}

std::size_t RoundUpPow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

/// Recorder ids are minted once and never reused, so a destroyed
/// recorder's thread-local cache entries can never match a live one.
std::uint64_t NextRecorderId() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

inline constexpr int kDatasetWords = 2;
inline constexpr std::size_t kDatasetMax = kDatasetWords * 8 - 1;  // + NUL

inline constexpr std::uint8_t kFlagError = 1;
inline constexpr std::uint8_t kFlagCacheHit = 2;

/// Per-thread cache of (recorder id → ring). A handful of entries,
/// round-robin replaced: a thread recording into more recorders than
/// this re-resolves through the registry mutex (and gets a fresh ring,
/// which the snapshot merge handles transparently).
inline constexpr std::size_t kRingCacheSlots = 4;
struct RingCacheEntry {
  std::uint64_t recorder_id = 0;
  void* ring = nullptr;
};
thread_local RingCacheEntry g_ring_cache[kRingCacheSlots] = {};
thread_local std::size_t g_ring_cache_next = 0;

}  // namespace

/// One record, every field a relaxed atomic under a per-slot seqlock
/// version (odd while a write is in flight) — scrapes read lock-free
/// and TSan-clean, skipping torn slots.
struct FlightRecorder::Slot {
  std::atomic<std::uint64_t> version{0};
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> end_ms{0};
  std::atomic<std::uint64_t> total_us{0};
  std::atomic<std::uint64_t> stage_us[kNumStages] = {};
  std::atomic<const char*> verb{""};
  std::atomic<std::uint64_t> dataset_words[kDatasetWords] = {};
  std::atomic<std::uint8_t> flags{0};
};

struct FlightRecorder::Ring {
  explicit Ring(std::size_t capacity) : slots(capacity) {}
  std::vector<Slot> slots;
  /// Monotonic write cursor. Only the owning thread increments it; it
  /// is atomic because scrapes read it to bound their slot walk.
  std::atomic<std::uint64_t> write_count{0};
};

FlightRecorder::FlightRecorder(const FlightRecorderOptions& options)
    : capacity_(RoundUpPow2(options.capacity_per_thread < 2
                                ? 2
                                : options.capacity_per_thread)),
      clock_(options.clock != nullptr ? options.clock
                                      : DefaultRecorderClock()),
      recorder_id_(NextRecorderId()) {}

FlightRecorder::~FlightRecorder() = default;

FlightRecorder::Ring* FlightRecorder::RingForThisThread() {
  for (const RingCacheEntry& entry : g_ring_cache) {
    if (entry.recorder_id == recorder_id_) {
      return static_cast<Ring*>(entry.ring);
    }
  }
  Ring* ring = nullptr;
  {
    MutexLock lock(&mu_);
    rings_.push_back(std::make_unique<Ring>(capacity_));
    ring = rings_.back().get();
  }
  g_ring_cache[g_ring_cache_next] = RingCacheEntry{recorder_id_, ring};
  g_ring_cache_next = (g_ring_cache_next + 1) % kRingCacheSlots;
  return ring;
}

void FlightRecorder::Record(const char* verb, std::string_view dataset,
                            bool error, std::uint64_t total_us,
                            const QueryTrace& trace) {
  if (!enabled()) return;
  Ring* ring = RingForThisThread();
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t cursor =
      ring->write_count.load(std::memory_order_relaxed);
  Slot& slot = ring->slots[cursor & (capacity_ - 1)];
  ring->write_count.store(cursor + 1, std::memory_order_relaxed);

  const std::uint64_t v = slot.version.load(std::memory_order_relaxed);
  slot.version.store(v + 1, std::memory_order_release);  // odd: in flight
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.trace_id.store(trace.trace_id(), std::memory_order_relaxed);
  slot.end_ms.store(clock_->NowMs(), std::memory_order_relaxed);
  slot.total_us.store(total_us, std::memory_order_relaxed);
  for (int i = 0; i < kNumStages; ++i) {
    slot.stage_us[i].store(trace.StageMicros(static_cast<Stage>(i)),
                           std::memory_order_relaxed);
  }
  slot.verb.store(verb, std::memory_order_relaxed);
  char packed[kDatasetWords * 8] = {};
  const std::size_t n = std::min(dataset.size(), kDatasetMax);
  std::memcpy(packed, dataset.data(), n);
  for (int w = 0; w < kDatasetWords; ++w) {
    std::uint64_t word = 0;
    std::memcpy(&word, packed + w * 8, 8);
    slot.dataset_words[w].store(word, std::memory_order_relaxed);
  }
  slot.flags.store(
      static_cast<std::uint8_t>((error ? kFlagError : 0) |
                                (trace.cache_hit() ? kFlagCacheHit : 0)),
      std::memory_order_relaxed);
  slot.version.store(v + 2, std::memory_order_release);  // even: readable
}

std::size_t FlightRecorder::num_rings() const {
  MutexLock lock(&mu_);
  return rings_.size();
}

std::vector<FlightRecord> FlightRecorder::Snapshot(
    std::size_t max_records) const {
  std::vector<FlightRecord> out;
  {
    MutexLock lock(&mu_);
    for (const std::unique_ptr<Ring>& ring : rings_) {
      const std::uint64_t written =
          ring->write_count.load(std::memory_order_acquire);
      const std::uint64_t filled =
          written < ring->slots.size() ? written : ring->slots.size();
      for (std::uint64_t i = 0; i < filled; ++i) {
        const Slot& slot = ring->slots[i];
        const std::uint64_t v1 =
            slot.version.load(std::memory_order_acquire);
        if (v1 & 1) continue;  // write in flight
        FlightRecord rec;
        rec.seq = slot.seq.load(std::memory_order_relaxed);
        rec.trace_id = slot.trace_id.load(std::memory_order_relaxed);
        rec.end_ms = slot.end_ms.load(std::memory_order_relaxed);
        rec.total_us = slot.total_us.load(std::memory_order_relaxed);
        for (int s = 0; s < kNumStages; ++s) {
          rec.stage_us[s] = slot.stage_us[s].load(std::memory_order_relaxed);
        }
        rec.verb = slot.verb.load(std::memory_order_relaxed);
        char packed[kDatasetWords * 8 + 1] = {};
        for (int w = 0; w < kDatasetWords; ++w) {
          const std::uint64_t word =
              slot.dataset_words[w].load(std::memory_order_relaxed);
          std::memcpy(packed + w * 8, &word, 8);
        }
        const std::uint8_t flags =
            slot.flags.load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t v2 =
            slot.version.load(std::memory_order_relaxed);
        if (v1 != v2 || rec.seq == 0) continue;  // torn or never written
        rec.dataset = packed;
        rec.error = (flags & kFlagError) != 0;
        rec.cache_hit = (flags & kFlagCacheHit) != 0;
        out.push_back(std::move(rec));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq > b.seq;
            });
  if (max_records != 0 && out.size() > max_records) out.resize(max_records);
  return out;
}

std::string FlightRecorder::RenderTracez(TracezMode mode, std::uint64_t id,
                                         std::size_t limit) const {
  std::vector<FlightRecord> records = Snapshot(0);  // newest first
  const std::uint64_t total = records.size();
  switch (mode) {
    case TracezMode::kRecent:
      break;
    case TracezMode::kSlow:
      std::stable_sort(records.begin(), records.end(),
                       [](const FlightRecord& a, const FlightRecord& b) {
                         return a.total_us > b.total_us;
                       });
      break;
    case TracezMode::kErrors:
      records.erase(std::remove_if(records.begin(), records.end(),
                                   [](const FlightRecord& r) {
                                     return !r.error;
                                   }),
                    records.end());
      break;
    case TracezMode::kById:
      records.erase(std::remove_if(records.begin(), records.end(),
                                   [id](const FlightRecord& r) {
                                     return r.trace_id != id;
                                   }),
                    records.end());
      // Oldest first: the request's causal order across retries.
      std::reverse(records.begin(), records.end());
      break;
  }
  if (limit != 0 && records.size() > limit) records.resize(limit);

  const std::uint64_t now_ms = clock_->NowMs();
  std::string out = "tracez:";
  char head[160];
  std::snprintf(head, sizeof(head),
                " records=%" PRIu64 " shown=%zu capacity_per_thread=%zu"
                " threads=%zu enabled=%d",
                total, records.size(), capacity_, num_rings(),
                enabled() ? 1 : 0);
  out += head;
  for (const FlightRecord& rec : records) {
    const std::string tid =
        rec.trace_id == 0 ? "-" : FormatTraceId(rec.trace_id);
    char line[320];
    std::snprintf(
        line, sizeof(line),
        "\ntrace id=%s seq=%" PRIu64 " verb=%s dataset=%s status=%s"
        " total_us=%" PRIu64 " parse_us=%" PRIu64 " cache_us=%" PRIu64
        " pool_wait_us=%" PRIu64 " kernel_us=%" PRIu64 " encode_us=%" PRIu64
        " cache_hit=%d age_ms=%" PRIu64,
        tid.c_str(), rec.seq, rec.verb,
        rec.dataset.empty() ? "-" : rec.dataset.c_str(),
        rec.error ? "error" : "ok", rec.total_us,
        rec.stage_us[static_cast<int>(Stage::kParse)],
        rec.stage_us[static_cast<int>(Stage::kCacheLookup)],
        rec.stage_us[static_cast<int>(Stage::kPoolWait)],
        rec.stage_us[static_cast<int>(Stage::kKernel)],
        rec.stage_us[static_cast<int>(Stage::kEncode)],
        rec.cache_hit ? 1 : 0,
        now_ms >= rec.end_ms ? now_ms - rec.end_ms : 0);
    out += line;
  }
  out += "\n# EOF";
  return out;
}

}  // namespace obs
}  // namespace islabel
