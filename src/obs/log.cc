#include "obs/log.h"

#include <cinttypes>
#include <cstdio>

#include "obs/trace.h"

namespace islabel {
namespace obs {

namespace {

const Clock* DefaultLogClock() {
  static const SystemClock clock;
  return &clock;
}

/// Appends `value` as a JSON string literal (quotes, backslashes and
/// control characters escaped — everything a sink needs to stay one
/// line per event).
void AppendJsonString(std::string* out, std::string_view value) {
  *out += '"';
  for (char c : value) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

}  // namespace

const char* EventLevelName(EventLevel level) {
  switch (level) {
    case EventLevel::kDebug:
      return "debug";
    case EventLevel::kInfo:
      return "info";
    case EventLevel::kWarn:
      return "warn";
    case EventLevel::kError:
      return "error";
  }
  return "unknown";
}

bool ParseEventLevel(std::string_view text, EventLevel* out) {
  if (text == "debug") {
    *out = EventLevel::kDebug;
  } else if (text == "info") {
    *out = EventLevel::kInfo;
  } else if (text == "warn") {
    *out = EventLevel::kWarn;
  } else if (text == "error") {
    *out = EventLevel::kError;
  } else {
    return false;
  }
  return true;
}

EventLog::EventLog(const EventLogOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : DefaultLogClock()) {}

std::string EventLog::U64(std::uint64_t v) { return std::to_string(v); }

bool EventLog::Admit(const std::string& event, std::uint64_t now_ms) {
  if (options_.rate_limit_per_sec <= 0) return true;
  const double burst =
      options_.rate_limit_burst > 0 ? options_.rate_limit_burst : 1.0;
  MutexLock lock(&mu_);
  Bucket& bucket = buckets_[event];
  if (!bucket.primed) {
    bucket.tokens = burst;
    bucket.last_ms = now_ms;
    bucket.primed = true;
  }
  if (now_ms > bucket.last_ms) {
    bucket.tokens += static_cast<double>(now_ms - bucket.last_ms) *
                     options_.rate_limit_per_sec / 1000.0;
    if (bucket.tokens > burst) bucket.tokens = burst;
    bucket.last_ms = now_ms;
  }
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

void EventLog::Log(EventLevel level, const char* event, const Fields& fields) {
  if (static_cast<int>(level) < static_cast<int>(options_.min_level)) return;
  const std::uint64_t now_ms = clock_->NowMs();
  if (!Admit(event, now_ms)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (!options_.sink) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  std::string line = "{\"ts_ms\":";
  line += std::to_string(now_ms);
  line += ",\"level\":";
  AppendJsonString(&line, EventLevelName(level));
  line += ",\"event\":";
  AppendJsonString(&line, event);
  bool have_tid = false;
  for (const auto& [key, value] : fields) {
    if (key == "tid") have_tid = true;
    (void)value;
  }
  if (!have_tid) {
    const QueryTrace* trace = CurrentTrace();
    if (trace != nullptr && trace->trace_id() != 0) {
      line += ",\"tid\":";
      AppendJsonString(&line, FormatTraceId(trace->trace_id()));
    }
  }
  for (const auto& [key, value] : fields) {
    line += ',';
    AppendJsonString(&line, key);
    line += ':';
    AppendJsonString(&line, value);
  }
  line += '}';
  options_.sink(line);
}

}  // namespace obs
}  // namespace islabel
