#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace islabel {
namespace obs {
namespace {

thread_local QueryTrace* g_current_trace = nullptr;

}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse:
      return "parse";
    case Stage::kCacheLookup:
      return "cache_lookup";
    case Stage::kPoolWait:
      return "pool_wait";
    case Stage::kKernel:
      return "kernel";
    case Stage::kEncode:
      return "encode";
  }
  return "unknown";
}

QueryTrace* CurrentTrace() { return g_current_trace; }

TraceScope::TraceScope(QueryTrace* trace) : prev_(g_current_trace) {
  g_current_trace = trace;
}

TraceScope::~TraceScope() { g_current_trace = prev_; }

std::string FormatSlowQueryLine(const char* verb, std::uint64_t total_us,
                                const QueryTrace& trace) {
  char buf[256];
  std::snprintf(
      buf, sizeof(buf),
      "slow-query verb=%s total_us=%" PRIu64 " parse_us=%" PRIu64
      " cache_us=%" PRIu64 " pool_wait_us=%" PRIu64 " kernel_us=%" PRIu64
      " encode_us=%" PRIu64,
      verb, total_us, trace.StageMicros(Stage::kParse),
      trace.StageMicros(Stage::kCacheLookup),
      trace.StageMicros(Stage::kPoolWait),
      trace.StageMicros(Stage::kKernel),
      trace.StageMicros(Stage::kEncode));
  return std::string(buf);
}

std::string FormatTraceId(std::uint64_t id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%" PRIx64, id);
  return std::string(buf);
}

bool ParseTraceId(std::string_view token, std::uint64_t* out) {
  if (token.empty() || token.size() > 16) return false;
  std::uint64_t value = 0;
  for (char c : token) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  if (value == 0) return false;
  *out = value;
  return true;
}

}  // namespace obs
}  // namespace islabel
