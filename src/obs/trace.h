// QueryTrace: request-scoped span recorder for the serving path
// (DESIGN.md §16). One trace lives on the dispatcher's stack per
// request; a thread-local current-trace pointer lets the layers below
// (cache lookup in the DistanceIndex template method, lease wait in the
// engine pool, the kernel itself) attribute time to named stages
// without any signature change. When no trace is installed — stdin
// tools, tests, benches driving indexes directly — a StageTimer is one
// thread-local load and a branch: zero clock reads.
//
// Stages: parse → cache lookup → pool lease wait → kernel → encode.
// Time comes from the injected Clock seam (util/clock.h), so trace and
// slow-query tests run on a ManualClock with zero real sleeps.

#ifndef ISLABEL_OBS_TRACE_H_
#define ISLABEL_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/clock.h"

namespace islabel {
namespace obs {

enum class Stage : int {
  kParse = 0,
  kCacheLookup = 1,
  kPoolWait = 2,
  kKernel = 3,
  kEncode = 4,
};
inline constexpr int kNumStages = 5;

const char* StageName(Stage stage);

/// Per-request stage accumulator. Single-threaded by design: the worker
/// that owns the request creates it, installs it via TraceScope, and
/// reads it back after the verb completes. Stages hit more than once
/// (per-part pool waits in a partitioned query) accumulate.
class QueryTrace {
 public:
  explicit QueryTrace(const Clock* clock) : clock_(clock) {}

  const Clock* clock() const { return clock_; }

  void Add(Stage stage, std::uint64_t micros) {
    stage_us_[static_cast<int>(stage)] += micros;
  }
  std::uint64_t StageMicros(Stage stage) const {
    return stage_us_[static_cast<int>(stage)];
  }

  /// Nesting guard for the kernel stage: a catalog handle's QueryUncached
  /// runs the inner index's template method, and only the OUTERMOST
  /// frame may attribute kernel time or it would double-count. Returns
  /// true when this frame is outermost; every Begin pairs with an End.
  bool BeginKernel() { return kernel_depth_++ == 0; }
  void EndKernel() { --kernel_depth_; }

  /// Distributed trace id (DESIGN.md §17): minted by the client, carried
  /// as the trailing `tid=<hex>` wire token, stitched across failover
  /// retries. 0 = untagged request.
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }
  std::uint64_t trace_id() const { return trace_id_; }

  /// Set by the distance-cache lookup path on a hit, so the flight
  /// recorder can tell cached answers from computed ones.
  void set_cache_hit(bool hit) { cache_hit_ = hit; }
  bool cache_hit() const { return cache_hit_; }

 private:
  const Clock* clock_;
  std::uint64_t stage_us_[kNumStages] = {};
  int kernel_depth_ = 0;
  std::uint64_t trace_id_ = 0;
  bool cache_hit_ = false;
};

/// The trace installed for the current thread, or null.
QueryTrace* CurrentTrace();

/// Installs `trace` as the thread's current trace for its scope,
/// restoring the previous one on exit (null uninstalls).
class TraceScope {
 public:
  explicit TraceScope(QueryTrace* trace);
  ~TraceScope();

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  QueryTrace* prev_;
};

/// RAII span against the current trace. No trace installed → no clock
/// reads at all.
class StageTimer {
 public:
  explicit StageTimer(Stage stage) : trace_(CurrentTrace()), stage_(stage) {
    if (trace_ != nullptr) start_us_ = trace_->clock()->NowMicros();
  }
  ~StageTimer() {
    if (trace_ != nullptr) {
      trace_->Add(stage_, trace_->clock()->NowMicros() - start_us_);
    }
  }

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

 private:
  QueryTrace* trace_;
  Stage stage_;
  std::uint64_t start_us_ = 0;
};

/// The slow-query log line (format pinned in DESIGN.md §16):
///   slow-query verb=distance total_us=N parse_us=N cache_us=N
///   pool_wait_us=N kernel_us=N encode_us=N
std::string FormatSlowQueryLine(const char* verb, std::uint64_t total_us,
                                const QueryTrace& trace);

/// Wire form of a trace id: 1-16 lowercase hex digits, no "0x" prefix
/// (DESIGN.md §17). FormatTraceId never emits leading zeros; 0 formats
/// as "0" but is never a valid wire id.
std::string FormatTraceId(std::uint64_t id);

/// Strict parse of the wire form: 1-16 hex digits (either case),
/// nonzero. False on anything else.
bool ParseTraceId(std::string_view token, std::uint64_t* out);

}  // namespace obs
}  // namespace islabel

#endif  // ISLABEL_OBS_TRACE_H_
