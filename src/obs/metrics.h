// MetricRegistry: the project's one counter system (DESIGN.md §16).
//
// Three instrument kinds — Counter (monotone, relaxed atomic), Gauge
// (settable/deltable int64), Histogram (fixed power-of-two microsecond
// buckets, p50/p95/p99/p999 by linear interpolation) — plus callback
// gauges evaluated only at scrape time. The record path (Inc/Add/Set/
// Record) is allocation-free and wait-free: registration hands out a
// stable pointer once, and recording is a relaxed atomic RMW behind a
// relaxed enabled-flag load. Registration and rendering take a Mutex;
// they are cold by construction.
//
// Exposition is Prometheus text format, terminated with an OpenMetrics
// "# EOF" line so the multi-line `metrics` verb response self-delimits
// over the line protocol.
//
// Naming convention (enforced by tools/lint_invariants.py rule
// `metric-names`): family names are static string literals at the
// registration call site, prefixed `islabel_`, and listed in the
// DESIGN.md metric-names marker block. Per-dataset / per-shard /
// per-verb variation goes into labels, never into names.
//
// The registry-wide enabled flag exists for the bench A/B overhead leg:
// set_enabled(false) turns every record path registered through this
// registry into a load+branch no-op, so instrumented-vs-noop QPS is
// measurable in one binary.

#ifndef ISLABEL_OBS_METRICS_H_
#define ISLABEL_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace islabel {
namespace obs {

/// Label set of one time series, e.g. {{"verb", "distance"}}. Order is
/// preserved into the exposition; keep call sites consistent.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonically increasing event count. Wait-free; values survive a
/// disabled interval but do not advance during one.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(std::uint64_t n = 1) {
    if (!RecordingEnabled()) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  bool RecordingEnabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t> value_{0};
  const std::atomic<bool>* enabled_ = nullptr;  // registry flag; null = on
};

/// Point-in-time level: pool occupancy, open connections, queue depth.
/// Add/Sub deltas let several owners (pool instances, partitions) share
/// one gauge; Set is for single-writer levels like generations.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(std::int64_t v) {
    if (!RecordingEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(std::int64_t delta) {
    if (!RecordingEnabled()) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricRegistry;
  bool RecordingEnabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }
  std::atomic<std::int64_t> value_{0};
  const std::atomic<bool>* enabled_ = nullptr;
};

/// Latency distribution over fixed log-scale buckets: bucket i counts
/// observations with value ≤ 2^i microseconds (1µs … ~67s), plus one
/// overflow bucket. Record is wait-free (one relaxed fetch_add per
/// bucket/sum/count); quantiles interpolate linearly inside the bucket
/// holding the rank, so the worst-case quantile error is the bucket
/// width — a factor of 2, which is what a log-scale histogram promises.
class Histogram {
 public:
  /// Finite buckets: upper bounds 2^0 … 2^26 µs. Index kNumFiniteBuckets
  /// is the +Inf overflow bucket.
  static constexpr int kNumFiniteBuckets = 27;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(std::uint64_t micros) {
    if (!RecordingEnabled()) return;
    buckets_[BucketIndex(micros)].fetch_add(1, std::memory_order_relaxed);
    sum_micros_.fetch_add(micros, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t SumMicros() const {
    return sum_micros_.load(std::memory_order_relaxed);
  }
  std::uint64_t BucketCount(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Upper bound of finite bucket i, in microseconds (2^i).
  static std::uint64_t BucketUpperMicros(int i) {
    return std::uint64_t{1} << i;
  }

  /// Smallest bucket index whose upper bound is ≥ micros (the overflow
  /// bucket for anything past 2^26 µs).
  static int BucketIndex(std::uint64_t micros);

  /// Interpolated quantile in microseconds, q in [0,1]. Returns 0 on an
  /// empty histogram; observations in the overflow bucket resolve to the
  /// top finite bound (a floor, not a lie — documented in DESIGN.md §16).
  double QuantileMicros(double q) const;

 private:
  friend class MetricRegistry;
  bool RecordingEnabled() const {
    return enabled_ == nullptr || enabled_->load(std::memory_order_relaxed);
  }
  std::atomic<std::uint64_t> buckets_[kNumFiniteBuckets + 1] = {};
  std::atomic<std::uint64_t> sum_micros_{0};
  std::atomic<std::uint64_t> count_{0};
  const std::atomic<bool>* enabled_ = nullptr;
};

/// Named metric store. Get* calls are get-or-create keyed on
/// (name, labels): asking again with the same key returns the SAME
/// pointer, which is what lets a reloaded dataset or a reset engine
/// pool keep appending to its existing series. Returned pointers stay
/// valid for the registry's lifetime.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help,
                      const Labels& labels = {});
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const Labels& labels = {});
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          const Labels& labels = {});

  /// Gauge whose value is computed at scrape time. The callback runs
  /// under the registry mutex during RenderPrometheus: it must be cheap,
  /// must not call back into this registry, and must outlive it.
  /// Re-registering the same (name, labels) replaces the callback — the
  /// seam a replica agent uses across reconnects.
  void RegisterCallbackGauge(const std::string& name, const std::string& help,
                             const Labels& labels,
                             std::function<double()> fn);

  /// Flips every record path registered through this registry between
  /// live and no-op. Exists for the bench A/B overhead leg.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Prometheus text format, "# EOF"-terminated.
  std::string RenderPrometheus() const;

  /// Registered family names in registration order (tests, linting).
  std::vector<std::string> FamilyNames() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kCallbackGauge };

  struct Series {
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> callback;
  };
  struct Family {
    std::string name;
    std::string help;
    Kind kind;
    std::vector<std::unique_ptr<Series>> series;
  };

  Family* GetFamily(const std::string& name, const std::string& help,
                    Kind kind) REQUIRES(mu_);
  Series* GetSeries(Family* family, const Labels& labels) REQUIRES(mu_);

  mutable Mutex mu_;
  std::vector<std::unique_ptr<Family>> families_ GUARDED_BY(mu_);
  std::atomic<bool> enabled_{true};

  // Returned on a kind-mismatched re-registration (a programmer error
  // the metric-names lint rule makes loud): recording still works, the
  // series is just never rendered, and nothing crashes.
  Counter scratch_counter_;
  Gauge scratch_gauge_;
  Histogram scratch_histogram_;
};

}  // namespace obs
}  // namespace islabel

#endif  // ISLABEL_OBS_METRICS_H_
