#include "baseline/pll.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <utility>

namespace islabel {

Result<PrunedLandmarkLabeling> PrunedLandmarkLabeling::Build(const Graph& g) {
  const VertexId n = g.NumVertices();
  PrunedLandmarkLabeling pll;
  pll.labels_.assign(n, {});

  // Landmark order: descending degree (ties by id) — the standard heuristic.
  std::vector<VertexId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&g](VertexId a, VertexId b) {
    return g.Degree(a) > g.Degree(b);
  });

  std::vector<Distance> dist(n, kInfDistance);
  std::vector<Distance> root_dist(n, kInfDistance);  // query acceleration
  std::vector<VertexId> touched;

  using PqEntry = std::pair<Distance, VertexId>;
  for (std::uint32_t rank = 0; rank < n; ++rank) {
    const VertexId root = order[rank];
    // Index root's current label for O(1) pruning lookups.
    for (const LabelEntry& e : pll.labels_[root]) root_dist[e.node] = e.dist;

    std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<PqEntry>>
        pq;
    dist[root] = 0;
    touched.push_back(root);
    pq.push({0, root});
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d != dist[v]) continue;
      // Prune: if some earlier landmark already certifies dist(root, v)
      // <= d, v (and everything behind it) needs no entry for this root.
      Distance certified = kInfDistance;
      for (const LabelEntry& e : pll.labels_[v]) {
        if (root_dist[e.node] != kInfDistance) {
          const Distance via = root_dist[e.node] + e.dist;
          certified = std::min(certified, via);
        }
      }
      if (certified <= d) continue;
      pll.labels_[v].emplace_back(rank, d);
      auto nbrs = g.Neighbors(v);
      auto ws = g.NeighborWeights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const Distance nd = d + ws[i];
        if (nd < dist[nbrs[i]]) {
          if (dist[nbrs[i]] == kInfDistance) touched.push_back(nbrs[i]);
          dist[nbrs[i]] = nd;
          pq.push({nd, nbrs[i]});
        }
      }
    }
    for (VertexId v : touched) dist[v] = kInfDistance;
    touched.clear();
    for (const LabelEntry& e : pll.labels_[root]) {
      root_dist[e.node] = kInfDistance;
    }
  }
  // Entries were appended in ascending rank per label (each landmark pass
  // appends at most one entry per vertex), so labels are already sorted.
  return pll;
}

Distance PrunedLandmarkLabeling::Query(VertexId s, VertexId t) const {
  if (s >= labels_.size() || t >= labels_.size()) return kInfDistance;
  if (s == t) return 0;
  const auto& ls = labels_[s];
  const auto& lt = labels_[t];
  Distance best = kInfDistance;
  std::size_t i = 0, j = 0;
  while (i < ls.size() && j < lt.size()) {
    if (ls[i].node < lt[j].node) {
      ++i;
    } else if (ls[i].node > lt[j].node) {
      ++j;
    } else {
      best = std::min(best, ls[i].dist + lt[j].dist);
      ++i;
      ++j;
    }
  }
  return best;
}

std::uint64_t PrunedLandmarkLabeling::TotalEntries() const {
  std::uint64_t total = 0;
  for (const auto& l : labels_) total += l.size();
  return total;
}

double PrunedLandmarkLabeling::MeanLabelSize() const {
  if (labels_.empty()) return 0.0;
  return static_cast<double>(TotalEntries()) /
         static_cast<double>(labels_.size());
}

}  // namespace islabel
