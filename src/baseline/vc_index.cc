#include "baseline/vc_index.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "core/augment.h"
#include "core/independent_set.h"
#include "core/level_graph.h"
#include "util/random.h"

namespace islabel {

Result<VcIndex> VcIndex::Build(const Graph& g, const VcIndexOptions& options) {
  if (options.tau <= 0.0 || options.tau > 1.0) {
    return Status::InvalidArgument("tau must be in (0, 1]");
  }
  const VertexId n = g.NumVertices();
  VcIndex idx;
  idx.level_.assign(n, 0);
  idx.removed_adj_.resize(n);
  idx.waves_.push_back({});  // 1-based

  LevelGraph lg = LevelGraph::FromGraph(g);
  Rng rng(options.seed);
  std::uint64_t prev_size = lg.SizeVE();
  std::uint32_t i = 1;
  while (true) {
    const std::uint64_t cur_size = lg.SizeVE();
    bool stop = lg.num_alive == 0 || i >= options.max_levels;
    if (!stop && i >= 2 &&
        static_cast<double>(cur_size) >
            options.tau * static_cast<double>(prev_size)) {
      stop = true;
    }
    if (stop) {
      idx.num_levels_ = i;
      break;
    }
    // W_i := complement of a greedy vertex cover = a maximal independent
    // set chosen min-degree-first, exactly the reduction step of the
    // original system.
    std::vector<VertexId> wave =
        ComputeIndependentSet(lg, IsOrder::kMinDegree, &rng);
    for (VertexId v : wave) {
      idx.level_[v] = i;
      idx.removed_adj_[v] = std::move(lg.adj[v]);
    }
    auto aug = AugmentInPlace(&lg, wave, idx.removed_adj_);
    if (!aug.ok()) return aug.status();
    idx.waves_.push_back(std::move(wave));
    prev_size = cur_size;
    ++i;
  }
  for (VertexId v = 0; v < n; ++v) {
    if (lg.alive[v]) idx.level_[v] = idx.num_levels_;
  }
  idx.top_vertices_ = lg.num_alive;
  idx.top_graph_ = lg.ToGraph(/*keep_vias=*/false);
  return idx;
}

std::uint64_t VcIndex::SizeBytes() const {
  std::uint64_t bytes = level_.size() * sizeof(std::uint32_t);
  for (const auto& adj : removed_adj_) bytes += adj.size() * sizeof(HierEdge);
  bytes += top_graph_.MemoryBytes();
  return bytes;
}

Distance VcIndex::QueryP2P(VertexId s, VertexId t, std::uint64_t* settled) {
  const VertexId n = static_cast<VertexId>(level_.size());
  if (s >= n || t >= n) return kInfDistance;
  if (s == t) return 0;

  if (dist_.size() != n) {
    dist_.assign(n, kInfDistance);
    stamp_.assign(n, 0);
  }
  ++epoch_;
  const std::uint32_t epoch = epoch_;
  std::uint64_t touched = 0;

  auto get = [&](VertexId v) -> Distance {
    return stamp_[v] == epoch ? dist_[v] : kInfDistance;
  };
  auto relax = [&](VertexId v, Distance d) {
    if (d < get(v)) {
      dist_[v] = d;
      stamp_[v] = epoch;
      return true;
    }
    return false;
  };

  // Phase 1: lift s through the removal DAG (offsets = shortest strictly
  // level-increasing walks from s). Levels are a topological order.
  std::vector<std::vector<VertexId>> bucket(num_levels_ + 1);
  relax(s, 0);
  bucket[level_[s]].push_back(s);
  for (std::uint32_t lvl = level_[s]; lvl < num_levels_; ++lvl) {
    for (std::size_t bi = 0; bi < bucket[lvl].size(); ++bi) {
      const VertexId v = bucket[lvl][bi];
      ++touched;
      for (const HierEdge& e : removed_adj_[v]) {
        // Push on improvement; duplicates re-expand harmlessly since a
        // vertex's value is final once its level's turn arrives.
        if (relax(e.to, get(v) + e.w)) bucket[level_[e.to]].push_back(e.to);
      }
    }
  }

  // Phase 2: multi-source Dijkstra on the top graph (early exit only when
  // t itself lives there).
  using PqEntry = std::pair<Distance, VertexId>;
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<PqEntry>>
      pq;
  for (VertexId v : bucket[num_levels_]) pq.push({get(v), v});
  const bool t_on_top = (level_[t] == num_levels_);
  std::vector<bool> popped(n, false);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (popped[v] || d != get(v)) continue;
    popped[v] = true;
    ++touched;
    if (t_on_top && v == t) {
      if (settled != nullptr) *settled = touched;
      return d;
    }
    auto nbrs = top_graph_.Neighbors(v);
    auto ws = top_graph_.NeighborWeights(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (relax(nbrs[j], d + ws[j])) pq.push({d + ws[j], nbrs[j]});
    }
  }
  if (t_on_top) {
    if (settled != nullptr) *settled = touched;
    return get(t);
  }

  // Phase 3: sweep distances down, one whole level at a time, stopping at
  // t's level — the P2P conversion of §7.3. Every vertex of every swept
  // level is touched, which is the "wasted computation" the comparison
  // quantifies.
  for (std::uint32_t lvl = num_levels_; lvl-- > level_[t];) {
    if (lvl == 0) break;
    for (VertexId w : waves_[lvl]) {
      ++touched;
      Distance best = get(w);  // lift offset, if any
      for (const HierEdge& e : removed_adj_[w]) {
        const Distance du = get(e.to);
        if (du != kInfDistance) best = std::min(best, du + e.w);
      }
      if (best != kInfDistance) relax(w, best);
    }
  }
  if (settled != nullptr) *settled = touched;
  return get(t);
}

std::vector<Distance> VcIndex::Sssp(VertexId s) {
  const VertexId n = static_cast<VertexId>(level_.size());
  std::vector<Distance> out(n, kInfDistance);
  if (s >= n) return out;
  // Reuse the P2P machinery's phases by querying down to level 1: pick any
  // target at level 1 if one exists; otherwise t = s (the sweep below still
  // fills everything because we force a full sweep here).
  // Simpler: replicate the phases inline with a full sweep.
  if (dist_.size() != n) {
    dist_.assign(n, kInfDistance);
    stamp_.assign(n, 0);
  }
  ++epoch_;
  const std::uint32_t epoch = epoch_;
  auto get = [&](VertexId v) -> Distance {
    return stamp_[v] == epoch ? dist_[v] : kInfDistance;
  };
  auto relax = [&](VertexId v, Distance d) {
    if (d < get(v)) {
      dist_[v] = d;
      stamp_[v] = epoch;
      return true;
    }
    return false;
  };

  std::vector<std::vector<VertexId>> bucket(num_levels_ + 1);
  relax(s, 0);
  bucket[level_[s]].push_back(s);
  for (std::uint32_t lvl = level_[s]; lvl < num_levels_; ++lvl) {
    for (std::size_t bi = 0; bi < bucket[lvl].size(); ++bi) {
      const VertexId v = bucket[lvl][bi];
      for (const HierEdge& e : removed_adj_[v]) {
        // Push on improvement; duplicates re-expand harmlessly since a
        // vertex's value is final once its level's turn arrives.
        if (relax(e.to, get(v) + e.w)) bucket[level_[e.to]].push_back(e.to);
      }
    }
  }
  using PqEntry = std::pair<Distance, VertexId>;
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<PqEntry>>
      pq;
  for (VertexId v : bucket[num_levels_]) pq.push({get(v), v});
  std::vector<bool> popped(n, false);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (popped[v] || d != get(v)) continue;
    popped[v] = true;
    auto nbrs = top_graph_.Neighbors(v);
    auto ws = top_graph_.NeighborWeights(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      if (relax(nbrs[j], d + ws[j])) pq.push({d + ws[j], nbrs[j]});
    }
  }
  for (std::uint32_t lvl = num_levels_; lvl-- >= 1;) {
    if (lvl == 0) break;
    for (VertexId w : waves_[lvl]) {
      Distance best = get(w);
      for (const HierEdge& e : removed_adj_[w]) {
        const Distance du = get(e.to);
        if (du != kInfDistance) best = std::min(best, du + e.w);
      }
      if (best != kInfDistance) relax(w, best);
    }
  }
  for (VertexId v = 0; v < n; ++v) out[v] = get(v);
  return out;
}

}  // namespace islabel
