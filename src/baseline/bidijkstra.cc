#include "baseline/bidijkstra.h"

#include <queue>
#include <utility>

namespace islabel {

namespace {

inline Distance SatAdd(Distance a, Distance b) {
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  if (a > kInfDistance - b) return kInfDistance;
  return a + b;
}

}  // namespace

void BidirectionalDijkstra::EnsureScratch() {
  const std::size_t n = g_->NumVertices();
  for (Side& s : sides_) {
    if (s.dist.size() != n) {
      s.dist.assign(n, kInfDistance);
      s.stamp.assign(n, 0);
      s.settled_stamp.assign(n, 0);
    }
  }
}

Distance BidirectionalDijkstra::Query(VertexId s, VertexId t,
                                      std::uint64_t* settled) {
  if (s == t) return 0;
  EnsureScratch();
  ++epoch_;
  const std::uint32_t epoch = epoch_;

  auto dist_of = [&](int side, VertexId v) -> Distance {
    return sides_[side].stamp[v] == epoch ? sides_[side].dist[v]
                                          : kInfDistance;
  };
  auto is_settled = [&](int side, VertexId v) {
    return sides_[side].settled_stamp[v] == epoch;
  };

  using PqEntry = std::pair<Distance, VertexId>;
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<PqEntry>>
      pq[2];
  sides_[0].dist[s] = 0;
  sides_[0].stamp[s] = epoch;
  pq[0].push({0, s});
  sides_[1].dist[t] = 0;
  sides_[1].stamp[t] = epoch;
  pq[1].push({0, t});

  Distance best = kInfDistance;
  std::uint64_t count = 0;

  auto purge = [&](int side) {
    while (!pq[side].empty()) {
      const auto& [d, v] = pq[side].top();
      if (is_settled(side, v) || d != dist_of(side, v)) {
        pq[side].pop();
      } else {
        break;
      }
    }
  };

  while (true) {
    purge(0);
    purge(1);
    const Distance mf = pq[0].empty() ? kInfDistance : pq[0].top().first;
    const Distance mr = pq[1].empty() ? kInfDistance : pq[1].top().first;
    if (SatAdd(mf, mr) >= best) break;
    const int side = (mf <= mr) ? 0 : 1;
    const int opp = 1 - side;
    const auto [d, v] = pq[side].top();
    pq[side].pop();
    sides_[side].settled_stamp[v] = epoch;
    ++count;
    // Tentative-distance µ update (sound: tentative values are realizable
    // path lengths; required for the min_f+min_r stop rule to be exact).
    best = std::min(best, SatAdd(dist_of(0, v), dist_of(1, v)));
    auto nbrs = g_->Neighbors(v);
    auto ws = g_->NeighborWeights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      const Distance nd = d + ws[i];
      if (nd < dist_of(side, u)) {
        sides_[side].dist[u] = nd;
        sides_[side].stamp[u] = epoch;
        pq[side].push({nd, u});
      }
      best = std::min(best, SatAdd(dist_of(side, u), dist_of(opp, u)));
    }
  }
  if (settled != nullptr) *settled = count;
  return best;
}

}  // namespace islabel
