#include "baseline/contraction_hierarchy.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>

#include "util/indexed_heap.h"

namespace islabel {

namespace {

inline Distance SatAdd(Distance a, Distance b) {
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  if (a > kInfDistance - b) return kInfDistance;
  return a + b;
}

// Mutable overlay graph during contraction: sorted adjacency with
// min-merge. Entries carry the shortcut's middle vertex (kInvalidVertex
// for original edges) so the final up lists can unpack paths.
struct Overlay {
  struct Entry {
    VertexId to;
    Weight w;
    VertexId via;
  };
  std::vector<std::vector<Entry>> adj;

  void AddOrMin(VertexId u, VertexId v, Weight w, VertexId via) {
    auto& list = adj[u];
    auto it = std::lower_bound(
        list.begin(), list.end(), v,
        [](const Entry& e, VertexId x) { return e.to < x; });
    if (it != list.end() && it->to == v) {
      if (w < it->w) {
        it->w = w;
        it->via = via;  // the via must always describe the stored weight
      }
    } else {
      list.insert(it, Entry{v, w, via});
    }
  }
  void Remove(VertexId u, VertexId v) {
    auto& list = adj[u];
    auto it = std::lower_bound(
        list.begin(), list.end(), v,
        [](const Entry& e, VertexId x) { return e.to < x; });
    if (it != list.end() && it->to == v) list.erase(it);
  }
};

// Bounded witness search: is there a u-w path avoiding `skip` of length
// <= limit? Conservative: returns false when the bound is hit.
bool HasWitness(const Overlay& g, VertexId source, VertexId target,
                VertexId skip, Distance limit, std::size_t max_settled) {
  using Entry = std::pair<Distance, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  std::unordered_map<VertexId, Distance> dist;
  pq.push({0, source});
  dist[source] = 0;
  std::size_t settled = 0;
  while (!pq.empty() && settled < max_settled) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    if (v == target) return d <= limit;
    if (d > limit) return false;
    ++settled;
    for (const auto& e : g.adj[v]) {
      if (e.to == skip) continue;
      const Distance nd = d + e.w;
      auto it = dist.find(e.to);
      if (it == dist.end() || nd < it->second) {
        dist[e.to] = nd;
        pq.push({nd, e.to});
      }
    }
  }
  return false;
}

// Edge-difference priority: shortcuts needed minus edges removed. For
// high-degree nodes the witness probing is skipped and the worst case
// assumed — the order heuristic then simply defers hubs, which is the
// behavior CH wants anyway.
constexpr std::size_t kWitnessDegreeCap = 48;

int EdgeDifference(const Overlay& g, VertexId v, std::size_t witness_budget) {
  const auto& nbrs = g.adj[v];
  const std::size_t d = nbrs.size();
  if (d > kWitnessDegreeCap) {
    return static_cast<int>(d * (d - 1) / 2) - static_cast<int>(d);
  }
  int shortcuts = 0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      const Distance through = static_cast<Distance>(nbrs[i].w) + nbrs[j].w;
      if (!HasWitness(g, nbrs[i].to, nbrs[j].to, v, through,
                      witness_budget)) {
        ++shortcuts;
      }
    }
  }
  return shortcuts - static_cast<int>(d);
}

}  // namespace

Result<ContractionHierarchy> ContractionHierarchy::Build(const Graph& g) {
  const VertexId n = g.NumVertices();
  ContractionHierarchy ch;
  ch.order_.assign(n, 0);
  ch.up_.assign(n, {});

  Overlay overlay;
  overlay.adj.assign(n, {});
  for (VertexId v = 0; v < n; ++v) {
    auto nbrs = g.Neighbors(v);
    auto ws = g.NeighborWeights(v);
    overlay.adj[v].reserve(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      overlay.adj[v].push_back(Overlay::Entry{nbrs[i], ws[i], kInvalidVertex});
    }
  }

  // Witness effort scales down on dense graphs to keep preprocessing
  // tractable; missed witnesses only cost extra shortcuts.
  const std::size_t witness_budget = 64;

  // Lazy priority queue over edge difference. A vertex's priority is only
  // re-evaluated when one of its neighbors was contracted since the last
  // evaluation (dirty flag); this bounds the witness-search volume, which
  // otherwise thrashes on dense power-law fill-in.
  IndexedHeap heap(n);
  std::vector<bool> dirty(n, false);
  for (VertexId v = 0; v < n; ++v) {
    const int prio = EdgeDifference(overlay, v, witness_budget);
    heap.Push(v, static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(prio) + (1LL << 32)));
  }

  std::uint32_t rank = 0;
  while (!heap.Empty()) {
    auto [v, key] = heap.PopMin();
    (void)key;
    if (dirty[v]) {
      dirty[v] = false;
      const int fresh = EdgeDifference(overlay, v, witness_budget);
      const std::uint64_t fresh_key = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(fresh) + (1LL << 32));
      if (!heap.Empty() && fresh_key > heap.MinKey()) {
        heap.Push(v, fresh_key);
        continue;
      }
    }

    ch.order_[v] = rank++;
    // Materialize shortcuts among v's remaining neighbors. Above the degree
    // cap, witness probing is skipped: every pair gets a (possibly
    // redundant) shortcut — correct, and exactly the fill-in degeneration
    // CH suffers on hub-dominated graphs.
    const auto nbrs = overlay.adj[v];  // copy: overlay mutates below
    const bool probe = nbrs.size() <= kWitnessDegreeCap;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const std::uint64_t wide =
            static_cast<std::uint64_t>(nbrs[i].w) + nbrs[j].w;
        if (wide > std::numeric_limits<Weight>::max()) {
          return Status::OutOfRange("shortcut weight overflows Weight");
        }
        const Distance through = static_cast<Distance>(wide);
        if (!probe ||
            !HasWitness(overlay, nbrs[i].to, nbrs[j].to, v, through,
                        witness_budget)) {
          overlay.AddOrMin(nbrs[i].to, nbrs[j].to,
                           static_cast<Weight>(wide), v);
          overlay.AddOrMin(nbrs[j].to, nbrs[i].to,
                           static_cast<Weight>(wide), v);
          ++ch.num_shortcuts_;
        }
      }
    }
    // Record v's upward edges and remove v from the overlay.
    for (const auto& e : nbrs) {
      ch.up_[v].push_back(UpEdge{e.to, e.w, e.via});
      overlay.Remove(e.to, v);
      dirty[e.to] = true;
    }
    overlay.adj[v].clear();
    overlay.adj[v].shrink_to_fit();
  }

  // up_[v] currently holds *all* edges at contraction time; every endpoint
  // has a higher rank by construction (they were still in the overlay), so
  // the lists are already upward-only. They are also sorted by target
  // (overlay adjacency is sorted), which FindUpEdge relies on.
  return ch;
}

ContractionHierarchy ContractionHierarchy::FromParts(
    std::vector<std::uint32_t> order, std::vector<std::vector<UpEdge>> up,
    std::uint64_t num_shortcuts) {
  ContractionHierarchy ch;
  ch.order_ = std::move(order);
  ch.up_ = std::move(up);
  ch.num_shortcuts_ = num_shortcuts;
  return ch;
}

std::uint64_t ContractionHierarchy::NumUpEdges() const {
  std::uint64_t total = 0;
  for (const auto& l : up_) total += l.size();
  return total;
}

double ContractionHierarchy::MeanUpDegree() const {
  if (up_.empty()) return 0.0;
  return static_cast<double>(NumUpEdges()) /
         static_cast<double>(up_.size());
}

Distance ContractionHierarchy::Query(VertexId s, VertexId t,
                                     std::uint64_t* settled_out) {
  return Query(s, t, &scratch_, settled_out);
}

Distance ContractionHierarchy::Query(VertexId s, VertexId t, Scratch* scratch,
                                     std::uint64_t* settled_out) const {
  const VertexId n = NumVertices();
  if (s >= n || t >= n) return kInfDistance;
  if (s == t) {
    if (settled_out != nullptr) *settled_out = 0;
    return 0;
  }
  return Search(s, t, scratch, settled_out, nullptr);
}

Distance ContractionHierarchy::Search(VertexId s, VertexId t,
                                      Scratch* scratch,
                                      std::uint64_t* settled_out,
                                      VertexId* meet_out) const {
  const VertexId n = NumVertices();
  for (Scratch::Side& side : scratch->sides) {
    if (side.dist.size() != n) {
      side.dist.assign(n, kInfDistance);
      side.stamp.assign(n, 0);
      side.parent.assign(n, kInvalidVertex);
      scratch->epoch = 0;
    }
  }
  // Epoch wraparound would resurrect stale stamps; reset instead.
  if (scratch->epoch == std::numeric_limits<std::uint32_t>::max()) {
    for (Scratch::Side& side : scratch->sides) {
      side.stamp.assign(n, 0);
    }
    scratch->epoch = 0;
  }
  ++scratch->epoch;
  const std::uint32_t epoch = scratch->epoch;
  auto dist_of = [&](int side, VertexId v) -> Distance {
    return scratch->sides[side].stamp[v] == epoch
               ? scratch->sides[side].dist[v]
               : kInfDistance;
  };

  using Entry = std::pair<Distance, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq[2];
  scratch->sides[0].dist[s] = 0;
  scratch->sides[0].stamp[s] = epoch;
  scratch->sides[0].parent[s] = kInvalidVertex;
  pq[0].push({0, s});
  scratch->sides[1].dist[t] = 0;
  scratch->sides[1].stamp[t] = epoch;
  scratch->sides[1].parent[t] = kInvalidVertex;
  pq[1].push({0, t});

  Distance best = kInfDistance;
  VertexId meet = kInvalidVertex;
  std::uint64_t settled = 0;
  // Upward searches cannot prune with min_f + min_r (paths are not
  // monotone in distance along the up-down profile); the standard CH stop
  // rule halts a side once its queue minimum exceeds µ.
  while (!pq[0].empty() || !pq[1].empty()) {
    for (int side = 0; side < 2; ++side) {
      if (pq[side].empty()) continue;
      auto [d, v] = pq[side].top();
      if (d >= best) {
        // This side can no longer improve µ.
        while (!pq[side].empty()) pq[side].pop();
        continue;
      }
      pq[side].pop();
      if (d != dist_of(side, v)) continue;
      ++settled;
      const Distance through = SatAdd(dist_of(0, v), dist_of(1, v));
      if (through < best) {
        best = through;
        meet = v;
      }
      for (const UpEdge& e : up_[v]) {
        const Distance nd = d + e.w;
        if (nd < dist_of(side, e.to)) {
          scratch->sides[side].dist[e.to] = nd;
          scratch->sides[side].stamp[e.to] = epoch;
          scratch->sides[side].parent[e.to] = v;
          pq[side].push({nd, e.to});
        }
      }
    }
  }
  if (settled_out != nullptr) *settled_out = settled;
  if (meet_out != nullptr) *meet_out = meet;
  return best;
}

const ContractionHierarchy::UpEdge* ContractionHierarchy::FindUpEdge(
    VertexId a, VertexId b) const {
  const VertexId lo = order_[a] < order_[b] ? a : b;
  const VertexId hi = lo == a ? b : a;
  const auto& list = up_[lo];
  auto it = std::lower_bound(
      list.begin(), list.end(), hi,
      [](const UpEdge& e, VertexId x) { return e.to < x; });
  if (it != list.end() && it->to == hi) return &*it;
  return nullptr;
}

bool ContractionHierarchy::AppendUnpacked(VertexId u, VertexId v,
                                          std::vector<VertexId>* out) const {
  // LIFO expansion, left segment pushed last so it pops first: the edges
  // of (u, v)'s expansion land in path order.
  std::vector<std::pair<VertexId, VertexId>> stack;
  stack.emplace_back(u, v);
  while (!stack.empty()) {
    const auto [a, b] = stack.back();
    stack.pop_back();
    const UpEdge* e = FindUpEdge(a, b);
    if (e == nullptr) return false;
    if (e->via == kInvalidVertex) {
      out->push_back(b);
    } else {
      stack.emplace_back(e->via, b);
      stack.emplace_back(a, e->via);
    }
  }
  return true;
}

Distance ContractionHierarchy::Path(VertexId s, VertexId t, Scratch* scratch,
                                    std::vector<VertexId>* path) const {
  path->clear();
  const VertexId n = NumVertices();
  if (s >= n || t >= n) return kInfDistance;
  if (s == t) {
    path->push_back(s);
    return 0;
  }
  VertexId meet = kInvalidVertex;
  const Distance d = Search(s, t, scratch, nullptr, &meet);
  if (d == kInfDistance || meet == kInvalidVertex) return kInfDistance;

  // Climb each side's parent chain from the meet, then unpack every
  // packed up edge. Parents are only followed for vertices reached this
  // epoch (the chain from the meet is, by construction).
  std::vector<VertexId> fwd;  // s ... meet in the up graph
  for (VertexId v = meet; v != kInvalidVertex;
       v = scratch->sides[0].parent[v]) {
    fwd.push_back(v);
  }
  std::reverse(fwd.begin(), fwd.end());
  std::vector<VertexId> bwd;  // meet ... t in the up graph
  for (VertexId v = meet; v != kInvalidVertex;
       v = scratch->sides[1].parent[v]) {
    bwd.push_back(v);
  }

  path->push_back(fwd[0]);
  bool ok = true;
  for (std::size_t i = 1; i < fwd.size() && ok; ++i) {
    ok = AppendUnpacked(fwd[i - 1], fwd[i], path);
  }
  for (std::size_t i = 1; i < bwd.size() && ok; ++i) {
    ok = AppendUnpacked(bwd[i - 1], bwd[i], path);
  }
  if (!ok) {
    path->clear();
    return kInfDistance;
  }
  return d;
}

}  // namespace islabel
