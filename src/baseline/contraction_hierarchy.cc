#include "baseline/contraction_hierarchy.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <utility>

#include "util/indexed_heap.h"

namespace islabel {

namespace {

inline Distance SatAdd(Distance a, Distance b) {
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  if (a > kInfDistance - b) return kInfDistance;
  return a + b;
}

// Mutable overlay graph during contraction: sorted adjacency with min-merge.
struct Overlay {
  std::vector<std::vector<std::pair<VertexId, Weight>>> adj;

  void AddOrMin(VertexId u, VertexId v, Weight w) {
    auto& list = adj[u];
    auto it = std::lower_bound(
        list.begin(), list.end(), v,
        [](const auto& e, VertexId x) { return e.first < x; });
    if (it != list.end() && it->first == v) {
      it->second = std::min(it->second, w);
    } else {
      list.insert(it, {v, w});
    }
  }
  void Remove(VertexId u, VertexId v) {
    auto& list = adj[u];
    auto it = std::lower_bound(
        list.begin(), list.end(), v,
        [](const auto& e, VertexId x) { return e.first < x; });
    if (it != list.end() && it->first == v) list.erase(it);
  }
};

// Bounded witness search: is there a u-w path avoiding `skip` of length
// <= limit? Conservative: returns false when the bound is hit.
bool HasWitness(const Overlay& g, VertexId source, VertexId target,
                VertexId skip, Distance limit, std::size_t max_settled) {
  using Entry = std::pair<Distance, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq;
  std::unordered_map<VertexId, Distance> dist;
  pq.push({0, source});
  dist[source] = 0;
  std::size_t settled = 0;
  while (!pq.empty() && settled < max_settled) {
    auto [d, v] = pq.top();
    pq.pop();
    if (d > dist[v]) continue;
    if (v == target) return d <= limit;
    if (d > limit) return false;
    ++settled;
    for (const auto& [u, w] : g.adj[v]) {
      if (u == skip) continue;
      const Distance nd = d + w;
      auto it = dist.find(u);
      if (it == dist.end() || nd < it->second) {
        dist[u] = nd;
        pq.push({nd, u});
      }
    }
  }
  return false;
}

// Edge-difference priority: shortcuts needed minus edges removed. For
// high-degree nodes the witness probing is skipped and the worst case
// assumed — the order heuristic then simply defers hubs, which is the
// behavior CH wants anyway.
constexpr std::size_t kWitnessDegreeCap = 48;

int EdgeDifference(const Overlay& g, VertexId v, std::size_t witness_budget) {
  const auto& nbrs = g.adj[v];
  const std::size_t d = nbrs.size();
  if (d > kWitnessDegreeCap) {
    return static_cast<int>(d * (d - 1) / 2) - static_cast<int>(d);
  }
  int shortcuts = 0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i + 1; j < d; ++j) {
      const Distance through =
          static_cast<Distance>(nbrs[i].second) + nbrs[j].second;
      if (!HasWitness(g, nbrs[i].first, nbrs[j].first, v, through,
                      witness_budget)) {
        ++shortcuts;
      }
    }
  }
  return shortcuts - static_cast<int>(d);
}

}  // namespace

Result<ContractionHierarchy> ContractionHierarchy::Build(const Graph& g) {
  const VertexId n = g.NumVertices();
  ContractionHierarchy ch;
  ch.order_.assign(n, 0);
  ch.up_.assign(n, {});

  Overlay overlay;
  overlay.adj.assign(n, {});
  for (VertexId v = 0; v < n; ++v) {
    auto nbrs = g.Neighbors(v);
    auto ws = g.NeighborWeights(v);
    overlay.adj[v].reserve(nbrs.size());
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      overlay.adj[v].emplace_back(nbrs[i], ws[i]);
    }
  }

  // Witness effort scales down on dense graphs to keep preprocessing
  // tractable; missed witnesses only cost extra shortcuts.
  const std::size_t witness_budget = 64;

  // Lazy priority queue over edge difference. A vertex's priority is only
  // re-evaluated when one of its neighbors was contracted since the last
  // evaluation (dirty flag); this bounds the witness-search volume, which
  // otherwise thrashes on dense power-law fill-in.
  IndexedHeap heap(n);
  std::vector<bool> dirty(n, false);
  for (VertexId v = 0; v < n; ++v) {
    const int prio = EdgeDifference(overlay, v, witness_budget);
    heap.Push(v, static_cast<std::uint64_t>(
                     static_cast<std::int64_t>(prio) + (1LL << 32)));
  }

  std::uint32_t rank = 0;
  while (!heap.Empty()) {
    auto [v, key] = heap.PopMin();
    (void)key;
    if (dirty[v]) {
      dirty[v] = false;
      const int fresh = EdgeDifference(overlay, v, witness_budget);
      const std::uint64_t fresh_key = static_cast<std::uint64_t>(
          static_cast<std::int64_t>(fresh) + (1LL << 32));
      if (!heap.Empty() && fresh_key > heap.MinKey()) {
        heap.Push(v, fresh_key);
        continue;
      }
    }

    ch.order_[v] = rank++;
    // Materialize shortcuts among v's remaining neighbors. Above the degree
    // cap, witness probing is skipped: every pair gets a (possibly
    // redundant) shortcut — correct, and exactly the fill-in degeneration
    // CH suffers on hub-dominated graphs.
    const auto nbrs = overlay.adj[v];  // copy: overlay mutates below
    const bool probe = nbrs.size() <= kWitnessDegreeCap;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        const std::uint64_t wide =
            static_cast<std::uint64_t>(nbrs[i].second) + nbrs[j].second;
        if (wide > std::numeric_limits<Weight>::max()) {
          return Status::OutOfRange("shortcut weight overflows Weight");
        }
        const Distance through = static_cast<Distance>(wide);
        if (!probe ||
            !HasWitness(overlay, nbrs[i].first, nbrs[j].first, v, through,
                        witness_budget)) {
          overlay.AddOrMin(nbrs[i].first, nbrs[j].first,
                           static_cast<Weight>(wide));
          overlay.AddOrMin(nbrs[j].first, nbrs[i].first,
                           static_cast<Weight>(wide));
          ++ch.num_shortcuts_;
        }
      }
    }
    // Record v's upward edges and remove v from the overlay.
    for (const auto& [u, w] : nbrs) {
      ch.up_[v].push_back(UpEdge{u, w});
      overlay.Remove(u, v);
      dirty[u] = true;
    }
    overlay.adj[v].clear();
    overlay.adj[v].shrink_to_fit();
  }

  // up_[v] currently holds *all* edges at contraction time; every endpoint
  // has a higher rank by construction (they were still in the overlay), so
  // the lists are already upward-only.
  return ch;
}

double ContractionHierarchy::MeanUpDegree() const {
  if (up_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (const auto& l : up_) total += l.size();
  return static_cast<double>(total) / static_cast<double>(up_.size());
}

Distance ContractionHierarchy::Query(VertexId s, VertexId t,
                                     std::uint64_t* settled_out) {
  const VertexId n = static_cast<VertexId>(order_.size());
  if (s >= n || t >= n) return kInfDistance;
  if (s == t) return 0;
  for (Side& side : sides_) {
    if (side.dist.size() != n) {
      side.dist.assign(n, kInfDistance);
      side.stamp.assign(n, 0);
    }
  }
  ++epoch_;
  const std::uint32_t epoch = epoch_;
  auto dist_of = [&](int side, VertexId v) -> Distance {
    return sides_[side].stamp[v] == epoch ? sides_[side].dist[v]
                                          : kInfDistance;
  };

  using Entry = std::pair<Distance, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq[2];
  sides_[0].dist[s] = 0;
  sides_[0].stamp[s] = epoch;
  pq[0].push({0, s});
  sides_[1].dist[t] = 0;
  sides_[1].stamp[t] = epoch;
  pq[1].push({0, t});

  Distance best = kInfDistance;
  std::uint64_t settled = 0;
  // Upward searches cannot prune with min_f + min_r (paths are not
  // monotone in distance along the up-down profile); the standard CH stop
  // rule halts a side once its queue minimum exceeds µ.
  while (!pq[0].empty() || !pq[1].empty()) {
    for (int side = 0; side < 2; ++side) {
      if (pq[side].empty()) continue;
      auto [d, v] = pq[side].top();
      if (d >= best) {
        // This side can no longer improve µ.
        while (!pq[side].empty()) pq[side].pop();
        continue;
      }
      pq[side].pop();
      if (d != dist_of(side, v)) continue;
      ++settled;
      best = std::min(best, SatAdd(dist_of(0, v), dist_of(1, v)));
      for (const UpEdge& e : up_[v]) {
        const Distance nd = d + e.w;
        if (nd < dist_of(side, e.to)) {
          sides_[side].dist[e.to] = nd;
          sides_[side].stamp[e.to] = epoch;
          pq[side].push({nd, e.to});
        }
      }
    }
  }
  if (settled_out != nullptr) *settled_out = settled;
  return best;
}

}  // namespace islabel
