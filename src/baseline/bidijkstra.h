// IM-DIJ: the in-memory bidirectional Dijkstra baseline of §7.3 (Table 8).
// Reusable epoch-stamped scratch makes repeated queries cheap.

#ifndef ISLABEL_BASELINE_BIDIJKSTRA_H_
#define ISLABEL_BASELINE_BIDIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace islabel {

/// Classic bidirectional Dijkstra on an undirected graph. Terminates when
/// the best meeting distance µ satisfies µ <= min(FQ) + min(RQ).
class BidirectionalDijkstra {
 public:
  explicit BidirectionalDijkstra(const Graph* g) : g_(g) {}

  /// Exact distance; kInfDistance if disconnected.
  Distance Query(VertexId s, VertexId t, std::uint64_t* settled = nullptr);

 private:
  void EnsureScratch();

  const Graph* g_;
  struct Side {
    std::vector<Distance> dist;
    std::vector<std::uint32_t> stamp;
    std::vector<std::uint32_t> settled_stamp;
  };
  Side sides_[2];
  std::uint32_t epoch_ = 0;
};

}  // namespace islabel

#endif  // ISLABEL_BASELINE_BIDIJKSTRA_H_
