// VC-Index: re-implementation of the vertex-cover distance index of
// Cheng, Ke, Chu, Cheng (SIGMOD 2012), the strongest baseline the IS-LABEL
// paper compares against (§7.3, Tables 8/9).
//
// Construction removes, per level, an independent set W_i (the complement
// of a vertex cover C_i of G_i) and preserves distances by clique-joining
// each removed vertex's neighborhood — structurally the same reduction
// IS-LABEL uses, which is why the two indexes have comparable build costs.
// The difference is the query algorithm: VC-Index answers *single-source*
// queries by lifting the source to the top graph, running a full Dijkstra
// there, and sweeping distances back down level by level. Following §7.3,
// the P2P conversion simply stops as soon as t's distance is final — the
// remaining per-level sweeps still touch many irrelevant vertices, which
// is exactly the inefficiency Table 8 quantifies.

#ifndef ISLABEL_BASELINE_VC_INDEX_H_
#define ISLABEL_BASELINE_VC_INDEX_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "core/options.h"
#include "graph/graph.h"
#include "util/result.h"

namespace islabel {

/// Build configuration for VC-Index.
struct VcIndexOptions {
  /// Stop reducing when |G_{i+1}| / |G_i| exceeds this (same role as
  /// IS-LABEL's σ).
  double tau = 0.95;
  std::uint32_t max_levels = 64;
  std::uint64_t seed = 42;
};

/// Vertex-cover hierarchy distance index (exact).
class VcIndex {
 public:
  VcIndex() = default;
  VcIndex(VcIndex&&) = default;
  VcIndex& operator=(VcIndex&&) = default;

  static Result<VcIndex> Build(const Graph& g,
                               const VcIndexOptions& options = {});

  /// P2P distance: SSSP machinery halted once dist(s, t) is final.
  Distance QueryP2P(VertexId s, VertexId t, std::uint64_t* settled = nullptr);

  /// Full single-source distances (the index's native query; used by tests).
  std::vector<Distance> Sssp(VertexId s);

  std::uint32_t num_levels() const { return num_levels_; }
  std::uint64_t top_vertices() const { return top_vertices_; }
  std::uint64_t top_edges() const { return top_graph_.NumEdges(); }

  /// Index footprint: removed adjacency lists + top graph + level array —
  /// the "Index size" column of Table 9.
  std::uint64_t SizeBytes() const;

 private:
  // level_[v]: 1-based level at which v was removed; num_levels_ for
  // vertices that survive in the top graph.
  std::vector<std::uint32_t> level_;
  std::uint32_t num_levels_ = 0;
  std::vector<std::vector<HierEdge>> removed_adj_;
  // Removed vertices of each level, in id order (levels are 1-based).
  std::vector<std::vector<VertexId>> waves_;
  Graph top_graph_;
  std::uint64_t top_vertices_ = 0;

  // Reusable scratch for queries.
  std::vector<Distance> dist_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
};

}  // namespace islabel

#endif  // ISLABEL_BASELINE_VC_INDEX_H_
