// BFS hop distances — the unit-weight oracle used by tests to
// cross-validate Dijkstra and the index on unweighted graphs.

#ifndef ISLABEL_BASELINE_BFS_H_
#define ISLABEL_BASELINE_BFS_H_

#include <vector>

#include "graph/graph.h"

namespace islabel {

/// Hop count from `source` to every vertex; kInfDistance if unreachable.
/// Edge weights are ignored (treated as 1).
std::vector<Distance> BfsDistances(const Graph& g, VertexId source);

}  // namespace islabel

#endif  // ISLABEL_BASELINE_BFS_H_
