#include "baseline/dijkstra.h"

#include "util/indexed_heap.h"

namespace islabel {

namespace {

template <typename NeighborFn>
SsspResult RunSssp(VertexId n, VertexId source, NeighborFn&& neighbors) {
  SsspResult r;
  r.dist.assign(n, kInfDistance);
  r.parent.assign(n, kInvalidVertex);
  IndexedHeap heap(n);
  r.dist[source] = 0;
  heap.Push(source, 0);
  while (!heap.Empty()) {
    auto [v, d] = heap.PopMin();
    neighbors(v, [&](VertexId u, Weight w) {
      const Distance nd = d + w;
      if (nd < r.dist[u]) {
        r.dist[u] = nd;
        r.parent[u] = v;
        heap.PushOrDecrease(u, nd);
      }
    });
  }
  return r;
}

template <typename NeighborFn>
Distance RunP2P(VertexId n, VertexId s, VertexId t, std::uint64_t* settled,
                NeighborFn&& neighbors) {
  if (s == t) return 0;
  std::vector<Distance> dist(n, kInfDistance);
  IndexedHeap heap(n);
  dist[s] = 0;
  heap.Push(s, 0);
  std::uint64_t count = 0;
  while (!heap.Empty()) {
    auto [v, d] = heap.PopMin();
    ++count;
    if (v == t) {
      if (settled != nullptr) *settled = count;
      return d;
    }
    neighbors(v, [&](VertexId u, Weight w) {
      const Distance nd = d + w;
      if (nd < dist[u]) {
        dist[u] = nd;
        heap.PushOrDecrease(u, nd);
      }
    });
  }
  if (settled != nullptr) *settled = count;
  return kInfDistance;
}

}  // namespace

SsspResult DijkstraSssp(const Graph& g, VertexId source) {
  return RunSssp(g.NumVertices(), source, [&g](VertexId v, auto&& relax) {
    auto nbrs = g.Neighbors(v);
    auto ws = g.NeighborWeights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) relax(nbrs[i], ws[i]);
  });
}

SsspResult DijkstraSssp(const DiGraph& g, VertexId source) {
  return RunSssp(g.NumVertices(), source, [&g](VertexId v, auto&& relax) {
    auto nbrs = g.OutNeighbors(v);
    auto ws = g.OutWeights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) relax(nbrs[i], ws[i]);
  });
}

Distance DijkstraP2P(const Graph& g, VertexId s, VertexId t,
                     std::uint64_t* settled) {
  return RunP2P(g.NumVertices(), s, t, settled,
                [&g](VertexId v, auto&& relax) {
                  auto nbrs = g.Neighbors(v);
                  auto ws = g.NeighborWeights(v);
                  for (std::size_t i = 0; i < nbrs.size(); ++i) {
                    relax(nbrs[i], ws[i]);
                  }
                });
}

Distance DijkstraP2P(const DiGraph& g, VertexId s, VertexId t,
                     std::uint64_t* settled) {
  return RunP2P(g.NumVertices(), s, t, settled,
                [&g](VertexId v, auto&& relax) {
                  auto nbrs = g.OutNeighbors(v);
                  auto ws = g.OutWeights(v);
                  for (std::size_t i = 0; i < nbrs.size(); ++i) {
                    relax(nbrs[i], ws[i]);
                  }
                });
}

}  // namespace islabel
