// Dijkstra's algorithm: the exactness oracle for every test in the suite
// and the building block of several baselines. Uses the indexed binary
// heap with decrease-key (§6.2 prescribes a binary heap).

#ifndef ISLABEL_BASELINE_DIJKSTRA_H_
#define ISLABEL_BASELINE_DIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "graph/digraph.h"
#include "graph/graph.h"

namespace islabel {

/// Full single-source shortest paths.
struct SsspResult {
  std::vector<Distance> dist;     // kInfDistance = unreachable
  std::vector<VertexId> parent;   // kInvalidVertex = source/unreachable
};

SsspResult DijkstraSssp(const Graph& g, VertexId source);
SsspResult DijkstraSssp(const DiGraph& g, VertexId source);

/// Point-to-point with early termination once t is settled.
/// `settled` (optional) receives the number of settled vertices.
Distance DijkstraP2P(const Graph& g, VertexId s, VertexId t,
                     std::uint64_t* settled = nullptr);
Distance DijkstraP2P(const DiGraph& g, VertexId s, VertexId t,
                     std::uint64_t* settled = nullptr);

}  // namespace islabel

#endif  // ISLABEL_BASELINE_DIJKSTRA_H_
