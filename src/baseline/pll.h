// Pruned Landmark Labeling (Akiba, Iwata, Yoshida, SIGMOD 2013), the
// canonical 2-hop labeling the IS-LABEL paper's related-work discussion
// anticipates (§3 cites the 2-hop family [13] it descends from). Included
// as an extension baseline: its labels answer queries with a pure merge
// (no residual search) at the cost of much heavier construction — the
// trade-off Table 8's ablation quantifies on the synthetic stand-ins.
//
// This is the weighted variant: one pruned Dijkstra per landmark, landmarks
// in descending-degree order.

#ifndef ISLABEL_BASELINE_PLL_H_
#define ISLABEL_BASELINE_PLL_H_

#include <cstdint>
#include <vector>

#include "core/label_entry.h"
#include "graph/graph.h"
#include "util/result.h"

namespace islabel {

/// Exact 2-hop distance index.
class PrunedLandmarkLabeling {
 public:
  PrunedLandmarkLabeling() = default;
  PrunedLandmarkLabeling(PrunedLandmarkLabeling&&) = default;
  PrunedLandmarkLabeling& operator=(PrunedLandmarkLabeling&&) = default;

  static Result<PrunedLandmarkLabeling> Build(const Graph& g);

  /// Exact distance (kInfDistance if disconnected).
  Distance Query(VertexId s, VertexId t) const;

  std::uint64_t TotalEntries() const;
  double MeanLabelSize() const;

 private:
  // labels_[v] sorted by landmark *rank* so queries are linear merges.
  // LabelEntry::node stores the rank, not the vertex id.
  std::vector<std::vector<LabelEntry>> labels_;
};

}  // namespace islabel

#endif  // ISLABEL_BASELINE_PLL_H_
