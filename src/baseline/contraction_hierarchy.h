// Contraction Hierarchies (Geisberger et al., WEA 2008) — the road-network
// speedup technique the paper's related work discusses (§3, [14]).
//
// Included as an extension baseline to reproduce the paper's argument that
// road-network methods rely on low highway dimension: on grids CH queries
// are extremely fast with few shortcuts, while on power-law graphs
// contraction degenerates (dense shortcut fill-in around hubs) — see
// bench_ablation_ch.
//
// Implementation notes: nodes are contracted in lazy edge-difference order;
// witness searches are hop- and settle-bounded (a missed witness only adds
// a redundant shortcut, never breaks correctness); queries run a
// bidirectional upward Dijkstra over the order.

#ifndef ISLABEL_BASELINE_CONTRACTION_HIERARCHY_H_
#define ISLABEL_BASELINE_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/result.h"

namespace islabel {

/// Exact P2P distance index via node contraction.
class ContractionHierarchy {
 public:
  ContractionHierarchy() = default;
  ContractionHierarchy(ContractionHierarchy&&) = default;
  ContractionHierarchy& operator=(ContractionHierarchy&&) = default;

  static Result<ContractionHierarchy> Build(const Graph& g);

  /// Exact distance (kInfDistance if disconnected).
  Distance Query(VertexId s, VertexId t, std::uint64_t* settled = nullptr);

  std::uint64_t num_shortcuts() const { return num_shortcuts_; }
  /// Upward edges per vertex, mean — the density CH's performance hinges on.
  double MeanUpDegree() const;

 private:
  struct UpEdge {
    VertexId to;
    Weight w;
  };

  // order_[v] = contraction rank; upward adjacency only (to higher ranks).
  std::vector<std::uint32_t> order_;
  std::vector<std::vector<UpEdge>> up_;
  std::uint64_t num_shortcuts_ = 0;

  // Reusable query scratch.
  struct Side {
    std::vector<Distance> dist;
    std::vector<std::uint32_t> stamp;
  };
  Side sides_[2];
  std::uint32_t epoch_ = 0;
};

}  // namespace islabel

#endif  // ISLABEL_BASELINE_CONTRACTION_HIERARCHY_H_
