// Contraction Hierarchies (Geisberger et al., WEA 2008) — the road-network
// speedup technique the paper's related work discusses (§3, [14]).
//
// Originally included as an extension baseline to reproduce the paper's
// argument that road-network methods rely on low highway dimension: on
// grids CH queries are extremely fast with few shortcuts, while on
// power-law graphs contraction degenerates (dense shortcut fill-in around
// hubs) — see bench_ablation_ch. Promoted to a full serving backend
// (backends/ch_index.h wraps it behind DistanceIndex): every shortcut
// records its contracted middle vertex, queries can run on caller-owned
// scratch from any number of threads, and path queries unpack shortcuts
// back to original-graph vertices.
//
// Implementation notes: nodes are contracted in lazy edge-difference order;
// witness searches are hop- and settle-bounded (a missed witness only adds
// a redundant shortcut, never breaks correctness); queries run a
// bidirectional upward Dijkstra over the order.

#ifndef ISLABEL_BASELINE_CONTRACTION_HIERARCHY_H_
#define ISLABEL_BASELINE_CONTRACTION_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "util/result.h"

namespace islabel {

/// Exact P2P distance index via node contraction.
class ContractionHierarchy {
 public:
  /// One upward edge. Shortcuts carry the contracted middle vertex in
  /// `via` (kInvalidVertex for original graph edges), which is what lets
  /// Path() unpack a shortcut back into original edges.
  struct UpEdge {
    VertexId to = kInvalidVertex;
    Weight w = 0;
    VertexId via = kInvalidVertex;
  };

  /// Caller-owned query state. The hierarchy itself is immutable after
  /// Build, so any number of threads may query concurrently as long as
  /// each brings its own Scratch (the engine-pool pattern; CHIndex pools
  /// these).
  struct Scratch {
    struct Side {
      std::vector<Distance> dist;
      std::vector<std::uint32_t> stamp;
      std::vector<VertexId> parent;  // predecessor in the upward search
    };
    Side sides[2];
    std::uint32_t epoch = 0;
  };

  ContractionHierarchy() = default;
  ContractionHierarchy(ContractionHierarchy&&) = default;
  ContractionHierarchy& operator=(ContractionHierarchy&&) = default;

  static Result<ContractionHierarchy> Build(const Graph& g);

  /// Rebuilds a hierarchy from persisted parts (backends/ch_index.cc).
  /// `order` must be a permutation of [0, n) and every up list upward-only;
  /// the caller is expected to have validated both.
  static ContractionHierarchy FromParts(std::vector<std::uint32_t> order,
                                        std::vector<std::vector<UpEdge>> up,
                                        std::uint64_t num_shortcuts);

  /// Exact distance (kInfDistance if disconnected). Uses internal scratch:
  /// NOT thread-safe; kept for the single-threaded baseline drivers.
  Distance Query(VertexId s, VertexId t, std::uint64_t* settled = nullptr);

  /// Exact distance on caller-owned scratch. Thread-safe (const; all
  /// mutable state lives in *scratch).
  Distance Query(VertexId s, VertexId t, Scratch* scratch,
                 std::uint64_t* settled = nullptr) const;

  /// Exact shortest path in original-graph vertices (s first, t last;
  /// empty when disconnected, {s} when s == t). Runs the bidirectional
  /// search on *scratch, then unpacks shortcuts via their recorded middle
  /// vertices. Thread-safe.
  Distance Path(VertexId s, VertexId t, Scratch* scratch,
                std::vector<VertexId>* path) const;

  VertexId NumVertices() const {
    return static_cast<VertexId>(order_.size());
  }
  std::uint64_t num_shortcuts() const { return num_shortcuts_; }
  /// Total upward edges (original + shortcuts) across all vertices.
  std::uint64_t NumUpEdges() const;
  /// Upward edges per vertex, mean — the density CH's performance hinges on.
  double MeanUpDegree() const;

  /// Raw structure, for persistence (backends/ch_index.cc).
  const std::vector<std::uint32_t>& order() const { return order_; }
  const std::vector<std::vector<UpEdge>>& up() const { return up_; }

 private:
  /// The bidirectional upward search; records the best meet vertex when
  /// meet_out is non-null. Assumes s != t and both in range.
  Distance Search(VertexId s, VertexId t, Scratch* scratch,
                  std::uint64_t* settled_out, VertexId* meet_out) const;

  /// The up edge (a, b) lives in the up list of the lower-ranked
  /// endpoint; returns nullptr if absent (corrupt hierarchy).
  const UpEdge* FindUpEdge(VertexId a, VertexId b) const;

  /// Appends the original-graph expansion of up edge (u, v) to *out —
  /// everything after u up to and including v. Iterative (explicit
  /// stack); vias strictly descend in rank, so it terminates.
  bool AppendUnpacked(VertexId u, VertexId v,
                      std::vector<VertexId>* out) const;

  // order_[v] = contraction rank; upward adjacency only (to higher ranks).
  std::vector<std::uint32_t> order_;
  std::vector<std::vector<UpEdge>> up_;
  std::uint64_t num_shortcuts_ = 0;

  // Scratch behind the legacy non-const Query.
  Scratch scratch_;
};

}  // namespace islabel

#endif  // ISLABEL_BASELINE_CONTRACTION_HIERARCHY_H_
