#include "baseline/bfs.h"

#include <deque>

namespace islabel {

std::vector<Distance> BfsDistances(const Graph& g, VertexId source) {
  std::vector<Distance> dist(g.NumVertices(), kInfDistance);
  std::deque<VertexId> queue;
  dist[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId v = queue.front();
    queue.pop_front();
    for (VertexId u : g.Neighbors(v)) {
      if (dist[u] == kInfDistance) {
        dist[u] = dist[v] + 1;
        queue.push_back(u);
      }
    }
  }
  return dist;
}

}  // namespace islabel
