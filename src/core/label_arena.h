// LabelArena: all vertex labels in one contiguous slab.
//
// The paper's query cost is dominated by scanning labels (Equation 1 is a
// linear merge, §6.2); the arena stores every label back-to-back in a
// single LabelEntry[] with a CSR offset index, so a query touches exactly
// two contiguous byte ranges instead of chasing per-vertex heap vectors.
// Alongside the offsets the arena keeps a per-label *seed cut*: the index
// of the first entry whose ancestor lies in the core G_k, which lets the
// query engine skip the non-core prefix when extracting Algorithm 1 seeds.
//
// The slab is immutable. The lazy update maintenance of §8.3 writes to an
// overflow side-table instead: the first mutation of a label copies it out
// of the slab, and View() serves the patched copy from then on. Labels of
// vertices inserted after the build live only in the side-table.

#ifndef ISLABEL_CORE_LABEL_ARENA_H_
#define ISLABEL_CORE_LABEL_ARENA_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/label_view.h"
#include "util/bit_vector.h"

namespace islabel {

class LabelArena {
 public:
  LabelArena() = default;

  /// Adopts a prebuilt slab + CSR index (offsets.size() == n + 1,
  /// offsets.front() == 0, offsets.back() == slab.size()). Seed cuts
  /// default to 0 until ComputeSeedCuts() runs.
  LabelArena(std::vector<LabelEntry> slab, std::vector<std::uint64_t> offsets);

  /// Flattens a nested label set into the slab layout, freeing each
  /// nested label as it is copied so peak memory stays ~one label set,
  /// not two (the memory-budgeted external pipeline depends on this).
  static LabelArena FromNestedConsuming(
      std::vector<std::vector<LabelEntry>>* nested);

  /// Number of labels, including side-table appends.
  VertexId NumVertices() const { return n_; }
  std::size_t size() const { return n_; }

  /// Borrowed span over label(v); valid until the arena is destroyed or
  /// label v itself is mutated through the side-table. Unpatched slab
  /// labels pay at most one bit test — never a hash probe — so a single
  /// §8.3 update does not tax every subsequent fetch.
  LabelView View(VertexId v) const {
    if (v < arena_n_) {
      if (patched_.size() != 0 && patched_[v]) {
        return LabelView(overlay_.find(v)->second);
      }
      return LabelView(slab_.data() + offsets_[v],
                       static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]));
    }
    auto it = overlay_.find(v);
    return it != overlay_.end() ? LabelView(it->second) : LabelView();
  }
  LabelView operator[](VertexId v) const { return View(v); }

  /// Index of the first entry of label(v) whose ancestor is in the core
  /// (== View(v).size() when none). 0 for side-table labels — always a
  /// valid conservative scan start.
  std::uint32_t SeedStart(VertexId v) const {
    return (v < arena_n_ && seed_cut_.size() == arena_n_ &&
            (patched_.size() == 0 || !patched_[v]))
               ? seed_cut_[v]
               : 0;
  }

  /// Fills the seed cuts from the hierarchy's level assignment (core ⇔
  /// level == k).
  void ComputeSeedCuts(const std::vector<std::uint32_t>& level,
                       std::uint32_t k);

  std::uint64_t TotalEntries() const;
  /// In-memory footprint of the slab (the figure behind "Label size").
  std::uint64_t SlabBytes() const { return slab_.size() * sizeof(LabelEntry); }
  const LabelEntry* SlabData() const { return slab_.data(); }
  std::uint64_t SlabSize() const { return slab_.size(); }
  const std::vector<std::uint64_t>& Offsets() const { return offsets_; }

  // ---- §8.3 overflow side-table ----

  /// Appends the label of a newly inserted vertex; its id must equal
  /// NumVertices().
  void AppendLabel(VertexId v, std::vector<LabelEntry> label);

  /// Inserts (or min-updates) an entry, copying the label to the
  /// side-table on first mutation.
  void UpsertEntry(VertexId v, const LabelEntry& entry);

  /// Removes the entry for `node`; returns true if it was present. Labels
  /// not containing `node` are left untouched (no side-table copy).
  bool EraseEntry(VertexId v, VertexId node);

  /// Empties label(v) (vertex deletion).
  void ClearLabel(VertexId v);

  /// Number of labels living in the side-table (patched + appended).
  std::size_t SideTableSize() const { return overlay_.size(); }
  bool IsPatched(VertexId v) const {
    if (v < arena_n_) return patched_.size() != 0 && patched_[v];
    return overlay_.count(v) != 0;
  }

  /// Slab-level equality (offsets + entries); side-tables must be empty on
  /// both sides. Backs the parallel-determinism tests.
  friend bool operator==(const LabelArena& a, const LabelArena& b);

 private:
  /// Returns the mutable side-table copy of label(v), creating it from the
  /// slab on first access.
  std::vector<LabelEntry>* Patch(VertexId v);

  std::vector<LabelEntry> slab_;
  std::vector<std::uint64_t> offsets_;   // arena_n_ + 1, monotone
  std::vector<std::uint32_t> seed_cut_;  // arena_n_ (empty until computed)
  VertexId arena_n_ = 0;                 // labels backed by the slab
  VertexId n_ = 0;                       // logical count incl. appends
  /// One bit per slab label, set when it was copied to the side-table;
  /// sized lazily on the first patch (empty = nothing patched).
  BitVector patched_;
  std::unordered_map<VertexId, std::vector<LabelEntry>> overlay_;
};

}  // namespace islabel

#endif  // ISLABEL_CORE_LABEL_ARENA_H_
