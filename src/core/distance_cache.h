// DistanceCache: the core-side seam for query-result caching.
//
// ISLabelIndex::Query can optionally consult a cache of (s, t) → distance
// before leasing an engine (see set_distance_cache). The core only knows
// this minimal interface; the production implementation — a sharded LRU
// with generation-based invalidation — lives one layer up in
// server/query_cache.h, so the core library never depends on the serving
// subsystem.
//
// Invalidation contract: the index calls BumpGeneration() every time the
// engine pool is reset (Build, Load, InsertVertex, DeleteVertex). An
// implementation must never serve an entry inserted before the latest
// bump. All methods must be thread-safe: they are called concurrently
// from every thread driving Query.

#ifndef ISLABEL_CORE_DISTANCE_CACHE_H_
#define ISLABEL_CORE_DISTANCE_CACHE_H_

#include "graph/graph_defs.h"

namespace islabel {

class DistanceCache {
 public:
  virtual ~DistanceCache() = default;

  /// The current generation. Callers snapshot it BEFORE computing an
  /// answer and pass it back to Insert, so an update that lands between
  /// compute and insert cannot stamp a pre-update answer as current.
  virtual std::uint64_t generation() const = 0;

  /// Returns true and sets *out iff a current-generation entry for the
  /// pair exists. Implementations canonicalize (s, t) as they see fit
  /// (the undirected index shares (s, t) and (t, s)).
  virtual bool Lookup(VertexId s, VertexId t, Distance* out) = 0;

  /// Records d(s, t) computed under `generation` (a prior snapshot of
  /// generation()). Implementations must drop the insert if the
  /// generation has moved on since the snapshot.
  virtual void Insert(VertexId s, VertexId t, Distance d,
                      std::uint64_t generation) = 0;

  /// Invalidates every entry inserted so far.
  virtual void BumpGeneration() = 0;
};

}  // namespace islabel

#endif  // ISLABEL_CORE_DISTANCE_CACHE_H_
