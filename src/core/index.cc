#include "core/index.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "storage/label_store.h"
#include "util/clock.h"
#include "util/parallel.h"
#include "util/timer.h"
#include "util/varint.h"

namespace islabel {

namespace {

constexpr std::uint32_t kMetaMagic = 0x49534C4D;  // "ISLM"
constexpr std::uint32_t kMetaVersion = 1;

std::string LabelsPath(const std::string& dir) { return dir + "/labels.isl"; }
std::string CorePath(const std::string& dir) { return dir + "/core.islg"; }
std::string MetaPath(const std::string& dir) { return dir + "/meta.islm"; }

}  // namespace

Result<ISLabelIndex> ISLabelIndex::Build(const Graph& g,
                                         const IndexOptions& options) {
  ISLabelIndex index;
  WallTimer total;

  WallTimer phase;
  auto hierarchy = BuildHierarchy(g, options);
  if (!hierarchy.ok()) return hierarchy.status();
  index.hierarchy_ =
      std::make_unique<VertexHierarchy>(std::move(hierarchy).value());
  index.build_stats_.hierarchy_seconds = phase.ElapsedSeconds();

  phase.Restart();
  LabelingStats lstats;
  if (options.memory_budget_bytes != 0) {
    IoStats label_io;
    auto labels = ComputeLabelsTopDownExternal(*index.hierarchy_, options,
                                               &lstats, &label_io);
    if (!labels.ok()) return labels.status();
    *index.labels_ = std::move(labels).value();
    index.hierarchy_->io += label_io;
  } else {
    *index.labels_ =
        ComputeLabelsTopDown(*index.hierarchy_, &lstats, options.num_threads);
  }
  index.build_stats_.labeling_seconds = phase.ElapsedSeconds();

  index.build_stats_.total_seconds = total.ElapsedSeconds();
  index.build_stats_.k = index.hierarchy_->k;
  index.build_stats_.core_vertices = index.hierarchy_->stats.back().num_vertices;
  index.build_stats_.core_edges = index.hierarchy_->stats.back().num_edges;
  index.build_stats_.label_entries = lstats.total_entries;
  index.build_stats_.label_bytes = lstats.bytes_in_memory;
  index.build_stats_.io = index.hierarchy_->io;
  index.build_stats_.level_stats = index.hierarchy_->stats;
  index.deleted_.Resize(index.hierarchy_->NumVertices());
  index.vias_enabled_ = options.keep_vias;
  index.ResetPool();
  return index;
}

void ISLabelIndex::ResetPool() {
  LabelProvider provider = store_ != nullptr ? LabelProvider(store_.get())
                                             : LabelProvider(labels_.get());
  pool_ = std::make_unique<QueryEnginePool>(hierarchy_.get(), provider);
  // Every pool reset marks a potential answer change (InsertVertex,
  // DeleteVertex, reload): invalidate all cached distances.
  BumpCacheGeneration();
  ApplyPoolMetrics();
}

void ISLabelIndex::InstallMetrics(obs::MetricRegistry* registry) {
  metrics_registry_ = registry;
  ApplyPoolMetrics();
}

void ISLabelIndex::ApplyPoolMetrics() {
  if (metrics_registry_ == nullptr || pool_ == nullptr) return;
  // Lease-wait latency is real wall time by definition, so the system
  // clock is correct here even in tests (trace tests drive pool-wait
  // attribution through the ManualClock seam instead).
  static const SystemClock kPoolClock;
  QueryEnginePool::PoolMetrics m;
  m.lease_wait = metrics_registry_->GetHistogram(
      "islabel_pool_lease_wait_seconds",
      "Engine-pool lease acquisition latency");
  m.leases_active = metrics_registry_->GetGauge(
      "islabel_pool_leases_active", "Engine leases currently held");
  m.engines_created = metrics_registry_->GetCounter(
      "islabel_pool_engines_created_total",
      "Query engines constructed across all pools");
  m.clock = &kPoolClock;
  pool_->SetMetrics(m);
}

Status ISLabelIndex::CheckQueryable(VertexId s, VertexId t) const {
  if (hierarchy_ == nullptr) {
    return Status::FailedPrecondition("index not built");
  }
  const VertexId n = hierarchy_->NumVertices();
  if (s >= n || t >= n) return Status::OutOfRange("vertex id out of range");
  if (IsDeleted(s) || IsDeleted(t)) {
    return Status::NotFound("query endpoint was deleted");
  }
  return Status::OK();
}

Status ISLabelIndex::QueryUncached(VertexId s, VertexId t, Distance* out,
                                   QueryStats* stats) {
  // The base class ran CheckQueryable (deleted-endpoint check included,
  // before the cache) and snapshotted the cache generation; all that is
  // left is the real engine query.
  QueryEnginePool::Lease lease = pool_->Acquire();
  return lease->Query(s, t, out, stats);
}

Status ISLabelIndex::QueryBatch(
    const std::vector<std::pair<VertexId, VertexId>>& pairs,
    std::vector<Distance>* out, std::uint32_t num_threads,
    std::vector<Status>* statuses) {
  if (hierarchy_ == nullptr) {
    return Status::FailedPrecondition("index not built");
  }
  out->assign(pairs.size(), kInfDistance);
  if (statuses != nullptr) statuses->assign(pairs.size(), Status::OK());
  if (pairs.empty()) return Status::OK();

  const std::size_t workers = std::min<std::size_t>(
      EffectiveThreads(num_threads), pairs.size());
  // One engine lease per worker chunk, so each worker pays the pool mutex
  // once, not once per query.
  std::vector<Status> first_error(workers, Status::OK());
  ParallelForChunks(
      pairs.size(), workers,
      [&](std::size_t w, std::size_t begin, std::size_t end) {
        QueryEnginePool::Lease lease = pool_->Acquire();
        for (std::size_t i = begin; i < end; ++i) {
          Status st = CheckQueryable(pairs[i].first, pairs[i].second);
          if (st.ok()) {
            st = lease->Query(pairs[i].first, pairs[i].second, &(*out)[i]);
          }
          if (!st.ok()) {
            (*out)[i] = kInfDistance;
            if (statuses != nullptr) {
              (*statuses)[i] = std::move(st);
            } else if (first_error[w].ok()) {
              first_error[w] = std::move(st);
            }
          }
        }
      });
  if (statuses == nullptr) {
    for (Status& st : first_error) {
      if (!st.ok()) return std::move(st);
    }
  }
  return Status::OK();
}

Status ISLabelIndex::QueryOneToMany(VertexId s,
                                    const std::vector<VertexId>& targets,
                                    std::vector<Distance>* out,
                                    QueryStats* stats) {
  ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, s));
  for (VertexId t : targets) {
    ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, t));
  }
  QueryEnginePool::Lease lease = pool_->Acquire();
  return lease->QueryOneToMany(s, targets, out, stats);
}

Status ISLabelIndex::QueryManyToMany(const std::vector<VertexId>& sources,
                                     const std::vector<VertexId>& targets,
                                     std::vector<Distance>* out,
                                     std::uint32_t num_threads) {
  if (hierarchy_ == nullptr) {
    return Status::FailedPrecondition("index not built");
  }
  for (VertexId s : sources) ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, s));
  for (VertexId t : targets) ISLABEL_RETURN_IF_ERROR(CheckQueryable(t, t));
  out->assign(sources.size() * targets.size(), kInfDistance);
  if (sources.empty() || targets.empty()) return Status::OK();

  const std::size_t workers = std::min<std::size_t>(
      EffectiveThreads(num_threads), sources.size());
  std::vector<Status> first_error(workers, Status::OK());
  ParallelForChunks(
      sources.size(), workers,
      [&](std::size_t w, std::size_t begin, std::size_t end) {
        QueryEnginePool::Lease lease = pool_->Acquire();
        for (std::size_t i = begin; i < end; ++i) {
          Status st = lease->QueryOneToMany(sources[i], targets.data(),
                                            targets.size(),
                                            out->data() + i * targets.size());
          if (!st.ok() && first_error[w].ok()) {
            first_error[w] = std::move(st);
          }
        }
      });
  for (Status& st : first_error) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

DistanceIndexInfo ISLabelIndex::Info() const {
  DistanceIndexInfo info;
  info.backend = BackendKindName(BackendKind::kISLabel);
  if (hierarchy_ == nullptr) return info;
  info.vertices = hierarchy_->NumVertices();
  // Sizes come from the arena/store, not build_stats_, so Load()ed
  // indexes report real numbers too.
  if (store_ != nullptr) {
    info.entries = store_->TotalEntries();
    info.bytes = store_->LabelBytes();
  } else {
    info.entries = labels_->TotalEntries();
    info.bytes = labels_->SlabBytes();
  }
  info.detail = "k=" + std::to_string(hierarchy_->k);
  return info;
}

void ISLabelIndex::RebuildCore(EdgeList edges) {
  const bool vias = hierarchy_->g_k.has_vias();
  edges.EnsureVertices(hierarchy_->NumVertices());
  hierarchy_->g_k = Graph::FromEdgeList(std::move(edges), vias);
  // Core sizes changed; keep the stats row describing G_k current.
  hierarchy_->stats.back().num_vertices = 0;
  for (VertexId v = 0; v < hierarchy_->NumVertices(); ++v) {
    if (hierarchy_->InCore(v) && !IsDeleted(v)) {
      ++hierarchy_->stats.back().num_vertices;
    }
  }
  hierarchy_->stats.back().num_edges = hierarchy_->g_k.NumEdges();
  ResetPool();
}

Status ISLabelIndex::Save(const std::string& dir) const {
  if (hierarchy_ == nullptr) {
    return Status::FailedPrecondition("index not built");
  }
  if (store_ != nullptr) {
    return Status::NotSupported(
        "saving a disk-resident index is not supported; load it in memory");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create index directory " + dir + ": " +
                           ec.message());
  }
  // Labels: one pass over the arena (side-table patches included via the
  // per-vertex views).
  LabelStoreWriter writer;
  ISLABEL_RETURN_IF_ERROR(
      writer.Open(LabelsPath(dir), hierarchy_->NumVertices(), vias_enabled_));
  for (VertexId v = 0; v < hierarchy_->NumVertices(); ++v) {
    ISLABEL_RETURN_IF_ERROR(writer.Add(labels_->View(v)));
  }
  ISLABEL_RETURN_IF_ERROR(writer.Finish());
  // Core graph.
  ISLABEL_RETURN_IF_ERROR(WriteGraphBinary(hierarchy_->g_k, CorePath(dir)));
  // Meta: k + level array (+ deleted set).
  std::string meta;
  PutFixed32(&meta, kMetaMagic);
  PutFixed32(&meta, kMetaVersion);
  PutFixed32(&meta, hierarchy_->k);
  PutFixed32(&meta, hierarchy_->NumVertices());
  PutFixed32(&meta, vias_enabled_ ? 1 : 0);
  for (VertexId v = 0; v < hierarchy_->NumVertices(); ++v) {
    PutVarint64(&meta, hierarchy_->level[v]);
    PutVarint64(&meta, IsDeleted(v) ? 1 : 0);
  }
  BlockFile mf;
  ISLABEL_RETURN_IF_ERROR(mf.Open(MetaPath(dir), /*truncate=*/true));
  ISLABEL_RETURN_IF_ERROR(mf.Append(meta.data(), meta.size(), nullptr));
  return mf.Flush();
}

Result<ISLabelIndex> ISLabelIndex::Load(const std::string& dir,
                                        bool labels_in_memory) {
  ISLabelIndex index;
  index.hierarchy_ = std::make_unique<VertexHierarchy>();

  // Meta.
  BlockFile mf;
  ISLABEL_RETURN_IF_ERROR(mf.Open(MetaPath(dir), /*truncate=*/false));
  std::string meta(mf.FileSize(), '\0');
  ISLABEL_RETURN_IF_ERROR(mf.ReadAt(0, meta.data(), meta.size()));
  Decoder dec(meta);
  std::uint32_t magic, version, k, n;
  if (!dec.GetFixed32(&magic) || magic != kMetaMagic) {
    return Status::Corruption("bad index meta magic");
  }
  if (!dec.GetFixed32(&version) || version != kMetaVersion) {
    return Status::Corruption("unsupported index meta version");
  }
  std::uint32_t vias_flag = 0;
  if (!dec.GetFixed32(&k) || !dec.GetFixed32(&n) ||
      !dec.GetFixed32(&vias_flag)) {
    return Status::Corruption("truncated index meta");
  }
  index.vias_enabled_ = vias_flag != 0;
  index.hierarchy_->k = k;
  index.hierarchy_->level.resize(n);
  index.hierarchy_->removed_adj.resize(n);
  index.deleted_.Resize(n);
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t level, del;
    if (!dec.GetVarint64(&level) || !dec.GetVarint64(&del)) {
      return Status::Corruption("truncated level array");
    }
    index.hierarchy_->level[v] = static_cast<std::uint32_t>(level);
    if (del != 0) index.deleted_.Set(v);
  }

  // Core graph.
  auto core = ReadGraphBinary(CorePath(dir));
  if (!core.ok()) return core.status();
  index.hierarchy_->g_k = std::move(core).value();
  // A core that lost its top vertices to deletion may span fewer ids; the
  // level array is authoritative for n.
  index.hierarchy_->stats.resize(1);
  index.hierarchy_->stats.back().num_edges = index.hierarchy_->g_k.NumEdges();

  // Labels.
  auto store = std::make_unique<LabelStore>();
  ISLABEL_RETURN_IF_ERROR(store->Open(LabelsPath(dir)));
  if (store->num_vertices() != n) {
    return Status::Corruption("label store vertex count mismatch");
  }
  if (labels_in_memory) {
    // Bulk-read the entry region in one contiguous I/O and decode straight
    // into the arena slab (IM-ISL).
    ISLABEL_RETURN_IF_ERROR(store->LoadAll(index.labels_.get()));
    index.labels_->ComputeSeedCuts(index.hierarchy_->level,
                                   index.hierarchy_->k);
  } else {
    index.store_ = std::move(store);
  }

  std::uint64_t core_vertices = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (index.hierarchy_->level[v] == k && !index.deleted_[v]) ++core_vertices;
  }
  index.hierarchy_->stats.back().num_vertices = core_vertices;
  index.build_stats_.k = k;
  index.build_stats_.core_vertices = core_vertices;
  index.build_stats_.core_edges = index.hierarchy_->g_k.NumEdges();
  index.ResetPool();
  return index;
}

}  // namespace islabel
