// LevelGraph: the mutable working graph G_i used during hierarchy
// construction. Adjacency lists are kept sorted by target id — the on-disk
// "adjacency list representation" of the paper, materialized in memory for
// the in-memory pipeline.

#ifndef ISLABEL_CORE_LEVEL_GRAPH_H_
#define ISLABEL_CORE_LEVEL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "graph/graph.h"
#include "util/bit_vector.h"

namespace islabel {

/// Mutable symmetric adjacency over the full vertex-id space; vertices
/// removed at earlier levels have alive=false and empty lists.
struct LevelGraph {
  std::vector<std::vector<HierEdge>> adj;
  BitVector alive;
  std::uint64_t num_alive = 0;

  static LevelGraph FromGraph(const Graph& g) {
    LevelGraph lg;
    const VertexId n = g.NumVertices();
    lg.adj.resize(n);
    lg.alive.Resize(n, true);
    lg.num_alive = n;
    for (VertexId v = 0; v < n; ++v) {
      auto nbrs = g.Neighbors(v);
      auto ws = g.NeighborWeights(v);
      lg.adj[v].reserve(nbrs.size());
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        lg.adj[v].emplace_back(nbrs[i], ws[i],
                               g.has_vias() ? g.NeighborVias(v)[i]
                                            : kInvalidVertex);
      }
    }
    return lg;
  }

  /// Undirected edge count (each edge appears in two lists).
  std::uint64_t CountEdges() const {
    std::uint64_t dir = 0;
    for (const auto& list : adj) dir += list.size();
    return dir / 2;
  }

  /// |G| = |V| + |E| (§2), the quantity the σ criterion compares.
  std::uint64_t SizeVE() const { return num_alive + CountEdges(); }

  /// Converts the remaining graph to an immutable CSR Graph spanning the
  /// full original id space (removed vertices keep empty adjacency).
  Graph ToGraph(bool keep_vias) const {
    EdgeList edges(static_cast<VertexId>(adj.size()));
    for (VertexId v = 0; v < adj.size(); ++v) {
      for (const HierEdge& e : adj[v]) {
        if (v < e.to) {
          edges.Add(v, e.to, e.w, keep_vias ? e.via : kInvalidVertex);
        }
      }
    }
    return Graph::FromEdgeList(std::move(edges), keep_vias);
  }
};

}  // namespace islabel

#endif  // ISLABEL_CORE_LEVEL_GRAPH_H_
