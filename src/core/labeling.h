// Vertex labeling (Definition 3) and its efficient top-down computation
// (Algorithm 4).
//
// label(v) holds one entry per ancestor u of v in the level-increasing
// DAG, with d(v,u) = the shortest strictly-level-increasing path length
// from v to u. d is an upper bound on dist_G(v,u) (Example 3: d(h,e)=4 >
// dist(h,e)=3) yet Lemma 5 shows it is exact for the max-level vertex of
// any shortest path, which is all Equation 1 needs.
//
// Two implementations are provided:
//   * ComputeLabelDefinition3 — the literal marked-vertex procedure of
//     Definition 3, per vertex; quadratic-ish and used as the test oracle.
//   * ComputeLabelsTopDown — Algorithm 4: initialize each label with the
//     vertex's DAG out-edges, then propagate complete labels from level
//     k-1 down to 1 (Corollary 1). This is the production path; it builds
//     the contiguous LabelArena directly and parallelizes each level
//     (vertices of L_i only read completed upper-level labels, so a level
//     is an embarrassingly parallel two-pass: size/prefix-sum the label
//     regions, then fill them concurrently).

#ifndef ISLABEL_CORE_LABELING_H_
#define ISLABEL_CORE_LABELING_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "core/label_arena.h"
#include "core/label_entry.h"
#include "core/options.h"
#include "util/io_stats.h"
#include "util/result.h"

namespace islabel {

/// Nested per-vertex labels. The LabelArena is the production layout; this
/// alias survives as the working representation of the external pipeline
/// and as the "nested" side of layout A/B benchmarks.
using LabelSet = std::vector<std::vector<LabelEntry>>;

/// Counters describing a labeling run.
struct LabelingStats {
  std::uint64_t total_entries = 0;
  std::uint64_t max_entries = 0;      // largest single label
  /// Serialized size estimate (the varint-coded on-disk footprint is
  /// smaller; this is the 12-byte-per-entry in-memory figure).
  std::uint64_t bytes_in_memory = 0;
};

/// Algorithm 4. Labels for every vertex of G, top-down, emitted as one
/// contiguous arena (seed cuts included). `num_threads` parallelizes each
/// level (0 = hardware concurrency); the result is byte-identical for
/// every thread count.
LabelArena ComputeLabelsTopDown(const VertexHierarchy& h,
                                LabelingStats* stats = nullptr,
                                std::uint32_t num_threads = 1);

/// Algorithm 4's I/O-efficient block nested loop join (§6.1.4): completed
/// upper-level labels stream from a disk file; the current level is
/// processed in blocks bounded by options.memory_budget_bytes. Produces
/// labels identical to ComputeLabelsTopDown with I/O accounted in *io.
/// Declared here, implemented in labeling_external.cc.
Result<LabelArena> ComputeLabelsTopDownExternal(const VertexHierarchy& h,
                                                const IndexOptions& options,
                                                LabelingStats* stats,
                                                IoStats* io);

/// Reusable cross-call state for ComputeLabelDefinition3: an epoch-stamped
/// dense best-distance array, so repeated oracle calls (tests sweep every
/// vertex) cost O(touched) instead of hashing.
struct Definition3Scratch {
  std::vector<LabelEntry> best;       // valid iff stamp[v] == epoch
  std::vector<std::uint32_t> stamp;
  std::vector<VertexId> touched;
  std::uint32_t epoch = 0;
};

/// Definition 3, literal, for one vertex. Test oracle. Pass a scratch to
/// amortize the dense arrays across calls; nullptr allocates locally.
std::vector<LabelEntry> ComputeLabelDefinition3(
    const VertexHierarchy& h, VertexId v,
    Definition3Scratch* scratch = nullptr);

/// Collapses a label-candidate multiset in place: sort by (ancestor,
/// dist, via) and keep the first record per ancestor, so the survivor is
/// the minimum distance with the via vertex as a deterministic tiebreak
/// independent of candidate generation order. Returns the deduped length.
/// The in-memory and external pipelines must share this exact rule to
/// stay bit-identical (tests assert arena equality).
std::size_t SortAndDedupeRange(LabelEntry* entries, std::size_t count);

}  // namespace islabel

#endif  // ISLABEL_CORE_LABELING_H_
