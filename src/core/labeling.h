// Vertex labeling (Definition 3) and its efficient top-down computation
// (Algorithm 4).
//
// label(v) holds one entry per ancestor u of v in the level-increasing
// DAG, with d(v,u) = the shortest strictly-level-increasing path length
// from v to u. d is an upper bound on dist_G(v,u) (Example 3: d(h,e)=4 >
// dist(h,e)=3) yet Lemma 5 shows it is exact for the max-level vertex of
// any shortest path, which is all Equation 1 needs.
//
// Two implementations are provided:
//   * ComputeLabelDefinition3 — the literal marked-vertex procedure of
//     Definition 3, per vertex; quadratic-ish and used as the test oracle.
//   * ComputeLabelsTopDown — Algorithm 4: initialize each label with the
//     vertex's DAG out-edges, then propagate complete labels from level
//     k-1 down to 1 (Corollary 1). This is the production path.

#ifndef ISLABEL_CORE_LABELING_H_
#define ISLABEL_CORE_LABELING_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "core/label_entry.h"
#include "core/options.h"
#include "util/io_stats.h"
#include "util/result.h"

namespace islabel {

/// All vertex labels, indexed by vertex id; each label is sorted by
/// ancestor id (the on-disk order, §6.2).
using LabelSet = std::vector<std::vector<LabelEntry>>;

/// Counters describing a labeling run.
struct LabelingStats {
  std::uint64_t total_entries = 0;
  std::uint64_t max_entries = 0;      // largest single label
  /// Serialized size estimate (the varint-coded on-disk footprint is
  /// smaller; this is the 12-byte-per-entry in-memory figure).
  std::uint64_t bytes_in_memory = 0;
};

/// Algorithm 4. Labels for every vertex of G, top-down.
LabelSet ComputeLabelsTopDown(const VertexHierarchy& h,
                              LabelingStats* stats = nullptr);

/// Algorithm 4's I/O-efficient block nested loop join (§6.1.4): completed
/// upper-level labels stream from a disk file; the current level is
/// processed in blocks bounded by options.memory_budget_bytes. Produces
/// labels identical to ComputeLabelsTopDown with I/O accounted in *io.
/// Declared here, implemented in labeling_external.cc.
Result<LabelSet> ComputeLabelsTopDownExternal(const VertexHierarchy& h,
                                              const IndexOptions& options,
                                              LabelingStats* stats,
                                              IoStats* io);

/// Definition 3, literal, for one vertex. Test oracle.
std::vector<LabelEntry> ComputeLabelDefinition3(const VertexHierarchy& h,
                                                VertexId v);

}  // namespace islabel

#endif  // ISLABEL_CORE_LABELING_H_
