// DistanceIndex: the abstract query surface every distance backend serves.
//
// The serving stack (engine pool → cache → catalog → TCP server) programs
// against this interface instead of a concrete index type, so one server
// can host IS-LABEL indexes, contraction hierarchies, or any mix of them
// across datasets and components. Concrete backends: ISLabelIndex
// (core/index.h), CHIndex (backends/ch_index.h), PartitionedIndex
// (catalog/partitioned_index.h, composing one backend per component) and
// Catalog::Handle (catalog/catalog.h, routing to a hot-swapped snapshot).
//
// Contract (see DESIGN.md §13 for the full argument):
//
//   * Thread-safety: every query entry point may be called from any
//     number of threads concurrently once the index is built/loaded.
//     Backends keep per-query scratch in internal pools (engine-pool
//     pattern); the index structure itself is immutable at query time.
//     Mutation (updates, Save/Load) must be quiesced by the caller.
//
//   * Cache generations: Query() is a template method. The base class
//     owns the optional DistanceCache and enforces the ordering that
//     makes cached answers safe across mutation: the generation is
//     snapshotted BEFORE the backend computes, and the answer is
//     inserted under that snapshot — any concurrent generation bump
//     (update, reload) makes the insert a no-op, so a cached answer can
//     only describe the index state current when its generation was
//     minted. Backends signal "answers may have changed" with
//     BumpCacheGeneration(); they never touch cache entries directly.
//
//   * Persistence: Save() writes a self-identifying directory (each
//     backend has its own magic-tagged files); backends/registry.h sniffs
//     and loads them, and the partitioned catalog records each part's
//     backend by name in its manifest. Unknown names fail with
//     Status::Corruption naming the offender — never misparse.
//
//   * Updates: update semantics are backend-specific and deliberately
//     NOT part of this interface. IS-LABEL supports the paper's §8.3
//     lazy insert/delete through its concrete type; CH is rebuild-only.

#ifndef ISLABEL_CORE_DISTANCE_INDEX_H_
#define ISLABEL_CORE_DISTANCE_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/distance_cache.h"
#include "graph/graph_defs.h"
#include "util/status.h"

namespace islabel {

struct QueryStats;  // core/query.h

namespace obs {
class MetricRegistry;  // obs/metrics.h
}  // namespace obs

/// The concrete index families a catalog can host. kAuto is a build-time
/// selector only (resolved per component by the registry's road-likeness
/// heuristic); a built index always reports kISLabel or kCH.
enum class BackendKind : std::uint8_t {
  kISLabel = 0,
  kCH = 1,
  kAuto = 2,
};

/// "islabel" / "ch" / "auto" — the names used by `--backend` flags and
/// the partition manifest.
const char* BackendKindName(BackendKind kind);

/// Parses a backend name; false (out untouched) for unknown names.
bool ParseBackendKind(std::string_view name, BackendKind* out);

/// Operator-facing size summary of one backend instance (the `stats`
/// verb and the partition-build per-part report).
struct DistanceIndexInfo {
  std::string backend;        // BackendKindName of the concrete backend
  VertexId vertices = 0;
  std::uint64_t entries = 0;  // label entries (IS-LABEL) / up-edges (CH)
  std::uint64_t bytes = 0;    // in-memory footprint of those entries
  std::string detail;         // backend-specific, e.g. "k=5" / "shortcuts=99"
};

/// Abstract exact point-to-point distance index over original-graph
/// vertex ids. See the file comment for the thread-safety, cache and
/// persistence contract.
class DistanceIndex {
 public:
  virtual ~DistanceIndex();

  // ---- Queries (all thread-safe) ----

  /// Exact distance from s to t; kInfDistance if disconnected.
  /// Non-virtual template method: consults the installed cache (stats-free
  /// calls only, so instrumented queries always measure the real backend)
  /// with the generation snapshotted before QueryUncached runs.
  Status Query(VertexId s, VertexId t, Distance* out,
               QueryStats* stats = nullptr);

  /// Exact shortest path (original-graph vertices, s first, t last);
  /// empty path + kInfDistance when disconnected. Backends built without
  /// path support fail with FailedPrecondition.
  virtual Status ShortestPath(VertexId s, VertexId t,
                              std::vector<VertexId>* path, Distance* dist) = 0;

  /// Answers every (s, t) pair, parallelized with `num_threads` workers
  /// (0 = hardware concurrency). out->size() == pairs.size(); pairs that
  /// fail individually get kInfDistance in *out and their error in
  /// *statuses when provided — otherwise the first per-pair error becomes
  /// the return value (the batch still completes).
  virtual Status QueryBatch(
      const std::vector<std::pair<VertexId, VertexId>>& pairs,
      std::vector<Distance>* out, std::uint32_t num_threads = 0,
      std::vector<Status>* statuses = nullptr);

  /// Distances from s to every target. All endpoints validated up front;
  /// any invalid endpoint fails the whole call.
  virtual Status QueryOneToMany(VertexId s, const std::vector<VertexId>& targets,
                                std::vector<Distance>* out,
                                QueryStats* stats = nullptr);

  /// Row-major |sources| x |targets| rectangle, rows in parallel.
  virtual Status QueryManyToMany(const std::vector<VertexId>& sources,
                                 const std::vector<VertexId>& targets,
                                 std::vector<Distance>* out,
                                 std::uint32_t num_threads = 0);

  // ---- Persistence / introspection ----

  /// Writes a self-identifying index directory; NotSupported by default
  /// (e.g. routing wrappers persist nothing themselves).
  virtual Status Save(const std::string& dir) const;

  virtual VertexId NumVertices() const = 0;
  /// True iff ShortestPath is available on this instance.
  virtual bool has_vias() const = 0;
  virtual DistanceIndexInfo Info() const = 0;

  // ---- Optional query-result cache ----

  /// Installs a distance cache consulted by Query (pass nullptr to
  /// remove). Install before serving starts; not thread-safe against
  /// in-flight queries.
  void set_distance_cache(std::shared_ptr<DistanceCache> cache) {
    distance_cache_ = std::move(cache);
  }
  DistanceCache* distance_cache() const { return distance_cache_.get(); }

  // ---- Optional telemetry (DESIGN.md §16) ----

  /// Registers backend-owned instruments (engine-pool gauges, lease-wait
  /// histograms) into `registry` and keeps them wired across internal
  /// pool resets. Idempotent; composite backends forward to their parts.
  /// Default: no-op. Call before serving, and again after a mutation
  /// that rebuilds internal pools is fine too.
  virtual void InstallMetrics(obs::MetricRegistry* registry);

 protected:
  DistanceIndex() = default;
  DistanceIndex(const DistanceIndex&) = default;
  DistanceIndex& operator=(const DistanceIndex&) = default;
  DistanceIndex(DistanceIndex&&) = default;
  DistanceIndex& operator=(DistanceIndex&&) = default;

  /// The backend computation behind Query(); runs after CheckQueryable
  /// and a cache miss. Must be thread-safe.
  virtual Status QueryUncached(VertexId s, VertexId t, Distance* out,
                               QueryStats* stats) = 0;

  /// Endpoint validation, run before the cache is consulted (so e.g. a
  /// cached pair naming a since-deleted endpoint still fails). Default:
  /// range check against NumVertices().
  virtual Status CheckQueryable(VertexId s, VertexId t) const;

  /// Invalidates every cached answer (updates, reloads, pool resets).
  void BumpCacheGeneration() {
    if (distance_cache_ != nullptr) distance_cache_->BumpGeneration();
  }

 private:
  std::shared_ptr<DistanceCache> distance_cache_;
};

}  // namespace islabel

#endif  // ISLABEL_CORE_DISTANCE_INDEX_H_
