// LabelEntry: one "(ancestor, d(v, ancestor))" pair of a vertex label
// (Definition 3), extended with the optional intermediate vertex used for
// shortest-path reconstruction (§8.1).
//
// This is a leaf header shared by the core labeling code and the storage
// layer's on-disk label format.

#ifndef ISLABEL_CORE_LABEL_ENTRY_H_
#define ISLABEL_CORE_LABEL_ENTRY_H_

#include "graph/graph_defs.h"

namespace islabel {

/// One entry of label(v): `node` is an ancestor u of v, `dist` is d(v,u) —
/// an upper bound on dist_G(v,u) that Lemma 5 proves exact where query
/// correctness needs it. `via` is the intermediate vertex x proving
/// d(v,u) = d(v,x) + d(x,u), or kInvalidVertex when (v,u) is an original
/// edge of G (or u == v).
struct LabelEntry {
  VertexId node = 0;
  VertexId via = kInvalidVertex;
  Distance dist = 0;

  LabelEntry() = default;
  LabelEntry(VertexId n, Distance d, VertexId via_v = kInvalidVertex)
      : node(n), via(via_v), dist(d) {}

  friend bool operator==(const LabelEntry& a, const LabelEntry& b) {
    return a.node == b.node && a.dist == b.dist && a.via == b.via;
  }
  /// Orders by ancestor id — the storage order that makes label
  /// intersection a linear merge (§6.2).
  friend bool operator<(const LabelEntry& a, const LabelEntry& b) {
    return a.node < b.node;
  }
};

}  // namespace islabel

#endif  // ISLABEL_CORE_LABEL_ENTRY_H_
