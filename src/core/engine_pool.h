// QueryEnginePool: thread-safe engine checkout over a shared index.
//
// At query time the hierarchy, the label slab/CSR and the on-disk label
// store are all immutable shared assets; what is NOT shareable is the
// QueryEngine, which owns mutable per-query scratch (seed buffers, radix
// heaps, epoch-stamped search state). The pool closes that gap: Acquire()
// hands the calling thread an engine of its own — a recycled one when a
// previous lease returned it, a freshly constructed one otherwise — as an
// RAII lease that flows the engine back into the free list when it dies.
// Steady-state serving therefore creates exactly as many engines as the
// peak number of concurrent queries, and the per-query overhead is one
// mutex lock/unlock pair on each side of the query.
//
// The pool synchronizes engine *ownership*, nothing else: updates (§8.3)
// and Save/Load still must not run concurrently with queries.

#ifndef ISLABEL_CORE_ENGINE_POOL_H_
#define ISLABEL_CORE_ENGINE_POOL_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "core/query.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace islabel {

class QueryEnginePool {
 public:
  /// Every engine gets a copy of `provider`; the hierarchy and the
  /// provider's backing storage (arena or store) must outlive the pool.
  QueryEnginePool(const VertexHierarchy* hierarchy, LabelProvider provider)
      : hierarchy_(hierarchy), provider_(provider) {}

  QueryEnginePool(const QueryEnginePool&) = delete;
  QueryEnginePool& operator=(const QueryEnginePool&) = delete;

  /// RAII engine checkout; movable, returns the engine on destruction.
  /// A default-constructed Lease is empty (get() == nullptr).
  class Lease {
   public:
    Lease() = default;
    Lease(QueryEnginePool* pool, std::unique_ptr<QueryEngine> engine)
        : pool_(pool), engine_(std::move(engine)) {}
    ~Lease() { Release(); }

    Lease(Lease&& o) noexcept
        : pool_(o.pool_), engine_(std::move(o.engine_)) {
      o.pool_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        Release();
        pool_ = o.pool_;
        engine_ = std::move(o.engine_);
        o.pool_ = nullptr;
      }
      return *this;
    }

    QueryEngine* get() const { return engine_.get(); }
    QueryEngine* operator->() const { return engine_.get(); }
    QueryEngine& operator*() const { return *engine_; }
    explicit operator bool() const { return engine_ != nullptr; }

   private:
    void Release();

    QueryEnginePool* pool_ = nullptr;
    std::unique_ptr<QueryEngine> engine_;
  };

  /// Returns a leased engine. Never blocks on other queries; an engine is
  /// held by at most one lease at a time.
  Lease Acquire();

  /// Engines constructed over the pool's lifetime — equals the peak number
  /// of simultaneous leases observed (diagnostics/tests).
  std::size_t EnginesCreated() const {
    MutexLock lock(&mu_);
    return created_;
  }

  /// Registry-backed instruments (DESIGN.md §16). The gauge and counter
  /// are SHARED across pools via Add/Inc deltas, so pool occupancy
  /// survives ResetPool and sums across partitioned-index parts. All
  /// pointers must outlive the pool; null fields disable that signal.
  struct PoolMetrics {
    obs::Histogram* lease_wait = nullptr;   // Acquire latency, µs
    obs::Gauge* leases_active = nullptr;    // +1 per live lease
    obs::Counter* engines_created = nullptr;
    const Clock* clock = nullptr;           // needed for lease_wait
  };
  void SetMetrics(const PoolMetrics& metrics) {
    lease_wait_.store(metrics.lease_wait, std::memory_order_release);
    leases_active_.store(metrics.leases_active, std::memory_order_release);
    engines_created_.store(metrics.engines_created,
                           std::memory_order_release);
    metrics_clock_.store(metrics.clock, std::memory_order_release);
  }

 private:
  friend class Lease;
  void Return(std::unique_ptr<QueryEngine> engine);
  Lease AcquireInternal();

  const VertexHierarchy* hierarchy_;
  LabelProvider provider_;
  mutable Mutex mu_;
  std::vector<std::unique_ptr<QueryEngine>> free_ GUARDED_BY(mu_);
  std::size_t created_ GUARDED_BY(mu_) = 0;

  // Installed once before serving; read lock-free on the query path.
  std::atomic<obs::Histogram*> lease_wait_{nullptr};
  std::atomic<obs::Gauge*> leases_active_{nullptr};
  std::atomic<obs::Counter*> engines_created_{nullptr};
  std::atomic<const Clock*> metrics_clock_{nullptr};
};

}  // namespace islabel

#endif  // ISLABEL_CORE_ENGINE_POOL_H_
