// I/O-efficient top-down vertex labeling (Algorithm 4, lines 5-17): the
// block nested loop join.
//
// Completed labels (levels j > i plus the residual core) live in an
// append-only disk file BU. The labels under construction — those of the
// current level L_i — are processed in memory-budgeted blocks BL: for each
// block, BU is scanned sequentially once, and every completed label(u)
// found there is joined into the block's label(v) accumulators for each v
// with u ∈ adj_{G_i}(v). Finished blocks are appended to BU, which is then
// ready for level i-1.
//
// This realizes the paper's I/O bound O(Σ_i (bL(i)/M) · (bU(i)/B)): the
// number of BU scans per level is the number of BL blocks. Results are
// bit-identical to ComputeLabelsTopDown (tests assert this).

#include <algorithm>
#include <unordered_map>

#include "core/labeling.h"
#include "core/options.h"
#include "storage/block_file.h"
#include "storage/external_sorter.h"
#include "util/io_stats.h"
#include "util/result.h"

namespace islabel {

namespace {

// On-disk label record: header (vertex, entry count) + raw LabelEntry
// payload.
struct LabelHeader {
  VertexId vertex;
  std::uint32_t count;
};

Status AppendLabel(BlockFile* file, VertexId v,
                   const std::vector<LabelEntry>& label) {
  LabelHeader h{v, static_cast<std::uint32_t>(label.size())};
  ISLABEL_RETURN_IF_ERROR(file->Append(&h, sizeof(h), nullptr));
  if (!label.empty()) {
    ISLABEL_RETURN_IF_ERROR(
        file->Append(label.data(), label.size() * sizeof(LabelEntry),
                     nullptr));
  }
  return Status::OK();
}

// Sequential scanner over a BU file.
class LabelScanner {
 public:
  explicit LabelScanner(BlockFile* file) : file_(file) {}

  /// Reads the next (vertex, label) record; false at end-of-file.
  Status Next(VertexId* v, std::vector<LabelEntry>* label, bool* ok) {
    if (pos_ >= end_) {
      *ok = false;
      return Status::OK();
    }
    LabelHeader h;
    ISLABEL_RETURN_IF_ERROR(file_->ReadAt(pos_, &h, sizeof(h)));
    pos_ += sizeof(h);
    label->resize(h.count);
    if (h.count > 0) {
      ISLABEL_RETURN_IF_ERROR(
          file_->ReadAt(pos_, label->data(), h.count * sizeof(LabelEntry)));
      pos_ += h.count * sizeof(LabelEntry);
    }
    *v = h.vertex;
    *ok = true;
    return Status::OK();
  }

  /// Restricts the scan to the file's current contents (records appended
  /// later belong to lower levels and must not be seen by this scan).
  void SnapshotEnd() { end_ = file_->FileSize(); }
  void Rewind() { pos_ = 0; }

 private:
  BlockFile* file_;
  std::uint64_t pos_ = 0;
  std::uint64_t end_ = 0;
};

}  // namespace

Result<LabelArena> ComputeLabelsTopDownExternal(const VertexHierarchy& h,
                                                const IndexOptions& options,
                                                LabelingStats* stats,
                                                IoStats* io) {
  const VertexId n = h.NumVertices();
  LabelSet labels(n);

  BlockFile bu;
  const std::string bu_path = NextTempPath(options.tmp_dir, "labels_bu");
  ISLABEL_RETURN_IF_ERROR(bu.Open(bu_path, /*truncate=*/true));

  // Initialization (lines 1-4): residual-core labels are trivial; they seed
  // BU. (Their records are also final, so they go straight to the output.)
  for (VertexId v = 0; v < n; ++v) {
    if (h.level[v] == h.k) {
      labels[v] = {LabelEntry(v, 0)};
      ISLABEL_RETURN_IF_ERROR(AppendLabel(&bu, v, labels[v]));
    }
  }

  // Top-down: one level at a time, each level in BL blocks.
  const std::size_t block_bytes =
      std::max<std::size_t>(options.memory_budget_bytes, 1024);
  std::unordered_map<VertexId, std::vector<VertexId>> consumers;
  std::vector<std::vector<LabelEntry>> accumulators;
  std::unordered_map<VertexId, std::size_t> acc_index;

  for (std::uint32_t i = h.k; i-- > 1;) {
    const std::vector<VertexId>& level = h.levels[i];
    std::size_t begin = 0;
    while (begin < level.size()) {
      // Form the next BL block under the memory budget (estimated by the
      // block's adjacency volume; accumulator growth is proportional).
      std::size_t end = begin;
      std::size_t bytes = 0;
      while (end < level.size() &&
             (end == begin || bytes < block_bytes)) {
        bytes += sizeof(LabelEntry) *
                 (1 + 4 * h.removed_adj[level[end]].size());
        ++end;
      }

      // Index: which block vertices listen to which upper vertex, plus the
      // per-edge weight/via. consumers[u] -> block members adjacent to u.
      consumers.clear();
      accumulators.assign(end - begin, {});
      acc_index.clear();
      for (std::size_t b = begin; b < end; ++b) {
        const VertexId v = level[b];
        acc_index[v] = b - begin;
        // Heuristic reservation (matches the block-sizing estimate above);
        // labels larger than ~4 entries per upper neighbor still grow.
        accumulators[b - begin].reserve(1 + 4 * h.removed_adj[v].size());
        accumulators[b - begin].emplace_back(v, 0);
        for (const HierEdge& e : h.removed_adj[v]) {
          consumers[e.to].push_back(v);
        }
      }

      // One sequential BU scan joins every completed upper label into the
      // block (lines 8-17).
      LabelScanner scan(&bu);
      scan.SnapshotEnd();
      scan.Rewind();
      VertexId u = 0;
      std::vector<LabelEntry> label_u;
      bool ok = false;
      while (true) {
        ISLABEL_RETURN_IF_ERROR(scan.Next(&u, &label_u, &ok));
        if (!ok) break;
        auto it = consumers.find(u);
        if (it == consumers.end()) continue;
        for (VertexId v : it->second) {
          // Weight/via of the edge (v, u) in G_i.
          const auto& adj = h.removed_adj[v];
          auto eit = std::lower_bound(
              adj.begin(), adj.end(), u,
              [](const HierEdge& e, VertexId node) { return e.to < node; });
          // adj is sorted by target and u is guaranteed present.
          auto& acc = accumulators[acc_index[v]];
          for (const LabelEntry& le : label_u) {
            const VertexId via = (le.node == u) ? eit->via : u;
            acc.emplace_back(le.node,
                             static_cast<Distance>(eit->w) + le.dist, via);
          }
        }
      }

      // Finish the block: dedupe, emit to the output and to BU.
      for (std::size_t b = begin; b < end; ++b) {
        const VertexId v = level[b];
        auto& acc = accumulators[b - begin];
        // The shared collapse rule keeps this pipeline bit-identical to
        // the in-memory one.
        acc.resize(SortAndDedupeRange(acc.data(), acc.size()));
        labels[v] = acc;
        ISLABEL_RETURN_IF_ERROR(AppendLabel(&bu, v, labels[v]));
      }
      begin = end;
    }
  }

  if (io != nullptr) *io += bu.stats();
  bu.Close();
  std::remove(bu_path.c_str());

  if (stats != nullptr) {
    *stats = LabelingStats{};
    for (const auto& l : labels) {
      stats->total_entries += l.size();
      stats->max_entries =
          std::max<std::uint64_t>(stats->max_entries, l.size());
      stats->bytes_in_memory += l.size() * sizeof(LabelEntry);
    }
  }
  // Flatten into the arena layout the query layer serves, releasing each
  // nested label as it is copied so peak memory stays ~one label set;
  // identical to the in-memory path (tests assert arena equality).
  LabelArena arena = LabelArena::FromNestedConsuming(&labels);
  arena.ComputeSeedCuts(h.level, h.k);
  return arena;
}

}  // namespace islabel
