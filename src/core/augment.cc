#include "core/augment.h"

#include <algorithm>
#include <limits>

#include "util/bit_vector.h"

namespace islabel {

namespace {

// One directed augmenting-edge record; mirrors the EA array of Algorithm 3.
struct EaRecord {
  VertexId src;
  VertexId dst;
  Weight w;
  VertexId via;
};

}  // namespace

Result<AugmentStats> AugmentInPlace(
    LevelGraph* g, const std::vector<VertexId>& removed,
    const std::vector<std::vector<HierEdge>>& removed_adj) {
  AugmentStats stats;
  const VertexId n = static_cast<VertexId>(g->adj.size());

  BitVector in_removed(n);
  for (VertexId v : removed) in_removed.Set(v);

  // Line 2 of Algorithm 3: delete the removed vertices and their incident
  // edges. A filter pass over each surviving list preserves sort order.
  for (VertexId v : removed) {
    if (!g->alive[v]) {
      return Status::FailedPrecondition("removing a dead vertex");
    }
    g->adj[v].clear();
    g->adj[v].shrink_to_fit();
    g->alive.Clear(v);
  }
  g->num_alive -= removed.size();
  // Only lists that touched a removed vertex need filtering; find them from
  // the removed adjacency snapshots rather than scanning every list.
  for (VertexId v : removed) {
    for (const HierEdge& e : removed_adj[v]) {
      if (in_removed[e.to]) {
        return Status::FailedPrecondition(
            "removed set is not independent: edge inside L_i");
      }
      auto& list = g->adj[e.to];
      std::size_t out = 0;
      for (std::size_t i = 0; i < list.size(); ++i) {
        if (!in_removed[list[i].to]) list[out++] = list[i];
      }
      list.resize(out);
    }
  }

  // Lines 3-6: the 2-hop self-join producing EA. Each pair u < w of
  // neighbors of a removed v yields both directed copies.
  std::vector<EaRecord> ea;
  for (VertexId v : removed) {
    const auto& adj = removed_adj[v];
    for (std::size_t i = 0; i < adj.size(); ++i) {
      for (std::size_t j = i + 1; j < adj.size(); ++j) {
        const std::uint64_t wide =
            static_cast<std::uint64_t>(adj[i].w) + adj[j].w;
        if (wide > std::numeric_limits<Weight>::max()) {
          return Status::OutOfRange(
              "augmenting edge weight overflows the Weight type");
        }
        const Weight w = static_cast<Weight>(wide);
        ea.push_back({adj[i].to, adj[j].to, w, v});
        ea.push_back({adj[j].to, adj[i].to, w, v});
        ++stats.pairs_considered;
      }
    }
  }

  // Line 7: sort EA by vertex ids (weight as tiebreak so the min-weight
  // copy of duplicate pairs comes first).
  std::sort(ea.begin(), ea.end(), [](const EaRecord& a, const EaRecord& b) {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    if (a.w != b.w) return a.w < b.w;
    // Deterministic tie-break among equal-weight duplicates so that the
    // surviving via vertex is pipeline-independent.
    return a.via < b.via;
  });

  // Collapse duplicate (src, dst) records; the sort put the minimum-weight
  // copy first, so keeping the first occurrence applies the min() rule.
  std::size_t uniq = 0;
  for (std::size_t i = 0; i < ea.size(); ++i) {
    if (uniq > 0 && ea[uniq - 1].src == ea[i].src &&
        ea[uniq - 1].dst == ea[i].dst) {
      continue;
    }
    ea[uniq++] = ea[i];
  }
  ea.resize(uniq);

  // Line 8: merge EA into the (sorted) adjacency lists, keeping the smaller
  // weight for duplicates. Process one source vertex's run at a time.
  std::size_t pos = 0;
  std::vector<HierEdge> merged;
  while (pos < ea.size()) {
    const VertexId src = ea[pos].src;
    std::size_t end = pos;
    while (end < ea.size() && ea[end].src == src) ++end;

    auto& list = g->adj[src];
    merged.clear();
    merged.reserve(list.size() + (end - pos));
    std::size_t li = 0;
    std::size_t ei = pos;
    while (li < list.size() || ei < end) {
      if (ei >= end || (li < list.size() && list[li].to < ea[ei].dst)) {
        merged.push_back(list[li++]);
      } else if (li >= list.size() || ea[ei].dst < list[li].to) {
        merged.emplace_back(ea[ei].dst, ea[ei].w, ea[ei].via);
        // Each undirected insertion is counted once (on the src < dst copy).
        if (src < ea[ei].dst) ++stats.edges_inserted;
        ++ei;
      } else {
        // Same target: keep the smaller weight (and its via).
        if (ea[ei].w < list[li].w) {
          merged.emplace_back(ea[ei].dst, ea[ei].w, ea[ei].via);
          if (src < ea[ei].dst) ++stats.weights_lowered;
        } else {
          merged.push_back(list[li]);
        }
        ++li;
        ++ei;
      }
    }
    list.swap(merged);
    pos = end;
  }

  return stats;
}

}  // namespace islabel
