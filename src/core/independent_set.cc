#include "core/independent_set.h"

#include <algorithm>
#include <numeric>

namespace islabel {

std::vector<VertexId> ComputeIndependentSet(const LevelGraph& g,
                                            IsOrder order, Rng* rng) {
  const VertexId n = static_cast<VertexId>(g.adj.size());

  // Collect alive vertices in the configured consideration order. This is
  // the "sort adjacency lists by degree" step of Algorithm 2; in memory the
  // sort is over (degree, id) pairs instead of list payloads.
  std::vector<VertexId> scan_order;
  scan_order.reserve(g.num_alive);
  for (VertexId v = 0; v < n; ++v) {
    if (g.alive[v]) scan_order.push_back(v);
  }
  switch (order) {
    case IsOrder::kMinDegree:
      std::stable_sort(scan_order.begin(), scan_order.end(),
                       [&g](VertexId a, VertexId b) {
                         return g.adj[a].size() < g.adj[b].size();
                       });
      break;
    case IsOrder::kMaxDegree:
      std::stable_sort(scan_order.begin(), scan_order.end(),
                       [&g](VertexId a, VertexId b) {
                         return g.adj[a].size() > g.adj[b].size();
                       });
      break;
    case IsOrder::kRandom:
      for (std::size_t i = scan_order.size(); i > 1; --i) {
        std::swap(scan_order[i - 1], scan_order[rng->Uniform(i)]);
      }
      break;
  }

  // Greedy scan with the L' exclusion set.
  BitVector excluded(n);
  std::vector<VertexId> selected;
  for (VertexId u : scan_order) {
    if (excluded[u]) continue;
    selected.push_back(u);
    for (const HierEdge& e : g.adj[u]) excluded.Set(e.to);
  }
  std::sort(selected.begin(), selected.end());
  return selected;
}

}  // namespace islabel
