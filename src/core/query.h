// Query processing over the k-level vertex hierarchy (§5.2).
//
// A query (s, t) is answered in two stages:
//   1. Fetch label(s) and label(t) (a borrowed LabelView over the arena
//      slab, or one disk read each — the paper's Time (a)) and evaluate
//      Equation 1 over their intersection, giving the pruning bound µ.
//   2. If the query is Type 1 — both endpoints outside G_k and at least one
//      label not reaching G_k — µ is the answer (Theorem 3). Otherwise run
//      the label-based bidirectional Dijkstra of Algorithm 1 on G_k, seeded
//      with the label entries that land in G_k and pruned by
//      min(FQ) + min(RQ) >= µ (Theorem 4). This is the paper's Time (b).
//
// The engine owns every piece of per-query state (seed buffers, search
// arrays, heaps); after the first query on a given hierarchy the hot path
// performs no heap allocation.

#ifndef ISLABEL_CORE_QUERY_H_
#define ISLABEL_CORE_QUERY_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "core/label.h"
#include "core/label_arena.h"
#include "core/labeling.h"
#include "storage/label_store.h"
#include "util/radix_heap.h"
#include "util/status.h"

namespace islabel {

/// Where the two endpoints sit relative to G_k — the three query classes of
/// Table 5 (1: both in G_k, 2: exactly one, 3: neither).
enum class LocationType : std::uint8_t {
  kBothInCore = 1,
  kOneInCore = 2,
  kNoneInCore = 3,
};

/// Per-query measurements backing Tables 4, 5 and 8.
struct QueryStats {
  double label_fetch_seconds = 0.0;  // Time (a)
  double search_seconds = 0.0;       // Time (b)
  std::uint64_t label_ios = 0;       // physical label reads issued
  LocationType location = LocationType::kNoneInCore;
  bool used_search = false;          // false = answered by Equation 1 alone
  std::uint64_t settled = 0;         // vertices settled by bi-Dijkstra
  std::uint64_t relaxed = 0;         // edge relaxations
  std::size_t intersection_size = 0;
};

/// How a path-capturing query met in the middle.
enum class MeetKind : std::uint8_t {
  kNone = 0,  // unreachable
  kEq1 = 1,   // µ from Equation 1 (common ancestor witness)
  kSearch = 2 // bi-Dijkstra meet vertex in G_k
};

/// One G_k tree edge on a reconstructed search path.
struct PathStep {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  VertexId via = kInvalidVertex;  // augmenting-edge intermediate, if any
};

/// Everything path reconstruction (§8.1) needs from a query.
struct PathCapture {
  MeetKind kind = MeetKind::kNone;
  Distance dist = kInfDistance;
  VertexId meet = kInvalidVertex;
  // kind == kEq1: the two label entries of the witness.
  LabelEntry eq1_s;
  LabelEntry eq1_t;
  // kind == kSearch: label entries seeding each side's chain (node is the
  // chain's first G_k vertex), then the G_k tree edges toward `meet`,
  // ordered from seed to meet.
  LabelEntry seed_s;
  LabelEntry seed_t;
  std::vector<PathStep> steps_s;
  std::vector<PathStep> steps_t;
};

/// Serves labels from the contiguous LabelArena (the paper's IM-ISL), a
/// nested LabelSet (layout A/B benchmarks), or a disk-resident LabelStore
/// (one read per label).
class LabelProvider {
 public:
  explicit LabelProvider(const LabelArena* arena) : arena_(arena) {}
  explicit LabelProvider(const LabelSet* nested) : nested_(nested) {}
  explicit LabelProvider(LabelStore* store) : store_(store) {}

  /// Points *view at label(v); `scratch` backs the disk path. *seed_start
  /// (optional) receives the arena's precomputed first-core cut — always a
  /// valid scan start, 0 when unknown.
  Status View(VertexId v, LabelView* view, std::vector<LabelEntry>* scratch,
              std::uint64_t* ios, std::uint32_t* seed_start = nullptr);

  bool on_disk() const { return store_ != nullptr; }

 private:
  const LabelArena* arena_ = nullptr;
  const LabelSet* nested_ = nullptr;
  LabelStore* store_ = nullptr;
};

/// Executes distance queries against a built hierarchy + labels.
/// Owns reusable per-query scratch; not thread-safe (clone one engine per
/// thread if needed — the hierarchy itself is immutable and shared).
class QueryEngine {
 public:
  QueryEngine(const VertexHierarchy* hierarchy, LabelProvider provider);

  /// Point-to-point distance (Equation 1 / Algorithm 1). kInfDistance means
  /// unreachable.
  Status Query(VertexId s, VertexId t, Distance* out,
               QueryStats* stats = nullptr);

  /// Distance plus the bookkeeping needed to reconstruct the path.
  Status DistanceWithCapture(VertexId s, VertexId t, PathCapture* capture,
                             QueryStats* stats = nullptr);

  /// One-to-many: distances from s to every target (out[i] = d(s,
  /// targets[i])). label(s) is fetched and its Algorithm 1 seeds extracted
  /// once, and the forward bi-Dijkstra state (the "forward ball") is a
  /// single Dijkstra shared by all targets — it only ever grows, so work
  /// spent expanding from s amortizes across the batch. `stats` (optional)
  /// receives aggregate counters (label_ios/settled/relaxed summed over
  /// the batch; location/intersection fields are not meaningful here).
  Status QueryOneToMany(VertexId s, const VertexId* targets,
                        std::size_t num_targets, Distance* out,
                        QueryStats* stats = nullptr);
  Status QueryOneToMany(VertexId s, const std::vector<VertexId>& targets,
                        std::vector<Distance>* out,
                        QueryStats* stats = nullptr) {
    out->assign(targets.size(), kInfDistance);
    return QueryOneToMany(s, targets.data(), targets.size(), out->data(),
                          stats);
  }

  /// Ablation hook (bench_ablation_pruning): when true, the bi-Dijkstra
  /// starts with µ = ∞ instead of the Equation-1 bound; answers stay exact
  /// (the final result still takes min with Equation 1) but the search
  /// loses its pruning.
  void set_disable_mu_pruning(bool v) { disable_mu_pruning_ = v; }

  const VertexHierarchy& hierarchy() const { return *h_; }

  /// Test hook: plants the epoch counter so the wrap path (one in 2^32
  /// queries) can be exercised deterministically.
  void SetEpochForTesting(std::uint32_t epoch) { epoch_ = epoch; }

 private:
  Status Run(VertexId s, VertexId t, Distance* out, QueryStats* stats,
             PathCapture* capture);

  /// Algorithm 1 stage 2, over the engine-owned seeds_[01]_ buffers.
  Distance BiDijkstra(Distance mu, QueryStats* stats, PathCapture* capture);

  /// The Algorithm 1 search loop with independent per-side epochs — the
  /// one-to-many path keeps the forward side warm across targets.
  Distance SearchLoop(Distance mu, std::uint32_t fwd_epoch,
                      std::uint32_t rev_epoch, QueryStats* stats,
                      PathCapture* capture);

  void EnsureScratch();
  /// Guarantees the next `count` epoch bumps cannot wrap the 32-bit
  /// counter (stamps compare for exact equality, so an epoch value may
  /// never be reused while stale stamps survive). Call after
  /// EnsureScratch so a reset covers the full — possibly grown — range.
  void ReserveEpochs(std::uint64_t count);
  void TraceSide(int side, VertexId meet, const LabelEntry* seeds_begin,
                 std::size_t seeds_count, LabelEntry* seed_out,
                 std::vector<PathStep>* steps_out) const;

  const VertexHierarchy* h_;
  LabelProvider provider_;

  // Epoch-stamped per-vertex search state; allocated lazily at first query,
  // reused across queries without O(n) clearing. One packed record per
  // vertex so a relaxation touches a single cache line instead of five
  // parallel arrays.
  struct NodeState {
    Distance dist = kInfDistance;
    std::uint32_t stamp = 0;          // epoch when dist became valid
    std::uint32_t settled_stamp = 0;
    VertexId parent = kInvalidVertex;      // kInvalidVertex = seeded entry
    VertexId parent_via = kInvalidVertex;  // via of the parent edge
  };
  std::vector<NodeState> sides_[2];
  std::uint32_t epoch_ = 0;

  // Reusable per-query buffers (capacity persists across queries; the hot
  // path only clears them). seeds_[01]_ hold the Algorithm 1 seeds;
  // pq_[01]_ are monotone radix heaps (Dijkstra pops keys in
  // non-decreasing order and every push is pop + ω ≥ pop, so the monotone
  // contract holds per side); fetch_[01]_ back the disk-resident label
  // decode; self_[01]_ hold the synthesized trivial label of a core
  // endpoint.
  std::vector<LabelEntry> seeds_[2];
  RadixHeap pq_[2];
  std::vector<LabelEntry> fetch_[2];
  LabelEntry self_[2];
  bool disable_mu_pruning_ = false;
};

}  // namespace islabel

#endif  // ISLABEL_CORE_QUERY_H_
