// Build-time configuration for the IS-LABEL index.

#ifndef ISLABEL_CORE_OPTIONS_H_
#define ISLABEL_CORE_OPTIONS_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace islabel {

/// Order in which Algorithm 2 considers vertices for the independent set.
/// The paper uses min-degree-first (the greedy approximation of maximum
/// independent set [16]); the alternatives exist for the ablation bench.
enum class IsOrder {
  kMinDegree,
  kRandom,
  kMaxDegree,
};

/// Options controlling hierarchy construction and labeling.
struct IndexOptions {
  /// σ of §5.1: stop peeling at the first level i ≥ 2 with
  /// |G_i| / |G_{i-1}| > sigma (|G| = |V| + |E|). The paper's default
  /// threshold is 0.95; Table 7 uses 0.90.
  double sigma = 0.95;

  /// If nonzero, ignore sigma and terminate at exactly this level (the
  /// Table 6 experiment: forced k around the auto-selected one).
  std::uint32_t forced_k = 0;

  /// Peel every level regardless of sigma (k = h + 1, G_k empty) — the
  /// §4 "full hierarchy" in which every query is answered by Equation 1.
  bool full_hierarchy = false;

  /// Safety bound on the number of levels (0 = none). Construction stops
  /// with k = max_levels when reached.
  std::uint32_t max_levels = 0;

  /// Keep per-edge / per-entry intermediate vertices so shortest *paths*
  /// (not just distances) can be reconstructed (§8.1). Costs one extra
  /// VertexId per augmenting edge and label entry.
  bool keep_vias = true;

  /// Vertex consideration order for the independent set (see IsOrder).
  IsOrder is_order = IsOrder::kMinDegree;

  /// Seed for IsOrder::kRandom.
  std::uint64_t seed = 42;

  /// Worker threads for the top-down labeling (level-parallel, Corollary 1;
  /// DESIGN.md "Labeling threading model"). Labels are byte-identical for
  /// every value. 0 = one per hardware thread.
  std::uint32_t num_threads = 1;

  /// If nonzero, run the I/O-efficient construction pipeline (§6) with
  /// this many bytes of working memory, spilling through tmp_dir; the
  /// result is bit-identical to the in-memory pipeline, with I/O counted.
  std::uint64_t memory_budget_bytes = 0;

  /// Spill directory for the external pipeline.
  std::string tmp_dir = "/tmp";

  /// Capacity (in vertices) of the L' exclusion buffer of Algorithm 2's
  /// external variant; 0 = unbounded. When the buffer fills, the on-disk
  /// copy of G'_i is rewritten to evict excluded vertices — exercised by
  /// tests with tiny capacities.
  std::uint64_t lprime_buffer_capacity = 0;

  /// Returns OK iff the option combination is valid.
  Status Validate() const;
};

}  // namespace islabel

#endif  // ISLABEL_CORE_OPTIONS_H_
