#include "core/query.h"

#include <algorithm>
#include <queue>

#include "util/timer.h"

namespace islabel {

namespace {

/// Saturating add treating kInfDistance as +infinity.
inline Distance SatAdd(Distance a, Distance b) {
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  if (a > kInfDistance - b) return kInfDistance;
  return a + b;
}

}  // namespace

Status LabelProvider::View(VertexId v, const std::vector<LabelEntry>** view,
                           std::vector<LabelEntry>* scratch,
                           std::uint64_t* ios) {
  if (mem_ != nullptr) {
    if (v >= mem_->size()) return Status::OutOfRange("vertex out of range");
    *view = &(*mem_)[v];
    return Status::OK();
  }
  ISLABEL_RETURN_IF_ERROR(store_->GetLabel(v, scratch));
  if (ios != nullptr) *ios += 1;
  *view = scratch;
  return Status::OK();
}

QueryEngine::QueryEngine(const VertexHierarchy* hierarchy,
                         LabelProvider provider)
    : h_(hierarchy), provider_(provider) {}

void QueryEngine::EnsureScratch() {
  const std::size_t n = h_->level.size();
  for (SideState& s : sides_) {
    if (s.dist.size() != n) {
      s.dist.assign(n, kInfDistance);
      s.parent.assign(n, kInvalidVertex);
      s.parent_via.assign(n, kInvalidVertex);
      s.stamp.assign(n, 0);
      s.settled_stamp.assign(n, 0);
    }
  }
}

Status QueryEngine::Query(VertexId s, VertexId t, Distance* out,
                          QueryStats* stats) {
  return Run(s, t, out, stats, nullptr);
}

Status QueryEngine::DistanceWithCapture(VertexId s, VertexId t,
                                        PathCapture* capture,
                                        QueryStats* stats) {
  *capture = PathCapture{};
  Distance d = kInfDistance;
  ISLABEL_RETURN_IF_ERROR(Run(s, t, &d, stats, capture));
  capture->dist = d;
  return Status::OK();
}

Status QueryEngine::Run(VertexId s, VertexId t, Distance* out,
                        QueryStats* stats, PathCapture* capture) {
  const VertexId n = h_->NumVertices();
  if (s >= n || t >= n) {
    return Status::OutOfRange("query vertex id out of range");
  }
  if (stats != nullptr) *stats = QueryStats{};

  if (s == t) {
    *out = 0;
    if (capture != nullptr) {
      capture->kind = MeetKind::kEq1;
      capture->meet = s;
      capture->eq1_s = LabelEntry(s, 0);
      capture->eq1_t = LabelEntry(s, 0);
    }
    return Status::OK();
  }

  // Stage 1: label retrieval — the paper's query Time (a). Core vertices
  // carry the trivial label {(v, 0)}, so their lookup is synthesized
  // without touching the store; this is why the paper's Type 1 queries
  // (both endpoints in G_k) have Time (a) = 0.
  WallTimer fetch_timer;
  std::uint64_t ios = 0;
  const std::vector<LabelEntry>* label_s = nullptr;
  const std::vector<LabelEntry>* label_t = nullptr;
  if (h_->InCore(s)) {
    scratch_s_.assign(1, LabelEntry(s, 0));
    label_s = &scratch_s_;
  } else {
    ISLABEL_RETURN_IF_ERROR(provider_.View(s, &label_s, &scratch_s_, &ios));
  }
  if (h_->InCore(t)) {
    scratch_t_.assign(1, LabelEntry(t, 0));
    label_t = &scratch_t_;
  } else {
    ISLABEL_RETURN_IF_ERROR(provider_.View(t, &label_t, &scratch_t_, &ios));
  }
  const Eq1Result eq1 = EvaluateEq1(*label_s, *label_t);
  if (stats != nullptr) {
    stats->label_fetch_seconds = fetch_timer.ElapsedSeconds();
    stats->label_ios = ios;
    const int in_core =
        (h_->InCore(s) ? 1 : 0) + (h_->InCore(t) ? 1 : 0);
    stats->location = in_core == 2   ? LocationType::kBothInCore
                      : in_core == 1 ? LocationType::kOneInCore
                                     : LocationType::kNoneInCore;
    stats->intersection_size = eq1.intersection_size;
  }
  if (capture != nullptr && eq1.witness != kInvalidVertex) {
    capture->kind = MeetKind::kEq1;
    capture->meet = eq1.witness;
    capture->eq1_s = eq1.s_entry;
    capture->eq1_t = eq1.t_entry;
  }

  // Seeds: label entries landing in G_k (Algorithm 1 lines 1-2). Empty on
  // either side means the query is Type 1 and Equation 1 already answered
  // it (Theorem 3).
  std::vector<LabelEntry> seeds_s, seeds_t;
  for (const LabelEntry& e : *label_s) {
    if (h_->InCore(e.node)) seeds_s.push_back(e);
  }
  for (const LabelEntry& e : *label_t) {
    if (h_->InCore(e.node)) seeds_t.push_back(e);
  }
  if (seeds_s.empty() || seeds_t.empty()) {
    *out = eq1.dist;
    return Status::OK();
  }

  // Stage 2: label-based bidirectional Dijkstra on G_k — Time (b).
  WallTimer search_timer;
  if (stats != nullptr) stats->used_search = true;
  const Distance mu = disable_mu_pruning_ ? kInfDistance : eq1.dist;
  Distance d = BiDijkstra(seeds_s, seeds_t, mu, stats, capture);
  if (disable_mu_pruning_ && eq1.dist < d) d = eq1.dist;
  if (stats != nullptr) stats->search_seconds = search_timer.ElapsedSeconds();
  *out = d;
  return Status::OK();
}

Distance QueryEngine::BiDijkstra(const std::vector<LabelEntry>& seeds_s,
                                 const std::vector<LabelEntry>& seeds_t,
                                 Distance mu, QueryStats* stats,
                                 PathCapture* capture) {
  EnsureScratch();
  ++epoch_;
  const std::uint32_t epoch = epoch_;
  const Graph& gk = h_->g_k;

  auto dist_of = [&](int side, VertexId v) -> Distance {
    return sides_[side].stamp[v] == epoch ? sides_[side].dist[v]
                                          : kInfDistance;
  };
  auto is_settled = [&](int side, VertexId v) {
    return sides_[side].settled_stamp[v] == epoch;
  };

  using PqEntry = std::pair<Distance, VertexId>;
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<PqEntry>>
      pq[2];

  auto seed_side = [&](int side, const std::vector<LabelEntry>& seeds) {
    for (const LabelEntry& e : seeds) {
      if (e.dist < dist_of(side, e.node)) {
        sides_[side].dist[e.node] = e.dist;
        sides_[side].stamp[e.node] = epoch;
        sides_[side].parent[e.node] = kInvalidVertex;  // marks "label seed"
        sides_[side].parent_via[e.node] = kInvalidVertex;
        pq[side].push({e.dist, e.node});
      }
    }
  };
  seed_side(0, seeds_s);
  seed_side(1, seeds_t);

  Distance best = mu;
  VertexId meet = kInvalidVertex;

  auto purge = [&](int side) {
    while (!pq[side].empty()) {
      const auto& [d, v] = pq[side].top();
      if (is_settled(side, v) || d != dist_of(side, v)) {
        pq[side].pop();
      } else {
        break;
      }
    }
  };

  while (true) {
    purge(0);
    purge(1);
    const Distance mf = pq[0].empty() ? kInfDistance : pq[0].top().first;
    const Distance mr = pq[1].empty() ? kInfDistance : pq[1].top().first;
    // Pruning condition of Algorithm 1 line 8: stop when no s-t path
    // through G_k can beat µ (Theorem 4).
    if (SatAdd(mf, mr) >= best) break;

    const int side = (mf <= mr) ? 0 : 1;
    const int opp = 1 - side;
    const auto [d, v] = pq[side].top();
    pq[side].pop();
    sides_[side].settled_stamp[v] = epoch;
    if (stats != nullptr) ++stats->settled;

    // µ tightening. NOTE (deviation from the paper, documented in
    // DESIGN.md): Algorithm 1 lines 17-18 consult only *settled* opposite
    // vertices, which makes the line-8 stop rule tie-order dependent (on
    // the paper's own example the query (c,f) can terminate with 6 instead
    // of 5). The standard remedy — and what Theorem 4's proof actually
    // uses — is to consult the opposite side's *tentative* distance, which
    // is always a valid path length.
    {
      const Distance cand = SatAdd(dist_of(0, v), dist_of(1, v));
      if (cand < best) {
        best = cand;
        meet = v;
      }
    }

    auto nbrs = gk.Neighbors(v);
    auto ws = gk.NeighborWeights(v);
    const bool vias = gk.has_vias();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      const Distance nd = d + ws[i];
      if (stats != nullptr) ++stats->relaxed;
      if (nd < dist_of(side, u)) {
        sides_[side].dist[u] = nd;
        sides_[side].stamp[u] = epoch;
        sides_[side].parent[u] = v;
        sides_[side].parent_via[u] =
            vias ? gk.NeighborVias(v)[i] : kInvalidVertex;
        pq[side].push({nd, u});
      }
      // µ tightening (Algorithm 1 lines 17-18, with the tentative-distance
      // fix described above): u reached from both directions closes a
      // candidate s-t path.
      {
        const Distance cand = SatAdd(dist_of(side, u), dist_of(opp, u));
        if (cand < best) {
          best = cand;
          meet = u;
        }
      }
    }
  }

  if (capture != nullptr && meet != kInvalidVertex) {
    capture->kind = MeetKind::kSearch;
    capture->meet = meet;
    TraceSide(0, meet, seeds_s.data(), seeds_s.size(), &capture->seed_s,
              &capture->steps_s);
    TraceSide(1, meet, seeds_t.data(), seeds_t.size(), &capture->seed_t,
              &capture->steps_t);
  }
  return best;
}

void QueryEngine::TraceSide(int side, VertexId meet,
                            const LabelEntry* seeds_begin,
                            std::size_t seeds_count, LabelEntry* seed_out,
                            std::vector<PathStep>* steps_out) const {
  steps_out->clear();
  VertexId v = meet;
  while (sides_[side].parent[v] != kInvalidVertex) {
    PathStep step;
    step.from = sides_[side].parent[v];
    step.to = v;
    step.via = sides_[side].parent_via[v];
    steps_out->push_back(step);
    v = step.from;
  }
  std::reverse(steps_out->begin(), steps_out->end());
  // v is now the chain head — a seeded G_k vertex; find its label entry.
  for (std::size_t i = 0; i < seeds_count; ++i) {
    if (seeds_begin[i].node == v) {
      *seed_out = seeds_begin[i];
      return;
    }
  }
  // Unreachable if the search is correct.
  *seed_out = LabelEntry(v, sides_[side].dist[v]);
}

}  // namespace islabel
