#include "core/query.h"

#include <algorithm>
#include <limits>

#include "util/timer.h"

namespace islabel {

namespace {

/// Saturating add treating kInfDistance as +infinity.
inline Distance SatAdd(Distance a, Distance b) {
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  if (a > kInfDistance - b) return kInfDistance;
  return a + b;
}

}  // namespace

Status LabelProvider::View(VertexId v, LabelView* view,
                           std::vector<LabelEntry>* scratch,
                           std::uint64_t* ios, std::uint32_t* seed_start) {
  if (seed_start != nullptr) *seed_start = 0;
  if (arena_ != nullptr) {
    if (v >= arena_->NumVertices()) {
      return Status::OutOfRange("vertex out of range");
    }
    *view = arena_->View(v);
    if (seed_start != nullptr) *seed_start = arena_->SeedStart(v);
    return Status::OK();
  }
  if (nested_ != nullptr) {
    if (v >= nested_->size()) return Status::OutOfRange("vertex out of range");
    *view = LabelView((*nested_)[v]);
    return Status::OK();
  }
  ISLABEL_RETURN_IF_ERROR(store_->GetLabel(v, scratch));
  if (ios != nullptr) *ios += 1;
  *view = LabelView(*scratch);
  return Status::OK();
}

QueryEngine::QueryEngine(const VertexHierarchy* hierarchy,
                         LabelProvider provider)
    : h_(hierarchy), provider_(provider) {}

void QueryEngine::EnsureScratch() {
  const std::size_t n = h_->level.size();
  for (auto& side : sides_) {
    // assign (not resize) on any size change: it rewrites every element,
    // so a grown vector can never carry stamps from before the growth.
    // ReserveEpochs' wrap reset relies on this — after a resize all
    // stamps are 0, an epoch value the counter never produces.
    if (side.size() != n) side.assign(n, NodeState{});
  }
}

void QueryEngine::ReserveEpochs(std::uint64_t count) {
  // Stamps compare for exact equality against the epoch, so an epoch
  // value may not be reused while stamps from its previous lifetime
  // survive. When the requested bumps would wrap the 32-bit counter (one
  // in 2^32 queries), wipe the search state and restart from 0 (the first
  // bump hands out 1; default-constructed stamps are 0 and stay invalid).
  if (count <= std::numeric_limits<std::uint32_t>::max() - epoch_) return;
  for (auto& side : sides_) side.assign(side.size(), NodeState{});
  epoch_ = 0;
}

Status QueryEngine::Query(VertexId s, VertexId t, Distance* out,
                          QueryStats* stats) {
  return Run(s, t, out, stats, nullptr);
}

Status QueryEngine::DistanceWithCapture(VertexId s, VertexId t,
                                        PathCapture* capture,
                                        QueryStats* stats) {
  *capture = PathCapture{};
  Distance d = kInfDistance;
  ISLABEL_RETURN_IF_ERROR(Run(s, t, &d, stats, capture));
  capture->dist = d;
  return Status::OK();
}

Status QueryEngine::Run(VertexId s, VertexId t, Distance* out,
                        QueryStats* stats, PathCapture* capture) {
  const VertexId n = h_->NumVertices();
  if (s >= n || t >= n) {
    return Status::OutOfRange("query vertex id out of range");
  }
  if (stats != nullptr) *stats = QueryStats{};

  if (s == t) {
    *out = 0;
    if (stats != nullptr) {
      stats->location = h_->InCore(s) ? LocationType::kBothInCore
                                      : LocationType::kNoneInCore;
    }
    if (capture != nullptr) {
      capture->kind = MeetKind::kEq1;
      capture->meet = s;
      capture->eq1_s = LabelEntry(s, 0);
      capture->eq1_t = LabelEntry(s, 0);
    }
    return Status::OK();
  }

  // Stage 1: label retrieval — the paper's query Time (a). Core vertices
  // carry the trivial label {(v, 0)}, so their lookup is synthesized from
  // engine-owned storage without touching the provider; this is why the
  // paper's Type 1 queries (both endpoints in G_k) have Time (a) = 0.
  WallTimer fetch_timer;
  std::uint64_t ios = 0;
  LabelView label_s, label_t;
  std::uint32_t cut_s = 0, cut_t = 0;
  if (h_->InCore(s)) {
    self_[0] = LabelEntry(s, 0);
    label_s = LabelView(&self_[0], 1);
  } else {
    ISLABEL_RETURN_IF_ERROR(
        provider_.View(s, &label_s, &fetch_[0], &ios, &cut_s));
  }
  if (h_->InCore(t)) {
    self_[1] = LabelEntry(t, 0);
    label_t = LabelView(&self_[1], 1);
  } else {
    ISLABEL_RETURN_IF_ERROR(
        provider_.View(t, &label_t, &fetch_[1], &ios, &cut_t));
  }
  const Eq1Result eq1 = EvaluateEq1(label_s, label_t);
  if (stats != nullptr) {
    stats->label_fetch_seconds = fetch_timer.ElapsedSeconds();
    stats->label_ios = ios;
    const int in_core =
        (h_->InCore(s) ? 1 : 0) + (h_->InCore(t) ? 1 : 0);
    stats->location = in_core == 2   ? LocationType::kBothInCore
                      : in_core == 1 ? LocationType::kOneInCore
                                     : LocationType::kNoneInCore;
    stats->intersection_size = eq1.intersection_size;
  }
  if (capture != nullptr && eq1.witness != kInvalidVertex) {
    capture->kind = MeetKind::kEq1;
    capture->meet = eq1.witness;
    capture->eq1_s = eq1.s_entry;
    capture->eq1_t = eq1.t_entry;
  }

  // Seeds: label entries landing in G_k (Algorithm 1 lines 1-2), scanned
  // from the precomputed first-core cut into engine-owned buffers. Empty on
  // either side means the query is Type 1 and Equation 1 already answered
  // it (Theorem 3).
  seeds_[0].clear();
  seeds_[1].clear();
  for (std::size_t i = cut_s; i < label_s.size(); ++i) {
    if (h_->InCore(label_s[i].node)) seeds_[0].push_back(label_s[i]);
  }
  for (std::size_t i = cut_t; i < label_t.size(); ++i) {
    if (h_->InCore(label_t[i].node)) seeds_[1].push_back(label_t[i]);
  }
  if (seeds_[0].empty() || seeds_[1].empty()) {
    *out = eq1.dist;
    return Status::OK();
  }

  // Stage 2: label-based bidirectional Dijkstra on G_k — Time (b).
  WallTimer search_timer;
  if (stats != nullptr) stats->used_search = true;
  const Distance mu = disable_mu_pruning_ ? kInfDistance : eq1.dist;
  Distance d = BiDijkstra(mu, stats, capture);
  if (disable_mu_pruning_ && eq1.dist < d) d = eq1.dist;
  if (stats != nullptr) stats->search_seconds = search_timer.ElapsedSeconds();
  *out = d;
  return Status::OK();
}

Status QueryEngine::QueryOneToMany(VertexId s, const VertexId* targets,
                                   std::size_t num_targets, Distance* out,
                                   QueryStats* stats) {
  const VertexId n = h_->NumVertices();
  if (s >= n) return Status::OutOfRange("query vertex id out of range");
  for (std::size_t i = 0; i < num_targets; ++i) {
    if (targets[i] >= n) {
      return Status::OutOfRange("query vertex id out of range");
    }
  }
  if (stats != nullptr) *stats = QueryStats{};
  if (num_targets == 0) return Status::OK();

  // label(s) is fetched and its Algorithm 1 seeds extracted exactly once.
  // The view stays valid for the whole batch: the arena slab is immutable
  // and the disk decode lands in fetch_[0], which only this side uses.
  std::uint64_t ios = 0;
  LabelView label_s;
  std::uint32_t cut_s = 0;
  if (h_->InCore(s)) {
    self_[0] = LabelEntry(s, 0);
    label_s = LabelView(&self_[0], 1);
  } else {
    ISLABEL_RETURN_IF_ERROR(
        provider_.View(s, &label_s, &fetch_[0], &ios, &cut_s));
  }
  seeds_[0].clear();
  for (std::size_t i = cut_s; i < label_s.size(); ++i) {
    if (h_->InCore(label_s[i].node)) seeds_[0].push_back(label_s[i]);
  }

  EnsureScratch();
  // One epoch for the shared forward ball plus one per target's reverse
  // search; reserving them up front keeps a wrap from wiping the warm
  // forward state mid-batch.
  ReserveEpochs(static_cast<std::uint64_t>(num_targets) + 1);
  const std::uint32_t fwd_epoch = ++epoch_;
  pq_[0].Clear();
  for (const LabelEntry& e : seeds_[0]) {
    NodeState& node = sides_[0][e.node];
    node.dist = e.dist;
    node.stamp = fwd_epoch;
    node.parent = kInvalidVertex;
    node.parent_via = kInvalidVertex;
    pq_[0].Push(e.node, e.dist);
  }

  for (std::size_t i = 0; i < num_targets; ++i) {
    const VertexId t = targets[i];
    if (t == s) {
      out[i] = 0;
      continue;
    }
    LabelView label_t;
    std::uint32_t cut_t = 0;
    if (h_->InCore(t)) {
      self_[1] = LabelEntry(t, 0);
      label_t = LabelView(&self_[1], 1);
    } else {
      ISLABEL_RETURN_IF_ERROR(
          provider_.View(t, &label_t, &fetch_[1], &ios, &cut_t));
    }
    const Eq1Result eq1 = EvaluateEq1(label_s, label_t);
    seeds_[1].clear();
    for (std::size_t j = cut_t; j < label_t.size(); ++j) {
      if (h_->InCore(label_t[j].node)) seeds_[1].push_back(label_t[j]);
    }
    if (seeds_[0].empty() || seeds_[1].empty()) {
      out[i] = eq1.dist;  // Type 1: Equation 1 is the answer (Theorem 3).
      continue;
    }
    const std::uint32_t rev_epoch = ++epoch_;
    pq_[1].Clear();
    Distance best = disable_mu_pruning_ ? kInfDistance : eq1.dist;
    for (const LabelEntry& e : seeds_[1]) {
      NodeState& node = sides_[1][e.node];
      node.dist = e.dist;
      node.stamp = rev_epoch;
      node.parent = kInvalidVertex;
      node.parent_via = kInvalidVertex;
      pq_[1].Push(e.node, e.dist);
      // Seed-time µ check against the warm forward ball. Forward vertices
      // settled while serving an earlier target did their relax-time µ
      // checks against THAT target's reverse epoch; a shortest path ending
      // at this seed must therefore be counted here (or by a reverse
      // expansion that reaches a forward-stamped vertex) — without this
      // the stop rule can fire early against the inflated forward
      // frontier. Not just pruning: correctness of the warm restart.
      const NodeState& fwd = sides_[0][e.node];
      if (fwd.stamp == fwd_epoch) {
        const Distance cand = SatAdd(e.dist, fwd.dist);
        if (cand < best) best = cand;
      }
    }
    if (stats != nullptr) stats->used_search = true;
    Distance d = SearchLoop(best, fwd_epoch, rev_epoch, stats, nullptr);
    if (disable_mu_pruning_ && eq1.dist < d) d = eq1.dist;
    out[i] = d;
  }
  if (stats != nullptr) stats->label_ios = ios;
  return Status::OK();
}

Distance QueryEngine::BiDijkstra(Distance mu, QueryStats* stats,
                                 PathCapture* capture) {
  EnsureScratch();
  ReserveEpochs(1);
  const std::uint32_t epoch = ++epoch_;

  // Engine-owned monotone radix heaps (bucket capacity persists across
  // queries; Clear() just resets them).
  pq_[0].Clear();
  pq_[1].Clear();

  auto seed_side = [&](int side) {
    for (const LabelEntry& e : seeds_[side]) {
      NodeState& node = sides_[side][e.node];
      // Label entries are unique per ancestor, so a fresh epoch sees each
      // node at most once.
      node.dist = e.dist;
      node.stamp = epoch;
      node.parent = kInvalidVertex;  // marks "label seed"
      node.parent_via = kInvalidVertex;
      pq_[side].Push(e.node, e.dist);
    }
  };
  seed_side(0);
  seed_side(1);

  return SearchLoop(mu, epoch, epoch, stats, capture);
}

Distance QueryEngine::SearchLoop(Distance mu, std::uint32_t fwd_epoch,
                                 std::uint32_t rev_epoch, QueryStats* stats,
                                 PathCapture* capture) {
  const Graph& gk = h_->g_k;
  const std::uint32_t ep[2] = {fwd_epoch, rev_epoch};

  auto dist_of = [&](int side, VertexId v) -> Distance {
    const NodeState& node = sides_[side][v];
    return node.stamp == ep[side] ? node.dist : kInfDistance;
  };
  auto is_settled = [&](int side, VertexId v) {
    return sides_[side][v].settled_stamp == ep[side];
  };

  Distance best = mu;
  VertexId meet = kInvalidVertex;

  // Drops settled/stale entries so PeekMin is live (lazy deletion).
  auto purge = [&](int side) {
    while (!pq_[side].Empty()) {
      const auto [v, d] = pq_[side].PeekMin();
      if (is_settled(side, v) || d != dist_of(side, v)) {
        pq_[side].PopMin();
      } else {
        break;
      }
    }
  };

  while (true) {
    purge(0);
    purge(1);
    const Distance mf =
        pq_[0].Empty() ? kInfDistance : pq_[0].PeekMin().second;
    const Distance mr =
        pq_[1].Empty() ? kInfDistance : pq_[1].PeekMin().second;
    // Pruning condition of Algorithm 1 line 8: stop when no s-t path
    // through G_k can beat µ (Theorem 4).
    if (SatAdd(mf, mr) >= best) break;

    const int side = (mf <= mr) ? 0 : 1;
    const int opp = 1 - side;
    const auto [v, d] = pq_[side].PopMin();
    sides_[side][v].settled_stamp = ep[side];
    if (stats != nullptr) ++stats->settled;

    // µ tightening. NOTE (deviation from the paper, documented in
    // DESIGN.md): Algorithm 1 lines 17-18 consult only *settled* opposite
    // vertices, which makes the line-8 stop rule tie-order dependent (on
    // the paper's own example the query (c,f) can terminate with 6 instead
    // of 5). The standard remedy — and what Theorem 4's proof actually
    // uses — is to consult the opposite side's *tentative* distance, which
    // is always a valid path length.
    {
      const Distance cand = SatAdd(dist_of(0, v), dist_of(1, v));
      if (cand < best) {
        best = cand;
        meet = v;
      }
    }

    auto nbrs = gk.Neighbors(v);
    auto ws = gk.NeighborWeights(v);
    const bool vias = gk.has_vias();
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const VertexId u = nbrs[i];
      const Distance nd = d + ws[i];
      if (stats != nullptr) ++stats->relaxed;
      NodeState& node = sides_[side][u];
      Distance du = node.stamp == ep[side] ? node.dist : kInfDistance;
      if (nd < du) {
        node.dist = nd;
        node.stamp = ep[side];
        node.parent = v;
        node.parent_via = vias ? gk.NeighborVias(v)[i] : kInvalidVertex;
        pq_[side].Push(u, nd);
        du = nd;
      }
      // µ tightening (Algorithm 1 lines 17-18, with the tentative-distance
      // fix described above): u reached from both directions closes a
      // candidate s-t path.
      {
        const Distance cand = SatAdd(du, dist_of(opp, u));
        if (cand < best) {
          best = cand;
          meet = u;
        }
      }
    }
  }

  if (capture != nullptr && meet != kInvalidVertex) {
    capture->kind = MeetKind::kSearch;
    capture->meet = meet;
    TraceSide(0, meet, seeds_[0].data(), seeds_[0].size(), &capture->seed_s,
              &capture->steps_s);
    TraceSide(1, meet, seeds_[1].data(), seeds_[1].size(), &capture->seed_t,
              &capture->steps_t);
  }
  return best;
}

void QueryEngine::TraceSide(int side, VertexId meet,
                            const LabelEntry* seeds_begin,
                            std::size_t seeds_count, LabelEntry* seed_out,
                            std::vector<PathStep>* steps_out) const {
  steps_out->clear();
  VertexId v = meet;
  while (sides_[side][v].parent != kInvalidVertex) {
    PathStep step;
    step.from = sides_[side][v].parent;
    step.to = v;
    step.via = sides_[side][v].parent_via;
    steps_out->push_back(step);
    v = step.from;
  }
  std::reverse(steps_out->begin(), steps_out->end());
  // v is now the chain head — a seeded G_k vertex; find its label entry.
  for (std::size_t i = 0; i < seeds_count; ++i) {
    if (seeds_begin[i].node == v) {
      *seed_out = seeds_begin[i];
      return;
    }
  }
  // Unreachable if the search is correct.
  *seed_out = LabelEntry(v, sides_[side][v].dist);
}

}  // namespace islabel
