// Directed IS-LABEL (§8.2).
//
// The independent set ignores edge direction; augmenting arcs are created
// only for directed 2-paths u→v→w over a removed vertex v. Every vertex
// carries two labels: the out-label (ancestors reached by arcs from lower
// to higher level) and the in-label (the symmetric construction on
// reversed arcs). A query s→t evaluates Equation 1 over
// LABEL_out(s) ∩ LABEL_in(t), falling back to a directed label-seeded
// bidirectional Dijkstra on G_k (forward over out-arcs, backward over
// in-arcs). Reachability — the paper's closing remark — is dist < ∞.

#ifndef ISLABEL_CORE_DIRECTED_H_
#define ISLABEL_CORE_DIRECTED_H_

#include <cstdint>
#include <vector>

#include "core/hierarchy.h"
#include "core/labeling.h"
#include "core/options.h"
#include "core/query.h"
#include "graph/digraph.h"
#include "util/radix_heap.h"
#include "util/result.h"

namespace islabel {

/// Exact point-to-point distance/reachability index for directed graphs.
/// In-memory only (the paper details persistence for the undirected case;
/// the directed extension shares the same storage layout if needed).
class DirectedISLabel {
 public:
  DirectedISLabel() = default;
  DirectedISLabel(DirectedISLabel&&) = default;
  DirectedISLabel& operator=(DirectedISLabel&&) = default;

  static Result<DirectedISLabel> Build(const DiGraph& g,
                                       const IndexOptions& options = {});

  /// Exact directed distance s → t (kInfDistance if t unreachable).
  Status Query(VertexId s, VertexId t, Distance* out,
               QueryStats* stats = nullptr);

  /// Directed reachability s → t.
  Status Reachable(VertexId s, VertexId t, bool* out);

  VertexId NumVertices() const {
    return static_cast<VertexId>(level_.size());
  }
  std::uint32_t k() const { return k_; }
  std::uint32_t LevelOf(VertexId v) const { return level_[v]; }
  bool InCore(VertexId v) const { return level_[v] == k_; }
  const DiGraph& CoreGraph() const { return gk_; }
  const LabelArena& out_labels() const { return out_labels_; }
  const LabelArena& in_labels() const { return in_labels_; }

  /// Σ over both label families.
  std::uint64_t TotalLabelEntries() const;

 private:
  /// Algorithm 1 stage 2 over the engine-owned seeds_[01]_ buffers.
  Distance BiDijkstra(Distance mu, QueryStats* stats);
  void EnsureScratch();

  std::vector<std::uint32_t> level_;
  std::uint32_t k_ = 0;
  DiGraph gk_;
  LabelArena out_labels_;
  LabelArena in_labels_;

  // Epoch-stamped bidirectional search scratch (0 = forward, 1 = backward),
  // packed per vertex for cache locality.
  struct NodeState {
    Distance dist = kInfDistance;
    std::uint32_t stamp = 0;
    std::uint32_t settled_stamp = 0;
  };
  std::vector<NodeState> sides_[2];
  std::uint32_t epoch_ = 0;
  // Reusable query buffers — seeds and monotone radix heaps; no allocation
  // on the hot path after warmup.
  std::vector<LabelEntry> seeds_[2];
  RadixHeap pq_[2];
};

}  // namespace islabel

#endif  // ISLABEL_CORE_DIRECTED_H_
