#include "core/directed.h"

#include <algorithm>
#include <limits>

#include "core/label.h"
#include "util/bit_vector.h"
#include "util/random.h"

namespace islabel {

namespace {

inline Distance SatAdd(Distance a, Distance b) {
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  if (a > kInfDistance - b) return kInfDistance;
  return a + b;
}

// Mutable directed working graph for the hierarchy construction.
struct DiLevelGraph {
  std::vector<std::vector<HierEdge>> out;  // arcs v -> e.to
  std::vector<std::vector<HierEdge>> in;   // arcs e.to -> v (stored on v)
  BitVector alive;
  std::uint64_t num_alive = 0;

  std::uint64_t CountArcs() const {
    std::uint64_t a = 0;
    for (const auto& l : out) a += l.size();
    return a;
  }
  std::uint64_t SizeVE() const { return num_alive + CountArcs(); }
};

void FilterList(std::vector<HierEdge>* list, const BitVector& drop) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < list->size(); ++i) {
    if (!drop[(*list)[i].to]) (*list)[out++] = (*list)[i];
  }
  list->resize(out);
}

// Sorted-merge of candidate arcs into a sorted adjacency list, min rule.
void MergeArcs(std::vector<HierEdge>* list, std::vector<HierEdge>& add) {
  if (add.empty()) return;
  std::sort(add.begin(), add.end(), [](const HierEdge& a, const HierEdge& b) {
    if (a.to != b.to) return a.to < b.to;
    return a.w < b.w;
  });
  std::vector<HierEdge> merged;
  merged.reserve(list->size() + add.size());
  std::size_t li = 0, ai = 0;
  while (li < list->size() || ai < add.size()) {
    if (ai < add.size() && ai + 1 < add.size() &&
        add[ai].to == add[ai + 1].to) {
      // Duplicate candidates: min-weight copy sorts first, drop the rest.
      add[ai + 1] = add[ai];
      ++ai;
      continue;
    }
    if (ai >= add.size() ||
        (li < list->size() && (*list)[li].to < add[ai].to)) {
      merged.push_back((*list)[li++]);
    } else if (li >= list->size() || add[ai].to < (*list)[li].to) {
      merged.push_back(add[ai++]);
    } else {
      merged.push_back(add[ai].w < (*list)[li].w ? add[ai] : (*list)[li]);
      ++li;
      ++ai;
    }
  }
  list->swap(merged);
}

}  // namespace

Result<DirectedISLabel> DirectedISLabel::Build(const DiGraph& g,
                                               const IndexOptions& options) {
  ISLABEL_RETURN_IF_ERROR(options.Validate());
  const VertexId n = g.NumVertices();

  DiLevelGraph lg;
  lg.out.resize(n);
  lg.in.resize(n);
  lg.alive.Resize(n, true);
  lg.num_alive = n;
  for (VertexId v = 0; v < n; ++v) {
    auto outs = g.OutNeighbors(v);
    auto ow = g.OutWeights(v);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      lg.out[v].emplace_back(outs[i], ow[i]);
    }
    auto ins = g.InNeighbors(v);
    auto iw = g.InWeights(v);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      lg.in[v].emplace_back(ins[i], iw[i]);
    }
  }

  DirectedISLabel idx;
  idx.level_.assign(n, 0);
  std::vector<std::vector<HierEdge>> removed_out(n), removed_in(n);
  std::vector<std::vector<VertexId>> levels;
  levels.push_back({});
  Rng rng(options.seed);

  std::uint64_t prev_size = lg.SizeVE();
  std::uint32_t i = 1;
  while (true) {
    const std::uint64_t cur_size = lg.SizeVE();
    bool stop = false;
    if (options.forced_k != 0) {
      stop = (i == options.forced_k);
    } else if (!options.full_hierarchy && i >= 2 &&
               static_cast<double>(cur_size) >
                   options.sigma * static_cast<double>(prev_size)) {
      stop = true;
    }
    if (lg.num_alive == 0) stop = true;
    if (options.max_levels != 0 && i >= options.max_levels) stop = true;
    if (stop) {
      idx.k_ = i;
      break;
    }

    // Independent set on the underlying undirected structure: combined
    // degree ordering, exclusion over both arc directions.
    std::vector<VertexId> order;
    order.reserve(lg.num_alive);
    for (VertexId v = 0; v < n; ++v) {
      if (lg.alive[v]) order.push_back(v);
    }
    switch (options.is_order) {
      case IsOrder::kMinDegree:
        std::stable_sort(order.begin(), order.end(),
                         [&lg](VertexId a, VertexId b) {
                           return lg.out[a].size() + lg.in[a].size() <
                                  lg.out[b].size() + lg.in[b].size();
                         });
        break;
      case IsOrder::kMaxDegree:
        std::stable_sort(order.begin(), order.end(),
                         [&lg](VertexId a, VertexId b) {
                           return lg.out[a].size() + lg.in[a].size() >
                                  lg.out[b].size() + lg.in[b].size();
                         });
        break;
      case IsOrder::kRandom:
        for (std::size_t j = order.size(); j > 1; --j) {
          std::swap(order[j - 1], order[rng.Uniform(j)]);
        }
        break;
    }
    BitVector excluded(n);
    std::vector<VertexId> li;
    for (VertexId v : order) {
      if (excluded[v]) continue;
      li.push_back(v);
      for (const HierEdge& e : lg.out[v]) excluded.Set(e.to);
      for (const HierEdge& e : lg.in[v]) excluded.Set(e.to);
    }
    std::sort(li.begin(), li.end());

    // Remove L_i, snapshot its arcs, create directed augmenting arcs.
    BitVector in_li(n);
    for (VertexId v : li) in_li.Set(v);
    for (VertexId v : li) {
      idx.level_[v] = i;
      removed_out[v] = std::move(lg.out[v]);
      removed_in[v] = std::move(lg.in[v]);
      lg.out[v].clear();
      lg.in[v].clear();
      lg.alive.Clear(v);
    }
    lg.num_alive -= li.size();
    for (VertexId v : li) {
      for (const HierEdge& e : removed_out[v]) FilterList(&lg.in[e.to], in_li);
      for (const HierEdge& e : removed_in[v]) FilterList(&lg.out[e.to], in_li);
    }
    // Augment: u -> v -> w becomes u -> w (u from in-arcs, w from out-arcs).
    std::vector<std::vector<HierEdge>> add_out(n), add_in(n);
    for (VertexId v : li) {
      for (const HierEdge& ein : removed_in[v]) {
        for (const HierEdge& eout : removed_out[v]) {
          if (ein.to == eout.to) continue;  // no self-loop u -> u
          const std::uint64_t wide =
              static_cast<std::uint64_t>(ein.w) + eout.w;
          if (wide > std::numeric_limits<Weight>::max()) {
            return Status::OutOfRange(
                "augmenting arc weight overflows the Weight type");
          }
          const Weight w = static_cast<Weight>(wide);
          add_out[ein.to].emplace_back(eout.to, w, v);
          add_in[eout.to].emplace_back(ein.to, w, v);
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (!add_out[v].empty()) MergeArcs(&lg.out[v], add_out[v]);
      if (!add_in[v].empty()) MergeArcs(&lg.in[v], add_in[v]);
    }

    levels.push_back(std::move(li));
    prev_size = cur_size;
    ++i;
  }

  for (VertexId v = 0; v < n; ++v) {
    if (lg.alive[v]) idx.level_[v] = idx.k_;
  }

  // Residual directed core.
  std::vector<Arc> core_arcs;
  for (VertexId v = 0; v < n; ++v) {
    for (const HierEdge& e : lg.out[v]) {
      core_arcs.emplace_back(v, e.to, e.w,
                             options.keep_vias ? e.via : kInvalidVertex);
    }
  }
  idx.gk_ = DiGraph::FromArcs(std::move(core_arcs), n, options.keep_vias);

  // Top-down labeling, once per direction: Algorithm 4 only reads the
  // level structure and the per-vertex DAG adjacency, so each direction is
  // a plain ComputeLabelsTopDown over a hierarchy view whose removed_adj
  // is that direction's arc set — the directed path gets the arena layout,
  // the level-parallel builder, and the deterministic (dist, via) tiebreak
  // for free.
  VertexHierarchy dag;
  dag.level = idx.level_;
  dag.k = idx.k_;
  dag.levels = std::move(levels);
  dag.removed_adj = std::move(removed_out);
  idx.out_labels_ = ComputeLabelsTopDown(dag, nullptr, options.num_threads);
  dag.removed_adj = std::move(removed_in);
  idx.in_labels_ = ComputeLabelsTopDown(dag, nullptr, options.num_threads);
  return idx;
}

std::uint64_t DirectedISLabel::TotalLabelEntries() const {
  return out_labels_.TotalEntries() + in_labels_.TotalEntries();
}

void DirectedISLabel::EnsureScratch() {
  const std::size_t n = level_.size();
  for (auto& side : sides_) {
    if (side.size() != n) side.assign(n, NodeState{});
  }
}

Status DirectedISLabel::Query(VertexId s, VertexId t, Distance* out,
                              QueryStats* stats) {
  const VertexId n = NumVertices();
  if (s >= n || t >= n) return Status::OutOfRange("vertex id out of range");
  if (stats != nullptr) *stats = QueryStats{};
  if (s == t) {
    *out = 0;
    return Status::OK();
  }

  const LabelView ls = out_labels_.View(s);
  const LabelView lt = in_labels_.View(t);
  const Eq1Result eq1 = EvaluateEq1(ls, lt);
  if (stats != nullptr) stats->intersection_size = eq1.intersection_size;

  // Seed extraction into engine-owned buffers, scanning from each label's
  // precomputed first-core cut.
  seeds_[0].clear();
  seeds_[1].clear();
  for (std::size_t i = out_labels_.SeedStart(s); i < ls.size(); ++i) {
    if (InCore(ls[i].node)) seeds_[0].push_back(ls[i]);
  }
  for (std::size_t i = in_labels_.SeedStart(t); i < lt.size(); ++i) {
    if (InCore(lt[i].node)) seeds_[1].push_back(lt[i]);
  }
  if (seeds_[0].empty() || seeds_[1].empty()) {
    *out = eq1.dist;
    return Status::OK();
  }
  if (stats != nullptr) stats->used_search = true;
  *out = BiDijkstra(eq1.dist, stats);
  return Status::OK();
}

Status DirectedISLabel::Reachable(VertexId s, VertexId t, bool* out) {
  Distance d = kInfDistance;
  ISLABEL_RETURN_IF_ERROR(Query(s, t, &d));
  *out = (d != kInfDistance);
  return Status::OK();
}

Distance DirectedISLabel::BiDijkstra(Distance mu, QueryStats* stats) {
  EnsureScratch();
  // Epoch wrap (one in 2^32 queries): stamps compare for exact equality,
  // so an epoch value may not be reused while stale stamps survive —
  // reset the state and restart the counter. Same invariant as
  // QueryEngine::ReserveEpochs (query.cc); kept inline here because this
  // engine's vertex count is fixed at build time (no resize interaction)
  // and it reserves exactly one epoch per query.
  if (++epoch_ == 0) {
    for (auto& side : sides_) side.assign(side.size(), NodeState{});
    epoch_ = 1;
  }
  const std::uint32_t epoch = epoch_;

  auto dist_of = [&](int side, VertexId v) -> Distance {
    const NodeState& node = sides_[side][v];
    return node.stamp == epoch ? node.dist : kInfDistance;
  };
  auto is_settled = [&](int side, VertexId v) {
    return sides_[side][v].settled_stamp == epoch;
  };

  pq_[0].Clear();
  pq_[1].Clear();
  auto seed = [&](int side) {
    for (const LabelEntry& e : seeds_[side]) {
      if (e.dist < dist_of(side, e.node)) {
        sides_[side][e.node].dist = e.dist;
        sides_[side][e.node].stamp = epoch;
        pq_[side].Push(e.node, e.dist);
      }
    }
  };
  seed(0);
  seed(1);

  Distance best = mu;
  auto purge = [&](int side) {
    while (!pq_[side].Empty()) {
      const auto [v, d] = pq_[side].PeekMin();
      if (is_settled(side, v) || d != dist_of(side, v)) {
        pq_[side].PopMin();
      } else {
        break;
      }
    }
  };

  while (true) {
    purge(0);
    purge(1);
    const Distance mf =
        pq_[0].Empty() ? kInfDistance : pq_[0].PeekMin().second;
    const Distance mr =
        pq_[1].Empty() ? kInfDistance : pq_[1].PeekMin().second;
    if (SatAdd(mf, mr) >= best) break;
    const int side = (mf <= mr) ? 0 : 1;
    const int opp = 1 - side;
    const auto [v, d] = pq_[side].PopMin();
    sides_[side][v].settled_stamp = epoch;
    if (stats != nullptr) ++stats->settled;
    // Tentative-distance µ update (see query.cc / DESIGN.md).
    best = std::min(best, SatAdd(dist_of(0, v), dist_of(1, v)));
    // Forward explores out-arcs; backward explores in-arcs (i.e., walks
    // arcs against their direction toward t).
    const auto nbrs = side == 0 ? gk_.OutNeighbors(v) : gk_.InNeighbors(v);
    const auto ws = side == 0 ? gk_.OutWeights(v) : gk_.InWeights(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId u = nbrs[j];
      const Distance nd = d + ws[j];
      if (stats != nullptr) ++stats->relaxed;
      NodeState& node = sides_[side][u];
      Distance du = node.stamp == epoch ? node.dist : kInfDistance;
      if (nd < du) {
        node.dist = nd;
        node.stamp = epoch;
        pq_[side].Push(u, nd);
        du = nd;
      }
      best = std::min(best, SatAdd(du, dist_of(opp, u)));
    }
  }
  return best;
}

}  // namespace islabel
