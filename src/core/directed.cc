#include "core/directed.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/label.h"
#include "util/bit_vector.h"
#include "util/random.h"

namespace islabel {

namespace {

inline Distance SatAdd(Distance a, Distance b) {
  if (a == kInfDistance || b == kInfDistance) return kInfDistance;
  if (a > kInfDistance - b) return kInfDistance;
  return a + b;
}

// Mutable directed working graph for the hierarchy construction.
struct DiLevelGraph {
  std::vector<std::vector<HierEdge>> out;  // arcs v -> e.to
  std::vector<std::vector<HierEdge>> in;   // arcs e.to -> v (stored on v)
  BitVector alive;
  std::uint64_t num_alive = 0;

  std::uint64_t CountArcs() const {
    std::uint64_t a = 0;
    for (const auto& l : out) a += l.size();
    return a;
  }
  std::uint64_t SizeVE() const { return num_alive + CountArcs(); }
};

void FilterList(std::vector<HierEdge>* list, const BitVector& drop) {
  std::size_t out = 0;
  for (std::size_t i = 0; i < list->size(); ++i) {
    if (!drop[(*list)[i].to]) (*list)[out++] = (*list)[i];
  }
  list->resize(out);
}

// Sorted-merge of candidate arcs into a sorted adjacency list, min rule.
void MergeArcs(std::vector<HierEdge>* list, std::vector<HierEdge>& add) {
  if (add.empty()) return;
  std::sort(add.begin(), add.end(), [](const HierEdge& a, const HierEdge& b) {
    if (a.to != b.to) return a.to < b.to;
    return a.w < b.w;
  });
  std::vector<HierEdge> merged;
  merged.reserve(list->size() + add.size());
  std::size_t li = 0, ai = 0;
  while (li < list->size() || ai < add.size()) {
    if (ai < add.size() && ai + 1 < add.size() &&
        add[ai].to == add[ai + 1].to) {
      // Duplicate candidates: min-weight copy sorts first, drop the rest.
      add[ai + 1] = add[ai];
      ++ai;
      continue;
    }
    if (ai >= add.size() ||
        (li < list->size() && (*list)[li].to < add[ai].to)) {
      merged.push_back((*list)[li++]);
    } else if (li >= list->size() || add[ai].to < (*list)[li].to) {
      merged.push_back(add[ai++]);
    } else {
      merged.push_back(add[ai].w < (*list)[li].w ? add[ai] : (*list)[li]);
      ++li;
      ++ai;
    }
  }
  list->swap(merged);
}

}  // namespace

Result<DirectedISLabel> DirectedISLabel::Build(const DiGraph& g,
                                               const IndexOptions& options) {
  ISLABEL_RETURN_IF_ERROR(options.Validate());
  const VertexId n = g.NumVertices();

  DiLevelGraph lg;
  lg.out.resize(n);
  lg.in.resize(n);
  lg.alive.Resize(n, true);
  lg.num_alive = n;
  for (VertexId v = 0; v < n; ++v) {
    auto outs = g.OutNeighbors(v);
    auto ow = g.OutWeights(v);
    for (std::size_t i = 0; i < outs.size(); ++i) {
      lg.out[v].emplace_back(outs[i], ow[i]);
    }
    auto ins = g.InNeighbors(v);
    auto iw = g.InWeights(v);
    for (std::size_t i = 0; i < ins.size(); ++i) {
      lg.in[v].emplace_back(ins[i], iw[i]);
    }
  }

  DirectedISLabel idx;
  idx.level_.assign(n, 0);
  std::vector<std::vector<HierEdge>> removed_out(n), removed_in(n);
  std::vector<std::vector<VertexId>> levels;
  levels.push_back({});
  Rng rng(options.seed);

  std::uint64_t prev_size = lg.SizeVE();
  std::uint32_t i = 1;
  while (true) {
    const std::uint64_t cur_size = lg.SizeVE();
    bool stop = false;
    if (options.forced_k != 0) {
      stop = (i == options.forced_k);
    } else if (!options.full_hierarchy && i >= 2 &&
               static_cast<double>(cur_size) >
                   options.sigma * static_cast<double>(prev_size)) {
      stop = true;
    }
    if (lg.num_alive == 0) stop = true;
    if (options.max_levels != 0 && i >= options.max_levels) stop = true;
    if (stop) {
      idx.k_ = i;
      break;
    }

    // Independent set on the underlying undirected structure: combined
    // degree ordering, exclusion over both arc directions.
    std::vector<VertexId> order;
    order.reserve(lg.num_alive);
    for (VertexId v = 0; v < n; ++v) {
      if (lg.alive[v]) order.push_back(v);
    }
    switch (options.is_order) {
      case IsOrder::kMinDegree:
        std::stable_sort(order.begin(), order.end(),
                         [&lg](VertexId a, VertexId b) {
                           return lg.out[a].size() + lg.in[a].size() <
                                  lg.out[b].size() + lg.in[b].size();
                         });
        break;
      case IsOrder::kMaxDegree:
        std::stable_sort(order.begin(), order.end(),
                         [&lg](VertexId a, VertexId b) {
                           return lg.out[a].size() + lg.in[a].size() >
                                  lg.out[b].size() + lg.in[b].size();
                         });
        break;
      case IsOrder::kRandom:
        for (std::size_t j = order.size(); j > 1; --j) {
          std::swap(order[j - 1], order[rng.Uniform(j)]);
        }
        break;
    }
    BitVector excluded(n);
    std::vector<VertexId> li;
    for (VertexId v : order) {
      if (excluded[v]) continue;
      li.push_back(v);
      for (const HierEdge& e : lg.out[v]) excluded.Set(e.to);
      for (const HierEdge& e : lg.in[v]) excluded.Set(e.to);
    }
    std::sort(li.begin(), li.end());

    // Remove L_i, snapshot its arcs, create directed augmenting arcs.
    BitVector in_li(n);
    for (VertexId v : li) in_li.Set(v);
    for (VertexId v : li) {
      idx.level_[v] = i;
      removed_out[v] = std::move(lg.out[v]);
      removed_in[v] = std::move(lg.in[v]);
      lg.out[v].clear();
      lg.in[v].clear();
      lg.alive.Clear(v);
    }
    lg.num_alive -= li.size();
    for (VertexId v : li) {
      for (const HierEdge& e : removed_out[v]) FilterList(&lg.in[e.to], in_li);
      for (const HierEdge& e : removed_in[v]) FilterList(&lg.out[e.to], in_li);
    }
    // Augment: u -> v -> w becomes u -> w (u from in-arcs, w from out-arcs).
    std::vector<std::vector<HierEdge>> add_out(n), add_in(n);
    for (VertexId v : li) {
      for (const HierEdge& ein : removed_in[v]) {
        for (const HierEdge& eout : removed_out[v]) {
          if (ein.to == eout.to) continue;  // no self-loop u -> u
          const std::uint64_t wide =
              static_cast<std::uint64_t>(ein.w) + eout.w;
          if (wide > std::numeric_limits<Weight>::max()) {
            return Status::OutOfRange(
                "augmenting arc weight overflows the Weight type");
          }
          const Weight w = static_cast<Weight>(wide);
          add_out[ein.to].emplace_back(eout.to, w, v);
          add_in[eout.to].emplace_back(ein.to, w, v);
        }
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (!add_out[v].empty()) MergeArcs(&lg.out[v], add_out[v]);
      if (!add_in[v].empty()) MergeArcs(&lg.in[v], add_in[v]);
    }

    levels.push_back(std::move(li));
    prev_size = cur_size;
    ++i;
  }

  for (VertexId v = 0; v < n; ++v) {
    if (lg.alive[v]) idx.level_[v] = idx.k_;
  }

  // Residual directed core.
  std::vector<Arc> core_arcs;
  for (VertexId v = 0; v < n; ++v) {
    for (const HierEdge& e : lg.out[v]) {
      core_arcs.emplace_back(v, e.to, e.w,
                             options.keep_vias ? e.via : kInvalidVertex);
    }
  }
  idx.gk_ = DiGraph::FromArcs(std::move(core_arcs), n, options.keep_vias);

  // Top-down labeling, once per direction (mirror of Algorithm 4).
  auto label_topdown = [&](const std::vector<std::vector<HierEdge>>& dag,
                           LabelSet* out_labels) {
    out_labels->assign(n, {});
    for (VertexId v = 0; v < n; ++v) {
      if (idx.level_[v] == idx.k_) (*out_labels)[v] = {LabelEntry(v, 0)};
    }
    std::vector<LabelEntry> scratch;
    for (std::uint32_t lvl = idx.k_; lvl-- > 1;) {
      for (VertexId v : levels[lvl]) {
        scratch.clear();
        scratch.emplace_back(v, 0);
        for (const HierEdge& e : dag[v]) {
          for (const LabelEntry& le : (*out_labels)[e.to]) {
            const VertexId via = (le.node == e.to) ? e.via : e.to;
            scratch.emplace_back(le.node,
                                 static_cast<Distance>(e.w) + le.dist, via);
          }
        }
        std::sort(scratch.begin(), scratch.end(),
                  [](const LabelEntry& a, const LabelEntry& b) {
                    if (a.node != b.node) return a.node < b.node;
                    return a.dist < b.dist;
                  });
        std::size_t out = 0;
        for (std::size_t j = 0; j < scratch.size(); ++j) {
          if (out > 0 && scratch[out - 1].node == scratch[j].node) continue;
          scratch[out++] = scratch[j];
        }
        scratch.resize(out);
        (*out_labels)[v] = scratch;
      }
    }
  };
  label_topdown(removed_out, &idx.out_labels_);
  label_topdown(removed_in, &idx.in_labels_);
  return idx;
}

std::uint64_t DirectedISLabel::TotalLabelEntries() const {
  std::uint64_t total = 0;
  for (const auto& l : out_labels_) total += l.size();
  for (const auto& l : in_labels_) total += l.size();
  return total;
}

void DirectedISLabel::EnsureScratch() {
  const std::size_t n = level_.size();
  for (SideState& s : sides_) {
    if (s.dist.size() != n) {
      s.dist.assign(n, kInfDistance);
      s.stamp.assign(n, 0);
      s.settled_stamp.assign(n, 0);
    }
  }
}

Status DirectedISLabel::Query(VertexId s, VertexId t, Distance* out,
                              QueryStats* stats) {
  const VertexId n = NumVertices();
  if (s >= n || t >= n) return Status::OutOfRange("vertex id out of range");
  if (stats != nullptr) *stats = QueryStats{};
  if (s == t) {
    *out = 0;
    return Status::OK();
  }

  const auto& ls = out_labels_[s];
  const auto& lt = in_labels_[t];
  const Eq1Result eq1 = EvaluateEq1(ls, lt);
  if (stats != nullptr) stats->intersection_size = eq1.intersection_size;

  std::vector<LabelEntry> seeds_f, seeds_r;
  for (const LabelEntry& e : ls) {
    if (InCore(e.node)) seeds_f.push_back(e);
  }
  for (const LabelEntry& e : lt) {
    if (InCore(e.node)) seeds_r.push_back(e);
  }
  if (seeds_f.empty() || seeds_r.empty()) {
    *out = eq1.dist;
    return Status::OK();
  }
  if (stats != nullptr) stats->used_search = true;
  *out = BiDijkstra(seeds_f, seeds_r, eq1.dist, stats);
  return Status::OK();
}

Status DirectedISLabel::Reachable(VertexId s, VertexId t, bool* out) {
  Distance d = kInfDistance;
  ISLABEL_RETURN_IF_ERROR(Query(s, t, &d));
  *out = (d != kInfDistance);
  return Status::OK();
}

Distance DirectedISLabel::BiDijkstra(const std::vector<LabelEntry>& seeds_f,
                                     const std::vector<LabelEntry>& seeds_r,
                                     Distance mu, QueryStats* stats) {
  EnsureScratch();
  ++epoch_;
  const std::uint32_t epoch = epoch_;

  auto dist_of = [&](int side, VertexId v) -> Distance {
    return sides_[side].stamp[v] == epoch ? sides_[side].dist[v]
                                          : kInfDistance;
  };
  auto is_settled = [&](int side, VertexId v) {
    return sides_[side].settled_stamp[v] == epoch;
  };

  using PqEntry = std::pair<Distance, VertexId>;
  std::priority_queue<PqEntry, std::vector<PqEntry>, std::greater<PqEntry>>
      pq[2];
  auto seed = [&](int side, const std::vector<LabelEntry>& seeds) {
    for (const LabelEntry& e : seeds) {
      if (e.dist < dist_of(side, e.node)) {
        sides_[side].dist[e.node] = e.dist;
        sides_[side].stamp[e.node] = epoch;
        pq[side].push({e.dist, e.node});
      }
    }
  };
  seed(0, seeds_f);
  seed(1, seeds_r);

  Distance best = mu;
  auto purge = [&](int side) {
    while (!pq[side].empty()) {
      const auto& [d, v] = pq[side].top();
      if (is_settled(side, v) || d != dist_of(side, v)) {
        pq[side].pop();
      } else {
        break;
      }
    }
  };

  while (true) {
    purge(0);
    purge(1);
    const Distance mf = pq[0].empty() ? kInfDistance : pq[0].top().first;
    const Distance mr = pq[1].empty() ? kInfDistance : pq[1].top().first;
    if (SatAdd(mf, mr) >= best) break;
    const int side = (mf <= mr) ? 0 : 1;
    const int opp = 1 - side;
    const auto [d, v] = pq[side].top();
    pq[side].pop();
    sides_[side].settled_stamp[v] = epoch;
    if (stats != nullptr) ++stats->settled;
    // Tentative-distance µ update (see query.cc / DESIGN.md).
    best = std::min(best, SatAdd(dist_of(0, v), dist_of(1, v)));
    // Forward explores out-arcs; backward explores in-arcs (i.e., walks
    // arcs against their direction toward t).
    const auto nbrs = side == 0 ? gk_.OutNeighbors(v) : gk_.InNeighbors(v);
    const auto ws = side == 0 ? gk_.OutWeights(v) : gk_.InWeights(v);
    for (std::size_t j = 0; j < nbrs.size(); ++j) {
      const VertexId u = nbrs[j];
      const Distance nd = d + ws[j];
      if (stats != nullptr) ++stats->relaxed;
      if (nd < dist_of(side, u)) {
        sides_[side].dist[u] = nd;
        sides_[side].stamp[u] = epoch;
        pq[side].push({nd, u});
      }
      best = std::min(best, SatAdd(dist_of(side, u), dist_of(opp, u)));
    }
  }
  return best;
}

}  // namespace islabel
