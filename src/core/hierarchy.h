// Vertex hierarchy (Definition 1 / Definition 4): the layered structure
// (L, G) from which labels are computed, terminated at level k.
//
// Construction (§6.1.3) alternates Algorithm 2 (independent set L_i of G_i)
// and Algorithm 3 (distance-preserving reduction G_{i+1}) until the σ
// criterion of §5.1 fires. What survives construction — and is all the
// labeling and query stages need — is:
//
//   * level[v] = ℓ(v) for every vertex (1..k);
//   * for each removed vertex v (ℓ(v) < k), its adjacency adj_{G_ℓ(v)}(v)
//     *at removal time*, i.e. its out-edges in the ancestor DAG. These are
//     exactly the ADJ(L_i) lists Algorithm 2 emits;
//   * the residual core graph G_k (with augmenting-edge via vertices when
//     path reconstruction is enabled).

#ifndef ISLABEL_CORE_HIERARCHY_H_
#define ISLABEL_CORE_HIERARCHY_H_

#include <cstdint>
#include <vector>

#include "core/options.h"
#include "graph/graph.h"
#include "util/io_stats.h"
#include "util/result.h"

namespace islabel {

/// One out-edge of the ancestor DAG: from a removed vertex v to a
/// higher-level neighbor `to`, with the edge weight in G_{ℓ(v)} and the
/// augmenting-edge intermediate vertex (kInvalidVertex for original edges).
struct HierEdge {
  VertexId to = 0;
  VertexId via = kInvalidVertex;
  Weight w = 1;

  HierEdge() = default;
  HierEdge(VertexId t, Weight ww, VertexId via_v = kInvalidVertex)
      : to(t), via(via_v), w(ww) {}

  friend bool operator==(const HierEdge& a, const HierEdge& b) {
    return a.to == b.to && a.w == b.w && a.via == b.via;
  }
};

/// Per-level construction statistics (the rows behind Tables 3/6/7).
struct LevelStats {
  std::uint64_t num_vertices = 0;  // |V_{G_i}|
  std::uint64_t num_edges = 0;     // |E_{G_i}|
  std::uint64_t is_size = 0;       // |L_i| (0 for the terminal level)
  std::uint64_t augmenting_edges = 0;  // edges inserted/updated building G_{i+1}
};

/// The k-level vertex hierarchy (Definition 4).
struct VertexHierarchy {
  /// ℓ(v) ∈ [1, k]; vertices of the residual graph carry k.
  std::vector<std::uint32_t> level;

  /// Number of levels: vertices of L_1..L_{k-1} were peeled; G_k is kept.
  std::uint32_t k = 0;

  /// adj_{G_ℓ(v)}(v) for each removed vertex v (empty for ℓ(v) = k).
  /// Sorted by target id.
  std::vector<std::vector<HierEdge>> removed_adj;

  /// Residual graph G_k over the original id space (vertices outside G_k
  /// simply have empty adjacency). Carries vias iff options.keep_vias.
  Graph g_k;

  /// Members of each L_i (index 0 unused; levels[i] = L_i, 1 <= i < k).
  std::vector<std::vector<VertexId>> levels;

  /// Sizes observed during construction; stats[i] describes G_{i+1}... see
  /// LevelStats. stats.size() == k.
  std::vector<LevelStats> stats;

  /// Logical I/O of the external pipeline (zero for in-memory builds).
  IoStats io;

  VertexId NumVertices() const {
    return static_cast<VertexId>(level.size());
  }
  bool InCore(VertexId v) const { return level[v] == k; }
};

/// Builds the k-level vertex hierarchy of `g` (§6.1.3). Dispatches to the
/// in-memory or the I/O-efficient external pipeline depending on
/// options.memory_budget_bytes; both produce identical hierarchies.
Result<VertexHierarchy> BuildHierarchy(const Graph& g,
                                       const IndexOptions& options);

}  // namespace islabel

#endif  // ISLABEL_CORE_HIERARCHY_H_
