#include "core/distance_index.h"

#include <algorithm>

#include "core/query.h"
#include "obs/trace.h"
#include "util/parallel.h"

namespace islabel {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kISLabel: return "islabel";
    case BackendKind::kCH: return "ch";
    case BackendKind::kAuto: return "auto";
  }
  return "?";
}

bool ParseBackendKind(std::string_view name, BackendKind* out) {
  if (name == "islabel") {
    *out = BackendKind::kISLabel;
    return true;
  }
  if (name == "ch") {
    *out = BackendKind::kCH;
    return true;
  }
  if (name == "auto") {
    *out = BackendKind::kAuto;
    return true;
  }
  return false;
}

DistanceIndex::~DistanceIndex() = default;

void DistanceIndex::InstallMetrics(obs::MetricRegistry* registry) {
  (void)registry;
}

Status DistanceIndex::CheckQueryable(VertexId s, VertexId t) const {
  const VertexId n = NumVertices();
  if (s >= n || t >= n) return Status::OutOfRange("vertex id out of range");
  return Status::OK();
}

Status DistanceIndex::Query(VertexId s, VertexId t, Distance* out,
                            QueryStats* stats) {
  ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, t));
  // Generation BEFORE compute: if a mutation lands mid-query, Insert sees
  // a moved generation and drops the answer instead of stamping a stale
  // distance as current. Stats-carrying calls bypass the cache so they
  // always measure the real backend.
  const bool use_cache = distance_cache_ != nullptr && stats == nullptr;
  std::uint64_t cache_gen = 0;
  if (use_cache) {
    obs::StageTimer span(obs::Stage::kCacheLookup);
    cache_gen = distance_cache_->generation();
    if (distance_cache_->Lookup(s, t, out)) {
      // Flag the hit on the active trace so the flight recorder can
      // tell cached answers from computed ones (DESIGN.md §17).
      obs::QueryTrace* hit_trace = obs::CurrentTrace();
      if (hit_trace != nullptr) hit_trace->set_cache_hit(true);
      return Status::OK();
    }
  }
  // Kernel attribution happens here, once, for every backend: the span
  // around QueryUncached minus whatever the engine pool charged to
  // kPoolWait inside it. Only the outermost frame records (a catalog
  // handle's QueryUncached re-enters this template method).
  obs::QueryTrace* trace = obs::CurrentTrace();
  Status st;
  if (trace != nullptr && trace->BeginKernel()) {
    const std::uint64_t pool_before =
        trace->StageMicros(obs::Stage::kPoolWait);
    const std::uint64_t t0 = trace->clock()->NowMicros();
    st = QueryUncached(s, t, out, stats);
    const std::uint64_t dt = trace->clock()->NowMicros() - t0;
    const std::uint64_t pool_dt =
        trace->StageMicros(obs::Stage::kPoolWait) - pool_before;
    trace->Add(obs::Stage::kKernel, dt > pool_dt ? dt - pool_dt : 0);
    trace->EndKernel();
  } else {
    if (trace != nullptr) {
      st = QueryUncached(s, t, out, stats);
      trace->EndKernel();
    } else {
      st = QueryUncached(s, t, out, stats);
    }
  }
  if (st.ok() && use_cache) distance_cache_->Insert(s, t, *out, cache_gen);
  return st;
}

Status DistanceIndex::QueryBatch(
    const std::vector<std::pair<VertexId, VertexId>>& pairs,
    std::vector<Distance>* out, std::uint32_t num_threads,
    std::vector<Status>* statuses) {
  out->assign(pairs.size(), kInfDistance);
  if (statuses != nullptr) statuses->assign(pairs.size(), Status::OK());
  if (pairs.empty()) return Status::OK();

  const std::size_t workers =
      std::min<std::size_t>(EffectiveThreads(num_threads), pairs.size());
  std::vector<Status> first_error(workers, Status::OK());
  ParallelForChunks(
      pairs.size(), workers,
      [&](std::size_t w, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          Status st = Query(pairs[i].first, pairs[i].second, &(*out)[i]);
          if (!st.ok()) {
            (*out)[i] = kInfDistance;
            if (statuses != nullptr) {
              (*statuses)[i] = std::move(st);
            } else if (first_error[w].ok()) {
              first_error[w] = std::move(st);
            }
          }
        }
      });
  if (statuses == nullptr) {
    for (Status& st : first_error) {
      if (!st.ok()) return std::move(st);
    }
  }
  return Status::OK();
}

Status DistanceIndex::QueryOneToMany(VertexId s,
                                     const std::vector<VertexId>& targets,
                                     std::vector<Distance>* out,
                                     QueryStats* stats) {
  ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, s));
  for (VertexId t : targets) {
    ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, t));
  }
  out->assign(targets.size(), kInfDistance);
  if (stats != nullptr) *stats = QueryStats{};
  for (std::size_t i = 0; i < targets.size(); ++i) {
    QueryStats one;
    ISLABEL_RETURN_IF_ERROR(QueryUncached(s, targets[i], &(*out)[i],
                                          stats != nullptr ? &one : nullptr));
    if (stats != nullptr) {
      stats->label_fetch_seconds += one.label_fetch_seconds;
      stats->search_seconds += one.search_seconds;
      stats->label_ios += one.label_ios;
      stats->used_search = stats->used_search || one.used_search;
      stats->settled += one.settled;
      stats->relaxed += one.relaxed;
    }
  }
  return Status::OK();
}

Status DistanceIndex::QueryManyToMany(const std::vector<VertexId>& sources,
                                      const std::vector<VertexId>& targets,
                                      std::vector<Distance>* out,
                                      std::uint32_t num_threads) {
  for (VertexId s : sources) ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, s));
  for (VertexId t : targets) ISLABEL_RETURN_IF_ERROR(CheckQueryable(t, t));
  out->assign(sources.size() * targets.size(), kInfDistance);
  if (sources.empty() || targets.empty()) return Status::OK();

  const std::size_t workers =
      std::min<std::size_t>(EffectiveThreads(num_threads), sources.size());
  std::vector<Status> first_error(workers, Status::OK());
  ParallelForChunks(
      sources.size(), workers,
      [&](std::size_t w, std::size_t begin, std::size_t end) {
        std::vector<Distance> row;
        for (std::size_t i = begin; i < end; ++i) {
          Status st = QueryOneToMany(sources[i], targets, &row);
          if (!st.ok()) {
            if (first_error[w].ok()) first_error[w] = std::move(st);
            continue;
          }
          std::copy(row.begin(), row.end(),
                    out->begin() + static_cast<std::ptrdiff_t>(
                                       i * targets.size()));
        }
      });
  for (Status& st : first_error) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

Status DistanceIndex::Save(const std::string& dir) const {
  (void)dir;
  return Status::NotSupported("this backend does not support Save");
}

}  // namespace islabel
