#include "core/labeling.h"

#include <algorithm>
#include <queue>

#include "util/parallel.h"

namespace islabel {

std::size_t SortAndDedupeRange(LabelEntry* entries, std::size_t count) {
  std::sort(entries, entries + count,
            [](const LabelEntry& a, const LabelEntry& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.via < b.via;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (out > 0 && entries[out - 1].node == entries[i].node) continue;
    entries[out++] = entries[i];
  }
  return out;
}

LabelArena ComputeLabelsTopDown(const VertexHierarchy& h, LabelingStats* stats,
                                std::uint32_t num_threads) {
  const VertexId n = h.NumVertices();

  // The slab under construction, in level-completion order (core first,
  // then L_{k-1}, ..., L_1); start/len locate each finished label so lower
  // levels can read it. The final arena permutes this into vertex-id CSR.
  std::vector<LabelEntry> slab;
  std::vector<std::uint64_t> start(n, 0);
  std::vector<std::uint32_t> len(n, 0);

  // Initialization (Algorithm 4 lines 1-4): residual vertices are their own
  // single ancestor.
  for (VertexId v = 0; v < n; ++v) {
    if (h.level[v] == h.k) {
      start[v] = slab.size();
      len[v] = 1;
      slab.emplace_back(v, 0);
    }
  }

  // Top-down propagation, level k-1 down to 1. When v ∈ L_i is processed,
  // every DAG neighbor u of v has ℓ(u) > i, so label(u) is already complete
  // (Corollary 1): label(v) = {(v,0)} ∪ min-merge over u of
  // (w, ω(v,u) + d(u,w)). Within a level the vertices are independent —
  // they only read finished upper-level labels — so each level runs as a
  // deterministic two-pass parallel step.
  std::vector<LabelEntry> cand;        // per-level candidate regions
  std::vector<std::uint64_t> coff;     // candidate region offsets
  std::vector<std::uint64_t> foff;     // finished-label offsets in the slab
  std::vector<std::uint32_t> flen;     // finished label lengths
  for (std::uint32_t i = h.k; i-- > 1;) {
    const std::vector<VertexId>& level = h.levels[i];
    const std::size_t m = level.size();
    if (m == 0) continue;

    // Pass 1 (serial, O(level adjacency)): size each vertex's candidate
    // region — self entry + one candidate per upper-label entry — and
    // prefix-sum the regions.
    coff.assign(m + 1, 0);
    for (std::size_t j = 0; j < m; ++j) {
      std::uint64_t c = 1;
      for (const HierEdge& e : h.removed_adj[level[j]]) c += len[e.to];
      coff[j + 1] = coff[j] + c;
    }
    if (cand.size() < coff[m]) cand.resize(coff[m]);

    // Pass 2 (parallel): generate candidates into the private region, then
    // collapse to the final label in place.
    flen.assign(m, 0);
    const LabelEntry* upper = slab.data();
    ParallelFor(m, num_threads, [&](std::size_t j) {
      const VertexId v = level[j];
      LabelEntry* out = cand.data() + coff[j];
      std::size_t c = 0;
      out[c++] = LabelEntry(v, 0);
      for (const HierEdge& e : h.removed_adj[v]) {
        const LabelEntry* up = upper + start[e.to];
        const std::uint32_t up_len = len[e.to];
        for (std::uint32_t t = 0; t < up_len; ++t) {
          // Intermediate vertex for path reconstruction (§8.1): the direct
          // entry inherits the augmenting edge's via; transitive entries
          // record the neighbor u as the split point.
          const VertexId via = (up[t].node == e.to) ? e.via : e.to;
          out[c++] = LabelEntry(up[t].node,
                                static_cast<Distance>(e.w) + up[t].dist, via);
        }
      }
      flen[j] = static_cast<std::uint32_t>(SortAndDedupeRange(out, c));
    }, /*min_items_per_worker=*/32);

    // Pass 3: prefix-sum the finished lengths, grow the slab once, and
    // copy the compacted labels in parallel.
    foff.assign(m + 1, slab.size());
    for (std::size_t j = 0; j < m; ++j) foff[j + 1] = foff[j] + flen[j];
    slab.resize(foff[m]);
    LabelEntry* slab_out = slab.data();
    ParallelFor(m, num_threads, [&](std::size_t j) {
      const VertexId v = level[j];
      std::copy_n(cand.data() + coff[j], flen[j], slab_out + foff[j]);
      start[v] = foff[j];
      len[v] = flen[j];
    }, /*min_items_per_worker=*/512);
  }

  if (stats != nullptr) {
    *stats = LabelingStats{};
    for (VertexId v = 0; v < n; ++v) {
      stats->total_entries += len[v];
      stats->max_entries = std::max<std::uint64_t>(stats->max_entries, len[v]);
    }
    stats->bytes_in_memory = stats->total_entries * sizeof(LabelEntry);
  }

  // Final assembly: permute the level-ordered slab into the vertex-id CSR
  // the arena serves. The candidate buffers are released first; the slab
  // itself is transiently duplicated here (~2x label bytes peak) — builds
  // that cannot afford that belong on the memory-budgeted external
  // pipeline (DESIGN.md §6).
  cand = {};
  coff = {};
  foff = {};
  flen = {};
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + len[v];
  std::vector<LabelEntry> ordered(static_cast<std::size_t>(offsets[n]));
  LabelEntry* ordered_out = ordered.data();
  const LabelEntry* slab_in = slab.data();
  ParallelFor(n, num_threads, [&](std::size_t v) {
    std::copy_n(slab_in + start[v], len[v], ordered_out + offsets[v]);
  }, /*min_items_per_worker=*/4096);

  LabelArena arena(std::move(ordered), std::move(offsets));
  arena.ComputeSeedCuts(h.level, h.k);
  return arena;
}

std::vector<LabelEntry> ComputeLabelDefinition3(const VertexHierarchy& h,
                                                VertexId v,
                                                Definition3Scratch* scratch) {
  // The literal procedure: keep a set of marked vertices; repeatedly unmark
  // the one with the smallest level number and relax its DAG out-edges.
  // Levels strictly increase along DAG edges, so processing by level is a
  // topological order and every d is final when its vertex is unmarked.
  struct QEntry {
    std::uint32_t level;
    VertexId node;
    bool operator>(const QEntry& o) const {
      if (level != o.level) return level > o.level;
      return node > o.node;
    }
  };
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>>
      marked;

  // Tentative distances live in an epoch-stamped dense array (reusable via
  // *scratch) instead of a hash map: lookup is one indexed load, and reuse
  // across a full-graph oracle sweep skips the O(n) clear.
  Definition3Scratch local;
  Definition3Scratch& s = scratch != nullptr ? *scratch : local;
  const std::size_t n = h.NumVertices();
  if (s.best.size() != n) {
    s.best.assign(n, LabelEntry());
    s.stamp.assign(n, 0);
    s.epoch = 0;
  }
  if (++s.epoch == 0) {
    s.stamp.assign(n, 0);  // epoch wrap: invalidate all stamps
    s.epoch = 1;
  }
  s.touched.clear();
  const std::uint32_t epoch = s.epoch;
  auto touch = [&](VertexId u, const LabelEntry& e) {
    s.best[u] = e;
    if (s.stamp[u] != epoch) {
      s.stamp[u] = epoch;
      s.touched.push_back(u);
    }
  };

  touch(v, LabelEntry(v, 0));
  marked.push({h.level[v], v});
  while (!marked.empty()) {
    QEntry top = marked.top();
    marked.pop();
    const VertexId u = top.node;
    const Distance du = s.best[u].dist;
    if (h.level[u] == h.k) continue;  // residual vertices are DAG sinks
    for (const HierEdge& e : h.removed_adj[u]) {
      const Distance cand = du + e.w;
      const VertexId via = (u == v) ? e.via : u;
      if (s.stamp[e.to] != epoch) {
        touch(e.to, LabelEntry(e.to, cand, via));
        marked.push({h.level[e.to], e.to});
      } else if (cand < s.best[e.to].dist) {
        s.best[e.to] = LabelEntry(e.to, cand, via);
      }
    }
  }

  std::vector<LabelEntry> out;
  out.reserve(s.touched.size());
  std::sort(s.touched.begin(), s.touched.end());
  for (VertexId u : s.touched) out.push_back(s.best[u]);
  return out;
}

}  // namespace islabel
