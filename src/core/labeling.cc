#include "core/labeling.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

namespace islabel {

namespace {

// Sort candidates by ancestor id, then distance, so the first record per
// ancestor after a stable pass is the minimum-distance one. The via vertex
// breaks exact ties so the surviving entry does not depend on candidate
// generation order (the external pipeline joins in a different order).
void SortAndDedupe(std::vector<LabelEntry>* entries) {
  std::sort(entries->begin(), entries->end(),
            [](const LabelEntry& a, const LabelEntry& b) {
              if (a.node != b.node) return a.node < b.node;
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.via < b.via;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < entries->size(); ++i) {
    if (out > 0 && (*entries)[out - 1].node == (*entries)[i].node) continue;
    (*entries)[out++] = (*entries)[i];
  }
  entries->resize(out);
}

}  // namespace

LabelSet ComputeLabelsTopDown(const VertexHierarchy& h, LabelingStats* stats) {
  const VertexId n = h.NumVertices();
  LabelSet labels(n);

  // Initialization (Algorithm 4 lines 1-4): residual vertices are their own
  // single ancestor.
  for (VertexId v = 0; v < n; ++v) {
    if (h.level[v] == h.k) labels[v] = {LabelEntry(v, 0)};
  }

  // Top-down propagation, level k-1 down to 1. When v ∈ L_i is processed,
  // every DAG neighbor u of v has ℓ(u) > i, so label(u) is already complete
  // (Corollary 1): label(v) = {(v,0)} ∪ min-merge over u of
  // (w, ω(v,u) + d(u,w)).
  std::vector<LabelEntry> scratch;
  for (std::uint32_t i = h.k; i-- > 1;) {
    for (VertexId v : h.levels[i]) {
      scratch.clear();
      scratch.emplace_back(v, 0);
      for (const HierEdge& e : h.removed_adj[v]) {
        const auto& upper = labels[e.to];
        for (const LabelEntry& le : upper) {
          // Intermediate vertex for path reconstruction (§8.1): the direct
          // entry inherits the augmenting edge's via; transitive entries
          // record the neighbor u as the split point.
          const VertexId via = (le.node == e.to) ? e.via : e.to;
          scratch.emplace_back(le.node, static_cast<Distance>(e.w) + le.dist,
                               via);
        }
      }
      SortAndDedupe(&scratch);
      labels[v] = scratch;
    }
  }

  if (stats != nullptr) {
    *stats = LabelingStats{};
    for (const auto& l : labels) {
      stats->total_entries += l.size();
      stats->max_entries = std::max<std::uint64_t>(stats->max_entries,
                                                   l.size());
      stats->bytes_in_memory += l.size() * sizeof(LabelEntry);
    }
  }
  return labels;
}

std::vector<LabelEntry> ComputeLabelDefinition3(const VertexHierarchy& h,
                                                VertexId v) {
  // The literal procedure: keep a set of marked vertices; repeatedly unmark
  // the one with the smallest level number and relax its DAG out-edges.
  // Levels strictly increase along DAG edges, so processing by level is a
  // topological order and every d is final when its vertex is unmarked.
  struct QEntry {
    std::uint32_t level;
    VertexId node;
    bool operator>(const QEntry& o) const {
      if (level != o.level) return level > o.level;
      return node > o.node;
    }
  };
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>>
      marked;
  std::unordered_map<VertexId, LabelEntry> best;

  best.emplace(v, LabelEntry(v, 0));
  marked.push({h.level[v], v});
  while (!marked.empty()) {
    QEntry top = marked.top();
    marked.pop();
    const VertexId u = top.node;
    const Distance du = best.at(u).dist;
    if (h.level[u] == h.k) continue;  // residual vertices are DAG sinks
    for (const HierEdge& e : h.removed_adj[u]) {
      const Distance cand = du + e.w;
      const VertexId via = (u == v) ? e.via : u;
      auto it = best.find(e.to);
      if (it == best.end()) {
        best.emplace(e.to, LabelEntry(e.to, cand, via));
        marked.push({h.level[e.to], e.to});
      } else if (cand < it->second.dist) {
        it->second.dist = cand;
        it->second.via = via;
      }
    }
  }

  std::vector<LabelEntry> out;
  out.reserve(best.size());
  for (const auto& [node, entry] : best) out.push_back(entry);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace islabel
