// Update maintenance (§8.3): vertex insertion and deletion.
//
// Insertion. The paper adds the new vertex u to G_k, inserts (u, ω(u,v))
// into label(v) for each non-core neighbor v, and patches v's descendants.
// That lazy patch alone is not exact: a shortest path may dip below the
// core through v from a vertex w that is *not* a descendant of v (w and v
// merely share an ancestor). Re-running the construction conceptually
// shows what full maintenance requires: u becomes adjacent, level by
// level, to every ancestor x ∈ V[label(v)] at cost d(v,x) + ω(v,u), so
//   * every core ancestor x of v gains the G_k bridge edge (x, u), and
//   * every vertex w whose label intersects label(v) gains the entry
//     (u, Eq1(w, v) + ω(v,u)) — the descendant tree of §8.3 is exactly the
//     subset of these w with v itself as the witness.
// With the closure, insertion is exact (tests validate against Dijkstra on
// the updated graph); its cost is one Equation-1 evaluation per vertex per
// non-core neighbor — the price of exactness that the paper's lazy variant
// trades away.
//
// Deletion follows the paper: remove u's entries everywhere and its core
// edges. This is exact for core vertices (label-path distances never route
// through core vertices, whose labels are trivial); for below-core
// vertices stale distances may remain until a rebuild — the paper's
// "rebuild the index periodically".

// Both operations patch labels through the LabelArena's overflow
// side-table: the slab stays immutable, the first mutation of a label
// copies it out, and queries transparently see the patched copy.

#include <limits>
#include <vector>

#include "core/index.h"
#include "core/label.h"

namespace islabel {

Status ISLabelIndex::InsertVertex(
    VertexId v, const std::vector<std::pair<VertexId, Weight>>& adj) {
  if (hierarchy_ == nullptr) {
    return Status::FailedPrecondition("index not built");
  }
  if (store_ != nullptr) {
    return Status::FailedPrecondition(
        "updates require in-memory labels (load with labels_in_memory)");
  }
  const VertexId n = hierarchy_->NumVertices();
  if (v != n) {
    return Status::InvalidArgument(
        "inserted vertex id must equal NumVertices()");
  }
  for (const auto& [nbr, w] : adj) {
    if (nbr == v) return Status::InvalidArgument("self-loops not allowed");
    if (nbr >= n) return Status::OutOfRange("neighbor id out of range");
    if (IsDeleted(nbr)) return Status::InvalidArgument("neighbor is deleted");
    if (w == 0) return Status::InvalidArgument("weights must be positive");
  }

  // The new vertex lives in G_k with the highest level number; its own
  // label is the trivial {(v, 0)}, appended to the side-table.
  hierarchy_->level.push_back(hierarchy_->k);
  hierarchy_->removed_adj.emplace_back();
  labels_->AppendLabel(v, {LabelEntry(v, 0)});
  deleted_.Resize(n + 1);

  EdgeList core = hierarchy_->g_k.ToEdgeList();
  core.EnsureVertices(n + 1);

  for (const auto& [nbr, w] : adj) {
    if (hierarchy_->InCore(nbr)) {
      core.Add(v, nbr, w);
      continue;
    }
    // Snapshot label(nbr) before patching so the closure is computed
    // against the pre-insert state.
    const std::vector<LabelEntry> anchor = labels_->View(nbr).ToVector();
    // Core bridges: u is reachable from every core ancestor of nbr.
    for (const LabelEntry& e : anchor) {
      if (hierarchy_->InCore(e.node)) {
        const Distance bridge = e.dist + w;
        if (bridge > std::numeric_limits<Weight>::max()) {
          return Status::OutOfRange(
              "bridge edge weight overflows the Weight type");
        }
        core.Add(e.node, v, static_cast<Weight>(bridge), nbr);
      }
    }
    // Label closure: every vertex sharing an ancestor with nbr can route
    // to u below the core. The via vertex must be a strict intermediate:
    // for nbr's own entry the edge (nbr, v) is direct.
    for (VertexId target = 0; target < n; ++target) {
      if (IsDeleted(target) || hierarchy_->InCore(target)) continue;
      const Eq1Result r = EvaluateEq1(labels_->View(target), anchor);
      if (r.dist == kInfDistance) continue;
      const VertexId via = (target == nbr) ? kInvalidVertex : nbr;
      labels_->UpsertEntry(target, LabelEntry(v, r.dist + w, via));
    }
  }

  // Rebuild even without new core edges: v joined the core, and the CSR
  // must span the grown id space.
  RebuildCore(std::move(core));
  return Status::OK();
}

Status ISLabelIndex::DeleteVertex(VertexId v) {
  if (hierarchy_ == nullptr) {
    return Status::FailedPrecondition("index not built");
  }
  if (store_ != nullptr) {
    return Status::FailedPrecondition(
        "updates require in-memory labels (load with labels_in_memory)");
  }
  const VertexId n = hierarchy_->NumVertices();
  if (v >= n) return Status::OutOfRange("vertex id out of range");
  if (IsDeleted(v)) return Status::InvalidArgument("vertex already deleted");

  // Remove v's entries from every label that references it (v's
  // descendants). When v is a core vertex appearing in no label, this loop
  // is a no-op and the deletion is exact (§8.3). EraseEntry only copies a
  // label to the side-table when it actually contains v.
  for (VertexId w = 0; w < n; ++w) {
    if (w == v) continue;
    labels_->EraseEntry(w, v);
  }
  labels_->ClearLabel(v);
  deleted_.Set(v);

  if (hierarchy_->InCore(v)) {
    EdgeList old = hierarchy_->g_k.ToEdgeList();
    EdgeList rebuilt(hierarchy_->NumVertices());
    for (const Edge& e : old.edges()) {
      if (e.u != v && e.v != v) rebuilt.Add(e.u, e.v, e.w, e.via);
    }
    RebuildCore(std::move(rebuilt));
  } else {
    ResetPool();
  }
  return Status::OK();
}

}  // namespace islabel
