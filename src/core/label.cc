#include "core/label.h"

#include <algorithm>

namespace islabel {

Eq1Result EvaluateEq1(LabelView label_s, LabelView label_t) {
  Eq1Result r;
  std::size_t i = 0, j = 0;
  while (i < label_s.size() && j < label_t.size()) {
    if (label_s[i].node < label_t[j].node) {
      ++i;
    } else if (label_s[i].node > label_t[j].node) {
      ++j;
    } else {
      ++r.intersection_size;
      const Distance sum = label_s[i].dist + label_t[j].dist;
      if (sum < r.dist) {
        r.dist = sum;
        r.witness = label_s[i].node;
        r.s_entry = label_s[i];
        r.t_entry = label_t[j];
      }
      ++i;
      ++j;
    }
  }
  return r;
}

const LabelEntry* FindEntry(LabelView label, VertexId node) {
  auto it = std::lower_bound(
      label.begin(), label.end(), node,
      [](const LabelEntry& e, VertexId n) { return e.node < n; });
  if (it == label.end() || it->node != node) return nullptr;
  return it;
}

std::vector<VertexId> VerticesOf(LabelView label) {
  std::vector<VertexId> out;
  out.reserve(label.size());
  for (const LabelEntry& e : label) out.push_back(e.node);
  return out;
}

}  // namespace islabel
