// Algorithm 3: build G_{i+1} from G_i by removing an independent set and
// adding augmenting edges.
//
// For every removed vertex v and every pair u < w of its neighbors, the
// 2-path <u, v, w> is preserved by the augmenting edge (u, w) of weight
// ω(u,v) + ω(v,w) with intermediate vertex v; if (u,w) already exists the
// smaller weight wins (Lemma 2). Because L_i is independent, 2-hop
// self-joins on the removed adjacency lists suffice — the property that
// keeps the external variant to sequential scans and one sort.

#ifndef ISLABEL_CORE_AUGMENT_H_
#define ISLABEL_CORE_AUGMENT_H_

#include <cstdint>
#include <vector>

#include "core/level_graph.h"
#include "util/result.h"

namespace islabel {

/// Outcome counters for one application of Algorithm 3.
struct AugmentStats {
  std::uint64_t pairs_considered = 0;    // |EA| before dedup
  std::uint64_t edges_inserted = 0;      // new edges in G_{i+1}
  std::uint64_t weights_lowered = 0;     // existing edges whose weight dropped
};

/// Removes the (independent) vertex set `removed` from `*g` in place and
/// inserts the augmenting edges. `removed_adj[v]` must already hold
/// adj_{G_i}(v) for each removed v (the caller snapshots it; Algorithm 2's
/// ADJ(L_i) output). Fails with OutOfRange if an augmenting weight would
/// overflow the Weight type.
Result<AugmentStats> AugmentInPlace(
    LevelGraph* g, const std::vector<VertexId>& removed,
    const std::vector<std::vector<HierEdge>>& removed_adj);

}  // namespace islabel

#endif  // ISLABEL_CORE_AUGMENT_H_
