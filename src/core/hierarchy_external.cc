// I/O-efficient hierarchy construction (§6.1, Algorithms 2 and 3).
//
// Level graphs live on disk as arrays of directed edge records sorted by
// (src, dst) — the on-disk adjacency-list representation. Each level then
// costs:
//   * Algorithm 2: one scan to attach degrees, one external sort by
//     (degree, src), one scan to greedily select the independent set. The
//     L' exclusion buffer is bounded by options.lprime_buffer_capacity;
//     when it fills, the remaining file is rewritten to evict excluded
//     vertices (the paper's lines 10-11) and the buffer cleared.
//   * Algorithm 3: one filtering scan (drop removed vertices), the EA
//     self-join spilled through an external sort by (src, dst, weight),
//     and one merge scan applying the min-weight rule.
//
// The result is bit-identical to the in-memory pipeline (tests assert
// this); every disk touch is counted in VertexHierarchy::io so benches can
// report modeled HDD cost.

#include <cstdio>
#include <limits>
#include <utility>

#include "core/hierarchy.h"
#include "core/options.h"
#include "storage/block_file.h"
#include "storage/external_sorter.h"
#include "util/bit_vector.h"
#include "util/logging.h"

namespace islabel {

namespace {

// One directed copy of an edge of the current level graph; 16 bytes,
// trivially copyable for ExternalSorter and raw BlockFile arrays.
struct DiskEdge {
  VertexId src;
  VertexId dst;
  Weight w;
  VertexId via;
};
static_assert(sizeof(DiskEdge) == 16);

// DiskEdge prefixed by the degree of its source — the sort key of
// Algorithm 2's "ascending order of degree".
struct DegEdge {
  std::uint32_t deg;
  DiskEdge e;
};

struct DegLess {
  bool operator()(const DegEdge& a, const DegEdge& b) const {
    if (a.deg != b.deg) return a.deg < b.deg;
    if (a.e.src != b.e.src) return a.e.src < b.e.src;
    return a.e.dst < b.e.dst;
  }
};

struct SrcDstLess {
  bool operator()(const DiskEdge& a, const DiskEdge& b) const {
    if (a.src != b.src) return a.src < b.src;
    if (a.dst != b.dst) return a.dst < b.dst;
    if (a.w != b.w) return a.w < b.w;
    // Same tie-break as the in-memory EA sort: results are bit-identical.
    return a.via < b.via;
  }
};

// Sequential typed reader over a BlockFile of PODs.
template <typename T>
class RecordReader {
 public:
  explicit RecordReader(BlockFile* file) : file_(file) {}

  bool Next(T* out) {
    if (pos_ + sizeof(T) > file_->FileSize()) return false;
    if (buf_pos_ >= buf_.size()) {
      const std::uint64_t remaining = file_->FileSize() - pos_;
      const std::size_t n = static_cast<std::size_t>(std::min<std::uint64_t>(
          remaining, (kDefaultBlockSize / sizeof(T)) * sizeof(T)));
      buf_.resize(n / sizeof(T));
      if (!file_->ReadAt(pos_, buf_.data(), n).ok()) return false;
      buf_pos_ = 0;
    }
    *out = buf_[buf_pos_++];
    pos_ += sizeof(T);
    return true;
  }

 private:
  BlockFile* file_;
  std::uint64_t pos_ = 0;
  std::vector<T> buf_;
  std::size_t buf_pos_ = 0;
};

// Buffered typed appender.
template <typename T>
class RecordWriter {
 public:
  explicit RecordWriter(BlockFile* file) : file_(file) {}

  Status Add(const T& r) {
    buf_.push_back(r);
    ++count_;
    if (buf_.size() * sizeof(T) >= kDefaultBlockSize) return FlushBuf();
    return Status::OK();
  }
  Status Finish() {
    ISLABEL_RETURN_IF_ERROR(FlushBuf());
    return file_->Flush();
  }
  std::uint64_t count() const { return count_; }

 private:
  Status FlushBuf() {
    if (buf_.empty()) return Status::OK();
    ISLABEL_RETURN_IF_ERROR(
        file_->Append(buf_.data(), buf_.size() * sizeof(T), nullptr));
    buf_.clear();
    return Status::OK();
  }
  BlockFile* file_;
  std::vector<T> buf_;
  std::uint64_t count_ = 0;
};

// Owns the temp files of one construction and removes them on destruction.
class TempFiles {
 public:
  explicit TempFiles(std::string dir) : dir_(std::move(dir)) {}
  ~TempFiles() {
    for (const std::string& p : paths_) std::remove(p.c_str());
  }
  std::string Fresh(const char* tag) {
    paths_.push_back(NextTempPath(dir_, tag));
    return paths_.back();
  }

 private:
  std::string dir_;
  std::vector<std::string> paths_;
};

}  // namespace

Result<VertexHierarchy> BuildHierarchyExternal(const Graph& g,
                                               const IndexOptions& options) {
  if (options.is_order != IsOrder::kMinDegree) {
    return Status::NotSupported(
        "the external pipeline implements the paper's min-degree order only");
  }
  const VertexId n = g.NumVertices();
  VertexHierarchy h;
  h.level.assign(n, 0);
  h.removed_adj.resize(n);
  h.levels.push_back({});

  TempFiles temps(options.tmp_dir);
  IoStats io;

  // Spool G_1 to disk as sorted directed records.
  auto level_file = std::make_unique<BlockFile>();
  ISLABEL_RETURN_IF_ERROR(
      level_file->Open(temps.Fresh("level"), /*truncate=*/true));
  {
    RecordWriter<DiskEdge> w(level_file.get());
    for (VertexId v = 0; v < n; ++v) {
      auto nbrs = g.Neighbors(v);
      auto ws = g.NeighborWeights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        ISLABEL_RETURN_IF_ERROR(w.Add(DiskEdge{
            v, nbrs[i], ws[i],
            g.has_vias() ? g.NeighborVias(v)[i] : kInvalidVertex}));
      }
    }
    ISLABEL_RETURN_IF_ERROR(w.Finish());
  }

  BitVector alive(n, true);
  std::uint64_t num_alive = n;
  std::uint64_t num_edge_records = level_file->FileSize() / sizeof(DiskEdge);
  std::uint64_t prev_size = num_alive + num_edge_records / 2;

  std::uint32_t i = 1;
  while (true) {
    const std::uint64_t cur_size = num_alive + num_edge_records / 2;
    LevelStats ls;
    ls.num_vertices = num_alive;
    ls.num_edges = num_edge_records / 2;

    bool stop = false;
    if (options.forced_k != 0) {
      stop = (i == options.forced_k);
    } else if (!options.full_hierarchy && i >= 2 &&
               static_cast<double>(cur_size) >
                   options.sigma * static_cast<double>(prev_size)) {
      stop = true;
    }
    if (num_alive == 0) stop = true;
    if (options.max_levels != 0 && i >= options.max_levels) stop = true;
    if (stop) {
      h.k = i;
      h.stats.push_back(ls);
      break;
    }

    // ---- Algorithm 2: independent set, external ----
    // Pass 1: attach degrees (run lengths) and external-sort by (deg, src).
    ExternalSorter<DegEdge, DegLess> deg_sorter(
        options.tmp_dir, options.memory_budget_bytes, DegLess{});
    {
      RecordReader<DiskEdge> reader(level_file.get());
      std::vector<DiskEdge> run;
      DiskEdge e;
      bool more = reader.Next(&e);
      while (more) {
        run.clear();
        run.push_back(e);
        while ((more = reader.Next(&e)) && e.src == run.front().src) {
          run.push_back(e);
        }
        const std::uint32_t deg = static_cast<std::uint32_t>(run.size());
        for (const DiskEdge& r : run) {
          ISLABEL_RETURN_IF_ERROR(deg_sorter.Add(DegEdge{deg, r}));
        }
      }
    }
    ISLABEL_RETURN_IF_ERROR(deg_sorter.Finish());

    // Materialize G'_i (the degree-sorted copy) so the L'-overflow rewrite
    // of lines 10-11 has a file to compact.
    auto gprime = std::make_unique<BlockFile>();
    ISLABEL_RETURN_IF_ERROR(
        gprime->Open(temps.Fresh("gprime"), /*truncate=*/true));
    {
      RecordWriter<DegEdge> w(gprime.get());
      DegEdge de;
      while (deg_sorter.Next(&de)) ISLABEL_RETURN_IF_ERROR(w.Add(de));
      ISLABEL_RETURN_IF_ERROR(w.Finish());
    }
    io += deg_sorter.stats();

    // Pass 2: greedy selection. Isolated alive vertices have no records and
    // are all independent; select them first (they precede every run in
    // (deg, src) order since their degree is 0).
    std::vector<VertexId> li;
    BitVector in_lprime(n);
    std::uint64_t lprime_count = 0;
    {
      BitVector has_edges(n);
      {
        RecordReader<DiskEdge> reader(level_file.get());
        DiskEdge e;
        while (reader.Next(&e)) has_edges.Set(e.src);
      }
      for (VertexId v = 0; v < n; ++v) {
        if (alive[v] && !has_edges[v]) li.push_back(v);
      }
    }
    while (true) {
      RecordReader<DegEdge> reader(gprime.get());
      DegEdge de;
      bool more = reader.Next(&de);
      bool overflowed = false;
      std::uint64_t scanned_records = 0;
      std::vector<DiskEdge> run;
      while (more && !overflowed) {
        run.clear();
        run.push_back(de.e);
        std::uint64_t run_start = scanned_records;
        ++scanned_records;
        while ((more = reader.Next(&de)) && de.e.src == run.front().src) {
          run.push_back(de.e);
          ++scanned_records;
        }
        const VertexId u = run.front().src;
        if (in_lprime[u]) continue;
        li.push_back(u);
        auto& adj = h.removed_adj[u];
        adj.clear();
        adj.reserve(run.size());
        for (const DiskEdge& r : run) adj.emplace_back(r.dst, r.w, r.via);
        for (const DiskEdge& r : run) {
          if (!in_lprime[r.dst]) {
            in_lprime.Set(r.dst);
            ++lprime_count;
          }
        }
        if (options.lprime_buffer_capacity != 0 &&
            lprime_count > options.lprime_buffer_capacity && more) {
          // Lines 10-11: rewrite the unscanned remainder of G'_i without
          // the excluded vertices, then clear L'.
          auto compacted = std::make_unique<BlockFile>();
          ISLABEL_RETURN_IF_ERROR(
              compacted->Open(temps.Fresh("gprime"), /*truncate=*/true));
          RecordWriter<DegEdge> w(compacted.get());
          // The record under the cursor (`de`) begins the remainder.
          ISLABEL_RETURN_IF_ERROR(w.Add(de));
          DegEdge rest;
          while (reader.Next(&rest)) ISLABEL_RETURN_IF_ERROR(w.Add(rest));
          ISLABEL_RETURN_IF_ERROR(w.Finish());
          io += gprime->stats();
          // Filter the compacted file against L' in a second pass (a
          // single pass with filtering while copying).
          auto filtered = std::make_unique<BlockFile>();
          ISLABEL_RETURN_IF_ERROR(
              filtered->Open(temps.Fresh("gprime"), /*truncate=*/true));
          {
            RecordReader<DegEdge> rr(compacted.get());
            RecordWriter<DegEdge> fw(filtered.get());
            DegEdge x;
            while (rr.Next(&x)) {
              if (!in_lprime[x.e.src]) ISLABEL_RETURN_IF_ERROR(fw.Add(x));
            }
            ISLABEL_RETURN_IF_ERROR(fw.Finish());
          }
          io += compacted->stats();
          gprime = std::move(filtered);
          in_lprime.Reset();
          lprime_count = 0;
          overflowed = true;  // restart the scan on the compacted file
          (void)run_start;
        }
      }
      if (!overflowed) break;
    }
    std::sort(li.begin(), li.end());
    io += gprime->stats();
    gprime.reset();

    ls.is_size = li.size();
    for (VertexId v : li) {
      h.level[v] = i;
      alive.Clear(v);
    }
    num_alive -= li.size();

    // ---- Algorithm 3: build G_{i+1}, external ----
    BitVector in_li(n);
    for (VertexId v : li) in_li.Set(v);

    // EA self-join, spilled through an external sort by (src, dst, w).
    ExternalSorter<DiskEdge, SrcDstLess> ea_sorter(
        options.tmp_dir, options.memory_budget_bytes, SrcDstLess{});
    for (VertexId v : li) {
      const auto& adj = h.removed_adj[v];
      for (std::size_t a = 0; a < adj.size(); ++a) {
        for (std::size_t b = a + 1; b < adj.size(); ++b) {
          const std::uint64_t wide =
              static_cast<std::uint64_t>(adj[a].w) + adj[b].w;
          if (wide > std::numeric_limits<Weight>::max()) {
            return Status::OutOfRange(
                "augmenting edge weight overflows the Weight type");
          }
          const Weight w = static_cast<Weight>(wide);
          ISLABEL_RETURN_IF_ERROR(
              ea_sorter.Add(DiskEdge{adj[a].to, adj[b].to, w, v}));
          ISLABEL_RETURN_IF_ERROR(
              ea_sorter.Add(DiskEdge{adj[b].to, adj[a].to, w, v}));
        }
      }
    }
    ISLABEL_RETURN_IF_ERROR(ea_sorter.Finish());

    // Merge scan: induced subgraph records (level file minus L_i) with the
    // EA stream, min-weight on duplicates.
    auto next_file = std::make_unique<BlockFile>();
    ISLABEL_RETURN_IF_ERROR(
        next_file->Open(temps.Fresh("level"), /*truncate=*/true));
    {
      RecordReader<DiskEdge> gr(level_file.get());
      RecordWriter<DiskEdge> w(next_file.get());
      DiskEdge ge{}, ee{};
      bool have_g = false, have_e = false;
      // Pull the next surviving induced record.
      auto pull_g = [&]() {
        DiskEdge x;
        while (gr.Next(&x)) {
          if (!in_li[x.src] && !in_li[x.dst]) {
            ge = x;
            have_g = true;
            return;
          }
        }
        have_g = false;
      };
      // Pull the next deduplicated EA record (min weight per (src, dst)).
      auto pull_e = [&]() {
        DiskEdge x;
        while (ea_sorter.Next(&x)) {
          if (have_e && x.src == ee.src && x.dst == ee.dst) continue;
          ee = x;
          have_e = true;
          return;
        }
        have_e = false;
      };
      auto order = [](const DiskEdge& a, const DiskEdge& b) {
        if (a.src != b.src) return a.src < b.src ? -1 : 1;
        if (a.dst != b.dst) return a.dst < b.dst ? -1 : 1;
        return 0;
      };
      pull_g();
      // Seed EA cursor: have_e must start false for dedup logic, so pull
      // the raw first record.
      {
        DiskEdge x;
        if (ea_sorter.Next(&x)) {
          ee = x;
          have_e = true;
        }
      }
      while (have_g || have_e) {
        if (!have_e || (have_g && order(ge, ee) < 0)) {
          ISLABEL_RETURN_IF_ERROR(w.Add(ge));
          pull_g();
        } else if (!have_g || order(ge, ee) > 0) {
          ISLABEL_RETURN_IF_ERROR(w.Add(ee));
          pull_e();
        } else {
          ISLABEL_RETURN_IF_ERROR(w.Add(ee.w < ge.w ? ee : ge));
          pull_g();
          pull_e();
        }
      }
      ISLABEL_RETURN_IF_ERROR(w.Finish());
    }
    io += ea_sorter.stats();
    io += level_file->stats();
    level_file = std::move(next_file);
    num_edge_records = level_file->FileSize() / sizeof(DiskEdge);

    h.levels.push_back(std::move(li));
    h.stats.push_back(ls);
    ISLABEL_LOG(kInfo) << "ext level " << i << ": |V|=" << ls.num_vertices
                       << " |E|=" << ls.num_edges << " |L|=" << ls.is_size;
    prev_size = cur_size;
    ++i;
  }

  for (VertexId v = 0; v < n; ++v) {
    if (alive[v]) h.level[v] = h.k;
  }

  // Load the terminal level file as G_k.
  {
    EdgeList edges(n);
    RecordReader<DiskEdge> reader(level_file.get());
    DiskEdge e;
    while (reader.Next(&e)) {
      if (e.src < e.dst) {
        edges.Add(e.src, e.dst, e.w,
                  options.keep_vias ? e.via : kInvalidVertex);
      }
    }
    h.g_k = Graph::FromEdgeList(std::move(edges), options.keep_vias);
  }
  io += level_file->stats();
  h.io = io;
  return h;
}

}  // namespace islabel
