// Label operations used by query processing (§4.3): vertex extraction,
// label intersection, and the Equation 1 evaluation
//
//   dist(s,t) = min_{w ∈ label(s) ∩ label(t)} d(s,w) + d(w,t).
//
// Labels are sorted by ancestor id, so intersection is a linear merge — the
// "simple sequential scanning" of §6.2. All operations take LabelView
// spans, so they run identically over the LabelArena slab, a LabelStore
// decode buffer, or a plain vector.

#ifndef ISLABEL_CORE_LABEL_H_
#define ISLABEL_CORE_LABEL_H_

#include <vector>

#include "core/label_entry.h"
#include "core/label_view.h"

namespace islabel {

/// Result of evaluating Equation 1 over two labels.
struct Eq1Result {
  /// min over the intersection, kInfDistance if the intersection is empty.
  Distance dist = kInfDistance;
  /// The arg-min common ancestor w, kInvalidVertex if none.
  VertexId witness = kInvalidVertex;
  /// The two entries achieving the minimum (valid iff witness is valid).
  LabelEntry s_entry;
  LabelEntry t_entry;
  /// |label(s) ∩ label(t)|.
  std::size_t intersection_size = 0;
};

/// Evaluates Equation 1 by merging the two sorted labels.
Eq1Result EvaluateEq1(LabelView label_s, LabelView label_t);

/// Binary-searches a sorted label for an ancestor; nullptr if absent.
const LabelEntry* FindEntry(LabelView label, VertexId node);

/// V[label] of §4.3: the ancestor ids (already sorted).
std::vector<VertexId> VerticesOf(LabelView label);

}  // namespace islabel

#endif  // ISLABEL_CORE_LABEL_H_
