// LabelView: a non-owning (pointer, length) span over one vertex label.
//
// Labels live in contiguous storage — the LabelArena slab, a LabelStore
// decode buffer, or a plain std::vector — and every consumer (Equation 1,
// seed extraction, persistence) only ever scans them sequentially, so a
// borrowed span is the natural currency of the query layer. A LabelView
// never owns memory; it is valid exactly as long as the storage behind it
// (see DESIGN.md "Label memory layout" for the ownership rules).

#ifndef ISLABEL_CORE_LABEL_VIEW_H_
#define ISLABEL_CORE_LABEL_VIEW_H_

#include <cstddef>
#include <vector>

#include "core/label_entry.h"

namespace islabel {

class LabelView {
 public:
  constexpr LabelView() = default;
  constexpr LabelView(const LabelEntry* data, std::size_t size)
      : data_(data), size_(size) {}
  /// Implicit: a sorted std::vector label is viewable in place.
  LabelView(const std::vector<LabelEntry>& label)  // NOLINT(runtime/explicit)
      : data_(label.data()), size_(label.size()) {}

  constexpr const LabelEntry* data() const { return data_; }
  constexpr std::size_t size() const { return size_; }
  constexpr bool empty() const { return size_ == 0; }
  constexpr const LabelEntry* begin() const { return data_; }
  constexpr const LabelEntry* end() const { return data_ + size_; }
  constexpr const LabelEntry& operator[](std::size_t i) const {
    return data_[i];
  }
  constexpr const LabelEntry& front() const { return data_[0]; }
  constexpr const LabelEntry& back() const { return data_[size_ - 1]; }

  /// Owning copy, for callers that must outlive the backing storage.
  std::vector<LabelEntry> ToVector() const {
    return std::vector<LabelEntry>(begin(), end());
  }

  friend bool operator==(const LabelView& a, const LabelView& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (!(a.data_[i] == b.data_[i])) return false;
    }
    return true;
  }

 private:
  const LabelEntry* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace islabel

#endif  // ISLABEL_CORE_LABEL_VIEW_H_
