#include "core/options.h"

namespace islabel {

Status IndexOptions::Validate() const {
  if (sigma <= 0.0 || sigma > 1.0) {
    return Status::InvalidArgument("sigma must be in (0, 1]");
  }
  if (forced_k == 1) {
    return Status::InvalidArgument(
        "forced_k must be >= 2 (k = 1 would leave G_1 = G unindexed)");
  }
  if (forced_k != 0 && full_hierarchy) {
    return Status::InvalidArgument(
        "forced_k and full_hierarchy are mutually exclusive");
  }
  if (memory_budget_bytes != 0 && tmp_dir.empty()) {
    return Status::InvalidArgument(
        "external pipeline requires a tmp_dir for spill files");
  }
  return Status::OK();
}

}  // namespace islabel
