// Shortest-path reconstruction (§8.1).
//
// Augmenting edges and label entries carry an intermediate ("via") vertex:
// an augmenting edge (u,w) created over v represents the 2-path <u,v,w>,
// and a transitive label entry records the ancestor it was derived through.
// A path query therefore unfolds recursively: each segment whose connecting
// edge/entry has a via vertex x splits into the sub-queries (a,x) and
// (x,b) — each answered by the index itself — until only original edges of
// G remain. The I/O cost is O(|SP(s,t)|), as the paper states.

#ifndef ISLABEL_CORE_PATH_H_
#define ISLABEL_CORE_PATH_H_

#include <vector>

#include "core/query.h"
#include "util/status.h"

namespace islabel {

class ISLabelIndex;

/// Stateless helper that expands PathCaptures into vertex sequences by
/// issuing recursive distance queries against the same engine.
class PathReconstructor {
 public:
  explicit PathReconstructor(QueryEngine* engine) : engine_(engine) {}

  /// Appends the full vertex sequence of a shortest s→t path to *out
  /// (starting with s). Fails (Internal) if the capture is inconsistent,
  /// e.g. when the index was built without vias.
  Status Reconstruct(VertexId s, VertexId t, const PathCapture& capture,
                     std::vector<VertexId>* out);

 private:
  /// Emits the path a → ... → b (omitting `a` itself) given that dist(a,b)
  /// decomposes at `via` (kInvalidVertex = original edge a-b).
  Status EmitSegment(VertexId a, VertexId b, VertexId via, int depth,
                     std::vector<VertexId>* out);

  /// Emits a → ... → entry.node (omitting `a`): the label-entry expansion.
  Status EmitEntry(VertexId a, const LabelEntry& entry, int depth,
                   std::vector<VertexId>* out);

  /// Re-queries (a, b) and expands the resulting capture. Recursion depth
  /// is bounded: every sub-segment is strictly shorter.
  Status EmitQuery(VertexId a, VertexId b, int depth,
                   std::vector<VertexId>* out);

  QueryEngine* engine_;
};

}  // namespace islabel

#endif  // ISLABEL_CORE_PATH_H_
