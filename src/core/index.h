// ISLabelIndex: the public facade of the library.
//
// Build() runs the full §6 pipeline — vertex hierarchy (Algorithms 2+3),
// top-down labeling (Algorithm 4) — and the resulting index answers exact
// point-to-point distance queries (Equation 1 + Algorithm 1), shortest-path
// queries (§8.1), and supports the lazy update maintenance of §8.3.
// Save()/Load() persist the index with disk-resident labels, reproducing
// the paper's disk-based query mode (one label I/O per endpoint); Load()
// with labels_in_memory = true is the paper's IM-ISL.
//
// Query serving is concurrent: the hierarchy and labels are immutable at
// query time and every query entry point leases a private QueryEngine from
// an internal QueryEnginePool, so any number of threads may call Query /
// ShortestPath / the batched APIs on one index simultaneously (both IM and
// disk-resident modes). Updates and Save/Load are NOT safe to run
// concurrently with queries — quiesce traffic first.

#ifndef ISLABEL_CORE_INDEX_H_
#define ISLABEL_CORE_INDEX_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/distance_cache.h"
#include "core/distance_index.h"
#include "core/engine_pool.h"
#include "core/hierarchy.h"
#include "core/label_arena.h"
#include "core/labeling.h"
#include "core/options.h"
#include "core/query.h"
#include "graph/graph.h"
#include "util/bit_vector.h"
#include "util/result.h"

namespace islabel {

/// Construction metrics — the columns of Tables 3, 6 and 7.
struct BuildStats {
  std::uint32_t k = 0;
  std::uint64_t core_vertices = 0;   // |V_{G_k}|
  std::uint64_t core_edges = 0;      // |E_{G_k}|
  std::uint64_t label_entries = 0;   // Σ_v |label(v)|
  std::uint64_t label_bytes = 0;     // in-memory footprint of the labels
  double hierarchy_seconds = 0.0;
  double labeling_seconds = 0.0;
  double total_seconds = 0.0;
  IoStats io;                        // external-pipeline I/O (if used)
  std::vector<LevelStats> level_stats;
};

/// Exact point-to-point distance index (undirected). Movable, not copyable.
/// All query entry points are thread-safe (engines come from an internal
/// pool); updates and persistence must not overlap with queries.
///
/// The DistanceIndex base provides Query() (with the cache template
/// method) and carries the optional distance cache; ResetPool() bumps its
/// generation on every update/reload so stale entries are never served.
class ISLabelIndex : public DistanceIndex {
 public:
  ISLabelIndex() = default;
  ISLabelIndex(ISLabelIndex&&) = default;
  ISLabelIndex& operator=(ISLabelIndex&&) = default;

  /// Builds the index over `g`. See IndexOptions for σ, forced k, vertex
  /// order, path support and the external-memory pipeline.
  static Result<ISLabelIndex> Build(const Graph& g,
                                    const IndexOptions& options = {});

  /// Exact shortest path (sequence of original-graph vertices, s first,
  /// t last). Requires the index to have been built with keep_vias.
  /// Outputs an empty path and kInfDistance when disconnected.
  /// Thread-safe.
  Status ShortestPath(VertexId s, VertexId t, std::vector<VertexId>* path,
                      Distance* dist) override;

  // ---- Batched queries ----

  /// Answers every (s, t) pair, parallelized over the engine pool with
  /// `num_threads` workers (0 = hardware concurrency). out->size() ==
  /// pairs.size(); pairs that fail individually (deleted endpoint, id out
  /// of range) get kInfDistance in *out and their error in *statuses when
  /// provided — otherwise the first per-pair error becomes the return
  /// value (the batch still completes). Thread-safe.
  Status QueryBatch(const std::vector<std::pair<VertexId, VertexId>>& pairs,
                    std::vector<Distance>* out, std::uint32_t num_threads = 0,
                    std::vector<Status>* statuses = nullptr) override;

  /// Distances from s to every target on one engine, fetching label(s) and
  /// seeding its forward search once for the whole batch (the shared
  /// "forward ball" — see QueryEngine::QueryOneToMany). All endpoints are
  /// validated up front; any deleted/out-of-range endpoint fails the whole
  /// call. Thread-safe.
  Status QueryOneToMany(VertexId s, const std::vector<VertexId>& targets,
                        std::vector<Distance>* out,
                        QueryStats* stats = nullptr) override;

  /// The kNN-style rectangle: out is row-major |sources| x |targets|,
  /// (*out)[i * targets.size() + j] = d(sources[i], targets[j]). Rows run
  /// in parallel over the pool (`num_threads` workers, 0 = hardware
  /// concurrency), each row reusing its source's forward ball.
  /// Thread-safe.
  Status QueryManyToMany(const std::vector<VertexId>& sources,
                         const std::vector<VertexId>& targets,
                         std::vector<Distance>* out,
                         std::uint32_t num_threads = 0) override;

  // ---- Update maintenance (§8.3; implemented in updates.cc) ----

  /// Inserts a new vertex with id == NumVertices() and the given (neighbor,
  /// weight) adjacency. The vertex joins G_k (level k); labels of affected
  /// descendants are patched lazily per §8.3.
  Status InsertVertex(VertexId v,
                      const std::vector<std::pair<VertexId, Weight>>& adj);

  /// Deletes a vertex per the paper's lazy scheme. Exact when the vertex is
  /// in G_k and appears in no label; otherwise distances involving paths
  /// through it may become stale until the index is rebuilt (the paper's
  /// "rebuild periodically"). Queries naming the deleted vertex itself as
  /// an endpoint fail with NotFound in every mode.
  Status DeleteVertex(VertexId v);

  bool IsDeleted(VertexId v) const {
    return v < deleted_.size() && deleted_[v];
  }

  // ---- Persistence ----

  /// Writes `<dir>/labels.isl`, `<dir>/core.islg`, `<dir>/meta.islm`.
  Status Save(const std::string& dir) const override;

  /// Loads a saved index. labels_in_memory = true materializes all labels
  /// (IM-ISL); false keeps them disk-resident, one read per query label.
  static Result<ISLabelIndex> Load(const std::string& dir,
                                   bool labels_in_memory = true);

  // ---- Introspection ----

  VertexId NumVertices() const override { return hierarchy_->NumVertices(); }
  std::uint32_t k() const { return hierarchy_->k; }
  std::uint32_t LevelOf(VertexId v) const { return hierarchy_->level[v]; }
  bool InCore(VertexId v) const { return hierarchy_->InCore(v); }
  const VertexHierarchy& hierarchy() const { return *hierarchy_; }
  /// In-memory label arena; empty in disk-resident mode. §8.3 updates are
  /// served through its overflow side-table.
  const LabelArena& labels() const { return *labels_; }
  bool labels_on_disk() const { return store_ != nullptr; }
  LabelStore* label_store() { return store_.get(); }
  const BuildStats& build_stats() const { return build_stats_; }
  /// True iff the index carries intermediate vertices for path queries
  /// (IndexOptions::keep_vias at build time; persisted across Save/Load).
  bool has_vias() const override { return vias_enabled_; }
  /// Backend name + label counts/bytes (valid after Build and Load alike,
  /// unlike build_stats(), which Load leaves mostly empty).
  DistanceIndexInfo Info() const override;
  /// The engine pool behind the query entry points — for callers that want
  /// to hold a lease across many queries (serve loops, benches).
  QueryEnginePool* engine_pool() { return pool_.get(); }

  /// Wires the engine pool's lease-wait histogram and occupancy gauges
  /// into `registry`, and keeps them wired across every ResetPool
  /// (updates, reloads). The shared Add/Inc instruments mean partitioned
  /// parts and reloaded pools all feed the same series.
  void InstallMetrics(obs::MetricRegistry* registry) override;

 protected:
  /// Leases an engine and runs the real query; the base class has already
  /// validated endpoints and missed the cache.
  Status QueryUncached(VertexId s, VertexId t, Distance* out,
                       QueryStats* stats) override;
  /// Adds the built/deleted-endpoint checks to the base range check.
  Status CheckQueryable(VertexId s, VertexId t) const override;

 private:
  friend class PathReconstructor;

  /// (Re)creates the engine pool over the current hierarchy/labels; called
  /// eagerly at Build/Load and after every update, so the query entry
  /// points never construct shared state lazily (and thus never race).
  /// Bumps the cache generation: every reset marks a potential answer
  /// change.
  void ResetPool();

  // Re-applies the registry-backed pool instruments to the current pool
  // (no-op until InstallMetrics has been called).
  void ApplyPoolMetrics();

  // Rebuilds the G_k CSR from an edge list after an update (updates.cc).
  void RebuildCore(EdgeList edges);

  std::unique_ptr<VertexHierarchy> hierarchy_;
  std::unique_ptr<LabelArena> labels_ = std::make_unique<LabelArena>();
  std::unique_ptr<LabelStore> store_;
  std::unique_ptr<QueryEnginePool> pool_;
  BuildStats build_stats_;
  BitVector deleted_;
  bool vias_enabled_ = true;
  obs::MetricRegistry* metrics_registry_ = nullptr;
};

}  // namespace islabel

#endif  // ISLABEL_CORE_INDEX_H_
