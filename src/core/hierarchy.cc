#include "core/hierarchy.h"

#include <utility>

#include "core/augment.h"
#include "core/independent_set.h"
#include "core/level_graph.h"
#include "util/logging.h"
#include "util/random.h"

namespace islabel {

// Defined in hierarchy_external.cc: the I/O-efficient pipeline (§6.1).
Result<VertexHierarchy> BuildHierarchyExternal(const Graph& g,
                                               const IndexOptions& options);

namespace {

Result<VertexHierarchy> BuildHierarchyInMemory(const Graph& g,
                                               const IndexOptions& options) {
  const VertexId n = g.NumVertices();
  VertexHierarchy h;
  h.level.assign(n, 0);
  h.removed_adj.resize(n);
  h.levels.push_back({});  // index 0 unused: levels are 1-based

  LevelGraph lg = LevelGraph::FromGraph(g);
  Rng rng(options.seed);

  std::uint64_t prev_size = lg.SizeVE();
  std::uint32_t i = 1;
  while (true) {
    const std::uint64_t cur_edges = lg.CountEdges();
    const std::uint64_t cur_size = lg.num_alive + cur_edges;

    LevelStats ls;
    ls.num_vertices = lg.num_alive;
    ls.num_edges = cur_edges;

    // Termination (§5.1): forced k, the σ shrinkage criterion, exhaustion,
    // or the level-count safety bound.
    bool stop = false;
    if (options.forced_k != 0) {
      stop = (i == options.forced_k);
    } else if (!options.full_hierarchy && i >= 2 &&
               static_cast<double>(cur_size) >
                   options.sigma * static_cast<double>(prev_size)) {
      stop = true;
    }
    if (lg.num_alive == 0) stop = true;
    if (options.max_levels != 0 && i >= options.max_levels) stop = true;

    if (stop) {
      h.k = i;
      h.stats.push_back(ls);
      break;
    }

    std::vector<VertexId> li =
        ComputeIndependentSet(lg, options.is_order, &rng);
    ls.is_size = li.size();

    // Snapshot ADJ(L_i) — both the labeling input and what Algorithm 3
    // joins on.
    for (VertexId v : li) {
      h.level[v] = i;
      h.removed_adj[v] = std::move(lg.adj[v]);
    }
    auto aug = AugmentInPlace(&lg, li, h.removed_adj);
    if (!aug.ok()) return aug.status();
    ls.augmenting_edges = aug->edges_inserted + aug->weights_lowered;

    h.levels.push_back(std::move(li));
    h.stats.push_back(ls);
    ISLABEL_LOG(kInfo) << "level " << i << ": |V|=" << ls.num_vertices
                       << " |E|=" << ls.num_edges << " |L|=" << ls.is_size
                       << " aug=" << ls.augmenting_edges;
    prev_size = cur_size;
    ++i;
  }

  // Residual vertices form V_{G_k} with level number k (§5.1).
  for (VertexId v = 0; v < n; ++v) {
    if (lg.alive[v]) h.level[v] = h.k;
  }
  h.g_k = lg.ToGraph(options.keep_vias);
  return h;
}

}  // namespace

Result<VertexHierarchy> BuildHierarchy(const Graph& g,
                                       const IndexOptions& options) {
  ISLABEL_RETURN_IF_ERROR(options.Validate());
  if (options.memory_budget_bytes != 0) {
    return BuildHierarchyExternal(g, options);
  }
  return BuildHierarchyInMemory(g, options);
}

}  // namespace islabel
