#include "core/engine_pool.h"

namespace islabel {

QueryEnginePool::Lease QueryEnginePool::Acquire() {
  {
    MutexLock lock(&mu_);
    if (!free_.empty()) {
      std::unique_ptr<QueryEngine> engine = std::move(free_.back());
      free_.pop_back();
      return Lease(this, std::move(engine));
    }
    ++created_;
  }
  // Construction happens outside the lock; the constructor only stores
  // pointers (scratch is lazily sized at the engine's first query).
  return Lease(this, std::make_unique<QueryEngine>(hierarchy_, provider_));
}

void QueryEnginePool::Return(std::unique_ptr<QueryEngine> engine) {
  MutexLock lock(&mu_);
  free_.push_back(std::move(engine));
}

void QueryEnginePool::Lease::Release() {
  if (pool_ != nullptr && engine_ != nullptr) {
    pool_->Return(std::move(engine_));
  }
  pool_ = nullptr;
  engine_.reset();
}

}  // namespace islabel
