#include "core/engine_pool.h"

#include "obs/trace.h"

namespace islabel {

QueryEnginePool::Lease QueryEnginePool::AcquireInternal() {
  {
    MutexLock lock(&mu_);
    if (!free_.empty()) {
      std::unique_ptr<QueryEngine> engine = std::move(free_.back());
      free_.pop_back();
      return Lease(this, std::move(engine));
    }
    ++created_;
  }
  if (auto* c = engines_created_.load(std::memory_order_acquire)) c->Inc();
  // Construction happens outside the lock; the constructor only stores
  // pointers (scratch is lazily sized at the engine's first query).
  return Lease(this, std::make_unique<QueryEngine>(hierarchy_, provider_));
}

QueryEnginePool::Lease QueryEnginePool::Acquire() {
  obs::StageTimer span(obs::Stage::kPoolWait);
  obs::Histogram* hist = lease_wait_.load(std::memory_order_acquire);
  const Clock* clock = metrics_clock_.load(std::memory_order_acquire);
  const std::uint64_t t0 =
      (hist != nullptr && clock != nullptr) ? clock->NowMicros() : 0;
  Lease lease = AcquireInternal();
  if (hist != nullptr && clock != nullptr) {
    hist->Record(clock->NowMicros() - t0);
  }
  if (auto* g = leases_active_.load(std::memory_order_acquire)) g->Add(1);
  return lease;
}

void QueryEnginePool::Return(std::unique_ptr<QueryEngine> engine) {
  MutexLock lock(&mu_);
  free_.push_back(std::move(engine));
}

void QueryEnginePool::Lease::Release() {
  if (pool_ != nullptr && engine_ != nullptr) {
    if (auto* g = pool_->leases_active_.load(std::memory_order_acquire)) {
      g->Add(-1);
    }
    pool_->Return(std::move(engine_));
  }
  pool_ = nullptr;
  engine_.reset();
}

}  // namespace islabel
