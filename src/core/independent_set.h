// Algorithm 2: greedy independent set of the current level graph.
//
// The paper maximizes |L_i| greedily by considering vertices in ascending
// degree order [16]: a small-degree vertex excludes few others. The scan
// keeps an exclusion set L' (vertices adjacent to an already-selected
// vertex); a vertex is selected iff it is not yet excluded. The result is a
// *maximal* independent set of G_i.

#ifndef ISLABEL_CORE_INDEPENDENT_SET_H_
#define ISLABEL_CORE_INDEPENDENT_SET_H_

#include <vector>

#include "core/level_graph.h"
#include "core/options.h"
#include "util/random.h"

namespace islabel {

/// Computes a maximal independent set of the alive subgraph of `g`,
/// considering vertices in the order implied by `order` (ties broken by
/// vertex id so results are deterministic). Returns the selected vertices
/// sorted by id.
std::vector<VertexId> ComputeIndependentSet(const LevelGraph& g,
                                            IsOrder order, Rng* rng);

}  // namespace islabel

#endif  // ISLABEL_CORE_INDEPENDENT_SET_H_
