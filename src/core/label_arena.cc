#include "core/label_arena.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace islabel {

LabelArena::LabelArena(std::vector<LabelEntry> slab,
                       std::vector<std::uint64_t> offsets)
    : slab_(std::move(slab)), offsets_(std::move(offsets)) {
  assert(!offsets_.empty() && offsets_.front() == 0 &&
         offsets_.back() == slab_.size());
  arena_n_ = static_cast<VertexId>(offsets_.size() - 1);
  n_ = arena_n_;
}

LabelArena LabelArena::FromNestedConsuming(
    std::vector<std::vector<LabelEntry>>* nested) {
  std::vector<std::uint64_t> offsets(nested->size() + 1, 0);
  for (std::size_t v = 0; v < nested->size(); ++v) {
    offsets[v + 1] = offsets[v] + (*nested)[v].size();
  }
  std::vector<LabelEntry> slab;
  slab.reserve(static_cast<std::size_t>(offsets.back()));
  for (auto& label : *nested) {
    slab.insert(slab.end(), label.begin(), label.end());
    std::vector<LabelEntry>().swap(label);  // release as we go
  }
  return LabelArena(std::move(slab), std::move(offsets));
}

void LabelArena::ComputeSeedCuts(const std::vector<std::uint32_t>& level,
                                 std::uint32_t k) {
  seed_cut_.assign(arena_n_, 0);
  for (VertexId v = 0; v < arena_n_; ++v) {
    const LabelEntry* entries = slab_.data() + offsets_[v];
    const std::uint32_t len =
        static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
    std::uint32_t cut = len;
    for (std::uint32_t i = 0; i < len; ++i) {
      if (level[entries[i].node] == k) {
        cut = i;
        break;
      }
    }
    seed_cut_[v] = cut;
  }
}

std::uint64_t LabelArena::TotalEntries() const {
  std::uint64_t total = slab_.size();
  for (const auto& [v, label] : overlay_) {
    if (v < arena_n_) total -= offsets_[v + 1] - offsets_[v];
    total += label.size();
  }
  return total;
}

std::vector<LabelEntry>* LabelArena::Patch(VertexId v) {
  auto [it, inserted] = overlay_.try_emplace(v);
  if (inserted && v < arena_n_) {
    it->second.assign(slab_.data() + offsets_[v],
                      slab_.data() + offsets_[v + 1]);
  }
  if (v < arena_n_) {
    if (patched_.size() != arena_n_) patched_.Resize(arena_n_);
    patched_.Set(v);
  }
  return &it->second;
}

void LabelArena::AppendLabel(VertexId v, std::vector<LabelEntry> label) {
  assert(v == n_);
  overlay_[v] = std::move(label);
  ++n_;
}

void LabelArena::UpsertEntry(VertexId v, const LabelEntry& entry) {
  // Read-only probe first: an entry that is already at least as good leaves
  // the slab untouched.
  const LabelView view = View(v);
  auto pos = std::lower_bound(
      view.begin(), view.end(), entry.node,
      [](const LabelEntry& e, VertexId n) { return e.node < n; });
  if (pos != view.end() && pos->node == entry.node &&
      pos->dist <= entry.dist) {
    return;
  }
  std::vector<LabelEntry>* label = Patch(v);
  auto it = std::lower_bound(
      label->begin(), label->end(), entry.node,
      [](const LabelEntry& e, VertexId n) { return e.node < n; });
  if (it != label->end() && it->node == entry.node) {
    *it = entry;
  } else {
    label->insert(it, entry);
  }
}

bool LabelArena::EraseEntry(VertexId v, VertexId node) {
  const LabelView view = View(v);
  auto pos = std::lower_bound(
      view.begin(), view.end(), node,
      [](const LabelEntry& e, VertexId n) { return e.node < n; });
  if (pos == view.end() || pos->node != node) return false;
  std::vector<LabelEntry>* label = Patch(v);
  label->erase(label->begin() + (pos - view.begin()));
  return true;
}

void LabelArena::ClearLabel(VertexId v) { Patch(v)->clear(); }

bool operator==(const LabelArena& a, const LabelArena& b) {
  if (!a.overlay_.empty() || !b.overlay_.empty()) return false;
  if (a.offsets_ != b.offsets_) return false;
  if (a.slab_.size() != b.slab_.size()) return false;
  for (std::size_t i = 0; i < a.slab_.size(); ++i) {
    if (!(a.slab_[i] == b.slab_[i])) return false;
  }
  return true;
}

}  // namespace islabel
