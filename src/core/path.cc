#include "core/path.h"

#include <algorithm>

#include "core/index.h"

namespace islabel {

namespace {

// Expansion splits a segment into two strictly shorter ones, so depth is
// bounded by the hop count of the final path; 4096 is far beyond any
// realistic query and guards against a corrupted index looping forever.
constexpr int kMaxDepth = 4096;

}  // namespace

Status PathReconstructor::Reconstruct(VertexId s, VertexId t,
                                      const PathCapture& capture,
                                      std::vector<VertexId>* out) {
  out->clear();
  if (capture.kind == MeetKind::kNone || capture.dist == kInfDistance) {
    return Status::OK();  // unreachable: empty path by contract
  }
  out->push_back(s);
  if (s == t) return Status::OK();

  if (capture.kind == MeetKind::kEq1) {
    // s → w, then w → t (the reverse expansion of t → w).
    ISLABEL_RETURN_IF_ERROR(EmitEntry(s, capture.eq1_s, 0, out));
    std::vector<VertexId> tail{t};
    ISLABEL_RETURN_IF_ERROR(EmitEntry(t, capture.eq1_t, 0, &tail));
    // tail = t ... w; append reversed, skipping the shared w.
    for (std::size_t i = tail.size() - 1; i-- > 0;) out->push_back(tail[i]);
    return Status::OK();
  }

  // kSearch: s → seed_s.node → (G_k tree edges) → meet → ... → seed_t.node
  // → t, with every augmenting G_k edge expanded through its via vertex.
  ISLABEL_RETURN_IF_ERROR(EmitEntry(s, capture.seed_s, 0, out));
  for (const PathStep& step : capture.steps_s) {
    if (out->back() != step.from) {
      return Status::Internal("forward chain discontinuity");
    }
    ISLABEL_RETURN_IF_ERROR(EmitSegment(step.from, step.to, step.via, 0, out));
  }
  // Build the t-side walk t → seed → meet, then splice it on reversed.
  std::vector<VertexId> tail{t};
  ISLABEL_RETURN_IF_ERROR(EmitEntry(t, capture.seed_t, 0, &tail));
  for (const PathStep& step : capture.steps_t) {
    if (tail.back() != step.from) {
      return Status::Internal("reverse chain discontinuity");
    }
    ISLABEL_RETURN_IF_ERROR(EmitSegment(step.from, step.to, step.via, 0,
                                        &tail));
  }
  if (out->back() != capture.meet || tail.back() != capture.meet) {
    return Status::Internal("search chains do not meet");
  }
  for (std::size_t i = tail.size() - 1; i-- > 0;) out->push_back(tail[i]);
  return Status::OK();
}

Status PathReconstructor::EmitEntry(VertexId a, const LabelEntry& entry,
                                    int depth,
                                    std::vector<VertexId>* out) {
  if (depth > kMaxDepth) return Status::Internal("path expansion too deep");
  if (entry.node == a) return Status::OK();  // trivial self entry
  return EmitSegment(a, entry.node, entry.via, depth, out);
}

Status PathReconstructor::EmitSegment(VertexId a, VertexId b, VertexId via,
                                      int depth,
                                      std::vector<VertexId>* out) {
  if (depth > kMaxDepth) return Status::Internal("path expansion too deep");
  if (via == kInvalidVertex) {
    // Original edge of G.
    out->push_back(b);
    return Status::OK();
  }
  ISLABEL_RETURN_IF_ERROR(EmitQuery(a, via, depth + 1, out));
  ISLABEL_RETURN_IF_ERROR(EmitQuery(via, b, depth + 1, out));
  return Status::OK();
}

Status PathReconstructor::EmitQuery(VertexId a, VertexId b, int depth,
                                    std::vector<VertexId>* out) {
  if (depth > kMaxDepth) return Status::Internal("path expansion too deep");
  PathCapture capture;
  ISLABEL_RETURN_IF_ERROR(engine_->DistanceWithCapture(a, b, &capture));
  if (capture.dist == kInfDistance) {
    return Status::Internal("sub-path query unreachable; index corrupted?");
  }
  if (capture.kind == MeetKind::kEq1) {
    ISLABEL_RETURN_IF_ERROR(EmitEntry(a, capture.eq1_s, depth + 1, out));
    std::vector<VertexId> tail{b};
    ISLABEL_RETURN_IF_ERROR(EmitEntry(b, capture.eq1_t, depth + 1, &tail));
    for (std::size_t i = tail.size() - 1; i-- > 0;) out->push_back(tail[i]);
    return Status::OK();
  }
  // kSearch sub-query.
  ISLABEL_RETURN_IF_ERROR(EmitEntry(a, capture.seed_s, depth + 1, out));
  for (const PathStep& step : capture.steps_s) {
    ISLABEL_RETURN_IF_ERROR(
        EmitSegment(step.from, step.to, step.via, depth + 1, out));
  }
  std::vector<VertexId> tail{b};
  ISLABEL_RETURN_IF_ERROR(EmitEntry(b, capture.seed_t, depth + 1, &tail));
  for (const PathStep& step : capture.steps_t) {
    ISLABEL_RETURN_IF_ERROR(
        EmitSegment(step.from, step.to, step.via, depth + 1, &tail));
  }
  for (std::size_t i = tail.size() - 1; i-- > 0;) out->push_back(tail[i]);
  return Status::OK();
}

Status ISLabelIndex::ShortestPath(VertexId s, VertexId t,
                                  std::vector<VertexId>* path,
                                  Distance* dist) {
  ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, t));
  if (!vias_enabled_) {
    return Status::FailedPrecondition(
        "index was built without vias (IndexOptions::keep_vias)");
  }
  QueryEnginePool::Lease lease = pool_->Acquire();
  PathCapture capture;
  ISLABEL_RETURN_IF_ERROR(lease->DistanceWithCapture(s, t, &capture));
  *dist = capture.dist;
  PathReconstructor reconstructor(lease.get());
  return reconstructor.Reconstruct(s, t, capture, path);
}

}  // namespace islabel
