#include "server/dispatcher.h"

#include <vector>

namespace islabel {
namespace server {

std::string RequestDispatcher::Execute(const Request& req) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  switch (req.kind) {
    case RequestKind::kDistance: {
      Distance d = 0;
      Status st = index_->Query(req.s, req.t, &d);
      if (!st.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return FormatError(st);
      }
      return FormatDistance(d);
    }
    case RequestKind::kOneToMany: {
      std::vector<Distance> dists;
      Status st = index_->QueryOneToMany(req.s, req.targets, &dists);
      if (!st.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return FormatError(st);
      }
      return FormatDistances(dists);
    }
    case RequestKind::kPath: {
      std::vector<VertexId> path;
      Distance d = 0;
      Status st = index_->ShortestPath(req.s, req.t, &path, &d);
      if (!st.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return FormatError(st);
      }
      return FormatPath(d, path);
    }
    case RequestKind::kInvalid:
      errors_.fetch_add(1, std::memory_order_relaxed);
      return req.error;
    case RequestKind::kNone:
    case RequestKind::kStats:
    case RequestKind::kQuit:
      break;
  }
  errors_.fetch_add(1, std::memory_order_relaxed);
  return "error: internal: request kind not dispatchable";
}

}  // namespace server
}  // namespace islabel
