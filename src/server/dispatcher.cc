#include "server/dispatcher.h"

#include <utility>
#include <vector>

#include "server/query_cache.h"
#include "util/logging.h"

namespace islabel {
namespace server {

namespace {

/// The verb→API mapping, written once against the DistanceIndex
/// interface: single-index mode passes the raw backend, catalog mode
/// passes the session's Catalog::Handle (itself a DistanceIndex).
/// Response formatting runs under the encode stage span so a traced
/// request splits kernel time from serialization time.
std::string ExecuteQueryVerb(DistanceIndex& backend, const Request& req,
                             bool* error) {
  *error = false;
  switch (req.kind) {
    case RequestKind::kDistance: {
      Distance d = 0;
      Status st = backend.Query(req.s, req.t, &d);
      if (!st.ok()) {
        *error = true;
        return FormatError(st);
      }
      obs::StageTimer span(obs::Stage::kEncode);
      return FormatDistance(d);
    }
    case RequestKind::kOneToMany: {
      std::vector<Distance> dists;
      Status st = backend.QueryOneToMany(req.s, req.targets, &dists);
      if (!st.ok()) {
        *error = true;
        return FormatError(st);
      }
      obs::StageTimer span(obs::Stage::kEncode);
      return FormatDistances(dists);
    }
    case RequestKind::kPath: {
      std::vector<VertexId> path;
      Distance d = 0;
      Status st = backend.ShortestPath(req.s, req.t, &path, &d);
      if (!st.ok()) {
        *error = true;
        return FormatError(st);
      }
      obs::StageTimer span(obs::Stage::kEncode);
      return FormatPath(d, path);
    }
    default:
      break;
  }
  *error = true;
  return "error: internal: request kind not dispatchable";
}

/// Wire name of a dispatched verb, used as the `verb` label of
/// islabel_server_request_seconds and in slow-query lines.
const char* VerbName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kDistance:
      return "distance";
    case RequestKind::kOneToMany:
      return "one";
    case RequestKind::kPath:
      return "path";
    case RequestKind::kUse:
      return "use";
    case RequestKind::kDatasets:
      return "datasets";
    case RequestKind::kReload:
      return "reload";
    case RequestKind::kVersion:
      return "version";
    case RequestKind::kHeartbeat:
      return "heartbeat";
    case RequestKind::kReplicate:
      return "replicate";
    case RequestKind::kMetrics:
      return "metrics";
    case RequestKind::kTracez:
      return "tracez";
    case RequestKind::kInvalid:
      return "invalid";
    default:
      return "other";
  }
}

const Clock* DefaultMetricsClock() {
  static const SystemClock clock;
  return &clock;
}

}  // namespace

std::string RequestDispatcher::ExecuteOnHandle(const Request& req,
                                               Session* session) {
  // Resolve (and cache) the handle once per session, not per query —
  // Catalog::Get takes the catalog-wide lock and scans names.
  if (!session->handle) {
    std::string name =
        session->dataset.empty() ? default_dataset_ : session->dataset;
    if (name.empty()) {
      // A server may start with no default (a replica before its first
      // sync discovers dataset names at runtime). Once exactly one
      // dataset is hosted the choice is unambiguous — serve it, so
      // failover clients can send bare queries to any replica.
      const std::vector<std::string> names = catalog_->Names();
      if (names.size() == 1) name = names.front();
    }
    if (name.empty()) {
      errors_c_->Inc();
      return "error: FailedPrecondition: no dataset selected (server has "
             "no default; pick one with `use NAME`, list with `datasets`)";
    }
    session->handle = catalog_->Get(name);
    if (!session->handle) {
      errors_c_->Inc();
      return "error: NotFound: unknown dataset " + name;
    }
  }
  bool error = false;
  std::string response = ExecuteQueryVerb(session->handle, req, &error);
  if (error) errors_c_->Inc();
  return response;
}

std::string RequestDispatcher::ExecuteInternal(const Request& req,
                                               Session* session) {
  requests_c_->Inc();
  switch (req.kind) {
    case RequestKind::kDistance:
    case RequestKind::kOneToMany:
    case RequestKind::kPath: {
      if (catalog_ != nullptr) return ExecuteOnHandle(req, session);
      bool error = false;
      std::string response = ExecuteQueryVerb(*index_, req, &error);
      if (error) errors_c_->Inc();
      return response;
    }
    case RequestKind::kUse: {
      if (catalog_ == nullptr) break;
      Catalog::Handle handle = catalog_->Get(req.name);
      if (!handle) {
        errors_c_->Inc();
        return "error: NotFound: unknown dataset " + req.name;
      }
      // Switching to a loading/failed dataset is allowed deliberately:
      // the per-query error reports the state, and a dataset that
      // finishes loading starts answering without a second `use`.
      session->dataset = req.name;
      session->handle = std::move(handle);
      return "ok: using " + req.name;
    }
    case RequestKind::kDatasets: {
      if (catalog_ == nullptr) break;
      return FormatDatasets(DatasetCountersSnapshot());
    }
    case RequestKind::kReload: {
      if (catalog_ == nullptr) break;
      Status st = catalog_->Reload(req.name);
      if (!st.ok()) {
        errors_c_->Inc();
        return FormatError(st);
      }
      return "ok: reloaded " + req.name;
    }
    case RequestKind::kMetrics: {
      if (metrics_ == nullptr) {
        errors_c_->Inc();
        return "error: NotSupported: metrics not enabled";
      }
      // The registry renders with a trailing '\n' after "# EOF"; the
      // Format contract is no trailing newline (front ends append it).
      std::string text = metrics_->RenderPrometheus();
      if (!text.empty() && text.back() == '\n') text.pop_back();
      return text;
    }
    case RequestKind::kTracez: {
      if (recorder_ == nullptr) {
        errors_c_->Inc();
        return "error: NotSupported: flight recorder not enabled";
      }
      obs::FlightRecorder::TracezMode mode =
          obs::FlightRecorder::TracezMode::kRecent;
      if (req.name == "slow") {
        mode = obs::FlightRecorder::TracezMode::kSlow;
      } else if (req.name == "errors") {
        mode = obs::FlightRecorder::TracezMode::kErrors;
      } else if (req.name == "id") {
        mode = obs::FlightRecorder::TracezMode::kById;
      }
      // Default cap of 32 keeps a bare `tracez` glanceable; an id
      // lookup returns every record of that trace (it is bounded by
      // the retry count, not the ring size).
      const std::size_t limit =
          req.limit != 0
              ? static_cast<std::size_t>(req.limit)
              : (mode == obs::FlightRecorder::TracezMode::kById ? 0 : 32);
      return recorder_->RenderTracez(mode, req.trace_id, limit);
    }
    case RequestKind::kVersion:
    case RequestKind::kHeartbeat:
    case RequestKind::kReplicate: {
      if (repl_hooks_ == nullptr) {
        errors_c_->Inc();
        return "error: NotSupported: replication not enabled";
      }
      std::string response =
          req.kind == RequestKind::kVersion ? repl_hooks_->HandleVersion()
          : req.kind == RequestKind::kHeartbeat
              ? repl_hooks_->HandleHeartbeat()
              : repl_hooks_->HandleReplicate(req.name, req.gen);
      if (response.rfind("error: ", 0) == 0) {
        errors_c_->Inc();
      }
      return response;
    }
    case RequestKind::kInvalid:
      errors_c_->Inc();
      return req.error;
    case RequestKind::kNone:
    case RequestKind::kStats:
    case RequestKind::kQuit:
      errors_c_->Inc();
      return "error: internal: request kind not dispatchable";
  }
  // A catalog verb reached a single-index server.
  errors_c_->Inc();
  return "error: NotSupported: no catalog (single-dataset server)";
}

std::string RequestDispatcher::Execute(const Request& req, Session* session) {
  const bool metrics_on = metrics_enabled();
  const bool recorder_on = recorder_ != nullptr && recorder_->enabled();
  if (!metrics_on && !recorder_on) {
    return ExecuteInternal(req, session);
  }
  // The trace lives on this stack frame; layers below find it through
  // the thread-local installed by TraceScope. parse_us was measured by
  // the front end before Execute, so it is seeded rather than timed.
  obs::QueryTrace trace(clock_);
  trace.Add(obs::Stage::kParse, req.parse_us);
  trace.set_trace_id(req.trace_id);
  obs::TraceScope scope(&trace);
  const std::uint64_t t0 = clock_->NowMicros();
  std::string response = ExecuteInternal(req, session);
  const std::uint64_t total_us = clock_->NowMicros() - t0 + req.parse_us;

  if (metrics_on) {
    obs::Histogram* vh = verb_hist_[static_cast<int>(req.kind)];
    if (vh != nullptr) vh->Record(total_us);
    const bool query_verb = req.kind == RequestKind::kDistance ||
                            req.kind == RequestKind::kOneToMany ||
                            req.kind == RequestKind::kPath;
    if (query_verb) {
      // Zeros are recorded too, so every stage's _count equals the query
      // count and per-stage averages are directly comparable.
      for (int i = 0; i < obs::kNumStages; ++i) {
        stage_hist_[i]->Record(trace.StageMicros(static_cast<obs::Stage>(i)));
      }
    }
  }
  if (recorder_on && req.kind != RequestKind::kTracez) {
    // tracez requests are not recorded, so scraping the recorder does
    // not fill it with scrapes.
    const bool is_error = response.rfind("error: ", 0) == 0;
    const std::string& dataset =
        session->dataset.empty() ? default_dataset_ : session->dataset;
    recorder_->Record(VerbName(req.kind), dataset, is_error, total_us,
                      trace);
  }
  if (slow_query_threshold_ms_ > 0 &&
      total_us >= slow_query_threshold_ms_ * 1000) {
    if (slow_queries_ != nullptr) slow_queries_->Inc();
    if (slow_query_sink_) {
      slow_query_sink_(
          obs::FormatSlowQueryLine(VerbName(req.kind), total_us, trace));
    } else if (event_log_ != nullptr) {
      // The TraceScope is still active, so the event auto-attaches the
      // request's trace id.
      event_log_->Log(
          obs::EventLevel::kWarn, "islabel.server.slow_query",
          {{"verb", VerbName(req.kind)},
           {"total_us", obs::EventLog::U64(total_us)},
           {"parse_us",
            obs::EventLog::U64(trace.StageMicros(obs::Stage::kParse))},
           {"cache_us",
            obs::EventLog::U64(trace.StageMicros(obs::Stage::kCacheLookup))},
           {"pool_wait_us",
            obs::EventLog::U64(trace.StageMicros(obs::Stage::kPoolWait))},
           {"kernel_us",
            obs::EventLog::U64(trace.StageMicros(obs::Stage::kKernel))},
           {"encode_us",
            obs::EventLog::U64(trace.StageMicros(obs::Stage::kEncode))}});
    } else {
      ISLABEL_LOG(kWarn) << obs::FormatSlowQueryLine(VerbName(req.kind),
                                                     total_us, trace);
    }
  }
  return response;
}

void RequestDispatcher::InstallMetrics(const MetricsOptions& options) {
  if (options.registry == nullptr && options.flight_recorder == nullptr &&
      options.event_log == nullptr) {
    return;
  }
  clock_ = options.clock != nullptr ? options.clock : DefaultMetricsClock();
  slow_query_threshold_ms_ = options.slow_query_threshold_ms;
  slow_query_sink_ = options.slow_query_sink;
  recorder_ = options.flight_recorder;
  event_log_ = options.event_log;
  if (options.registry == nullptr) return;
  metrics_ = options.registry;

  requests_c_ = metrics_->GetCounter("islabel_server_requests_total",
                                     "Requests dispatched, all verbs.");
  errors_c_ = metrics_->GetCounter("islabel_server_errors_total",
                                   "Requests answered with an error line.");
  slow_queries_ = metrics_->GetCounter(
      "islabel_server_slow_queries_total",
      "Requests over the slow-query threshold (DESIGN.md §16).");

  static constexpr RequestKind kDispatched[] = {
      RequestKind::kDistance, RequestKind::kOneToMany,
      RequestKind::kPath,     RequestKind::kUse,
      RequestKind::kDatasets, RequestKind::kReload,
      RequestKind::kVersion,  RequestKind::kHeartbeat,
      RequestKind::kReplicate, RequestKind::kMetrics,
      RequestKind::kTracez,   RequestKind::kInvalid};
  for (RequestKind kind : kDispatched) {
    verb_hist_[static_cast<int>(kind)] = metrics_->GetHistogram(
        "islabel_server_request_seconds",
        "End-to-end request latency (parse through encode), per verb.",
        {{"verb", VerbName(kind)}});
  }
  for (int i = 0; i < obs::kNumStages; ++i) {
    stage_hist_[i] = metrics_->GetHistogram(
        "islabel_query_stage_seconds",
        "Per-stage latency of query verbs (zeros recorded for unhit "
        "stages, so every stage's _count equals the query count).",
        {{"stage", obs::StageName(static_cast<obs::Stage>(i))}});
  }
}

void RequestDispatcher::FillServeStats(ServeStats* stats) const {
  stats->requests = requests();
  stats->errors = errors();
  if (repl_hooks_ != nullptr) repl_hooks_->FillStats(stats);
  if (catalog_ == nullptr) return;
  stats->datasets = DatasetCountersSnapshot();
  for (const DatasetCounters& d : stats->datasets) {
    stats->cache_hits += d.cache_hits;
    stats->cache_misses += d.cache_misses;
    stats->cache_entries += d.cache_entries;
  }
}

std::vector<DatasetCounters> RequestDispatcher::DatasetCountersSnapshot()
    const {
  std::vector<DatasetCounters> out;
  if (catalog_ == nullptr) return out;
  for (const DatasetInfo& info : catalog_->List()) {
    DatasetCounters c;
    c.name = info.name;
    c.state = DatasetStateName(info.state);
    c.requests = info.requests;
    c.errors = info.errors;
    c.reloads = info.reloads;
    c.generation = info.generation;
    c.parts = info.parts;
    c.vertices = info.vertices;
    c.backends = info.backends;
    c.index_entries = info.index_entries;
    c.index_bytes = info.index_bytes;
    // The catalog only knows the DistanceCache seam; counters exist on
    // the serving layer's concrete QueryCache.
    if (auto* cache = dynamic_cast<QueryCache*>(info.cache.get())) {
      const QueryCacheStats cs = cache->GetStats();
      c.cache_hits = cs.hits;
      c.cache_misses = cs.misses;
      c.cache_entries = cs.entries;
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace server
}  // namespace islabel
