#include "server/dispatcher.h"

#include <utility>
#include <vector>

#include "server/query_cache.h"

namespace islabel {
namespace server {

namespace {

/// The verb→API mapping, written once against the DistanceIndex
/// interface: single-index mode passes the raw backend, catalog mode
/// passes the session's Catalog::Handle (itself a DistanceIndex).
std::string ExecuteQueryVerb(DistanceIndex& backend, const Request& req,
                             bool* error) {
  *error = false;
  switch (req.kind) {
    case RequestKind::kDistance: {
      Distance d = 0;
      Status st = backend.Query(req.s, req.t, &d);
      if (!st.ok()) {
        *error = true;
        return FormatError(st);
      }
      return FormatDistance(d);
    }
    case RequestKind::kOneToMany: {
      std::vector<Distance> dists;
      Status st = backend.QueryOneToMany(req.s, req.targets, &dists);
      if (!st.ok()) {
        *error = true;
        return FormatError(st);
      }
      return FormatDistances(dists);
    }
    case RequestKind::kPath: {
      std::vector<VertexId> path;
      Distance d = 0;
      Status st = backend.ShortestPath(req.s, req.t, &path, &d);
      if (!st.ok()) {
        *error = true;
        return FormatError(st);
      }
      return FormatPath(d, path);
    }
    default:
      break;
  }
  *error = true;
  return "error: internal: request kind not dispatchable";
}

}  // namespace

std::string RequestDispatcher::ExecuteOnHandle(const Request& req,
                                               Session* session) {
  // Resolve (and cache) the handle once per session, not per query —
  // Catalog::Get takes the catalog-wide lock and scans names.
  if (!session->handle) {
    std::string name =
        session->dataset.empty() ? default_dataset_ : session->dataset;
    if (name.empty()) {
      // A server may start with no default (a replica before its first
      // sync discovers dataset names at runtime). Once exactly one
      // dataset is hosted the choice is unambiguous — serve it, so
      // failover clients can send bare queries to any replica.
      const std::vector<std::string> names = catalog_->Names();
      if (names.size() == 1) name = names.front();
    }
    if (name.empty()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return "error: FailedPrecondition: no dataset selected (server has "
             "no default; pick one with `use NAME`, list with `datasets`)";
    }
    session->handle = catalog_->Get(name);
    if (!session->handle) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return "error: NotFound: unknown dataset " + name;
    }
  }
  bool error = false;
  std::string response = ExecuteQueryVerb(session->handle, req, &error);
  if (error) errors_.fetch_add(1, std::memory_order_relaxed);
  return response;
}

std::string RequestDispatcher::Execute(const Request& req, Session* session) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  switch (req.kind) {
    case RequestKind::kDistance:
    case RequestKind::kOneToMany:
    case RequestKind::kPath: {
      if (catalog_ != nullptr) return ExecuteOnHandle(req, session);
      bool error = false;
      std::string response = ExecuteQueryVerb(*index_, req, &error);
      if (error) errors_.fetch_add(1, std::memory_order_relaxed);
      return response;
    }
    case RequestKind::kUse: {
      if (catalog_ == nullptr) break;
      Catalog::Handle handle = catalog_->Get(req.name);
      if (!handle) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return "error: NotFound: unknown dataset " + req.name;
      }
      // Switching to a loading/failed dataset is allowed deliberately:
      // the per-query error reports the state, and a dataset that
      // finishes loading starts answering without a second `use`.
      session->dataset = req.name;
      session->handle = std::move(handle);
      return "ok: using " + req.name;
    }
    case RequestKind::kDatasets: {
      if (catalog_ == nullptr) break;
      return FormatDatasets(DatasetCountersSnapshot());
    }
    case RequestKind::kReload: {
      if (catalog_ == nullptr) break;
      Status st = catalog_->Reload(req.name);
      if (!st.ok()) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return FormatError(st);
      }
      return "ok: reloaded " + req.name;
    }
    case RequestKind::kVersion:
    case RequestKind::kHeartbeat:
    case RequestKind::kReplicate: {
      if (repl_hooks_ == nullptr) {
        errors_.fetch_add(1, std::memory_order_relaxed);
        return "error: NotSupported: replication not enabled";
      }
      std::string response =
          req.kind == RequestKind::kVersion ? repl_hooks_->HandleVersion()
          : req.kind == RequestKind::kHeartbeat
              ? repl_hooks_->HandleHeartbeat()
              : repl_hooks_->HandleReplicate(req.name, req.gen);
      if (response.rfind("error: ", 0) == 0) {
        errors_.fetch_add(1, std::memory_order_relaxed);
      }
      return response;
    }
    case RequestKind::kInvalid:
      errors_.fetch_add(1, std::memory_order_relaxed);
      return req.error;
    case RequestKind::kNone:
    case RequestKind::kStats:
    case RequestKind::kQuit:
      errors_.fetch_add(1, std::memory_order_relaxed);
      return "error: internal: request kind not dispatchable";
  }
  // A catalog verb reached a single-index server.
  errors_.fetch_add(1, std::memory_order_relaxed);
  return "error: NotSupported: no catalog (single-dataset server)";
}

void RequestDispatcher::FillServeStats(ServeStats* stats) const {
  stats->requests = requests();
  stats->errors = errors();
  if (repl_hooks_ != nullptr) repl_hooks_->FillStats(stats);
  if (catalog_ == nullptr) return;
  stats->datasets = DatasetCountersSnapshot();
  for (const DatasetCounters& d : stats->datasets) {
    stats->cache_hits += d.cache_hits;
    stats->cache_misses += d.cache_misses;
    stats->cache_entries += d.cache_entries;
  }
}

std::vector<DatasetCounters> RequestDispatcher::DatasetCountersSnapshot()
    const {
  std::vector<DatasetCounters> out;
  if (catalog_ == nullptr) return out;
  for (const DatasetInfo& info : catalog_->List()) {
    DatasetCounters c;
    c.name = info.name;
    c.state = DatasetStateName(info.state);
    c.requests = info.requests;
    c.errors = info.errors;
    c.reloads = info.reloads;
    c.generation = info.generation;
    c.parts = info.parts;
    c.vertices = info.vertices;
    c.backends = info.backends;
    c.index_entries = info.index_entries;
    c.index_bytes = info.index_bytes;
    // The catalog only knows the DistanceCache seam; counters exist on
    // the serving layer's concrete QueryCache.
    if (auto* cache = dynamic_cast<QueryCache*>(info.cache.get())) {
      const QueryCacheStats cs = cache->GetStats();
      c.cache_hits = cs.hits;
      c.cache_misses = cs.misses;
      c.cache_entries = cs.entries;
    }
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace server
}  // namespace islabel
