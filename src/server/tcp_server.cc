#include "server/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <csignal>
#include <cstring>

namespace islabel {
namespace server {

namespace {

/// The server whose Stop() the SIGINT/SIGTERM handlers call. One server
/// per process may install handlers (the CLI case).
std::atomic<TcpServer*> g_signal_server{nullptr};

void HandleStopSignal(int /*signo*/) {
  // Stop() is an atomic store plus an eventfd write — async-signal-safe.
  TcpServer* s = g_signal_server.load(std::memory_order_acquire);
  if (s != nullptr) s->Stop();
}

const Clock* DefaultClock() {
  static SystemClock clock;
  return &clock;
}

}  // namespace

/// Per-connection state. The fd, the unparsed input tail and the
/// EPOLLOUT arm flag belong to the event-loop thread alone; everything a
/// worker touches lives behind `mu`.
struct TcpServer::Connection {
  int fd = -1;                  // loop-thread private; -1 once closed
  std::string in;               // loop-thread private: bytes before '\n'
  bool epollout_armed = false;  // loop-thread private
  /// Last time the peer delivered bytes or a response was flushed
  /// (clock_->NowMs()). Loop-thread private (read/written only by the
  /// event loop).
  std::uint64_t last_activity_ms = 0;

  Mutex mu;
  std::string out GUARDED_BY(mu);              // response bytes awaiting write
  std::deque<Request> pending GUARDED_BY(mu);  // parsed, awaiting execution
  bool scheduled GUARDED_BY(mu) = false;   // queued for / held by a worker
  bool want_close GUARDED_BY(mu) = false;  // close once drained, !scheduled
  // Selected catalog dataset. Guarded by mu like the rest, but only the
  // (single) worker holding the connection ever reads or writes it.
  RequestDispatcher::Session session GUARDED_BY(mu);
};

TcpServer::TcpServer(ISLabelIndex* index, QueryCache* cache,
                     const TcpServerOptions& options)
    : index_(index),
      cache_(cache),
      options_(options),
      clock_(options.clock != nullptr ? options.clock : DefaultClock()),
      dispatcher_(index) {
  InitMetrics();
}

TcpServer::TcpServer(Catalog* catalog, const std::string& default_dataset,
                     const TcpServerOptions& options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : DefaultClock()),
      dispatcher_(catalog, default_dataset) {
  InitMetrics();
}

void TcpServer::InitMetrics() {
  obs::MetricRegistry* registry = options_.metrics;
  if (registry == nullptr && dispatcher_.has_catalog()) {
    registry = dispatcher_.catalog()->metrics();
  }
  if (registry == nullptr) {
    // Single-index server with no injected registry: fall back to the
    // owned one, so `metrics` and the telemetry counters work in both
    // modes without wiring.
    registry = &own_registry_;
  }

  accepted_ = registry->GetCounter("islabel_server_connections_accepted_total",
                                   "Connections accepted since start.");
  open_ = registry->GetGauge("islabel_server_connections_open",
                             "Currently open connections.");
  bytes_in_ = registry->GetCounter("islabel_server_bytes_in_total",
                                   "Request bytes read from peers.");
  bytes_out_ = registry->GetCounter("islabel_server_bytes_out_total",
                                    "Response bytes written to peers.");
  accept_shed_ = registry->GetCounter(
      "islabel_server_accept_shed_total",
      "Connections shed in the accept loop under fd exhaustion.");
  idle_closed_ = registry->GetCounter(
      "islabel_server_idle_closed_total",
      "Connections closed by the idle-timeout / input-cap guard.");
  queue_depth_ = registry->GetGauge(
      "islabel_server_worker_queue_depth",
      "Connections queued for (or held by) a worker right now.");

  RequestDispatcher::MetricsOptions mo;
  mo.registry = registry;
  mo.clock = clock_;
  mo.slow_query_threshold_ms = options_.slow_query_threshold_ms;
  mo.slow_query_sink = options_.slow_query_sink;
  mo.flight_recorder = options_.flight_recorder;
  mo.event_log = options_.event_log;
  dispatcher_.InstallMetrics(mo);
}

TcpServer::~TcpServer() {
  Stop();
  Wait();
  if (signal_handlers_installed_) {
    g_signal_server.store(nullptr, std::memory_order_release);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (reserve_fd_ >= 0) ::close(reserve_fd_);
}

Status TcpServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  const std::string host =
      options_.host == "localhost" ? "127.0.0.1" : options_.host;
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse listen host " +
                                   options_.host);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Status::IOError("bind " + options_.host + ": " +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, options_.listen_backlog) != 0) {
    Status st = Status::IOError(std::string("listen: ") +
                                std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::IOError("epoll_create1/eventfd failed");
  }
  // Held in reserve for fd exhaustion (see ShedForAccept). Failure to
  // open it is not fatal — the idle-eviction path still works.
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLET;
  ev.data.fd = listen_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Status::IOError("epoll_ctl(listen) failed");
  }
  ev.data.fd = wake_fd_;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Status::IOError("epoll_ctl(wake) failed");
  }

  if (options_.install_signal_handlers) {
    g_signal_server.store(this, std::memory_order_release);
    std::signal(SIGINT, HandleStopSignal);
    std::signal(SIGTERM, HandleStopSignal);
    signal_handlers_installed_ = true;
  }

  std::uint32_t workers = options_.num_workers;
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  workers_.reserve(workers);
  for (std::uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  started_ = true;
  if (options_.event_log != nullptr) {
    options_.event_log->Log(
        obs::EventLevel::kInfo, "islabel.server.started",
        {{"host", options_.host},
         {"port", obs::EventLog::U64(bound_port_)},
         {"workers", obs::EventLog::U64(workers)}});
  }
  return Status::OK();
}

void TcpServer::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const std::uint64_t tick = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_fd_, &tick, sizeof(tick));
  }
}

void TcpServer::Wait() {
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    MutexLock lock(&work_mu_);
    workers_shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  if (started_ && !stop_event_logged_ && options_.event_log != nullptr) {
    stop_event_logged_ = true;
    const TcpServerStats s = stats();
    options_.event_log->Log(
        obs::EventLevel::kInfo, "islabel.server.stopped",
        {{"requests", obs::EventLog::U64(s.requests)},
         {"errors", obs::EventLog::U64(s.errors)},
         {"connections", obs::EventLog::U64(s.connections_accepted)}});
  }
}

// ---- Event loop (all fd operations happen on this thread) ----

void TcpServer::EventLoop() {
  std::array<epoll_event, 64> events;
  std::uint64_t drain_deadline_ms = 0;
  for (;;) {
    int timeout_ms = stopping_ ? 50 : -1;
    if (!stopping_ && options_.idle_timeout_ms > 0) {
      // Wake often enough that an idle connection overstays by at most
      // ~a quarter of the timeout.
      timeout_ms = static_cast<int>(std::clamp<std::uint32_t>(
          options_.idle_timeout_ms / 4, 10, 1000));
    }
    const int n =
        ::epoll_wait(epoll_fd_, events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == wake_fd_) {
        HandleWake();
        continue;
      }
      if (ev.data.fd == listen_fd_) {
        AcceptAll();
        continue;
      }
      auto it = conns_.find(ev.data.fd);
      if (it == conns_.end()) continue;  // already closed this batch
      std::shared_ptr<Connection> conn = it->second;
      if (ev.events & (EPOLLHUP | EPOLLERR)) {
        MutexLock lock(&conn->mu);
        conn->want_close = true;
      }
      if (ev.events & (EPOLLIN | EPOLLRDHUP)) HandleRead(conn);
      if (ev.events & EPOLLOUT) Flush(conn);
      if (ev.events & (EPOLLHUP | EPOLLERR)) Flush(conn);
    }
    if (!stopping_) SweepIdle();
    if (stop_requested_.load(std::memory_order_acquire) && !stopping_) {
      BeginShutdown();
      drain_deadline_ms = clock_->NowMs() + options_.drain_timeout_ms;
    }
    if (stopping_) {
      if (conns_.empty()) break;
      if (clock_->NowMs() >= drain_deadline_ms) {
        auto snapshot = conns_;  // CloseConn mutates conns_
        for (auto& [fd, conn] : snapshot) CloseConn(conn);
        break;
      }
    }
  }
}

void TcpServer::BeginShutdown() {
  stopping_ = true;
  if (listen_fd_ >= 0) {
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  auto snapshot = conns_;  // Flush may close and erase
  for (auto& [fd, conn] : snapshot) {
    {
      MutexLock lock(&conn->mu);
      conn->want_close = true;
    }
    Flush(conn);
  }
}

void TcpServer::HandleWake() {
  std::uint64_t ticks = 0;
  while (::read(wake_fd_, &ticks, sizeof(ticks)) > 0) {
  }
  std::deque<std::shared_ptr<Connection>> ready;
  {
    MutexLock lock(&flush_mu_);
    ready.swap(flush_queue_);
  }
  for (auto& conn : ready) Flush(conn);
}

void TcpServer::AcceptAll() {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      // The listen fd is edge-triggered: a transient failure must not
      // strand already-queued connections behind it.
      if (errno == ECONNABORTED || errno == EINTR) continue;
      // Out of fds: shed load (evict an idle connection or drop the
      // newcomer via the reserve fd) rather than wedging the listen
      // queue until some client goes away.
      if ((errno == EMFILE || errno == ENFILE) && ShedForAccept()) continue;
      break;  // EAGAIN (drained) or a real error: stop
    }
    if (stopping_) {
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->last_activity_ms = clock_->NowMs();
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    conns_.emplace(fd, std::move(conn));
    accepted_->Inc();
    open_->Add(1);
  }
}

bool TcpServer::ShedForAccept() {
  // Prefer evicting the oldest idle connection: nothing pending, nothing
  // buffered, no worker holding it — closing it loses no responses.
  std::shared_ptr<Connection> victim;
  for (auto& [fd, conn] : conns_) {
    bool idle = false;
    {
      MutexLock lock(&conn->mu);
      idle = !conn->scheduled && conn->pending.empty() && conn->out.empty();
    }
    if (!idle) continue;
    if (victim == nullptr ||
        conn->last_activity_ms < victim->last_activity_ms) {
      victim = conn;
    }
  }
  if (victim != nullptr) {
    CloseConn(victim);
    accept_shed_->Inc();
    return true;  // a slot is free: retry the accept
  }
  // Every connection is busy: momentarily give back the reserve fd so
  // the queued connection can be accepted, then drop it — the client
  // sees a clean close instead of hanging in the backlog.
  if (reserve_fd_ < 0) return false;
  ::close(reserve_fd_);
  reserve_fd_ = -1;
  const int fd =
      ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (fd >= 0) ::close(fd);
  reserve_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
  if (fd < 0) return false;
  accept_shed_->Inc();
  return true;  // keep draining the backlog
}

void TcpServer::SweepIdle() {
  if (options_.idle_timeout_ms == 0 || conns_.empty()) return;
  const std::uint64_t now_ms = clock_->NowMs();
  auto snapshot = conns_;  // TimeoutConn may flush-close and erase
  for (auto& [fd, conn] : snapshot) {
    if (now_ms - conn->last_activity_ms < options_.idle_timeout_ms) continue;
    conn->last_activity_ms = now_ms;  // one timeout per offender
    idle_closed_->Inc();
    TimeoutConn(conn);
  }
}

void TcpServer::TimeoutConn(const std::shared_ptr<Connection>& conn) {
  // Route the error through the pending pipeline (like the overlong-line
  // path): an invalid sentinel then a quit, so it sequences correctly
  // after any in-flight responses even if a worker holds the connection.
  bool enqueue = false;
  {
    MutexLock lock(&conn->mu);
    if (conn->want_close) return;
    Request err;
    err.kind = RequestKind::kInvalid;
    err.error = "error: timeout";
    conn->pending.push_back(std::move(err));
    Request quit;
    quit.kind = RequestKind::kQuit;
    conn->pending.push_back(std::move(quit));
    if (!conn->scheduled) {
      conn->scheduled = true;
      enqueue = true;
    }
  }
  if (enqueue) {
    {
      MutexLock lock(&work_mu_);
      work_queue_.push_back(conn);
    }
    queue_depth_->Add(1);
    work_cv_.NotifyOne();
  }
}

void TcpServer::HandleRead(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  bool peer_done = false;
  char buf[65536];
  for (;;) {  // edge-triggered: drain to EAGAIN
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      bytes_in_->Inc(static_cast<std::uint64_t>(n));
      conn->in.append(buf, static_cast<std::size_t>(n));
      conn->last_activity_ms = clock_->NowMs();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    peer_done = true;  // EOF or hard error
    break;
  }
  ParseLines(conn);
  if (peer_done) {
    {
      MutexLock lock(&conn->mu);
      conn->want_close = true;
    }
    Flush(conn);
  }
}

void TcpServer::ParseLines(const std::shared_ptr<Connection>& conn) {
  // Parse latency feeds the request's QueryTrace; only pay the clock
  // reads when telemetry (metrics or the flight recorder) is on.
  const bool time_parse = dispatcher_.tracing_enabled();
  std::deque<Request> parsed;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t nl = conn->in.find('\n', begin);
    if (nl == std::string::npos) break;
    const std::uint64_t t0 = time_parse ? clock_->NowMicros() : 0;
    Request req = ParseRequest(
        std::string_view(conn->in).substr(begin, nl - begin));
    if (time_parse) {
      req.parse_us = static_cast<std::uint32_t>(clock_->NowMicros() - t0);
    }
    begin = nl + 1;
    if (req.kind != RequestKind::kNone) parsed.push_back(std::move(req));
  }
  conn->in.erase(0, begin);
  const bool overlong = conn->in.size() > options_.max_line_bytes;
  const bool overcap = !overlong && options_.max_buffered_bytes > 0 &&
                       conn->in.size() > options_.max_buffered_bytes;
  if (overlong || overcap) {
    // Sequence the error and the close AFTER the responses to the valid
    // requests parsed from the same read: an invalid sentinel followed
    // by a quit, flowing through the normal pending pipeline. The
    // buffered-input cap (slowloris guard) reports "error: timeout".
    conn->in.clear();
    if (overcap) idle_closed_->Inc();
    Request err;
    err.kind = RequestKind::kInvalid;
    err.error = overcap ? "error: timeout" : "error: request line too long";
    parsed.push_back(std::move(err));
    Request quit;
    quit.kind = RequestKind::kQuit;
    parsed.push_back(std::move(quit));
  }
  if (parsed.empty()) return;

  bool enqueue = false;
  {
    MutexLock lock(&conn->mu);
    // Nothing after a quit (or a peer close) is answered.
    if (conn->want_close) return;
    for (Request& req : parsed) conn->pending.push_back(std::move(req));
    if (!conn->scheduled && !conn->pending.empty()) {
      conn->scheduled = true;
      enqueue = true;
    }
  }
  if (enqueue) {
    {
      MutexLock lock(&work_mu_);
      work_queue_.push_back(conn);
    }
    queue_depth_->Add(1);
    work_cv_.NotifyOne();
  }
}

void TcpServer::Flush(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  bool want_out = false;
  bool can_close = false;
  {
    MutexLock lock(&conn->mu);
    while (!conn->out.empty()) {  // edge-triggered: write to EAGAIN
      const ssize_t n =
          ::send(conn->fd, conn->out.data(), conn->out.size(), MSG_NOSIGNAL);
      if (n > 0) {
        bytes_out_->Inc(static_cast<std::uint64_t>(n));
        conn->out.erase(0, static_cast<std::size_t>(n));
        conn->last_activity_ms = clock_->NowMs();
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      conn->want_close = true;  // peer gone; drop what it will never read
      conn->out.clear();
      break;
    }
    want_out = !conn->out.empty();
    can_close = conn->want_close && conn->out.empty() && !conn->scheduled;
  }
  if (can_close) {
    CloseConn(conn);
    return;
  }
  UpdateEpollOut(conn, want_out);
}

void TcpServer::UpdateEpollOut(const std::shared_ptr<Connection>& conn,
                               bool want) {
  if (conn->fd < 0 || conn->epollout_armed == want) return;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET | (want ? EPOLLOUT : 0u);
  ev.data.fd = conn->fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
    conn->epollout_armed = want;
  }
}

void TcpServer::CloseConn(const std::shared_ptr<Connection>& conn) {
  if (conn->fd < 0) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  conns_.erase(conn->fd);
  conn->fd = -1;
  open_->Add(-1);
}

// ---- Workers ----

void TcpServer::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      MutexLock lock(&work_mu_);
      while (!workers_shutdown_ && work_queue_.empty()) {
        work_cv_.Wait(&work_mu_);
      }
      if (work_queue_.empty()) return;  // shutdown and drained
      conn = std::move(work_queue_.front());
      work_queue_.pop_front();
    }
    queue_depth_->Add(-1);
    ProcessConnection(conn);
  }
}

void TcpServer::ProcessConnection(const std::shared_ptr<Connection>& conn) {
  // Keep draining: lines parsed while this worker was busy land in
  // `pending` without a second enqueue (scheduled stays true), so the
  // worker owns the connection until pending is empty. Responses are
  // appended under the lock before scheduled can flip, preserving
  // request order.
  for (;;) {
    std::deque<Request> batch;
    RequestDispatcher::Session session;
    {
      MutexLock lock(&conn->mu);
      if (conn->pending.empty()) {
        conn->scheduled = false;
        break;
      }
      batch.swap(conn->pending);
      session = conn->session;
    }
    std::string responses;
    bool quit = false;
    for (const Request& req : batch) {
      if (quit) break;  // nothing after quit is answered
      switch (req.kind) {
        case RequestKind::kQuit:
          quit = true;
          break;
        case RequestKind::kStats:
          dispatcher_.CountStatsRequest();
          responses += FormatStats(ServeStatsSnapshot());
          responses += '\n';
          break;
        default:
          responses += dispatcher_.Execute(req, &session);
          responses += '\n';
          break;
      }
    }
    {
      MutexLock lock(&conn->mu);
      conn->out += responses;
      conn->session = std::move(session);
      if (quit) {
        conn->want_close = true;
        conn->pending.clear();
      }
    }
  }
  NotifyFlush(conn);
}

void TcpServer::NotifyFlush(std::shared_ptr<Connection> conn) {
  {
    MutexLock lock(&flush_mu_);
    flush_queue_.push_back(std::move(conn));
  }
  const std::uint64_t tick = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &tick, sizeof(tick));
}

// ---- Stats ----

TcpServerStats TcpServer::stats() const {
  TcpServerStats s;
  s.connections_accepted = accepted_->Value();
  s.connections_open = static_cast<std::uint64_t>(open_->Value());
  s.requests = dispatcher_.requests();
  s.errors = dispatcher_.errors();
  s.bytes_in = bytes_in_->Value();
  s.bytes_out = bytes_out_->Value();
  s.accept_shed = accept_shed_->Value();
  s.idle_closed = idle_closed_->Value();
  return s;
}

ServeStats TcpServer::ServeStatsSnapshot() const {
  ServeStats s;
  s.connections_open = static_cast<std::uint64_t>(open_->Value());
  s.connections_accepted = accepted_->Value();
  s.accept_shed = accept_shed_->Value();
  s.idle_closed = idle_closed_->Value();
  if (cache_ != nullptr) {
    const QueryCacheStats cs = cache_->GetStats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_entries = cs.entries;
    s.cache_generation = cs.generation;
  }
  // Request/error totals, the per-dataset split, and the catalog cache
  // aggregates (added onto the single-index fields above).
  dispatcher_.FillServeStats(&s);
  return s;
}

}  // namespace server
}  // namespace islabel
