#include "server/query_cache.h"

#include <algorithm>

namespace islabel {
namespace server {

namespace {

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

QueryCache::QueryCache(const QueryCacheOptions& options) {
  const std::size_t shards =
      RoundUpPow2(std::max<std::size_t>(options.num_shards, 1));
  shards_ = std::vector<Shard>(shards);
  shard_mask_ = shards - 1;
  const std::size_t total_entries =
      std::max<std::size_t>(options.capacity_bytes / kBytesPerEntry, shards);
  per_shard_capacity_ = std::max<std::size_t>(total_entries / shards, 1);
  capacity_entries_ = per_shard_capacity_ * shards;
}

bool QueryCache::Lookup(VertexId s, VertexId t, Distance* out) {
  const std::uint64_t key = Key(s, t);
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    return false;
  }
  if (it->second->generation != gen) {
    // Stale entry from before an index update: erase lazily, miss.
    shard.lru.erase(it->second);
    shard.map.erase(it);
    ++shard.misses;
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->dist;
  ++shard.hits;
  return true;
}

void QueryCache::Insert(VertexId s, VertexId t, Distance d,
                        std::uint64_t gen) {
  // The caller snapshotted `gen` before computing d; if an invalidation
  // landed in between, the answer may predate the update — drop it
  // rather than stamp a stale value as current.
  if (gen != generation_.load(std::memory_order_acquire)) return;
  const std::uint64_t key = Key(s, t);
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->dist = d;
    it->second->generation = gen;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, d, gen});
  shard.map.emplace(key, shard.lru.begin());
  if (shard.map.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void QueryCache::BumpGeneration() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
}

QueryCacheStats QueryCache::GetStats() const {
  QueryCacheStats stats;
  stats.generation = generation_.load(std::memory_order_acquire);
  stats.capacity_entries = capacity_entries_;
  for (const Shard& shard : shards_) {
    MutexLock lock(&shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.entries += shard.map.size();
    stats.evictions += shard.evictions;
  }
  return stats;
}

}  // namespace server
}  // namespace islabel
