#include "server/query_cache.h"

#include <algorithm>

namespace islabel {
namespace server {

namespace {

std::size_t RoundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

QueryCache::QueryCache(const QueryCacheOptions& options) {
  const std::size_t shards =
      RoundUpPow2(std::max<std::size_t>(options.num_shards, 1));
  shards_ = std::vector<Shard>(shards);
  shard_mask_ = shards - 1;
  const std::size_t total_entries =
      std::max<std::size_t>(options.capacity_bytes / kBytesPerEntry, shards);
  per_shard_capacity_ = std::max<std::size_t>(total_entries / shards, 1);
  capacity_entries_ = per_shard_capacity_ * shards;

  obs::Labels base;
  if (options.metrics != nullptr && !options.metrics_dataset.empty()) {
    base.emplace_back("dataset", options.metrics_dataset);
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    if (options.metrics != nullptr) {
      obs::Labels labels = base;
      labels.emplace_back("shard", std::to_string(i));
      shard.hits = options.metrics->GetCounter(
          "islabel_cache_hits_total", "Query-cache hits", labels);
      shard.misses = options.metrics->GetCounter(
          "islabel_cache_misses_total", "Query-cache misses", labels);
      shard.evictions = options.metrics->GetCounter(
          "islabel_cache_evictions_total", "LRU evictions", labels);
      shard.gen_invalidations = options.metrics->GetCounter(
          "islabel_cache_gen_invalidations_total",
          "Entries lazily dropped for carrying a stale generation", labels);
    } else {
      shard.hits = &shard.own_hits;
      shard.misses = &shard.own_misses;
      shard.evictions = &shard.own_evictions;
      shard.gen_invalidations = &shard.own_invalidations;
    }
  }
  if (options.metrics != nullptr) {
    entries_gauge_ = options.metrics->GetGauge(
        "islabel_cache_entries", "Live query-cache entries", base);
    generation_gauge_ = options.metrics->GetGauge(
        "islabel_cache_generation", "Current cache generation", base);
  }
}

bool QueryCache::Lookup(VertexId s, VertexId t, Distance* out) {
  const std::uint64_t key = Key(s, t);
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    shard.misses->Inc();
    return false;
  }
  if (it->second->generation != gen) {
    // Stale entry from before an index update: erase lazily, miss.
    shard.lru.erase(it->second);
    shard.map.erase(it);
    shard.gen_invalidations->Inc();
    shard.misses->Inc();
    if (entries_gauge_ != nullptr) entries_gauge_->Add(-1);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->dist;
  shard.hits->Inc();
  return true;
}

void QueryCache::Insert(VertexId s, VertexId t, Distance d,
                        std::uint64_t gen) {
  // The caller snapshotted `gen` before computing d; if an invalidation
  // landed in between, the answer may predate the update — drop it
  // rather than stamp a stale value as current.
  if (gen != generation_.load(std::memory_order_acquire)) return;
  const std::uint64_t key = Key(s, t);
  Shard& shard = ShardFor(key);
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->dist = d;
    it->second->generation = gen;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, d, gen});
  shard.map.emplace(key, shard.lru.begin());
  if (entries_gauge_ != nullptr) entries_gauge_->Add(1);
  if (shard.map.size() > per_shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    shard.evictions->Inc();
    if (entries_gauge_ != nullptr) entries_gauge_->Add(-1);
  }
}

void QueryCache::BumpGeneration() {
  const std::uint64_t gen =
      generation_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (generation_gauge_ != nullptr) {
    generation_gauge_->Set(static_cast<std::int64_t>(gen));
  }
}

QueryCacheStats QueryCache::GetStats() const {
  QueryCacheStats stats;
  stats.generation = generation_.load(std::memory_order_acquire);
  stats.capacity_entries = capacity_entries_;
  for (const Shard& shard : shards_) {
    stats.hits += shard.hits->Value();
    stats.misses += shard.misses->Value();
    stats.evictions += shard.evictions->Value();
    stats.gen_invalidations += shard.gen_invalidations->Value();
    MutexLock lock(&shard.mu);
    stats.entries += shard.map.size();
  }
  return stats;
}

}  // namespace server
}  // namespace islabel
