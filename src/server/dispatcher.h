// RequestDispatcher: executes parsed protocol requests against an index
// or a multi-dataset catalog.
//
// Shared by the stdin serve loop and the TCP server's worker threads so
// request semantics (which API each verb maps to, error formatting,
// request/error counting) are defined exactly once. Both modes execute
// query verbs through the one DistanceIndex virtual surface —
// Catalog::Handle IS-A DistanceIndex, so there is exactly one
// verb→API mapping, not one per backend type. Two modes:
//
//   * single-index: constructed over any DistanceIndex; the catalog
//     verbs (use / datasets / reload) answer an error.
//   * catalog: constructed over a Catalog plus a default dataset name;
//     each connection carries a Session whose selected dataset routes
//     its query verbs, `use` switches it, and `reload` hot-swaps a
//     dataset in place (executed on the calling worker, so the event
//     loop never blocks on a load).
//
// Thread-safe: the index/handle entry points lease engines internally,
// the counters are atomic, and a Session is only ever touched by the one
// worker currently processing its connection.
//
// kNone, kQuit and kStats are front-end concerns (no response / session
// close / front-end counters) and are not handled here.

#ifndef ISLABEL_SERVER_DISPATCHER_H_
#define ISLABEL_SERVER_DISPATCHER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "core/distance_index.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/protocol.h"
#include "util/clock.h"

namespace islabel {
namespace server {

/// Seam through which the replication layer (src/repl/) answers the
/// replication verbs. The server library defines only this interface —
/// a primary installs hooks that serve snapshots out of its catalog, a
/// replica installs hooks that report its lag — so server/ never links
/// against repl/ and a server without hooks cleanly reports
/// NotSupported. Implementations must be thread-safe: hooks run on
/// whichever worker thread carries the request.
class ReplicationHooks {
 public:
  virtual ~ReplicationHooks() = default;

  /// Response to `version`: "version: name:gen ..." over every hosted
  /// dataset.
  virtual std::string HandleVersion() = 0;

  /// Response to `heartbeat` ("pong", possibly with detail).
  virtual std::string HandleHeartbeat() = 0;

  /// Response to `replicate NAME GEN` where GEN is the caller's current
  /// generation: "uptodate NAME GEN", a framed multi-line snapshot
  /// stream, or an "error: ..." line. May be large; the front end
  /// treats it as one response blob.
  virtual std::string HandleReplicate(const std::string& name,
                                      std::uint64_t have_gen) = 0;

  /// Appends replication counters (lag, pulls, heartbeats...) to a
  /// `stats` response via `stats->extra`.
  virtual void FillStats(ServeStats* stats) = 0;
};

class RequestDispatcher {
 public:
  /// Single-index mode, over any DistanceIndex backend.
  explicit RequestDispatcher(DistanceIndex* index) : index_(index) {}

  /// Catalog mode: query verbs route to `default_dataset` until a
  /// connection switches with `use`.
  RequestDispatcher(Catalog* catalog, std::string default_dataset)
      : catalog_(catalog), default_dataset_(std::move(default_dataset)) {}

  /// Per-connection dispatcher state. Owned by the front end, one per
  /// connection/session. The resolved handle is cached so the query hot
  /// path never takes the catalog-wide lookup lock: a Handle stays
  /// valid across reloads (it tracks the dataset record, not an index
  /// version), so it is resolved once at `use` time / first query.
  struct Session {
    std::string dataset;      // empty = the dispatcher's default
    Catalog::Handle handle;   // cached resolution of `dataset`
  };

  /// Returns the response line (no trailing '\n') for a kDistance,
  /// kOneToMany, kPath, kUse, kDatasets, kReload, kMetrics or kInvalid
  /// request, bumping the request/error counters as a side effect. With
  /// metrics installed, also runs the request under a QueryTrace: the
  /// per-verb latency histogram, the per-stage histograms and the
  /// slow-query log all record here, once, for both front ends.
  std::string Execute(const Request& req, Session* session);

  /// Session-less convenience for single-index callers.
  std::string Execute(const Request& req) {
    Session session;
    return Execute(req, &session);
  }

  /// Telemetry wiring (DESIGN.md §16-17). Install before serving
  /// starts — not thread-safe against in-flight requests, and counts
  /// recorded before installation stay in the private counters. At
  /// least one of registry / flight_recorder must be set for tracing
  /// to run; each is optional on its own.
  struct MetricsOptions {
    obs::MetricRegistry* registry = nullptr;
    /// Clock for request/stage timing; null uses the system clock.
    const Clock* clock = nullptr;
    /// Requests with total latency >= this many ms hit the slow-query
    /// log; 0 disables it.
    std::uint64_t slow_query_threshold_ms = 0;
    /// Receives each formatted slow-query line; null routes to the
    /// event log (islabel.server.slow_query) when one is installed,
    /// else ISLABEL_LOG(kWarn).
    std::function<void(const std::string&)> slow_query_sink;
    /// Flight recorder behind the `tracez` verb (DESIGN.md §17): every
    /// dispatched request except tracez itself is recorded. Must
    /// outlive the dispatcher; null answers tracez with NotSupported.
    obs::FlightRecorder* flight_recorder = nullptr;
    /// Structured event log for slow queries and lifecycle events.
    /// Must outlive the dispatcher.
    obs::EventLog* event_log = nullptr;
  };
  void InstallMetrics(const MetricsOptions& options);

  /// The registry installed via InstallMetrics, or null. The `metrics`
  /// verb renders exactly this registry.
  obs::MetricRegistry* metrics() const { return metrics_; }
  /// True when per-request tracing should run (registry present and
  /// enabled) — front ends consult this before timing parses.
  bool metrics_enabled() const {
    return metrics_ != nullptr && metrics_->enabled();
  }
  /// True when requests run under a QueryTrace at all: metrics on, or
  /// the flight recorder on. What front ends actually consult before
  /// timing parses.
  bool tracing_enabled() const {
    return metrics_enabled() ||
           (recorder_ != nullptr && recorder_->enabled());
  }
  obs::FlightRecorder* flight_recorder() const { return recorder_; }
  obs::EventLog* event_log() const { return event_log_; }

  std::uint64_t requests() const { return requests_c_->Value(); }
  std::uint64_t errors() const { return errors_c_->Value(); }

  /// Counts a served `stats` request (issued by the front end, which owns
  /// the stats response).
  void CountStatsRequest() { requests_c_->Inc(); }

  bool has_catalog() const { return catalog_ != nullptr; }
  Catalog* catalog() const { return catalog_; }
  DistanceIndex* index() const { return index_; }
  const std::string& default_dataset() const { return default_dataset_; }

  /// Installs the replication verb handlers. Not thread-safe against
  /// in-flight requests — install before serving starts. `hooks` must
  /// outlive the dispatcher; nullptr uninstalls.
  void set_replication_hooks(ReplicationHooks* hooks) { repl_hooks_ = hooks; }
  ReplicationHooks* replication_hooks() const { return repl_hooks_; }

  /// Per-dataset counters for `stats` / `datasets` responses (catalog
  /// mode; empty otherwise). Cache counters are read through the
  /// dataset's DistanceCache when it is a QueryCache.
  std::vector<DatasetCounters> DatasetCountersSnapshot() const;

  /// Fills the dispatcher-owned fields of a `stats` response: request /
  /// error totals, the per-dataset split, and the catalog-mode cache
  /// aggregates (added onto whatever cache fields are already set). The
  /// front end fills connection counters and single-index cache fields.
  void FillServeStats(ServeStats* stats) const;

 private:
  std::string ExecuteOnHandle(const Request& req, Session* session);
  std::string ExecuteInternal(const Request& req, Session* session);

  DistanceIndex* index_ = nullptr;
  Catalog* catalog_ = nullptr;
  ReplicationHooks* repl_hooks_ = nullptr;
  std::string default_dataset_;

  // One counter system: private instruments until InstallMetrics
  // re-points them at registry series (requests()/errors() keep working
  // either way).
  obs::Counter own_requests_, own_errors_;
  obs::Counter* requests_c_ = &own_requests_;
  obs::Counter* errors_c_ = &own_errors_;

  obs::MetricRegistry* metrics_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
  obs::EventLog* event_log_ = nullptr;
  const Clock* clock_ = nullptr;
  std::uint64_t slow_query_threshold_ms_ = 0;
  std::function<void(const std::string&)> slow_query_sink_;
  obs::Counter* slow_queries_ = nullptr;
  // Indexed by RequestKind; null for kinds never dispatched (kNone,
  // kQuit, kStats).
  std::array<obs::Histogram*, 16> verb_hist_{};
  std::array<obs::Histogram*, obs::kNumStages> stage_hist_{};
};

}  // namespace server
}  // namespace islabel

#endif  // ISLABEL_SERVER_DISPATCHER_H_
