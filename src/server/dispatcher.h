// RequestDispatcher: executes parsed protocol requests against an index.
//
// Shared by the stdin serve loop and the TCP server's worker threads so
// request semantics (which API each verb maps to, error formatting,
// request/error counting) are defined exactly once. Thread-safe: the
// index entry points lease engines internally and the counters are
// atomic, so any number of workers may call Execute concurrently.
//
// kNone, kQuit and kStats are front-end concerns (no response / session
// close / front-end counters) and are not handled here.

#ifndef ISLABEL_SERVER_DISPATCHER_H_
#define ISLABEL_SERVER_DISPATCHER_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "core/index.h"
#include "server/protocol.h"

namespace islabel {
namespace server {

class RequestDispatcher {
 public:
  explicit RequestDispatcher(ISLabelIndex* index) : index_(index) {}

  /// Returns the response line (no trailing '\n') for a kDistance,
  /// kOneToMany, kPath or kInvalid request, bumping the request/error
  /// counters as a side effect.
  std::string Execute(const Request& req);

  std::uint64_t requests() const {
    return requests_.load(std::memory_order_relaxed);
  }
  std::uint64_t errors() const {
    return errors_.load(std::memory_order_relaxed);
  }

  /// Counts a served `stats` request (issued by the front end, which owns
  /// the stats response).
  void CountStatsRequest() { requests_.fetch_add(1, std::memory_order_relaxed); }

  ISLabelIndex* index() const { return index_; }

 private:
  ISLabelIndex* index_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
};

}  // namespace server
}  // namespace islabel

#endif  // ISLABEL_SERVER_DISPATCHER_H_
