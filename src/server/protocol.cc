#include "server/protocol.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>

#include "obs/trace.h"

namespace islabel {
namespace server {

namespace {

constexpr std::string_view kUsageDistance = "error: usage: S T";
constexpr std::string_view kUsageOne = "error: usage: one S T1 [T2 ...]";
constexpr std::string_view kUsagePath = "error: usage: path S T";
constexpr std::string_view kUsageUse = "error: usage: use NAME";
constexpr std::string_view kUsageReload = "error: usage: reload NAME";
constexpr std::string_view kUsageReplicate =
    "error: usage: replicate NAME GEN";
constexpr std::string_view kUsageTid =
    "error: usage: tid=HEX (1-16 hex digits, nonzero)";
constexpr std::string_view kUsageTracez =
    "error: usage: tracez [slow|errors|id HEX] [N]";

/// Splits on runs of spaces/tabs (the only separators the grammar allows).
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t begin = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > begin) tokens.push_back(line.substr(begin, i - begin));
  }
  return tokens;
}

/// Strict decimal uint32: the whole token must be digits and fit VertexId.
bool ParseVertexId(std::string_view token, VertexId* out) {
  std::uint32_t value = 0;
  const char* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(token.data(), end, value, 10);
  if (ec != std::errc() || ptr != end) return false;
  *out = value;
  return true;
}

/// Strict decimal uint64 (replication generations).
bool ParseU64(std::string_view token, std::uint64_t* out) {
  std::uint64_t value = 0;
  const char* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(token.data(), end, value, 10);
  if (ec != std::errc() || ptr != end) return false;
  *out = value;
  return true;
}

Request Invalid(std::string_view usage) {
  Request r;
  r.kind = RequestKind::kInvalid;
  r.error = std::string(usage);
  return r;
}

void AppendU64(std::string* out, const char* key, std::uint64_t v) {
  *out += ' ';
  *out += key;
  *out += '=';
  *out += std::to_string(v);
}

}  // namespace

// [A-Za-z0-9._-] keeps every response line free of spaces/colons inside
// names.
bool IsValidDatasetName(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

Request ParseRequest(std::string_view line) {
  // Strip a trailing '\r' so CRLF clients (telnet, netcat -C) work.
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);

  Request r;
  std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty() || tokens[0].front() == '#') return r;  // kNone

  // The optional trailing trace-id token is stripped BEFORE the
  // per-verb token counts are checked, so every verb accepts it.
  if (tokens.back().size() >= 4 &&
      tokens.back().compare(0, 4, "tid=") == 0) {
    if (!obs::ParseTraceId(tokens.back().substr(4), &r.trace_id)) {
      return Invalid(kUsageTid);
    }
    tokens.pop_back();
    if (tokens.empty()) return Invalid(kUsageTid);  // a bare tid token
  }

  const std::string_view head = tokens[0];
  if (head == "quit" || head == "exit") {
    if (tokens.size() != 1) return Invalid("error: usage: quit");
    r.kind = RequestKind::kQuit;
    return r;
  }
  if (head == "stats") {
    if (tokens.size() != 1) return Invalid("error: usage: stats");
    r.kind = RequestKind::kStats;
    return r;
  }
  if (head == "metrics") {
    if (tokens.size() != 1) return Invalid("error: usage: metrics");
    r.kind = RequestKind::kMetrics;
    return r;
  }
  if (head == "tracez") {
    // tracez [N] | tracez slow [N] | tracez errors [N] | tracez id HEX
    r.kind = RequestKind::kTracez;
    r.name = "recent";
    std::size_t i = 1;
    if (i < tokens.size() && (tokens[i] == "slow" || tokens[i] == "errors")) {
      r.name = std::string(tokens[i]);
      ++i;
    } else if (i < tokens.size() && tokens[i] == "id") {
      std::uint64_t id = 0;
      if (i + 1 >= tokens.size() || !obs::ParseTraceId(tokens[i + 1], &id)) {
        return Invalid(kUsageTracez);
      }
      // The lookup key wins trace_id over any trailing tid= tag on the
      // scrape request itself.
      r.name = "id";
      r.trace_id = id;
      i += 2;
      if (i != tokens.size()) return Invalid(kUsageTracez);
      return r;
    }
    if (i < tokens.size()) {
      if (!ParseU64(tokens[i], &r.limit) || r.limit == 0) {
        return Invalid(kUsageTracez);
      }
      ++i;
    }
    if (i != tokens.size()) return Invalid(kUsageTracez);
    return r;
  }
  if (head == "datasets") {
    if (tokens.size() != 1) return Invalid("error: usage: datasets");
    r.kind = RequestKind::kDatasets;
    return r;
  }
  if (head == "use") {
    if (tokens.size() != 2 || !IsValidDatasetName(tokens[1])) {
      return Invalid(kUsageUse);
    }
    r.kind = RequestKind::kUse;
    r.name = std::string(tokens[1]);
    return r;
  }
  if (head == "reload") {
    if (tokens.size() != 2 || !IsValidDatasetName(tokens[1])) {
      return Invalid(kUsageReload);
    }
    r.kind = RequestKind::kReload;
    r.name = std::string(tokens[1]);
    return r;
  }
  if (head == "version") {
    if (tokens.size() != 1) return Invalid("error: usage: version");
    r.kind = RequestKind::kVersion;
    return r;
  }
  if (head == "heartbeat") {
    if (tokens.size() != 1) return Invalid("error: usage: heartbeat");
    r.kind = RequestKind::kHeartbeat;
    return r;
  }
  if (head == "replicate") {
    if (tokens.size() != 3 || !IsValidDatasetName(tokens[1]) ||
        !ParseU64(tokens[2], &r.gen)) {
      return Invalid(kUsageReplicate);
    }
    r.kind = RequestKind::kReplicate;
    r.name = std::string(tokens[1]);
    return r;
  }
  if (head == "one") {
    if (tokens.size() < 3) return Invalid(kUsageOne);
    if (!ParseVertexId(tokens[1], &r.s)) return Invalid(kUsageOne);
    r.targets.reserve(tokens.size() - 2);
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      VertexId t = 0;
      if (!ParseVertexId(tokens[i], &t)) return Invalid(kUsageOne);
      r.targets.push_back(t);
    }
    r.kind = RequestKind::kOneToMany;
    return r;
  }
  if (head == "path") {
    if (tokens.size() != 3 || !ParseVertexId(tokens[1], &r.s) ||
        !ParseVertexId(tokens[2], &r.t)) {
      return Invalid(kUsagePath);
    }
    r.kind = RequestKind::kPath;
    return r;
  }

  // Bare "S T" distance query. A numeric head with the wrong shape
  // (missing T, trailing garbage, bad id) is a usage error; a non-numeric
  // head is an unknown verb.
  VertexId s = 0;
  if (!ParseVertexId(head, &s)) {
    Request bad;
    bad.kind = RequestKind::kInvalid;
    bad.error = "error: unrecognized request: " + std::string(line);
    return bad;
  }
  if (tokens.size() != 2 || !ParseVertexId(tokens[1], &r.t)) {
    return Invalid(kUsageDistance);
  }
  r.s = s;
  r.kind = RequestKind::kDistance;
  return r;
}

std::string FormatDistance(Distance d) {
  if (d == kInfDistance) return "unreachable";
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, d);
  return buf;
}

std::string FormatDistances(const std::vector<Distance>& dists) {
  std::string out;
  for (std::size_t i = 0; i < dists.size(); ++i) {
    if (i != 0) out += ' ';
    out += FormatDistance(dists[i]);
  }
  return out;
}

std::string FormatPath(Distance d, const std::vector<VertexId>& path) {
  if (d == kInfDistance) return "unreachable";
  std::string out = FormatDistance(d);
  out += ':';
  char buf[16];
  for (VertexId v : path) {
    std::snprintf(buf, sizeof(buf), " %u", v);
    out += buf;
  }
  return out;
}

std::string FormatError(const Status& st) {
  return "error: " + st.ToString();
}

std::string FormatStats(const ServeStats& s) {
  std::string out = "stats:";
  AppendU64(&out, "connections_open", s.connections_open);
  AppendU64(&out, "connections_accepted", s.connections_accepted);
  AppendU64(&out, "requests", s.requests);
  AppendU64(&out, "errors", s.errors);
  AppendU64(&out, "cache_hits", s.cache_hits);
  AppendU64(&out, "cache_misses", s.cache_misses);
  AppendU64(&out, "cache_entries", s.cache_entries);
  AppendU64(&out, "cache_generation", s.cache_generation);
  AppendU64(&out, "accept_shed", s.accept_shed);
  AppendU64(&out, "idle_closed", s.idle_closed);
  for (const DatasetCounters& d : s.datasets) {
    const std::string prefix = d.name + ".";
    out += ' ';
    out += prefix + "state=" + d.state;
    AppendU64(&out, (prefix + "requests").c_str(), d.requests);
    AppendU64(&out, (prefix + "errors").c_str(), d.errors);
    AppendU64(&out, (prefix + "reloads").c_str(), d.reloads);
    AppendU64(&out, (prefix + "generation").c_str(), d.generation);
    AppendU64(&out, (prefix + "cache_hits").c_str(), d.cache_hits);
    AppendU64(&out, (prefix + "cache_misses").c_str(), d.cache_misses);
    AppendU64(&out, (prefix + "cache_entries").c_str(), d.cache_entries);
    out += ' ';
    out += prefix + "backends=" + (d.backends.empty() ? "-" : d.backends);
    AppendU64(&out, (prefix + "index_entries").c_str(), d.index_entries);
    AppendU64(&out, (prefix + "index_bytes").c_str(), d.index_bytes);
  }
  for (const auto& [key, value] : s.extra) {
    AppendU64(&out, key.c_str(), value);
  }
  return out;
}

std::string FormatDatasets(const std::vector<DatasetCounters>& datasets) {
  std::string out = "datasets:";
  for (const DatasetCounters& d : datasets) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), ":%s:%u:%" PRIu64, d.state.c_str(),
                  d.parts, d.vertices);
    out += ' ';
    out += d.name;
    out += buf;
    out += ':';
    out += d.backends.empty() ? "-" : d.backends;
  }
  return out;
}

}  // namespace server
}  // namespace islabel
