// TcpServer: epoll-based TCP front end for the IS-LABEL wire protocol.
//
// Threading model (one event loop + a worker pool):
//
//   * The event-loop thread owns every file descriptor: it accepts
//     non-blocking connections, reads request bytes, parses complete
//     lines (server/protocol.h), writes buffered responses, and is the
//     only thread that ever calls epoll_ctl / close. Sockets are
//     edge-triggered, so reads and writes always drain to EAGAIN.
//   * Worker threads execute parsed requests through RequestDispatcher
//     (each index entry point leases an engine from the QueryEnginePool),
//     append responses to the connection's output buffer, and wake the
//     event loop through an eventfd to flush.
//
// A connection is scheduled to at most one worker at a time, so
// pipelined requests on one connection are answered strictly in request
// order while different connections run in parallel. The only state
// shared between the loop and a worker is the per-connection
// {pending requests, output buffer, flags} record, guarded by the
// connection mutex; fd lifecycle stays loop-private, which keeps the
// whole server ThreadSanitizer-clean.
//
// Shutdown: Stop() (async-signal-safe: an atomic store plus an eventfd
// write, also reachable from the optional SIGINT/SIGTERM handlers) makes
// the loop stop accepting, flush every connection's buffered responses,
// close drained connections, and force-close stragglers after
// drain_timeout_ms. Wait() joins the loop and the workers.

#ifndef ISLABEL_SERVER_TCP_SERVER_H_
#define ISLABEL_SERVER_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/index.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "server/dispatcher.h"
#include "server/protocol.h"
#include "server/query_cache.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace islabel {
namespace server {

struct TcpServerOptions {
  /// IPv4 dotted quad, or "localhost". "0.0.0.0" binds every interface.
  std::string host = "127.0.0.1";
  /// 0 requests an ephemeral port; read the real one back with port().
  std::uint16_t port = 0;
  /// Request-executing workers; 0 = hardware concurrency.
  std::uint32_t num_workers = 0;
  /// A request line longer than this (no '\n' seen) closes the
  /// connection with an error response.
  std::size_t max_line_bytes = 1u << 20;
  int listen_backlog = 128;
  /// How long Stop() keeps draining buffered responses before
  /// force-closing connections.
  std::uint32_t drain_timeout_ms = 5000;
  /// Install SIGINT/SIGTERM handlers that call Stop() (CLI mode).
  bool install_signal_handlers = false;
  /// Slowloris guard: a connection that has neither delivered bytes nor
  /// had a response flushed for this long is answered "error: timeout"
  /// and closed. 0 disables (default; the `serve` CLI enables it).
  std::uint32_t idle_timeout_ms = 0;
  /// Cap on unparsed buffered input per connection (bytes before a
  /// '\n'). A connection exceeding it is answered "error: timeout" and
  /// closed — dribbling bytes forever cannot pin memory. 0 disables
  /// (the per-line max_line_bytes still applies).
  std::size_t max_buffered_bytes = 0;
  /// Time source for idle sweeps, the shutdown drain deadline, and (when
  /// metrics are on) request/stage latency timing. nullptr = the
  /// process-wide SystemClock; tests inject a ManualClock to drive
  /// timeouts without real sleeps. Must outlive the server.
  const Clock* clock = nullptr;
  /// Metric registry (DESIGN.md §16). When set, the server registers its
  /// connection/byte/queue instruments there and installs it on the
  /// dispatcher (per-verb histograms, stage traces, the `metrics` verb).
  /// nullptr in catalog mode falls back to the catalog's registry;
  /// nullptr in single-index mode falls back to a registry the server
  /// owns, so `metrics` and the telemetry counters work in both modes
  /// out of the box. Must outlive the server when set.
  obs::MetricRegistry* metrics = nullptr;
  /// Requests slower than this many ms hit the slow-query log (0 = off).
  /// Only effective when a registry is resolved.
  std::uint64_t slow_query_threshold_ms = 0;
  /// Receives slow-query lines; null routes to the event log when one
  /// is installed, else ISLABEL_LOG(kWarn).
  std::function<void(const std::string&)> slow_query_sink;
  /// Flight recorder behind the `tracez` verb (DESIGN.md §17). Null
  /// answers tracez with NotSupported. Must outlive the server.
  obs::FlightRecorder* flight_recorder = nullptr;
  /// Structured event log (server lifecycle + slow-query events,
  /// DESIGN.md §17). Null disables. Must outlive the server.
  obs::EventLog* event_log = nullptr;
};

struct TcpServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  /// Connections shed in the accept loop under fd exhaustion.
  std::uint64_t accept_shed = 0;
  /// Connections closed by the idle-timeout / input-cap guard.
  std::uint64_t idle_closed = 0;
};

class TcpServer {
 public:
  /// Single-index server. `index` must outlive the server. `cache`
  /// (nullable) is only used to fill the cache fields of `stats`
  /// responses — install it on the index with set_distance_cache to
  /// actually cache answers.
  TcpServer(ISLabelIndex* index, QueryCache* cache,
            const TcpServerOptions& options);

  /// Catalog server: hosts every dataset in `catalog` (which must
  /// outlive the server). Connections start on `default_dataset` and
  /// switch with the `use` verb; `reload NAME` hot-swaps a dataset while
  /// the other workers keep serving. `stats` responses carry per-dataset
  /// counters and aggregate the per-dataset caches.
  TcpServer(Catalog* catalog, const std::string& default_dataset,
            const TcpServerOptions& options);

  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the event loop + workers.
  Status Start();

  /// Requests shutdown. Async-signal-safe, callable from any thread,
  /// idempotent. Returns immediately; use Wait() to block until drained.
  void Stop();

  /// Blocks until the event loop and all workers have exited.
  void Wait();

  /// The bound port (resolves port 0 after Start()).
  std::uint16_t port() const { return bound_port_; }

  /// Installs replication verb handlers on the dispatcher. Call before
  /// Start(); `hooks` must outlive the server.
  void SetReplicationHooks(ReplicationHooks* hooks) {
    dispatcher_.set_replication_hooks(hooks);
  }

  TcpServerStats stats() const;
  /// The counters behind a `stats` response, cache fields included.
  ServeStats ServeStatsSnapshot() const;

  /// The resolved metric registry: options, the catalog's, or (in
  /// single-index mode) the server-owned default. Never null after
  /// construction.
  obs::MetricRegistry* metrics() const { return dispatcher_.metrics(); }

 private:
  struct Connection;

  /// Resolves the registry (options > catalog > none) and registers the
  /// server-level instruments + dispatcher metrics. Constructor-time.
  void InitMetrics();

  void EventLoop();
  void WorkerLoop();
  void AcceptAll();
  /// Frees one fd under EMFILE/ENFILE: closes the oldest idle
  /// connection, or accepts-and-drops via the reserve fd. True if the
  /// accept loop should retry.
  bool ShedForAccept();
  /// Closes connections idle past options_.idle_timeout_ms.
  void SweepIdle();
  /// Queues "error: timeout" on `conn` and closes it once flushed.
  void TimeoutConn(const std::shared_ptr<Connection>& conn);
  void HandleWake();
  void BeginShutdown();
  void HandleRead(const std::shared_ptr<Connection>& conn);
  void ParseLines(const std::shared_ptr<Connection>& conn);
  void Flush(const std::shared_ptr<Connection>& conn);
  void CloseConn(const std::shared_ptr<Connection>& conn);
  void ProcessConnection(const std::shared_ptr<Connection>& conn);
  void NotifyFlush(std::shared_ptr<Connection> conn);
  void UpdateEpollOut(const std::shared_ptr<Connection>& conn, bool want);

  ISLabelIndex* index_ = nullptr;  // single-index mode only
  QueryCache* cache_ = nullptr;    // single-index mode only
  TcpServerOptions options_;
  const Clock* clock_ = nullptr;  // never null after construction
  /// Fallback registry for single-index servers with no injected one,
  /// so `metrics` and the telemetry counters work in both modes.
  obs::MetricRegistry own_registry_;
  RequestDispatcher dispatcher_;
  bool stop_event_logged_ = false;  // Wait()-caller private

  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;
  /// Spare fd (open on /dev/null) released under EMFILE so the stuck
  /// accept can complete and the newcomer be closed instead of the
  /// listen queue wedging. Loop-thread private after Start().
  int reserve_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  bool started_ = false;
  bool signal_handlers_installed_ = false;

  std::thread loop_thread_;
  std::vector<std::thread> workers_;

  // Loop-thread-private connection table (fd → connection).
  std::unordered_map<int, std::shared_ptr<Connection>> conns_;
  bool stopping_ = false;  // loop-thread private

  std::atomic<bool> stop_requested_{false};

  // Worker queue: connections with pending requests.
  Mutex work_mu_;
  CondVar work_cv_;
  std::deque<std::shared_ptr<Connection>> work_queue_ GUARDED_BY(work_mu_);
  bool workers_shutdown_ GUARDED_BY(work_mu_) = false;

  // Flush queue: connections with fresh output, drained by the loop.
  Mutex flush_mu_;
  std::deque<std::shared_ptr<Connection>> flush_queue_ GUARDED_BY(flush_mu_);

  // One counter system (DESIGN.md §16): private instruments unless
  // InitMetrics re-points them at registry series. Either way the update
  // sites are identical relaxed atomics, so the loop/worker threads never
  // branch on "is telemetry on".
  obs::Counter own_accepted_, own_bytes_in_, own_bytes_out_;
  obs::Counter own_accept_shed_, own_idle_closed_;
  obs::Gauge own_open_, own_queue_depth_;
  obs::Counter* accepted_ = &own_accepted_;
  obs::Gauge* open_ = &own_open_;
  obs::Counter* bytes_in_ = &own_bytes_in_;
  obs::Counter* bytes_out_ = &own_bytes_out_;
  obs::Counter* accept_shed_ = &own_accept_shed_;
  obs::Counter* idle_closed_ = &own_idle_closed_;
  obs::Gauge* queue_depth_ = &own_queue_depth_;
};

}  // namespace server
}  // namespace islabel

#endif  // ISLABEL_SERVER_TCP_SERVER_H_
