// QueryCache: sharded LRU distance cache with generation invalidation.
//
// Point-to-point distance workloads are heavily skewed (popular landmark
// pairs repeat), so a small result cache in front of the label engine
// amortizes even IS-LABEL's microsecond queries. The cache is keyed on
// the canonicalized pair (min(s,t), max(s,t)) — the index is undirected,
// so (s, t) and (t, s) share one entry — and is mutex-striped into
// power-of-two shards so concurrent server workers rarely contend.
//
// Staleness: instead of walking every shard on an index update, the
// cache carries a generation counter. Entries remember the generation
// they were inserted under; Lookup rejects (and lazily erases) entries
// from older generations. ISLabelIndex bumps the generation on every
// pool reset (InsertVertex / DeleteVertex / Build / Load), so a stale
// distance is never served across an update — cached answers are always
// bit-identical to what the engine would currently compute, including
// the paper's §8.3 lazy-delete semantics where the *engine's* answer may
// itself route through a deleted below-core vertex.

#ifndef ISLABEL_SERVER_QUERY_CACHE_H_
#define ISLABEL_SERVER_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/distance_cache.h"
#include "obs/metrics.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace islabel {
namespace server {

struct QueryCacheOptions {
  /// Total capacity across all shards. The per-entry cost is accounted
  /// with kBytesPerEntry (map node + LRU node + bookkeeping).
  std::size_t capacity_bytes = 64u << 20;
  /// Rounded up to a power of two; 0 picks a default (16).
  std::size_t num_shards = 16;
  /// When set, the per-shard hit/miss/eviction/invalidation counters and
  /// the entries/generation gauges register here (DESIGN.md §16); when
  /// null the cache counts into private instruments so GetStats always
  /// works. The registry must outlive the cache.
  obs::MetricRegistry* metrics = nullptr;
  /// `dataset` label value for the registered series; empty omits it
  /// (single-index serving).
  std::string metrics_dataset;
};

struct QueryCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t entries = 0;
  std::uint64_t evictions = 0;
  std::uint64_t gen_invalidations = 0;
  std::uint64_t generation = 0;
  std::uint64_t capacity_entries = 0;
};

class QueryCache : public DistanceCache {
 public:
  /// Approximate memory cost of one cached pair: unordered_map node
  /// (~48 B) + std::list node (~40 B) on a 64-bit libstdc++.
  static constexpr std::size_t kBytesPerEntry = 88;

  explicit QueryCache(const QueryCacheOptions& options = {});

  QueryCache(const QueryCache&) = delete;
  QueryCache& operator=(const QueryCache&) = delete;

  // DistanceCache interface; all thread-safe.
  std::uint64_t generation() const override {
    return generation_.load(std::memory_order_acquire);
  }
  bool Lookup(VertexId s, VertexId t, Distance* out) override;
  void Insert(VertexId s, VertexId t, Distance d,
              std::uint64_t generation) override;
  void BumpGeneration() override;

  /// Convenience for tests/tools: insert under the current generation.
  void Insert(VertexId s, VertexId t, Distance d) {
    Insert(s, t, d, generation());
  }

  /// Aggregated over all shards (hits/misses are exact, entries is a
  /// point-in-time sum).
  QueryCacheStats GetStats() const;

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t capacity_entries() const { return capacity_entries_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    Distance dist = 0;
    std::uint64_t generation = 0;
  };

  /// One mutex-striped LRU: list front = most recent; map values point
  /// into the list. Counters are obs::Counter (atomic) — registered as
  /// per-shard registry series when QueryCacheOptions::metrics is set,
  /// private otherwise; the pointers alias `own_*` in the private case.
  struct Shard {
    mutable Mutex mu;
    std::list<Entry> lru GUARDED_BY(mu);
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map
        GUARDED_BY(mu);
    obs::Counter own_hits, own_misses, own_evictions, own_invalidations;
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* gen_invalidations = nullptr;
  };

  static std::uint64_t Key(VertexId s, VertexId t) {
    if (s > t) std::swap(s, t);
    return (static_cast<std::uint64_t>(s) << 32) | t;
  }
  Shard& ShardFor(std::uint64_t key) {
    // Mix the high half in so pairs sharing a low endpoint spread out.
    const std::uint64_t h = key ^ (key >> 32) ^ (key >> 17);
    return shards_[h & shard_mask_];
  }

  std::vector<Shard> shards_;
  std::size_t shard_mask_ = 0;
  std::size_t per_shard_capacity_ = 0;
  std::size_t capacity_entries_ = 0;
  std::atomic<std::uint64_t> generation_{0};
  // Cache-wide gauges, null without a registry (entries via Add deltas
  // under the shard locks, generation via Set).
  obs::Gauge* entries_gauge_ = nullptr;
  obs::Gauge* generation_gauge_ = nullptr;
};

}  // namespace server
}  // namespace islabel

#endif  // ISLABEL_SERVER_QUERY_CACHE_H_
