// Wire protocol of the serving layer (stdin serve loop and TCP server).
//
// The protocol is line-oriented text, one request per '\n'-terminated
// line, one response line per request:
//
//   S T              exact distance         → "D" | "unreachable"
//   one S T1 [T2...] one-to-many            → one value per target, spaces
//   path S T         shortest path          → "D: v0 v1 ... vk"
//   stats            serving counters       → "stats: k=v k=v ..."
//   use NAME         select catalog dataset → "ok: using NAME"
//   datasets         list catalog datasets  → "datasets: name:state:..."
//   reload NAME      hot-swap reload        → "ok: reloaded NAME"
//   version          dataset generations    → "version: name:gen ..."
//   heartbeat        liveness probe         → "pong"
//   replicate NAME GEN   snapshot pull      → framed snapshot stream
//   metrics          Prometheus exposition  → text format, "# EOF" last
//   tracez [slow|errors|id HEX] [N]         → flight-recorder dump,
//                                             "# EOF" last
//   quit | exit      close the session      → (no response)
//   # comment / blank line                  → (no response)
//
// Any request may carry one optional trailing `tid=<hex>` token (1-16
// hex digits, nonzero): the distributed trace id minted by the client
// (DESIGN.md §17). It is stripped before the per-verb token counts are
// checked — `1 2 tid=a3`, `version tid=a3` and `replicate g1 0 tid=a3`
// are all well-formed — and lands in Request::trace_id. A malformed
// tid token is a usage error like any other grammar violation.
//
// The catalog verbs (use / datasets / reload) are only served by
// catalog-mode servers (multi-dataset hosting); a single-index server
// answers them with an error. Dataset names are restricted to
// [A-Za-z0-9._-] so responses stay single-line and unambiguous.
//
// The replication verbs (version / heartbeat / replicate) are answered
// only when the server has replication hooks installed (see
// server/dispatcher.h); everyone else reports NotSupported. Two verbs
// answer multiple lines: `replicate` streams a framed, checksummed
// snapshot (see repl/primary.h for the framing), and `metrics` returns
// Prometheus text format whose final line is exactly "# EOF" — readers
// consume until that terminator (DESIGN.md §16).
//
// Errors are a single line starting with "error: ". Parsing is strict:
// ids must be pure decimal uint32 tokens and a request must carry exactly
// its grammar's token count — trailing garbage ("1 2 junk") is rejected
// with a usage error instead of being silently ignored.
//
// Both front ends parse with ParseRequest and format with the Format*
// helpers below, so the stdin loop and the TCP server cannot drift.

#ifndef ISLABEL_SERVER_PROTOCOL_H_
#define ISLABEL_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph_defs.h"
#include "util/status.h"

namespace islabel {
namespace server {

enum class RequestKind : std::uint8_t {
  kNone = 0,    // blank line or comment: no response
  kDistance,    // "S T"
  kOneToMany,   // "one S T1 [T2 ...]"
  kPath,        // "path S T"
  kStats,       // "stats"
  kUse,         // "use NAME" (catalog mode)
  kDatasets,    // "datasets" (catalog mode)
  kReload,      // "reload NAME" (catalog mode)
  kVersion,     // "version" (replication)
  kHeartbeat,   // "heartbeat" (replication)
  kReplicate,   // "replicate NAME GEN" (replication)
  kMetrics,     // "metrics" (Prometheus exposition, multi-line)
  kTracez,      // "tracez [slow|errors|id HEX] [N]" (flight recorder)
  kQuit,        // "quit" / "exit"
  kInvalid,     // malformed; `error` holds the full response line
};

/// One parsed request line.
struct Request {
  RequestKind kind = RequestKind::kNone;
  VertexId s = 0;
  VertexId t = 0;
  std::vector<VertexId> targets;  // kOneToMany only
  std::string name;               // kUse / kReload / kReplicate: dataset;
                                  // kTracez: mode (recent|slow|errors|id)
  std::uint64_t gen = 0;          // kReplicate only: caller's generation
  std::string error;              // kInvalid only: "error: ..." line
  /// Distributed trace id from the optional trailing `tid=<hex>` token;
  /// for `tracez id HEX` the id to look up. 0 = absent.
  std::uint64_t trace_id = 0;
  /// kTracez only: the record cap N (0 = the server default).
  std::uint64_t limit = 0;
  /// Parse latency measured by the front end (µs); flows into the
  /// request's QueryTrace. 0 when the front end is not timing.
  std::uint32_t parse_us = 0;
};

/// Parses one request line (no trailing '\n'). Never fails — malformed
/// input yields kInvalid with the error response prefilled.
Request ParseRequest(std::string_view line);

/// True iff `name` is a legal dataset name on the wire: non-empty,
/// [A-Za-z0-9._-] only. The CLI validates --dataset flags against the
/// same grammar so every hosted dataset is addressable by `use`.
bool IsValidDatasetName(std::string_view name);

/// Per-dataset counters appended to catalog-mode `stats` responses and
/// listed by the `datasets` verb.
struct DatasetCounters {
  std::string name;
  std::string state;  // "loading" | "ready" | "failed"
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t reloads = 0;
  /// Monotonic data version (Catalog generation); what `replicate`
  /// compares. 0 while the dataset has never held data.
  std::uint64_t generation = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  std::uint32_t parts = 0;
  std::uint64_t vertices = 0;
  /// Per-part backend summary ("p0=islabel/123,p1=ch/45,..."), colon- and
  /// space-free by construction so it stays one wire token. Empty until
  /// the dataset finishes loading.
  std::string backends;
  /// Aggregate index size across parts: label entries (IS-LABEL) or
  /// up-edges (CH), and the bytes they occupy.
  std::uint64_t index_entries = 0;
  std::uint64_t index_bytes = 0;
};

/// Serving counters reported by the `stats` request. The stdin loop
/// reports connections == 0; the TCP server fills all fields. In catalog
/// mode the cache_* fields aggregate over every dataset and `datasets`
/// carries the per-dataset split (empty in single-index mode).
struct ServeStats {
  std::uint64_t connections_open = 0;
  std::uint64_t connections_accepted = 0;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_entries = 0;
  std::uint64_t cache_generation = 0;
  /// Connections shed because the process ran out of file descriptors
  /// (EMFILE/ENFILE in the accept loop).
  std::uint64_t accept_shed = 0;
  /// Connections closed by the idle-timeout sweep (slowloris guard).
  std::uint64_t idle_closed = 0;
  std::vector<DatasetCounters> datasets;
  /// Free-form k=v pairs appended to the stats line — how the
  /// replication layer reports lag/heartbeat counters without the
  /// protocol knowing replication exists.
  std::vector<std::pair<std::string, std::uint64_t>> extra;
};

// ---- Response formatting (no trailing '\n') ----

std::string FormatDistance(Distance d);
std::string FormatDistances(const std::vector<Distance>& dists);
std::string FormatPath(Distance d, const std::vector<VertexId>& path);
std::string FormatError(const Status& st);
std::string FormatStats(const ServeStats& stats);
/// "datasets: name:state:parts:vertices:backends ..." (one token per
/// dataset; `backends` is the comma-joined per-part summary, "-" until
/// the dataset is loaded).
std::string FormatDatasets(const std::vector<DatasetCounters>& datasets);

}  // namespace server
}  // namespace islabel

#endif  // ISLABEL_SERVER_PROTOCOL_H_
