// Degree statistics, used to print the Table 2 dataset summary.

#ifndef ISLABEL_GRAPH_STATS_H_
#define ISLABEL_GRAPH_STATS_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace islabel {

/// The columns of the paper's Table 2.
struct GraphStats {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_edges = 0;
  double avg_degree = 0.0;
  std::uint32_t max_degree = 0;
  std::uint64_t disk_size_bytes = 0;  // text edge-list size
};

/// Scans the graph once and fills a GraphStats.
GraphStats ComputeStats(const Graph& g);

/// Degree-skew classifier behind `--backend auto`: true for bounded-degree,
/// hub-free graphs (road networks, grids, meshes) where contraction
/// hierarchies stay sparse; false for skewed/scale-free degree profiles
/// (social/web graphs) where contraction fills in around hubs and
/// IS-LABEL's independent-set hierarchy wins. The rule is deliberately
/// simple and cheap — max degree small in absolute terms AND small
/// relative to the average (no hubs).
bool LooksRoadLike(const GraphStats& stats);

/// "164.7M" / "22.2K"-style compact count, matching the paper's table style.
std::string HumanCount(std::uint64_t n);

/// "5.6 GB" / "200 MB"-style byte size.
std::string HumanBytes(std::uint64_t bytes);

}  // namespace islabel

#endif  // ISLABEL_GRAPH_STATS_H_
