// Immutable CSR (compressed sparse row) weighted undirected graph.
//
// This is the in-memory adjacency-list representation the paper assumes
// (§2): vertices are dense ids, each adjacency list is sorted by neighbor
// id, and each undirected edge {u,v} is stored in both lists. The optional
// per-edge `via` array carries augmenting-edge provenance for shortest-path
// reconstruction (§8.1); plain input graphs do not allocate it.

#ifndef ISLABEL_GRAPH_GRAPH_H_
#define ISLABEL_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.h"
#include "graph/graph_defs.h"

namespace islabel {

/// Immutable weighted undirected graph in CSR form.
class Graph {
 public:
  Graph() = default;

  /// Builds a CSR graph from an edge list. The list is normalized
  /// (self-loops dropped, parallel edges merged with min weight) first.
  /// `keep_vias` controls whether the via array is materialized.
  static Graph FromEdgeList(EdgeList edges, bool keep_vias = false);

  VertexId NumVertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  /// Number of undirected edges |E|.
  std::uint64_t NumEdges() const { return targets_.size() / 2; }
  /// |G| = |V| + |E| as defined in §2; the hierarchy termination criterion
  /// compares these sizes across levels.
  std::uint64_t SizeVE() const { return NumVertices() + NumEdges(); }

  std::uint32_t Degree(VertexId v) const {
    return static_cast<std::uint32_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Neighbor ids of v, sorted ascending.
  std::span<const VertexId> Neighbors(VertexId v) const {
    return {targets_.data() + offsets_[v],
            targets_.data() + offsets_[v + 1]};
  }
  /// Weights aligned with Neighbors(v).
  std::span<const Weight> NeighborWeights(VertexId v) const {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }
  /// Via vertices aligned with Neighbors(v); only valid if has_vias().
  std::span<const VertexId> NeighborVias(VertexId v) const {
    return {vias_.data() + offsets_[v], vias_.data() + offsets_[v + 1]};
  }
  bool has_vias() const { return !vias_.empty(); }

  /// True iff the edge {u,v} exists (binary search, O(log deg)).
  bool HasEdge(VertexId u, VertexId v) const;
  /// Weight of {u,v}, or kInfDistance if absent.
  Distance EdgeWeight(VertexId u, VertexId v) const;

  /// Reconstructs the (normalized) edge list; each undirected edge once.
  EdgeList ToEdgeList() const;

  /// Approximate heap footprint, used to report index/graph sizes.
  std::uint64_t MemoryBytes() const {
    return offsets_.size() * sizeof(std::uint64_t) +
           targets_.size() * sizeof(VertexId) +
           weights_.size() * sizeof(Weight) + vias_.size() * sizeof(VertexId);
  }

  /// Size of the graph in the plain text edge-list form used to report the
  /// "disk size" column of Table 2 (estimated, without materializing it).
  std::uint64_t TextDiskSizeBytes() const;

 private:
  std::vector<std::uint64_t> offsets_;  // size NumVertices()+1
  std::vector<VertexId> targets_;       // size 2|E|
  std::vector<Weight> weights_;         // size 2|E|
  std::vector<VertexId> vias_;          // size 2|E| or 0
};

}  // namespace islabel

#endif  // ISLABEL_GRAPH_GRAPH_H_
