// Synthetic graph generators.
//
// The paper evaluates on five real graphs (BTC, Web, as-Skitter, wiki-Talk,
// web-Google) that are not redistributable here, so the benchmark harness
// generates structural stand-ins with matching average degree and a
// heavy-tailed degree distribution (see DESIGN.md §3). The generators are
// also the workload source for property-based tests.
//
// All generators are deterministic given the seed.

#ifndef ISLABEL_GRAPH_GENERATORS_H_
#define ISLABEL_GRAPH_GENERATORS_H_

#include <cstdint>

#include "graph/edge_list.h"
#include "util/random.h"

namespace islabel {

/// G(n, m) Erdős–Rényi: m distinct uniform random edges.
EdgeList GenerateErdosRenyi(VertexId n, std::uint64_t m, Rng* rng);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `edges_per_vertex` existing vertices chosen proportionally to degree.
/// Produces power-law degree distributions (exponent ≈ 3) — the shape of
/// as-Skitter and web-Google.
EdgeList GenerateBarabasiAlbert(VertexId n, std::uint32_t edges_per_vertex,
                                Rng* rng);

/// R-MAT / Kronecker-style recursive generator: 2^scale vertices, m edges
/// sampled with quadrant probabilities (a, b, c, implicit d = 1-a-b-c).
/// Skewed parameters (a >> d) yield extreme hubs — the shape of BTC and
/// wiki-Talk.
EdgeList GenerateRMat(std::uint32_t scale, std::uint64_t m, double a, double b,
                      double c, Rng* rng);

/// Watts–Strogatz small world: ring lattice with k neighbors per side,
/// each edge rewired with probability beta.
EdgeList GenerateWattsStrogatz(VertexId n, std::uint32_t k, double beta,
                               Rng* rng);

/// 2D grid (rows × cols), 4-connected — a road-network-like topology.
EdgeList GenerateGrid2D(std::uint32_t rows, std::uint32_t cols);

/// Clique-community graph: disjoint `clique_size`-cliques (web-host link
/// blocks) joined by sparse preferential inter-clique edges (probability
/// `ext_prob` per vertex, hub-biased), plus an optional chain periphery
/// (`chain_frac` of the vertices in chains of geometric mean length
/// `mean_chain_len` hanging off random clique vertices).
///
/// This is the structural stand-in for clustered web graphs: removing an
/// independent-set vertex inside a clique deletes deg(v) edges and adds
/// none (its neighbors are already pairwise adjacent), so the hierarchy
/// construction keeps shrinking for ~clique_size levels — the deep-k
/// regime the paper observes on its Web dataset.
EdgeList GenerateCliqueCommunity(VertexId n, VertexId clique_size,
                                 double ext_prob, double chain_frac,
                                 double mean_chain_len, Rng* rng);

/// Simple deterministic shapes used heavily by unit tests.
EdgeList GeneratePath(VertexId n);
EdgeList GenerateCycle(VertexId n);
EdgeList GenerateStar(VertexId n);  // vertex 0 is the hub
EdgeList GenerateClique(VertexId n);
EdgeList GenerateCompleteBinaryTree(VertexId n);

/// Overwrites every weight with a uniform draw from [lo, hi].
void AssignUniformWeights(EdgeList* edges, Weight lo, Weight hi, Rng* rng);

}  // namespace islabel

#endif  // ISLABEL_GRAPH_GENERATORS_H_
