#include "graph/stats.h"

#include <algorithm>
#include <cstdio>

namespace islabel {

GraphStats ComputeStats(const Graph& g) {
  GraphStats s;
  s.num_vertices = g.NumVertices();
  s.num_edges = g.NumEdges();
  s.avg_degree =
      s.num_vertices == 0
          ? 0.0
          : 2.0 * static_cast<double>(s.num_edges) /
                static_cast<double>(s.num_vertices);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    s.max_degree = std::max(s.max_degree, g.Degree(v));
  }
  s.disk_size_bytes = g.TextDiskSizeBytes();
  return s;
}

bool LooksRoadLike(const GraphStats& stats) {
  if (stats.num_vertices == 0) return true;
  // Hubs are what kill contraction: a vertex of degree d can force
  // d*(d-1)/2 shortcuts when contracted. "Road-like" therefore means the
  // worst vertex is small both absolutely (<= 64 — road junctions and
  // grid cells are single digits) and relative to the mean (<= 8x — a
  // scale-free tail puts hubs orders of magnitude above the average).
  const double avg = std::max(stats.avg_degree, 1.0);
  return stats.max_degree <= 64 &&
         static_cast<double>(stats.max_degree) <= 8.0 * avg;
}

std::string HumanCount(std::uint64_t n) {
  char buf[32];
  if (n >= 1000000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fB", static_cast<double>(n) / 1e9);
  } else if (n >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 1000ULL) {
    std::snprintf(buf, sizeof(buf), "%.1fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

std::string HumanBytes(std::uint64_t bytes) {
  char buf[32];
  const double b = static_cast<double>(bytes);
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.1f GB", b / static_cast<double>(1ULL << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", b / static_cast<double>(1ULL << 20));
  } else if (bytes >= (1ULL << 10)) {
    std::snprintf(buf, sizeof(buf), "%.1f KB", b / static_cast<double>(1ULL << 10));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace islabel
