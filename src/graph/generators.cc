#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <cassert>
#include <unordered_set>
#include <vector>

namespace islabel {

EdgeList GenerateErdosRenyi(VertexId n, std::uint64_t m, Rng* rng) {
  EdgeList edges(n);
  if (n < 2) return edges;
  // Cap m at the number of distinct pairs to guarantee termination.
  const std::uint64_t max_m =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;
  m = std::min(m, max_m);
  edges.Reserve(m);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    VertexId u = static_cast<VertexId>(rng->Uniform(n));
    VertexId v = static_cast<VertexId>(rng->Uniform(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | v;
    if (seen.insert(key).second) edges.Add(u, v, 1);
  }
  return edges;
}

EdgeList GenerateBarabasiAlbert(VertexId n, std::uint32_t edges_per_vertex,
                                Rng* rng) {
  EdgeList edges(n);
  if (n == 0) return edges;
  const std::uint32_t m0 = std::max<std::uint32_t>(edges_per_vertex, 1);
  // `targets` holds one entry per edge endpoint; sampling uniformly from it
  // is sampling proportional to degree.
  std::vector<VertexId> endpoint_pool;
  endpoint_pool.reserve(static_cast<std::size_t>(n) * 2 * m0);

  // Seed: a small path among the first min(n, m0+1) vertices.
  VertexId seed = std::min<VertexId>(n, m0 + 1);
  for (VertexId v = 1; v < seed; ++v) {
    edges.Add(v - 1, v, 1);
    endpoint_pool.push_back(v - 1);
    endpoint_pool.push_back(v);
  }

  std::vector<VertexId> picks;
  for (VertexId v = seed; v < n; ++v) {
    picks.clear();
    // Sample m0 distinct attachment points proportional to degree.
    std::uint32_t attempts = 0;
    while (picks.size() < m0 && attempts < 16 * m0) {
      ++attempts;
      VertexId t =
          endpoint_pool[rng->Uniform(endpoint_pool.size())];
      if (t == v) continue;
      if (std::find(picks.begin(), picks.end(), t) != picks.end()) continue;
      picks.push_back(t);
    }
    for (VertexId t : picks) {
      edges.Add(v, t, 1);
      endpoint_pool.push_back(v);
      endpoint_pool.push_back(t);
    }
  }
  return edges;
}

EdgeList GenerateRMat(std::uint32_t scale, std::uint64_t m, double a, double b,
                      double c, Rng* rng) {
  assert(a + b + c <= 1.0 + 1e-9);
  const VertexId n = static_cast<VertexId>(1ULL << scale);
  EdgeList edges(n);
  edges.Reserve(m);
  // R-MAT drops duplicate/self-loop samples at Normalize() time, so sample
  // some extra to approximately hit m distinct edges.
  for (std::uint64_t i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      // Add per-level noise so the quadrant probabilities vary slightly,
      // which avoids the artificial structure of exact Kronecker powers.
      double r = rng->NextDouble();
      if (r < a) {
        // top-left: no bits set
      } else if (r < a + b) {
        v |= (1u << bit);
      } else if (r < a + b + c) {
        u |= (1u << bit);
      } else {
        u |= (1u << bit);
        v |= (1u << bit);
      }
    }
    if (u == v) continue;
    edges.Add(u, v, 1);
  }
  return edges;
}

EdgeList GenerateWattsStrogatz(VertexId n, std::uint32_t k, double beta,
                               Rng* rng) {
  EdgeList edges(n);
  if (n < 2 || k == 0) return edges;
  for (VertexId u = 0; u < n; ++u) {
    for (std::uint32_t j = 1; j <= k; ++j) {
      VertexId v = static_cast<VertexId>((u + j) % n);
      if (rng->Bernoulli(beta)) {
        // Rewire to a uniform random endpoint (self-loops / duplicates are
        // cleaned up by Normalize()).
        v = static_cast<VertexId>(rng->Uniform(n));
      }
      edges.Add(u, v, 1);
    }
  }
  return edges;
}

EdgeList GenerateGrid2D(std::uint32_t rows, std::uint32_t cols) {
  EdgeList edges(static_cast<VertexId>(rows) * cols);
  auto id = [cols](std::uint32_t r, std::uint32_t c) {
    return static_cast<VertexId>(r * cols + c);
  };
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.Add(id(r, c), id(r, c + 1), 1);
      if (r + 1 < rows) edges.Add(id(r, c), id(r + 1, c), 1);
    }
  }
  return edges;
}

EdgeList GenerateCliqueCommunity(VertexId n, VertexId clique_size,
                                 double ext_prob, double chain_frac,
                                 double mean_chain_len, Rng* rng) {
  assert(clique_size >= 2);
  EdgeList edges(n);
  const VertexId clique_verts =
      static_cast<VertexId>(static_cast<double>(n) * (1.0 - chain_frac));
  const VertexId num_cliques = clique_verts / clique_size;
  for (VertexId c = 0; c < num_cliques; ++c) {
    const VertexId base = c * clique_size;
    for (VertexId i = 0; i < clique_size; ++i) {
      for (VertexId j = i + 1; j < clique_size; ++j) {
        edges.Add(base + i, base + j, 1);
      }
    }
  }
  const VertexId used = num_cliques * clique_size;
  if (used == 0) return edges;
  // Sparse inter-clique links, biased toward low ids (hub communities).
  for (VertexId v = 0; v < used; ++v) {
    if (!rng->Bernoulli(ext_prob)) continue;
    const double u = rng->NextDouble();
    const VertexId t = static_cast<VertexId>(u * u * u * used);
    if (t != v) edges.Add(v, t, 1);
  }
  // Chain periphery (URL-hierarchy tendrils).
  VertexId next = used;
  while (next < n) {
    int len = 1 + static_cast<int>(-mean_chain_len *
                                   std::log(1.0 - rng->NextDouble()));
    VertexId attach = static_cast<VertexId>(rng->Uniform(used));
    for (int i = 0; i < len && next < n; ++i) {
      edges.Add(attach, next, 1);
      attach = next++;
    }
  }
  return edges;
}

EdgeList GeneratePath(VertexId n) {
  EdgeList edges(n);
  for (VertexId v = 1; v < n; ++v) edges.Add(v - 1, v, 1);
  return edges;
}

EdgeList GenerateCycle(VertexId n) {
  EdgeList edges = GeneratePath(n);
  if (n >= 3) edges.Add(n - 1, 0, 1);
  return edges;
}

EdgeList GenerateStar(VertexId n) {
  EdgeList edges(n);
  for (VertexId v = 1; v < n; ++v) edges.Add(0, v, 1);
  return edges;
}

EdgeList GenerateClique(VertexId n) {
  EdgeList edges(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) edges.Add(u, v, 1);
  }
  return edges;
}

EdgeList GenerateCompleteBinaryTree(VertexId n) {
  EdgeList edges(n);
  for (VertexId v = 1; v < n; ++v) edges.Add((v - 1) / 2, v, 1);
  return edges;
}

void AssignUniformWeights(EdgeList* edges, Weight lo, Weight hi, Rng* rng) {
  assert(lo >= 1 && lo <= hi);
  for (Edge& e : edges->edges()) {
    e.w = static_cast<Weight>(
        rng->UniformInt(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(hi)));
  }
}

}  // namespace islabel
