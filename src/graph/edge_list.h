// EdgeList: the mutable, order-insensitive edge container that graph
// generators and readers produce and from which CSR graphs are built.

#ifndef ISLABEL_GRAPH_EDGE_LIST_H_
#define ISLABEL_GRAPH_EDGE_LIST_H_

#include <cstdint>
#include <vector>

#include "graph/graph_defs.h"

namespace islabel {

/// A bag of undirected edges plus a vertex-count hint. Edges may appear in
/// any orientation and may contain duplicates until Normalize() is called.
class EdgeList {
 public:
  EdgeList() = default;
  explicit EdgeList(VertexId num_vertices) : num_vertices_(num_vertices) {}

  /// Adds an undirected edge; orientation is irrelevant. Grows the vertex
  /// count to cover the endpoints.
  void Add(VertexId u, VertexId v, Weight w = 1,
           VertexId via = kInvalidVertex) {
    edges_.emplace_back(u, v, w, via);
    if (u >= num_vertices_) num_vertices_ = u + 1;
    if (v >= num_vertices_) num_vertices_ = v + 1;
  }

  /// Canonicalizes the list in place:
  ///  - self-loops are dropped (the paper's graphs are simple),
  ///  - each edge is oriented u < v,
  ///  - duplicates are merged keeping the minimum weight (and that edge's
  ///    via vertex), matching the weight rule for augmenting edges.
  void Normalize();

  /// Ensures the vertex-id space is at least n.
  void EnsureVertices(VertexId n) {
    if (n > num_vertices_) num_vertices_ = n;
  }

  VertexId num_vertices() const { return num_vertices_; }
  std::size_t size() const { return edges_.size(); }
  bool empty() const { return edges_.empty(); }

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>& edges() { return edges_; }

  void Reserve(std::size_t n) { edges_.reserve(n); }
  void Clear() {
    edges_.clear();
    num_vertices_ = 0;
  }

 private:
  std::vector<Edge> edges_;
  VertexId num_vertices_ = 0;
};

}  // namespace islabel

#endif  // ISLABEL_GRAPH_EDGE_LIST_H_
