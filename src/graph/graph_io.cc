#include "graph/graph_io.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>

#include "util/varint.h"

namespace islabel {

namespace {

constexpr std::uint32_t kGraphMagic = 0x49534C47;  // "ISLG"
constexpr std::uint32_t kGraphVersion = 1;

/// True iff the fgets buffer holds a complete line (or the file ended);
/// false means the physical line was longer than the buffer.
bool LineComplete(const char* line, std::FILE* f) {
  return std::strchr(line, '\n') != nullptr || std::feof(f) != 0;
}

/// Consumes the rest of an over-long physical line (used for comments,
/// which may legally exceed the parse buffer).
void DrainLine(std::FILE* f) {
  int c;
  while ((c = std::fgetc(f)) != EOF && c != '\n') {
  }
}

// RAII stdio wrapper; keeps the I/O layer exception-free.
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::FILE* get() const { return f_; }

 private:
  std::FILE* f_;
};

}  // namespace

Status WriteEdgeListText(const Graph& g, const std::string& path) {
  File f(path, "w");
  if (!f.ok()) {
    return Status::IOError("cannot open for write: " + path + ": " +
                           std::strerror(errno));
  }
  std::fprintf(f.get(), "# islabel edge list: %u vertices, %llu edges\n",
               g.NumVertices(),
               static_cast<unsigned long long>(g.NumEdges()));
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        std::fprintf(f.get(), "%u %u %u\n", u, nbrs[i], ws[i]);
      }
    }
  }
  if (std::ferror(f.get())) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadEdgeListText(const std::string& path) {
  File f(path, "r");
  if (!f.ok()) {
    return Status::IOError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  EdgeList edges;
  char line[256];
  std::uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    // '\r' covers the blank line of a CR-LF file; data lines need no
    // stripping because sscanf stops at the first non-digit.
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n' ||
        line[0] == '\r' || line[0] == '\0') {
      // Comments may exceed the buffer; swallow the tail so it is not
      // misparsed as a data line.
      if (!LineComplete(line, f.get())) DrainLine(f.get());
      continue;
    }
    if (!LineComplete(line, f.get())) {
      return Status::Corruption("line " + std::to_string(line_no) + " in " +
                                path + " exceeds " +
                                std::to_string(sizeof(line) - 1) + " bytes");
    }
    unsigned long long u, v, w = 1;
    int n = std::sscanf(line, "%llu %llu %llu", &u, &v, &w);
    if (n < 2) {
      return Status::Corruption("malformed line " + std::to_string(line_no) +
                                " in " + path);
    }
    if (u > kInvalidVertex - 1 || v > kInvalidVertex - 1) {
      return Status::OutOfRange("vertex id too large at line " +
                                std::to_string(line_no));
    }
    if (n == 2) w = 1;
    if (w == 0 || w > std::numeric_limits<Weight>::max()) {
      return Status::OutOfRange("weight out of range at line " +
                                std::to_string(line_no));
    }
    edges.Add(static_cast<VertexId>(u), static_cast<VertexId>(v),
              static_cast<Weight>(w));
  }
  if (std::ferror(f.get())) return Status::IOError("read failed: " + path);
  return edges;
}

Result<EdgeList> ReadDimacsGraph(const std::string& path) {
  File f(path, "r");
  if (!f.ok()) {
    return Status::IOError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  EdgeList edges;
  bool saw_header = false;
  unsigned long long n = 0, m = 0, arcs = 0;
  char line[256];
  std::uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    const char head = line[0];
    if (head == 'c' || head == '\n' || head == '\r' || head == '\0') {
      // Comments may legally exceed the buffer (tool provenance lines);
      // swallow the tail so it is not misparsed as an arc.
      if (!LineComplete(line, f.get())) DrainLine(f.get());
      continue;
    }
    if (!LineComplete(line, f.get())) {
      return Status::Corruption("line " + std::to_string(line_no) + " in " +
                                path + " exceeds " +
                                std::to_string(sizeof(line) - 1) + " bytes");
    }
    if (head == 'p') {
      if (saw_header) {
        return Status::Corruption("duplicate 'p' header at line " +
                                  std::to_string(line_no) + " in " + path);
      }
      if (std::sscanf(line, "p sp %llu %llu", &n, &m) != 2) {
        return Status::Corruption("malformed 'p sp N M' header at line " +
                                  std::to_string(line_no) + " in " + path);
      }
      if (n > kInvalidVertex - 1) {
        return Status::OutOfRange("vertex count too large at line " +
                                  std::to_string(line_no) + " in " + path);
      }
      // N sizes the CSR arrays downstream; bound it by the file itself
      // (a real road network spells every vertex out in arc lines) so a
      // hostile header yields Corruption, not bad_alloc.
      long fsize = -1;
      const long pos = std::ftell(f.get());
      if (pos >= 0 && std::fseek(f.get(), 0, SEEK_END) == 0) {
        fsize = std::ftell(f.get());
        std::fseek(f.get(), pos, SEEK_SET);
      }
      if (fsize >= 0 && n > static_cast<unsigned long long>(fsize)) {
        return Status::Corruption("header vertex count " + std::to_string(n) +
                                  " exceeds the size of " + path);
      }
      saw_header = true;
      edges.EnsureVertices(static_cast<VertexId>(n));
      // M is untrusted until the trailing arcs == m check; cap the
      // reserve hint so a hostile header cannot force a throwing
      // over-allocation out of a Status-based parser.
      edges.Reserve(static_cast<std::size_t>(
          std::min<unsigned long long>(m, 1ull << 26)));
      continue;
    }
    if (head == 'a') {
      if (!saw_header) {
        return Status::Corruption("arc before 'p sp' header at line " +
                                  std::to_string(line_no) + " in " + path);
      }
      unsigned long long u = 0, v = 0, w = 0;
      if (std::sscanf(line, "a %llu %llu %llu", &u, &v, &w) != 3) {
        return Status::Corruption("malformed 'a U V W' arc at line " +
                                  std::to_string(line_no) + " in " + path);
      }
      // DIMACS ids are 1-based.
      if (u == 0 || v == 0 || u > n || v > n) {
        return Status::OutOfRange("arc endpoint out of [1, N] at line " +
                                  std::to_string(line_no) + " in " + path);
      }
      if (w == 0 || w > std::numeric_limits<Weight>::max()) {
        return Status::OutOfRange("arc weight out of range at line " +
                                  std::to_string(line_no) + " in " + path);
      }
      edges.Add(static_cast<VertexId>(u - 1), static_cast<VertexId>(v - 1),
                static_cast<Weight>(w));
      ++arcs;
      continue;
    }
    return Status::Corruption("unrecognized DIMACS line " +
                              std::to_string(line_no) + " in " + path);
  }
  if (std::ferror(f.get())) return Status::IOError("read failed: " + path);
  if (!saw_header) {
    return Status::Corruption("missing 'p sp N M' header in " + path);
  }
  if (arcs != m) {
    return Status::Corruption("header promises " + std::to_string(m) +
                              " arcs but " + path + " carries " +
                              std::to_string(arcs));
  }
  return edges;
}

Status WriteDimacsGraph(const Graph& g, const std::string& path) {
  File f(path, "w");
  if (!f.ok()) {
    return Status::IOError("cannot open for write: " + path + ": " +
                           std::strerror(errno));
  }
  std::fprintf(f.get(), "c islabel DIMACS export\n");
  std::fprintf(f.get(), "p sp %u %llu\n", g.NumVertices(),
               static_cast<unsigned long long>(2 * g.NumEdges()));
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    // Both orientations of every undirected edge, as road files do.
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      std::fprintf(f.get(), "a %u %u %u\n", u + 1, nbrs[i] + 1, ws[i]);
    }
  }
  if (std::ferror(f.get())) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<DimacsCoordinates> ReadDimacsCoordinates(const std::string& path) {
  File f(path, "r");
  if (!f.ok()) {
    return Status::IOError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  DimacsCoordinates coords;
  bool saw_header = false;
  unsigned long long n = 0;
  char line[256];
  std::uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    const char head = line[0];
    if (head == 'c' || head == '\n' || head == '\r' || head == '\0') {
      if (!LineComplete(line, f.get())) DrainLine(f.get());
      continue;
    }
    if (!LineComplete(line, f.get())) {
      return Status::Corruption("line " + std::to_string(line_no) + " in " +
                                path + " exceeds " +
                                std::to_string(sizeof(line) - 1) + " bytes");
    }
    if (head == 'p') {
      if (saw_header ||
          std::sscanf(line, "p aux sp co %llu", &n) != 1 ||
          n > kInvalidVertex - 1) {
        return Status::Corruption("malformed 'p aux sp co N' header at line " +
                                  std::to_string(line_no) + " in " + path);
      }
      // N sizes the coordinate arrays up front, so bound it by the file
      // itself (every vertex needs a "v I X Y" line of ≥ 8 bytes) before
      // trusting it with an allocation.
      long fsize = -1;
      const long pos = std::ftell(f.get());
      if (pos >= 0 && std::fseek(f.get(), 0, SEEK_END) == 0) {
        fsize = std::ftell(f.get());
        std::fseek(f.get(), pos, SEEK_SET);
      }
      if (fsize >= 0 && n > static_cast<unsigned long long>(fsize)) {
        return Status::Corruption("header vertex count " + std::to_string(n) +
                                  " exceeds the size of " + path);
      }
      saw_header = true;
      coords.x.assign(n, 0);
      coords.y.assign(n, 0);
      continue;
    }
    if (head == 'v') {
      if (!saw_header) {
        return Status::Corruption("'v' line before header at line " +
                                  std::to_string(line_no) + " in " + path);
      }
      unsigned long long id = 0;
      long long x = 0, y = 0;
      if (std::sscanf(line, "v %llu %lld %lld", &id, &x, &y) != 3) {
        return Status::Corruption("malformed 'v ID X Y' line " +
                                  std::to_string(line_no) + " in " + path);
      }
      if (id == 0 || id > n) {
        return Status::OutOfRange("coordinate id out of [1, N] at line " +
                                  std::to_string(line_no) + " in " + path);
      }
      coords.x[id - 1] = x;
      coords.y[id - 1] = y;
      continue;
    }
    return Status::Corruption("unrecognized DIMACS line " +
                              std::to_string(line_no) + " in " + path);
  }
  if (std::ferror(f.get())) return Status::IOError("read failed: " + path);
  if (!saw_header) {
    return Status::Corruption("missing 'p aux sp co N' header in " + path);
  }
  return coords;
}

Status WriteDimacsCoordinates(const DimacsCoordinates& coords,
                              const std::string& path) {
  if (coords.x.size() != coords.y.size()) {
    return Status::InvalidArgument("x/y coordinate arrays differ in length");
  }
  File f(path, "w");
  if (!f.ok()) {
    return Status::IOError("cannot open for write: " + path + ": " +
                           std::strerror(errno));
  }
  std::fprintf(f.get(), "c islabel DIMACS coordinate export\n");
  std::fprintf(f.get(), "p aux sp co %zu\n", coords.x.size());
  for (std::size_t i = 0; i < coords.x.size(); ++i) {
    std::fprintf(f.get(), "v %zu %lld %lld\n", i + 1,
                 static_cast<long long>(coords.x[i]),
                 static_cast<long long>(coords.y[i]));
  }
  if (std::ferror(f.get())) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status WriteGraphBinary(const Graph& g, const std::string& path) {
  File f(path, "wb");
  if (!f.ok()) {
    return Status::IOError("cannot open for write: " + path + ": " +
                           std::strerror(errno));
  }
  std::string header;
  PutFixed32(&header, kGraphMagic);
  PutFixed32(&header, kGraphVersion);
  PutFixed32(&header, g.NumVertices());
  PutFixed64(&header, g.NumEdges());
  PutFixed32(&header, g.has_vias() ? 1 : 0);
  if (std::fwrite(header.data(), 1, header.size(), f.get()) != header.size()) {
    return Status::IOError("header write failed: " + path);
  }
  // Body: per-edge records (u, v, w [, via]) for u < v, varint-delta coded.
  std::string body;
  VertexId prev_u = 0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u >= nbrs[i]) continue;
      PutVarint64(&body, u - prev_u);
      PutVarint64(&body, nbrs[i]);
      PutVarint64(&body, ws[i]);
      if (g.has_vias()) {
        VertexId via = g.NeighborVias(u)[i];
        PutVarint64(&body, via == kInvalidVertex ? 0 : via + 1ULL);
      }
      prev_u = u;
      if (body.size() >= (1u << 20)) {
        if (std::fwrite(body.data(), 1, body.size(), f.get()) != body.size()) {
          return Status::IOError("body write failed: " + path);
        }
        body.clear();
      }
    }
  }
  if (!body.empty() &&
      std::fwrite(body.data(), 1, body.size(), f.get()) != body.size()) {
    return Status::IOError("body write failed: " + path);
  }
  return Status::OK();
}

Result<Graph> ReadGraphBinary(const std::string& path) {
  File f(path, "rb");
  if (!f.ok()) {
    return Status::IOError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  // Slurp: binary graphs are read once at startup; streaming adds nothing.
  std::string data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    data.append(buf, n);
  }
  if (std::ferror(f.get())) return Status::IOError("read failed: " + path);

  Decoder dec(data);
  std::uint32_t magic, version, num_vertices, has_vias;
  std::uint64_t num_edges;
  if (!dec.GetFixed32(&magic) || magic != kGraphMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!dec.GetFixed32(&version) || version != kGraphVersion) {
    return Status::Corruption("unsupported version in " + path);
  }
  if (!dec.GetFixed32(&num_vertices) || !dec.GetFixed64(&num_edges) ||
      !dec.GetFixed32(&has_vias)) {
    return Status::Corruption("truncated header in " + path);
  }

  EdgeList edges(num_vertices);
  edges.Reserve(num_edges);
  VertexId prev_u = 0;
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    std::uint64_t du, v, w, via_plus1 = 0;
    if (!dec.GetVarint64(&du) || !dec.GetVarint64(&v) ||
        !dec.GetVarint64(&w)) {
      return Status::Corruption("truncated edge record in " + path);
    }
    if (has_vias && !dec.GetVarint64(&via_plus1)) {
      return Status::Corruption("truncated via record in " + path);
    }
    VertexId u = prev_u + static_cast<VertexId>(du);
    prev_u = u;
    if (v >= num_vertices || u >= num_vertices || w == 0 ||
        w > std::numeric_limits<Weight>::max()) {
      return Status::Corruption("edge out of range in " + path);
    }
    edges.Add(u, static_cast<VertexId>(v), static_cast<Weight>(w),
              via_plus1 == 0 ? kInvalidVertex
                             : static_cast<VertexId>(via_plus1 - 1));
  }
  return Graph::FromEdgeList(std::move(edges), has_vias != 0);
}

}  // namespace islabel
