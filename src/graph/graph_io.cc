#include "graph/graph_io.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "util/varint.h"

namespace islabel {

namespace {

constexpr std::uint32_t kGraphMagic = 0x49534C47;  // "ISLG"
constexpr std::uint32_t kGraphVersion = 1;

// RAII stdio wrapper; keeps the I/O layer exception-free.
class File {
 public:
  File(const std::string& path, const char* mode)
      : f_(std::fopen(path.c_str(), mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::FILE* get() const { return f_; }

 private:
  std::FILE* f_;
};

}  // namespace

Status WriteEdgeListText(const Graph& g, const std::string& path) {
  File f(path, "w");
  if (!f.ok()) {
    return Status::IOError("cannot open for write: " + path + ": " +
                           std::strerror(errno));
  }
  std::fprintf(f.get(), "# islabel edge list: %u vertices, %llu edges\n",
               g.NumVertices(),
               static_cast<unsigned long long>(g.NumEdges()));
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        std::fprintf(f.get(), "%u %u %u\n", u, nbrs[i], ws[i]);
      }
    }
  }
  if (std::ferror(f.get())) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<EdgeList> ReadEdgeListText(const std::string& path) {
  File f(path, "r");
  if (!f.ok()) {
    return Status::IOError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  EdgeList edges;
  char line[256];
  std::uint64_t line_no = 0;
  while (std::fgets(line, sizeof(line), f.get()) != nullptr) {
    ++line_no;
    if (line[0] == '#' || line[0] == '%' || line[0] == '\n' ||
        line[0] == '\0') {
      continue;
    }
    unsigned long long u, v, w = 1;
    int n = std::sscanf(line, "%llu %llu %llu", &u, &v, &w);
    if (n < 2) {
      return Status::Corruption("malformed line " + std::to_string(line_no) +
                                " in " + path);
    }
    if (u > kInvalidVertex - 1 || v > kInvalidVertex - 1) {
      return Status::OutOfRange("vertex id too large at line " +
                                std::to_string(line_no));
    }
    if (n == 2) w = 1;
    if (w == 0 || w > std::numeric_limits<Weight>::max()) {
      return Status::OutOfRange("weight out of range at line " +
                                std::to_string(line_no));
    }
    edges.Add(static_cast<VertexId>(u), static_cast<VertexId>(v),
              static_cast<Weight>(w));
  }
  if (std::ferror(f.get())) return Status::IOError("read failed: " + path);
  return edges;
}

Status WriteGraphBinary(const Graph& g, const std::string& path) {
  File f(path, "wb");
  if (!f.ok()) {
    return Status::IOError("cannot open for write: " + path + ": " +
                           std::strerror(errno));
  }
  std::string header;
  PutFixed32(&header, kGraphMagic);
  PutFixed32(&header, kGraphVersion);
  PutFixed32(&header, g.NumVertices());
  PutFixed64(&header, g.NumEdges());
  PutFixed32(&header, g.has_vias() ? 1 : 0);
  if (std::fwrite(header.data(), 1, header.size(), f.get()) != header.size()) {
    return Status::IOError("header write failed: " + path);
  }
  // Body: per-edge records (u, v, w [, via]) for u < v, varint-delta coded.
  std::string body;
  VertexId prev_u = 0;
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u >= nbrs[i]) continue;
      PutVarint64(&body, u - prev_u);
      PutVarint64(&body, nbrs[i]);
      PutVarint64(&body, ws[i]);
      if (g.has_vias()) {
        VertexId via = g.NeighborVias(u)[i];
        PutVarint64(&body, via == kInvalidVertex ? 0 : via + 1ULL);
      }
      prev_u = u;
      if (body.size() >= (1u << 20)) {
        if (std::fwrite(body.data(), 1, body.size(), f.get()) != body.size()) {
          return Status::IOError("body write failed: " + path);
        }
        body.clear();
      }
    }
  }
  if (!body.empty() &&
      std::fwrite(body.data(), 1, body.size(), f.get()) != body.size()) {
    return Status::IOError("body write failed: " + path);
  }
  return Status::OK();
}

Result<Graph> ReadGraphBinary(const std::string& path) {
  File f(path, "rb");
  if (!f.ok()) {
    return Status::IOError("cannot open for read: " + path + ": " +
                           std::strerror(errno));
  }
  // Slurp: binary graphs are read once at startup; streaming adds nothing.
  std::string data;
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    data.append(buf, n);
  }
  if (std::ferror(f.get())) return Status::IOError("read failed: " + path);

  Decoder dec(data);
  std::uint32_t magic, version, num_vertices, has_vias;
  std::uint64_t num_edges;
  if (!dec.GetFixed32(&magic) || magic != kGraphMagic) {
    return Status::Corruption("bad magic in " + path);
  }
  if (!dec.GetFixed32(&version) || version != kGraphVersion) {
    return Status::Corruption("unsupported version in " + path);
  }
  if (!dec.GetFixed32(&num_vertices) || !dec.GetFixed64(&num_edges) ||
      !dec.GetFixed32(&has_vias)) {
    return Status::Corruption("truncated header in " + path);
  }

  EdgeList edges(num_vertices);
  edges.Reserve(num_edges);
  VertexId prev_u = 0;
  for (std::uint64_t i = 0; i < num_edges; ++i) {
    std::uint64_t du, v, w, via_plus1 = 0;
    if (!dec.GetVarint64(&du) || !dec.GetVarint64(&v) ||
        !dec.GetVarint64(&w)) {
      return Status::Corruption("truncated edge record in " + path);
    }
    if (has_vias && !dec.GetVarint64(&via_plus1)) {
      return Status::Corruption("truncated via record in " + path);
    }
    VertexId u = prev_u + static_cast<VertexId>(du);
    prev_u = u;
    if (v >= num_vertices || u >= num_vertices || w == 0 ||
        w > std::numeric_limits<Weight>::max()) {
      return Status::Corruption("edge out of range in " + path);
    }
    edges.Add(u, static_cast<VertexId>(v), static_cast<Weight>(w),
              via_plus1 == 0 ? kInvalidVertex
                             : static_cast<VertexId>(via_plus1 - 1));
  }
  return Graph::FromEdgeList(std::move(edges), has_vias != 0);
}

}  // namespace islabel
