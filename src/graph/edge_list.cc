#include "graph/edge_list.h"

#include <algorithm>

namespace islabel {

void EdgeList::Normalize() {
  // Orient u < v and drop self-loops.
  std::size_t out = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    Edge e = edges_[i];
    if (e.u == e.v) continue;
    if (e.u > e.v) std::swap(e.u, e.v);
    edges_[out++] = e;
  }
  edges_.resize(out);

  std::sort(edges_.begin(), edges_.end(), [](const Edge& a, const Edge& b) {
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    if (a.w != b.w) return a.w < b.w;
    return a.via < b.via;  // deterministic winner among equal weights
  });

  // Deduplicate; the sort above puts the minimum-weight copy first, so the
  // kept edge carries the weight (and via vertex) of the cheapest parallel
  // edge — the same min() rule the augmenting-edge construction uses.
  out = 0;
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (out > 0 && edges_[out - 1].u == edges_[i].u &&
        edges_[out - 1].v == edges_[i].v) {
      continue;
    }
    edges_[out++] = edges_[i];
  }
  edges_.resize(out);
}

}  // namespace islabel
