#include "graph/components.h"

#include <vector>

namespace islabel {

ComponentsResult FindComponents(const Graph& g) {
  const VertexId n = g.NumVertices();
  ComponentsResult res;
  res.component.assign(n, UINT32_MAX);

  std::vector<VertexId> queue;
  std::vector<std::uint64_t> comp_sizes;
  for (VertexId start = 0; start < n; ++start) {
    if (res.component[start] != UINT32_MAX) continue;
    std::uint32_t cid = res.num_components++;
    std::uint64_t size = 0;
    queue.clear();
    queue.push_back(start);
    res.component[start] = cid;
    while (!queue.empty()) {
      VertexId v = queue.back();
      queue.pop_back();
      ++size;
      for (VertexId u : g.Neighbors(v)) {
        if (res.component[u] == UINT32_MAX) {
          res.component[u] = cid;
          queue.push_back(u);
        }
      }
    }
    comp_sizes.push_back(size);
  }
  for (std::uint32_t c = 0; c < res.num_components; ++c) {
    if (comp_sizes[c] > res.largest_size) {
      res.largest_size = comp_sizes[c];
      res.largest = c;
    }
  }
  return res;
}

LargestComponent ExtractLargestComponent(const Graph& g) {
  ComponentsResult comps = FindComponents(g);
  LargestComponent out;
  const VertexId n = g.NumVertices();
  out.old_to_new.assign(n, kInvalidVertex);
  out.new_to_old.reserve(comps.largest_size);
  for (VertexId v = 0; v < n; ++v) {
    if (comps.component[v] == comps.largest) {
      out.old_to_new[v] = static_cast<VertexId>(out.new_to_old.size());
      out.new_to_old.push_back(v);
    }
  }
  EdgeList edges(static_cast<VertexId>(out.new_to_old.size()));
  for (VertexId u = 0; u < n; ++u) {
    if (out.old_to_new[u] == kInvalidVertex) continue;
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        edges.Add(out.old_to_new[u], out.old_to_new[nbrs[i]], ws[i]);
      }
    }
  }
  out.graph = Graph::FromEdgeList(std::move(edges));
  return out;
}

}  // namespace islabel
