// Immutable CSR weighted *directed* graph, the substrate for the directed
// IS-LABEL variant (§8.2). Stores both out- and in-adjacency so that
// forward and reverse traversals are symmetric in cost.

#ifndef ISLABEL_GRAPH_DIGRAPH_H_
#define ISLABEL_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph_defs.h"

namespace islabel {

/// A directed edge u -> v.
struct Arc {
  VertexId from = 0;
  VertexId to = 0;
  Weight w = 1;
  VertexId via = kInvalidVertex;

  Arc() = default;
  Arc(VertexId f, VertexId t, Weight ww, VertexId via_v = kInvalidVertex)
      : from(f), to(t), w(ww), via(via_v) {}
};

/// Immutable weighted directed graph with out- and in-CSR.
class DiGraph {
 public:
  DiGraph() = default;

  /// Builds from an arc list. Self-loops dropped; parallel arcs merged with
  /// min weight. `num_vertices` may exceed the max endpoint + 1.
  static DiGraph FromArcs(std::vector<Arc> arcs, VertexId num_vertices = 0,
                          bool keep_vias = false);

  VertexId NumVertices() const {
    return out_offsets_.empty()
               ? 0
               : static_cast<VertexId>(out_offsets_.size() - 1);
  }
  std::uint64_t NumArcs() const { return out_targets_.size(); }

  std::uint32_t OutDegree(VertexId v) const {
    return static_cast<std::uint32_t>(out_offsets_[v + 1] - out_offsets_[v]);
  }
  std::uint32_t InDegree(VertexId v) const {
    return static_cast<std::uint32_t>(in_offsets_[v + 1] - in_offsets_[v]);
  }

  std::span<const VertexId> OutNeighbors(VertexId v) const {
    return {out_targets_.data() + out_offsets_[v],
            out_targets_.data() + out_offsets_[v + 1]};
  }
  std::span<const Weight> OutWeights(VertexId v) const {
    return {out_weights_.data() + out_offsets_[v],
            out_weights_.data() + out_offsets_[v + 1]};
  }
  std::span<const VertexId> OutVias(VertexId v) const {
    return {out_vias_.data() + out_offsets_[v],
            out_vias_.data() + out_offsets_[v + 1]};
  }

  /// In-neighbors: u such that (u -> v) is an arc.
  std::span<const VertexId> InNeighbors(VertexId v) const {
    return {in_sources_.data() + in_offsets_[v],
            in_sources_.data() + in_offsets_[v + 1]};
  }
  std::span<const Weight> InWeights(VertexId v) const {
    return {in_weights_.data() + in_offsets_[v],
            in_weights_.data() + in_offsets_[v + 1]};
  }
  std::span<const VertexId> InVias(VertexId v) const {
    return {in_vias_.data() + in_offsets_[v],
            in_vias_.data() + in_offsets_[v + 1]};
  }

  bool has_vias() const { return !out_vias_.empty(); }

  /// Weight of arc u -> v, or kInfDistance if absent.
  Distance ArcWeight(VertexId u, VertexId v) const;

  std::uint64_t MemoryBytes() const {
    return (out_offsets_.size() + in_offsets_.size()) * sizeof(std::uint64_t) +
           (out_targets_.size() + in_sources_.size()) * sizeof(VertexId) +
           (out_weights_.size() + in_weights_.size()) * sizeof(Weight) +
           (out_vias_.size() + in_vias_.size()) * sizeof(VertexId);
  }

 private:
  std::vector<std::uint64_t> out_offsets_;
  std::vector<VertexId> out_targets_;
  std::vector<Weight> out_weights_;
  std::vector<VertexId> out_vias_;

  std::vector<std::uint64_t> in_offsets_;
  std::vector<VertexId> in_sources_;
  std::vector<Weight> in_weights_;
  std::vector<VertexId> in_vias_;
};

}  // namespace islabel

#endif  // ISLABEL_GRAPH_DIGRAPH_H_
