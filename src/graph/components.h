// Connected components and largest-connected-component extraction. The
// paper extracts the largest connected component of the Web dataset (§7);
// the bench harness does the same for its synthetic stand-ins.

#ifndef ISLABEL_GRAPH_COMPONENTS_H_
#define ISLABEL_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace islabel {

/// Result of a components scan.
struct ComponentsResult {
  /// comp[v] = component id in [0, num_components).
  std::vector<std::uint32_t> component;
  std::uint32_t num_components = 0;
  /// Id of the component with the most vertices.
  std::uint32_t largest = 0;
  /// Vertex count of the largest component.
  std::uint64_t largest_size = 0;
};

/// Labels connected components with an iterative BFS (no recursion, safe on
/// huge path-like graphs).
ComponentsResult FindComponents(const Graph& g);

/// Extracted largest component with the id remapping that produced it.
struct LargestComponent {
  Graph graph;
  /// old vertex id -> new id, kInvalidVertex for vertices outside the LCC.
  std::vector<VertexId> old_to_new;
  /// new vertex id -> old id.
  std::vector<VertexId> new_to_old;
};

/// Builds the subgraph induced by the largest connected component, with
/// vertices renumbered densely.
LargestComponent ExtractLargestComponent(const Graph& g);

}  // namespace islabel

#endif  // ISLABEL_GRAPH_COMPONENTS_H_
