// Fundamental graph value types shared by every subsystem.
//
// Following the paper (§2): graphs are simple, weighted, undirected (a
// directed variant exists in graph/digraph.h for §8.2), with positive
// integer edge weights. Vertex ids are dense 32-bit integers — the paper's
// largest graph (BTC, 164.7M vertices) fits comfortably — and distances are
// 64-bit to make overflow impossible even on pathological weight
// assignments (2^32 vertices × 2^32 max weight < 2^64).

#ifndef ISLABEL_GRAPH_GRAPH_DEFS_H_
#define ISLABEL_GRAPH_GRAPH_DEFS_H_

#include <cstdint>
#include <limits>

namespace islabel {

/// Dense vertex identifier in [0, NumVertices).
using VertexId = std::uint32_t;

/// Positive integer edge weight (ω : E → N+).
using Weight = std::uint32_t;

/// Path length / distance. kInfDistance means "unreachable".
using Distance = std::uint64_t;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();
inline constexpr Distance kInfDistance =
    std::numeric_limits<Distance>::max();

/// A weighted undirected edge as stored in edge lists. `via` records the
/// intermediate vertex when the edge is an *augmenting edge* created by the
/// hierarchy construction (§4.1 / §8.1): weight(u,w) = weight(u,via) +
/// weight(via,w). Original graph edges carry via == kInvalidVertex.
struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  Weight w = 1;
  VertexId via = kInvalidVertex;

  Edge() = default;
  Edge(VertexId uu, VertexId vv, Weight ww, VertexId via_v = kInvalidVertex)
      : u(uu), v(vv), w(ww), via(via_v) {}

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v && a.w == b.w && a.via == b.via;
  }
};

}  // namespace islabel

#endif  // ISLABEL_GRAPH_GRAPH_DEFS_H_
