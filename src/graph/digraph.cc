#include "graph/digraph.h"

#include <algorithm>

namespace islabel {

DiGraph DiGraph::FromArcs(std::vector<Arc> arcs, VertexId num_vertices,
                          bool keep_vias) {
  // Drop self-loops; find vertex count.
  std::size_t out = 0;
  VertexId n = num_vertices;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (arcs[i].from == arcs[i].to) continue;
    arcs[out++] = arcs[i];
    n = std::max(n, std::max(arcs[i].from, arcs[i].to) + 1);
  }
  arcs.resize(out);

  // Merge parallel arcs keeping min weight.
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    return a.w < b.w;
  });
  out = 0;
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    if (out > 0 && arcs[out - 1].from == arcs[i].from &&
        arcs[out - 1].to == arcs[i].to) {
      continue;
    }
    arcs[out++] = arcs[i];
  }
  arcs.resize(out);

  DiGraph g;
  g.out_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.in_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.out_targets_.resize(arcs.size());
  g.out_weights_.resize(arcs.size());
  g.in_sources_.resize(arcs.size());
  g.in_weights_.resize(arcs.size());
  if (keep_vias) {
    g.out_vias_.resize(arcs.size());
    g.in_vias_.resize(arcs.size());
  }

  // Out-CSR: arcs already sorted by (from, to).
  for (const Arc& a : arcs) ++g.out_offsets_[a.from + 1];
  for (std::size_t i = 1; i < g.out_offsets_.size(); ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
  }
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    g.out_targets_[i] = arcs[i].to;
    g.out_weights_[i] = arcs[i].w;
    if (keep_vias) g.out_vias_[i] = arcs[i].via;
  }

  // In-CSR: re-sort by (to, from).
  std::sort(arcs.begin(), arcs.end(), [](const Arc& a, const Arc& b) {
    if (a.to != b.to) return a.to < b.to;
    return a.from < b.from;
  });
  for (const Arc& a : arcs) ++g.in_offsets_[a.to + 1];
  for (std::size_t i = 1; i < g.in_offsets_.size(); ++i) {
    g.in_offsets_[i] += g.in_offsets_[i - 1];
  }
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    g.in_sources_[i] = arcs[i].from;
    g.in_weights_[i] = arcs[i].w;
    if (keep_vias) g.in_vias_[i] = arcs[i].via;
  }
  return g;
}

Distance DiGraph::ArcWeight(VertexId u, VertexId v) const {
  auto nbrs = OutNeighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInfDistance;
  return OutWeights(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

}  // namespace islabel
