#include "graph/graph.h"

#include <algorithm>
#include <string>

namespace islabel {

namespace {

// A directed copy of an undirected edge, used transiently during CSR build.
struct DirectedEdge {
  VertexId src;
  VertexId dst;
  Weight w;
  VertexId via;
};

}  // namespace

Graph Graph::FromEdgeList(EdgeList edges, bool keep_vias) {
  edges.Normalize();
  const VertexId n = edges.num_vertices();

  // Expand each undirected edge into its two directed copies and sort by
  // (src, dst); a single global sort leaves every adjacency list sorted.
  std::vector<DirectedEdge> directed;
  directed.reserve(edges.size() * 2);
  for (const Edge& e : edges.edges()) {
    directed.push_back({e.u, e.v, e.w, e.via});
    directed.push_back({e.v, e.u, e.w, e.via});
  }
  std::sort(directed.begin(), directed.end(),
            [](const DirectedEdge& a, const DirectedEdge& b) {
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });

  Graph g;
  g.offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  g.targets_.resize(directed.size());
  g.weights_.resize(directed.size());
  if (keep_vias) g.vias_.resize(directed.size());

  for (const DirectedEdge& e : directed) ++g.offsets_[e.src + 1];
  for (std::size_t i = 1; i < g.offsets_.size(); ++i) {
    g.offsets_[i] += g.offsets_[i - 1];
  }
  for (std::size_t i = 0; i < directed.size(); ++i) {
    g.targets_[i] = directed[i].dst;
    g.weights_[i] = directed[i].w;
    if (keep_vias) g.vias_[i] = directed[i].via;
  }
  return g;
}

bool Graph::HasEdge(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

Distance Graph::EdgeWeight(VertexId u, VertexId v) const {
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInfDistance;
  return NeighborWeights(u)[static_cast<std::size_t>(it - nbrs.begin())];
}

EdgeList Graph::ToEdgeList() const {
  EdgeList out(NumVertices());
  out.Reserve(NumEdges());
  for (VertexId u = 0; u < NumVertices(); ++u) {
    auto nbrs = Neighbors(u);
    auto ws = NeighborWeights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        out.Add(u, nbrs[i], ws[i],
                has_vias() ? NeighborVias(u)[i] : kInvalidVertex);
      }
    }
  }
  return out;
}

std::uint64_t Graph::TextDiskSizeBytes() const {
  std::uint64_t bytes = 0;
  for (VertexId u = 0; u < NumVertices(); ++u) {
    auto nbrs = Neighbors(u);
    auto ws = NeighborWeights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        bytes += std::to_string(u).size() + std::to_string(nbrs[i]).size() +
                 std::to_string(ws[i]).size() + 3;  // two spaces + newline
      }
    }
  }
  return bytes;
}

}  // namespace islabel
