// Graph serialization: a human-readable edge-list text format (SNAP
// compatible: '#' comments, "u v [w]" lines) and a compact binary format
// with a magic/version header.

#ifndef ISLABEL_GRAPH_GRAPH_IO_H_
#define ISLABEL_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/edge_list.h"
#include "graph/graph.h"
#include "util/result.h"
#include "util/status.h"

namespace islabel {

/// Writes "u v w" lines (one undirected edge per line).
Status WriteEdgeListText(const Graph& g, const std::string& path);

/// Reads a text edge list. Lines starting with '#' or '%' are comments.
/// Each data line is "u v" (weight 1) or "u v w". Duplicate edges merge to
/// the minimum weight; self-loops are dropped.
Result<EdgeList> ReadEdgeListText(const std::string& path);

/// Binary graph format: magic, version, |V|, |E|, CSR arrays. Fast and
/// exact round-trip, including via arrays.
Status WriteGraphBinary(const Graph& g, const std::string& path);
Result<Graph> ReadGraphBinary(const std::string& path);

}  // namespace islabel

#endif  // ISLABEL_GRAPH_GRAPH_IO_H_
