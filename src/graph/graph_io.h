// Graph serialization: a human-readable edge-list text format (SNAP
// compatible: '#' comments, "u v [w]" lines), the DIMACS shortest-path
// challenge format the paper's road networks ship in (".gr" arcs and
// ".co" coordinates), and a compact binary format with a magic/version
// header.

#ifndef ISLABEL_GRAPH_GRAPH_IO_H_
#define ISLABEL_GRAPH_GRAPH_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_list.h"
#include "graph/graph.h"
#include "util/result.h"
#include "util/status.h"

namespace islabel {

/// Writes "u v w" lines (one undirected edge per line).
Status WriteEdgeListText(const Graph& g, const std::string& path);

/// Reads a text edge list. Lines starting with '#' or '%' are comments.
/// Each data line is "u v" (weight 1) or "u v w". Duplicate edges merge to
/// the minimum weight; self-loops are dropped. CR-LF line endings are
/// accepted; errors name the offending 1-based line number.
Result<EdgeList> ReadEdgeListText(const std::string& path);

// ---- DIMACS shortest-path challenge format (road networks, §7) ----

/// Reads a DIMACS ".gr" graph: "c" comment lines, one "p sp N M" header,
/// then "a U V W" arc lines with 1-based vertex ids. Road-network files
/// list each undirected edge as two arcs; duplicates merge to the minimum
/// weight (EdgeList normalization), matching the undirected model of §2.
/// Errors name the offending 1-based line number.
Result<EdgeList> ReadDimacsGraph(const std::string& path);

/// Writes `g` in DIMACS ".gr" form: a "p sp N M" header (M counts arcs,
/// i.e. 2|E|) and both orientations of every undirected edge, 1-based.
Status WriteDimacsGraph(const Graph& g, const std::string& path);

/// Vertex coordinates from a DIMACS ".co" file; x/y are indexed by the
/// 0-based vertex id.
struct DimacsCoordinates {
  std::vector<std::int64_t> x;
  std::vector<std::int64_t> y;
};

/// Reads a DIMACS ".co" coordinate file: "c" comments, one
/// "p aux sp co N" header, then "v ID X Y" lines with 1-based ids.
Result<DimacsCoordinates> ReadDimacsCoordinates(const std::string& path);

/// Writes a DIMACS ".co" coordinate file (1-based ids).
Status WriteDimacsCoordinates(const DimacsCoordinates& coords,
                              const std::string& path);

/// Binary graph format: magic, version, |V|, |E|, CSR arrays. Fast and
/// exact round-trip, including via arrays.
Status WriteGraphBinary(const Graph& g, const std::string& path);
Result<Graph> ReadGraphBinary(const std::string& path);

}  // namespace islabel

#endif  // ISLABEL_GRAPH_GRAPH_IO_H_
