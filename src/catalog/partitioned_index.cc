#include "catalog/partitioned_index.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <numeric>

#include "backends/registry.h"
#include "graph/components.h"
#include "storage/block_file.h"
#include "util/parallel.h"
#include "util/varint.h"

namespace islabel {

namespace {

constexpr std::uint32_t kPartitionMagic = 0x49534C50;  // "ISLP"
// Version 2 added the per-part backend name; version 1 directories (all
// parts IS-LABEL) are still readable.
constexpr std::uint32_t kPartitionVersion = 2;
constexpr std::uint32_t kPartitionVersionV1 = 1;

std::string PartitionPath(const std::string& dir) {
  return dir + "/partition.islp";
}

std::string PartDir(const std::string& dir, std::uint32_t part) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "/part%05u", part);
  return dir + buf;
}

}  // namespace

GraphPartition ComponentPartitioner::Partition(const Graph& g) {
  GraphPartition out;
  const VertexId n = g.NumVertices();
  ComponentsResult comps = FindComponents(g);
  out.component = std::move(comps.component);
  out.num_components = comps.num_components;
  out.local_id.assign(n, 0);

  // Component sizes, then part ids for every multi-vertex component.
  // FindComponents numbers components by smallest contained vertex id, so
  // part order (and local-id order below) is deterministic.
  std::vector<VertexId> comp_size(out.num_components, 0);
  for (VertexId v = 0; v < n; ++v) ++comp_size[out.component[v]];
  out.part_of_component.assign(out.num_components, GraphPartition::kNoPart);
  for (std::uint32_t c = 0; c < out.num_components; ++c) {
    if (comp_size[c] >= 2) {
      out.part_of_component[c] =
          static_cast<std::uint32_t>(out.parts.size());
      out.parts.emplace_back();
      out.parts.back().component = c;
      out.parts.back().global_ids.reserve(comp_size[c]);
    }
  }

  // Dense local ids in ascending global-id order per part.
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t p = out.part_of_component[out.component[v]];
    if (p == GraphPartition::kNoPart) continue;
    out.local_id[v] =
        static_cast<VertexId>(out.parts[p].global_ids.size());
    out.parts[p].global_ids.push_back(v);
  }

  // Induced edges, one scan over the CSR.
  std::vector<EdgeList> part_edges(out.parts.size());
  for (std::uint32_t p = 0; p < out.parts.size(); ++p) {
    part_edges[p].EnsureVertices(
        static_cast<VertexId>(out.parts[p].global_ids.size()));
  }
  for (VertexId u = 0; u < n; ++u) {
    const std::uint32_t p = out.part_of_component[out.component[u]];
    if (p == GraphPartition::kNoPart) continue;
    auto nbrs = g.Neighbors(u);
    auto ws = g.NeighborWeights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (u < nbrs[i]) {
        part_edges[p].Add(out.local_id[u], out.local_id[nbrs[i]], ws[i]);
      }
    }
  }
  for (std::uint32_t p = 0; p < out.parts.size(); ++p) {
    out.parts[p].graph = Graph::FromEdgeList(std::move(part_edges[p]));
  }
  return out;
}

Result<PartitionedIndex> PartitionedIndex::Build(
    const Graph& g, const PartitionOptions& options) {
  ISLABEL_RETURN_IF_ERROR(options.index.Validate());
  GraphPartition partition = ComponentPartitioner::Partition(g);

  PartitionedIndex index;
  index.component_ = std::move(partition.component);
  index.local_id_ = std::move(partition.local_id);
  index.part_of_component_ = std::move(partition.part_of_component);
  index.num_components_ = partition.num_components;

  const std::size_t num_parts = partition.parts.size();
  index.parts_.resize(num_parts);
  std::vector<Status> part_status(num_parts, Status::OK());
  // One sub-index build per component, components in parallel. Builds are
  // independent (each writes only its own slot), so results are identical
  // for every thread count. kAuto resolves per component, so a dataset
  // may legally mix backends across parts.
  ParallelFor(num_parts, options.num_threads, [&](std::size_t p) {
    BackendKind kind = options.backend;
    if (kind == BackendKind::kAuto) {
      kind = ChooseBackendAuto(partition.parts[p].graph);
    }
    auto built = BuildBackend(kind, partition.parts[p].graph, options.index);
    if (!built.ok()) {
      part_status[p] = built.status();
      return;
    }
    index.parts_[p].component = partition.parts[p].component;
    index.parts_[p].global_ids = std::move(partition.parts[p].global_ids);
    index.parts_[p].index = std::move(built).value();
    index.parts_[p].backend = kind;
  });
  for (std::size_t p = 0; p < num_parts; ++p) {
    if (!part_status[p].ok()) return part_status[p];
  }
  // Path availability is the intersection over parts (a CH part always
  // has vias; an IS-LABEL part only when built with keep_vias).
  index.vias_enabled_ = options.index.keep_vias;
  if (num_parts > 0) {
    index.vias_enabled_ = true;
    for (const PartEntry& part : index.parts_) {
      index.vias_enabled_ = index.vias_enabled_ && part.index->has_vias();
    }
  }
  return index;
}

PartitionedIndex PartitionedIndex::FromMonolithic(ISLabelIndex index) {
  return FromBackend(std::make_unique<ISLabelIndex>(std::move(index)),
                     BackendKind::kISLabel);
}

PartitionedIndex PartitionedIndex::FromBackend(
    std::unique_ptr<DistanceIndex> index, BackendKind backend) {
  PartitionedIndex out;
  const VertexId n = index->NumVertices();
  out.component_.assign(n, 0);
  out.local_id_.resize(n);
  std::iota(out.local_id_.begin(), out.local_id_.end(), VertexId{0});
  out.vias_enabled_ = index->has_vias();
  if (n == 0) return out;
  out.num_components_ = 1;
  out.part_of_component_.assign(1, 0);
  out.parts_.resize(1);
  out.parts_[0].component = 0;
  out.parts_[0].global_ids = out.local_id_;
  out.parts_[0].index = std::move(index);
  out.parts_[0].backend = backend;
  return out;
}

Status PartitionedIndex::CheckQueryable(VertexId s, VertexId t) const {
  const VertexId n = NumVertices();
  if (s >= n || t >= n) return Status::OutOfRange("vertex id out of range");
  return Status::OK();
}

Status PartitionedIndex::QueryUncached(VertexId s, VertexId t, Distance* out,
                                       QueryStats* stats) {
  const std::uint32_t cs = component_[s];
  if (cs != component_[t]) {
    // The partition map IS the reachability oracle: answer straight from
    // it, no backend call, no label fetch.
    *out = kInfDistance;
    if (stats != nullptr) *stats = QueryStats{};
    counters_->cross_component.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  const std::uint32_t p = part_of_component_[cs];
  if (p == GraphPartition::kNoPart) {  // singleton component: s == t
    *out = 0;
    if (stats != nullptr) *stats = QueryStats{};
    return Status::OK();
  }
  counters_->routed.fetch_add(1, std::memory_order_relaxed);
  return parts_[p].index->Query(local_id_[s], local_id_[t], out, stats);
}

Status PartitionedIndex::ShortestPath(VertexId s, VertexId t,
                                      std::vector<VertexId>* path,
                                      Distance* dist) {
  ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, t));
  if (!vias_enabled_) {
    return Status::FailedPrecondition(
        "index was built without vias (IndexOptions::keep_vias)");
  }
  path->clear();
  const std::uint32_t cs = component_[s];
  if (cs != component_[t]) {
    *dist = kInfDistance;
    counters_->cross_component.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  const std::uint32_t p = part_of_component_[cs];
  if (p == GraphPartition::kNoPart) {  // singleton component: s == t
    *dist = 0;
    path->push_back(s);
    return Status::OK();
  }
  counters_->routed.fetch_add(1, std::memory_order_relaxed);
  ISLABEL_RETURN_IF_ERROR(
      parts_[p].index->ShortestPath(local_id_[s], local_id_[t], path, dist));
  for (VertexId& v : *path) v = parts_[p].global_ids[v];
  return Status::OK();
}

Status PartitionedIndex::QueryOneToMany(VertexId s,
                                        const std::vector<VertexId>& targets,
                                        std::vector<Distance>* out,
                                        QueryStats* stats) {
  ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, s));
  for (VertexId t : targets) {
    ISLABEL_RETURN_IF_ERROR(CheckQueryable(s, t));
  }
  out->assign(targets.size(), kInfDistance);
  if (stats != nullptr) *stats = QueryStats{};

  const std::uint32_t cs = component_[s];
  const std::uint32_t p = part_of_component_[cs];
  std::vector<VertexId> local_targets;
  std::vector<std::size_t> positions;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    if (component_[targets[i]] == cs) {
      local_targets.push_back(local_id_[targets[i]]);
      positions.push_back(i);
    } else {
      counters_->cross_component.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (p == GraphPartition::kNoPart) {
    // Singleton component: every same-component target is s itself.
    for (std::size_t i : positions) (*out)[i] = 0;
    return Status::OK();
  }
  if (positions.empty()) return Status::OK();
  counters_->routed.fetch_add(1, std::memory_order_relaxed);
  std::vector<Distance> local_out;
  ISLABEL_RETURN_IF_ERROR(parts_[p].index->QueryOneToMany(
      local_id_[s], local_targets, &local_out, stats));
  for (std::size_t i = 0; i < positions.size(); ++i) {
    (*out)[positions[i]] = local_out[i];
  }
  return Status::OK();
}

DistanceIndexInfo PartitionedIndex::Info() const {
  DistanceIndexInfo info;
  info.vertices = NumVertices();
  bool mixed = false;
  for (const PartEntry& part : parts_) {
    const DistanceIndexInfo part_info = part.index->Info();
    info.entries += part_info.entries;
    info.bytes += part_info.bytes;
    if (info.backend.empty()) {
      info.backend = part_info.backend;
    } else if (info.backend != part_info.backend) {
      mixed = true;
    }
  }
  if (mixed) info.backend = "mixed";
  if (info.backend.empty()) {
    info.backend = BackendKindName(BackendKind::kISLabel);
  }
  info.detail = BackendSummary();
  return info;
}

std::string PartitionedIndex::BackendSummary() const {
  if (parts_.empty()) return "none";
  constexpr std::size_t kMaxListed = 8;
  std::string out;
  for (std::size_t p = 0; p < parts_.size() && p < kMaxListed; ++p) {
    if (p != 0) out += ',';
    const DistanceIndexInfo info = parts_[p].index->Info();
    out += 'p' + std::to_string(p) + '=' + info.backend + '/' +
           std::to_string(info.entries);
  }
  if (parts_.size() > kMaxListed) {
    out += ",+" + std::to_string(parts_.size() - kMaxListed);
  }
  return out;
}

Status PartitionedIndex::Save(const std::string& dir) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create catalog directory " + dir + ": " +
                           ec.message());
  }
  std::string meta;
  PutFixed32(&meta, kPartitionMagic);
  PutFixed32(&meta, kPartitionVersion);
  PutFixed32(&meta, NumVertices());
  PutFixed32(&meta, num_components_);
  PutFixed32(&meta, num_parts());
  PutFixed32(&meta, vias_enabled_ ? 1 : 0);
  for (VertexId v = 0; v < NumVertices(); ++v) {
    PutVarint64(&meta, component_[v]);
    PutVarint64(&meta, local_id_[v]);
  }
  for (const PartEntry& part : parts_) {
    PutFixed32(&meta, part.component);
    PutVarint64(&meta, part.global_ids.size());
    // v2: the part's backend, by name — the tag that keeps a CH part
    // from ever being misparsed as an IS-LABEL one.
    const std::string name = BackendKindName(part.backend);
    PutVarint64(&meta, name.size());
    meta.append(name);
  }
  BlockFile mf;
  ISLABEL_RETURN_IF_ERROR(mf.Open(PartitionPath(dir), /*truncate=*/true));
  ISLABEL_RETURN_IF_ERROR(mf.Append(meta.data(), meta.size(), nullptr));
  ISLABEL_RETURN_IF_ERROR(mf.Flush());
  for (std::uint32_t p = 0; p < num_parts(); ++p) {
    ISLABEL_RETURN_IF_ERROR(parts_[p].index->Save(PartDir(dir, p)));
  }
  return Status::OK();
}

Result<PartitionedIndex> PartitionedIndex::Load(const std::string& dir,
                                                bool labels_in_memory) {
  std::error_code ec;
  if (!std::filesystem::exists(PartitionPath(dir), ec)) {
    // A plain single-index directory: sniff its family and serve it as
    // one part. Unrecognized directories fall through to the IS-LABEL
    // loader so the error message names the expected layout.
    auto kind = SniffBackendDir(dir);
    const BackendKind mono_kind =
        kind.ok() ? kind.value() : BackendKind::kISLabel;
    auto mono = LoadBackend(mono_kind, dir, labels_in_memory);
    if (!mono.ok()) return mono.status();
    return FromBackend(std::move(mono).value(), mono_kind);
  }

  BlockFile mf;
  ISLABEL_RETURN_IF_ERROR(mf.Open(PartitionPath(dir), /*truncate=*/false));
  std::string meta(mf.FileSize(), '\0');
  ISLABEL_RETURN_IF_ERROR(mf.ReadAt(0, meta.data(), meta.size()));
  Decoder dec(meta);
  std::uint32_t magic, version, n, num_components, num_parts, vias_flag;
  if (!dec.GetFixed32(&magic) || magic != kPartitionMagic) {
    return Status::Corruption("bad partition map magic in " + dir);
  }
  if (!dec.GetFixed32(&version) ||
      (version != kPartitionVersion && version != kPartitionVersionV1)) {
    return Status::Corruption("unsupported partition map version in " + dir);
  }
  if (!dec.GetFixed32(&n) || !dec.GetFixed32(&num_components) ||
      !dec.GetFixed32(&num_parts) || !dec.GetFixed32(&vias_flag)) {
    return Status::Corruption("truncated partition map header in " + dir);
  }
  // Bound the header counts by the blob itself before trusting them
  // with allocations (a corrupt file must yield Corruption, not
  // bad_alloc): every vertex takes ≥ 2 bytes of varints, every part
  // ≥ 5 bytes, and components are nonempty so there are at most n.
  if (n > meta.size() / 2 || num_parts > meta.size() / 5 ||
      num_components > n || num_parts > num_components) {
    return Status::Corruption("implausible partition map header in " + dir);
  }

  PartitionedIndex index;
  index.num_components_ = num_components;
  index.vias_enabled_ = vias_flag != 0;
  index.component_.resize(n);
  index.local_id_.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    std::uint64_t comp, local;
    if (!dec.GetVarint64(&comp) || !dec.GetVarint64(&local)) {
      return Status::Corruption("truncated partition map in " + dir);
    }
    if (comp >= num_components || local >= n) {
      return Status::Corruption("partition map entry out of range in " + dir);
    }
    index.component_[v] = static_cast<std::uint32_t>(comp);
    index.local_id_[v] = static_cast<VertexId>(local);
  }
  index.part_of_component_.assign(num_components, GraphPartition::kNoPart);
  index.parts_.resize(num_parts);
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    std::uint32_t comp;
    std::uint64_t size;
    if (!dec.GetFixed32(&comp) || !dec.GetVarint64(&size)) {
      return Status::Corruption("truncated part table in " + dir);
    }
    if (comp >= num_components || size > n) {
      return Status::Corruption("part table entry out of range in " + dir);
    }
    BackendKind backend = BackendKind::kISLabel;  // all v1 parts
    if (version >= kPartitionVersion) {
      std::uint64_t name_len;
      if (!dec.GetVarint64(&name_len) || name_len > dec.Remaining()) {
        return Status::Corruption("truncated part backend name in " + dir);
      }
      std::string name(name_len, '\0');
      if (!dec.GetBytes(name.data(), name.size())) {
        return Status::Corruption("truncated part backend name in " + dir);
      }
      if (!ParseBackendKind(name, &backend) ||
          backend == BackendKind::kAuto) {
        return Status::Corruption("unknown backend '" + name + "' for part " +
                                  std::to_string(p) + " in " + dir);
      }
    }
    index.parts_[p].component = comp;
    index.parts_[p].global_ids.assign(size, kInvalidVertex);
    index.parts_[p].backend = backend;
    index.part_of_component_[comp] = p;
  }

  // Reconstruct per-part global-id arrays from the vertex map and check
  // the mapping is a bijection part-by-part.
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t p = index.part_of_component_[index.component_[v]];
    if (p == GraphPartition::kNoPart) continue;
    std::vector<VertexId>& ids = index.parts_[p].global_ids;
    const VertexId local = index.local_id_[v];
    if (local >= ids.size() || ids[local] != kInvalidVertex) {
      return Status::Corruption("partition map is not a bijection in " + dir);
    }
    ids[local] = v;
  }
  for (std::uint32_t p = 0; p < num_parts; ++p) {
    for (VertexId id : index.parts_[p].global_ids) {
      if (id == kInvalidVertex) {
        return Status::Corruption("part " + std::to_string(p) +
                                  " has unmapped local ids in " + dir);
      }
    }
  }

  for (std::uint32_t p = 0; p < num_parts; ++p) {
    auto part = LoadBackend(index.parts_[p].backend, PartDir(dir, p),
                            labels_in_memory);
    if (!part.ok()) return part.status();
    if (part.value()->NumVertices() != index.parts_[p].global_ids.size()) {
      return Status::Corruption("part " + std::to_string(p) +
                                " vertex count mismatch in " + dir);
    }
    index.parts_[p].index = std::move(part).value();
  }
  return index;
}

}  // namespace islabel
