#include "catalog/catalog.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/clock.h"

namespace islabel {

const char* DatasetStateName(DatasetState state) {
  switch (state) {
    case DatasetState::kLoading: return "loading";
    case DatasetState::kReady: return "ready";
    case DatasetState::kFailed: return "failed";
    case DatasetState::kEmpty: return "empty";
  }
  return "?";
}

/// One named dataset. The index pointer is the only hot-swapped field;
/// everything a query path touches is either immutable after
/// registration (name), snapshotted under `mu` (index), or atomic
/// (counters).
struct Catalog::Dataset {
  std::string name;                // immutable after registration
  bool labels_in_memory = true;    // immutable after registration

  mutable Mutex mu;
  CondVar loaded_cv;
  /// Backing directory; repointed by ReloadFrom (snapshot installs).
  std::string dir GUARDED_BY(mu);
  std::shared_ptr<PartitionedIndex> index GUARDED_BY(mu);
  DatasetState state GUARDED_BY(mu) = DatasetState::kLoading;
  Status load_status GUARDED_BY(mu);

  std::shared_ptr<DistanceCache> cache;  // set before serving starts

  /// Registry-backed counters (labeled {dataset=name}); set once in
  /// Catalog::NewDataset, never null afterwards.
  obs::Counter* requests = nullptr;
  obs::Counter* errors = nullptr;
  obs::Counter* reloads = nullptr;
  obs::Gauge* generation_gauge = nullptr;
  /// Data version (see DatasetInfo::generation). Written under `mu`
  /// together with the index swap; atomic so protocol reads stay
  /// lock-free (the gauge mirrors it for scrapes and may lag a write by
  /// one instruction — never the other way for protocol decisions).
  std::atomic<std::uint64_t> generation{0};

  void SetGeneration(std::uint64_t gen) {
    generation.store(gen, std::memory_order_release);
    generation_gauge->Set(static_cast<std::int64_t>(gen));
  }
};

// ---------------------------------------------------------------------------
// Handle
// ---------------------------------------------------------------------------

const std::string& Catalog::Handle::name() const { return dataset_->name; }

DatasetState Catalog::Handle::state() const {
  MutexLock lock(&dataset_->mu);
  return dataset_->state;
}

Status Catalog::Handle::load_status() const {
  MutexLock lock(&dataset_->mu);
  return dataset_->load_status;
}

std::shared_ptr<PartitionedIndex> Catalog::Handle::index() const {
  MutexLock lock(&dataset_->mu);
  return dataset_->index;
}

DistanceCache* Catalog::Handle::cache() const {
  return dataset_->cache.get();
}

Status Catalog::Handle::Ready(
    std::shared_ptr<PartitionedIndex>* index) const {
  MutexLock lock(&dataset_->mu);
  switch (dataset_->state) {
    case DatasetState::kReady:
      *index = dataset_->index;
      return Status::OK();
    case DatasetState::kLoading:
      return Status::FailedPrecondition("dataset " + dataset_->name +
                                        " is still loading");
    case DatasetState::kFailed:
      return Status::FailedPrecondition("dataset " + dataset_->name +
                                        " failed to load: " +
                                        dataset_->load_status.ToString());
    case DatasetState::kEmpty:
      return Status::FailedPrecondition("dataset " + dataset_->name +
                                        " has no data yet");
  }
  return Status::Internal("unknown dataset state");
}

Status Catalog::Handle::CheckQueryable(VertexId, VertexId) const {
  // Deliberately no range check here: the index snapshot in
  // QueryUncached owns validation, so a still-loading dataset reports
  // FailedPrecondition rather than OutOfRange-against-zero-vertices.
  return Status::OK();
}

Status Catalog::Handle::QueryUncached(VertexId s, VertexId t, Distance* out,
                                      QueryStats* stats) {
  dataset_->requests->Inc();
  // Generation FIRST, index snapshot second: if a reload lands between
  // the two, this query runs on the NEW index and its insert (under the
  // pre-bump generation) is dropped — conservative but never stale. An
  // answer computed on the OLD index always inserts under a generation
  // the reload's bump has moved past, so it is dropped too. Either way a
  // cached answer can only describe the index that was current when its
  // generation was minted.
  DistanceCache* cache = dataset_->cache.get();
  const bool use_cache = cache != nullptr && stats == nullptr;
  std::uint64_t cache_gen = 0;
  if (use_cache) {
    obs::StageTimer span(obs::Stage::kCacheLookup);
    cache_gen = cache->generation();
    if (cache->Lookup(s, t, out)) {
      // Mirror DistanceIndex::Query: flag the hit on the active trace so
      // the flight recorder can tell cached answers apart (§17).
      obs::QueryTrace* trace = obs::CurrentTrace();
      if (trace != nullptr) trace->set_cache_hit(true);
      return Status::OK();
    }
  }
  std::shared_ptr<PartitionedIndex> index;
  Status st = Ready(&index);
  if (st.ok()) st = index->Query(s, t, out, stats);
  if (!st.ok()) {
    dataset_->errors->Inc();
    return st;
  }
  if (use_cache) cache->Insert(s, t, *out, cache_gen);
  return Status::OK();
}

Status Catalog::Handle::ShortestPath(VertexId s, VertexId t,
                                     std::vector<VertexId>* path,
                                     Distance* dist) {
  dataset_->requests->Inc();
  std::shared_ptr<PartitionedIndex> index;
  Status st = Ready(&index);
  if (st.ok()) st = index->ShortestPath(s, t, path, dist);
  if (!st.ok()) dataset_->errors->Inc();
  return st;
}

Status Catalog::Handle::QueryOneToMany(VertexId s,
                                       const std::vector<VertexId>& targets,
                                       std::vector<Distance>* out,
                                       QueryStats* stats) {
  dataset_->requests->Inc();
  std::shared_ptr<PartitionedIndex> index;
  Status st = Ready(&index);
  if (st.ok()) st = index->QueryOneToMany(s, targets, out, stats);
  if (!st.ok()) dataset_->errors->Inc();
  return st;
}

VertexId Catalog::Handle::NumVertices() const {
  std::shared_ptr<PartitionedIndex> snapshot = index();
  return snapshot == nullptr ? 0 : snapshot->NumVertices();
}

bool Catalog::Handle::has_vias() const {
  std::shared_ptr<PartitionedIndex> snapshot = index();
  return snapshot != nullptr && snapshot->has_vias();
}

DistanceIndexInfo Catalog::Handle::Info() const {
  std::shared_ptr<PartitionedIndex> snapshot = index();
  if (snapshot != nullptr) return snapshot->Info();
  DistanceIndexInfo info;
  info.detail = DatasetStateName(state());
  return info;
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

Catalog::Catalog(obs::MetricRegistry* metrics) {
  if (metrics == nullptr) {
    own_metrics_ = std::make_unique<obs::MetricRegistry>();
    metrics = own_metrics_.get();
  }
  metrics_ = metrics;
}

Catalog::~Catalog() {
  std::vector<std::thread> loaders;
  {
    MutexLock lock(&mu_);
    loaders.swap(loaders_);
  }
  for (std::thread& t : loaders) {
    if (t.joinable()) t.join();
  }
}

std::shared_ptr<Catalog::Dataset> Catalog::NewDataset(
    const std::string& name) {
  auto ds = std::make_shared<Dataset>();
  ds->name = name;
  const obs::Labels labels{{"dataset", name}};
  ds->requests = metrics_->GetCounter("islabel_dataset_requests_total",
                                      "Queries routed to the dataset",
                                      labels);
  ds->errors = metrics_->GetCounter("islabel_dataset_errors_total",
                                    "Queries that failed", labels);
  ds->reloads = metrics_->GetCounter("islabel_dataset_reloads_total",
                                     "Successful reloads/installs", labels);
  ds->generation_gauge = metrics_->GetGauge(
      "islabel_dataset_generation", "Current data generation", labels);
  return ds;
}

std::shared_ptr<Catalog::Dataset> Catalog::Find(
    const std::string& name) const {
  MutexLock lock(&mu_);
  for (const auto& ds : datasets_) {
    if (ds->name == name) return ds;
  }
  return nullptr;
}

Status Catalog::Add(const std::string& name, const std::string& dir,
                    bool labels_in_memory) {
  if (name.empty()) return Status::InvalidArgument("dataset name is empty");
  auto ds = NewDataset(name);
  ds->labels_in_memory = labels_in_memory;
  {
    // Uncontended: the dataset is not yet published, but the analysis
    // (rightly) has no notion of "not shared yet".
    MutexLock dlock(&ds->mu);
    ds->dir = dir;
  }
  {
    MutexLock lock(&mu_);
    for (const auto& existing : datasets_) {
      if (existing->name == name) {
        return Status::InvalidArgument("dataset " + name +
                                       " is already registered");
      }
    }
    datasets_.push_back(ds);
    obs::MetricRegistry* metrics = metrics_;
    obs::EventLog* elog = event_log_;
    loaders_.emplace_back([ds, dir, metrics, elog] {
      auto loaded = PartitionedIndex::Load(dir, ds->labels_in_memory);
      {
        MutexLock dlock(&ds->mu);
        // A ReloadFrom that raced the initial load and won owns the state
        // now; a late initial load must not roll the generation back.
        if (ds->state == DatasetState::kLoading) {
          if (loaded.ok()) {
            ds->index = std::make_shared<PartitionedIndex>(
                std::move(loaded).value());
            ds->index->InstallMetrics(metrics);
            ds->state = DatasetState::kReady;
            ds->SetGeneration(1);
          } else {
            ds->load_status = loaded.status();
            ds->state = DatasetState::kFailed;
          }
        }
        ds->loaded_cv.NotifyAll();
      }
      if (elog != nullptr) {
        if (loaded.ok()) {
          elog->Log(obs::EventLevel::kInfo, "islabel.catalog.load",
                    {{"dataset", ds->name}, {"dir", dir}});
        } else {
          elog->Log(obs::EventLevel::kError, "islabel.catalog.load_failed",
                    {{"dataset", ds->name},
                     {"dir", dir},
                     {"error", loaded.status().ToString()}});
        }
      }
    });
  }
  return Status::OK();
}

Status Catalog::AddIndex(const std::string& name, PartitionedIndex index,
                         std::string dir) {
  if (name.empty()) return Status::InvalidArgument("dataset name is empty");
  auto ds = NewDataset(name);
  {
    MutexLock dlock(&ds->mu);  // unpublished; lock only for the analysis
    ds->dir = std::move(dir);
    ds->index = std::make_shared<PartitionedIndex>(std::move(index));
    ds->index->InstallMetrics(metrics_);
    ds->state = DatasetState::kReady;
  }
  ds->SetGeneration(1);
  MutexLock lock(&mu_);
  for (const auto& existing : datasets_) {
    if (existing->name == name) {
      return Status::InvalidArgument("dataset " + name +
                                     " is already registered");
    }
  }
  datasets_.push_back(std::move(ds));
  return Status::OK();
}

Status Catalog::AddEmpty(const std::string& name) {
  if (name.empty()) return Status::InvalidArgument("dataset name is empty");
  auto ds = NewDataset(name);
  {
    MutexLock dlock(&ds->mu);  // unpublished; lock only for the analysis
    ds->state = DatasetState::kEmpty;
  }
  MutexLock lock(&mu_);
  for (const auto& existing : datasets_) {
    if (existing->name == name) {
      return Status::InvalidArgument("dataset " + name +
                                     " is already registered");
    }
  }
  datasets_.push_back(std::move(ds));
  return Status::OK();
}

Status Catalog::WaitReady() {
  std::vector<std::shared_ptr<Dataset>> datasets;
  {
    MutexLock lock(&mu_);
    datasets = datasets_;
  }
  Status first_error;
  for (const auto& ds : datasets) {
    MutexLock dlock(&ds->mu);
    while (ds->state == DatasetState::kLoading) ds->loaded_cv.Wait(&ds->mu);
    if (ds->state == DatasetState::kFailed && first_error.ok()) {
      first_error = ds->load_status;
    }
  }
  return first_error;
}

Catalog::Handle Catalog::Get(const std::string& name) const {
  return Handle(Find(name));
}

Status Catalog::Reload(const std::string& name) {
  std::shared_ptr<Dataset> ds = Find(name);
  if (ds == nullptr) return Status::NotFound("unknown dataset " + name);
  std::string dir;
  bool labels_in_memory;
  {
    MutexLock lock(&ds->mu);
    if (ds->state == DatasetState::kLoading) {
      return Status::FailedPrecondition("dataset " + name +
                                        " is still loading");
    }
    dir = ds->dir;
    labels_in_memory = ds->labels_in_memory;
  }
  if (dir.empty()) {
    return Status::FailedPrecondition("dataset " + name +
                                      " has no backing directory");
  }
  static const SystemClock kReloadClock;
  const std::uint64_t t0 = kReloadClock.NowMicros();
  // The expensive load runs without any lock; queries proceed on the old
  // index throughout.
  auto loaded = PartitionedIndex::Load(dir, labels_in_memory);
  if (!loaded.ok()) return loaded.status();
  auto fresh =
      std::make_shared<PartitionedIndex>(std::move(loaded).value());
  fresh->InstallMetrics(metrics_);
  {
    MutexLock lock(&ds->mu);
    ds->index = std::move(fresh);  // old version lives on in query snapshots
    ds->state = DatasetState::kReady;
    ds->load_status = Status::OK();
    ds->SetGeneration(
        ds->generation.load(std::memory_order_acquire) + 1);
  }
  // Publish-then-bump: see the ordering argument in Handle::Query.
  if (ds->cache != nullptr) ds->cache->BumpGeneration();
  ds->reloads->Inc();
  metrics_
      ->GetHistogram("islabel_catalog_reload_seconds",
                     "Reload/install duration (load + swap)")
      ->Record(kReloadClock.NowMicros() - t0);
  if (event_log_ != nullptr) {
    event_log_->Log(obs::EventLevel::kInfo, "islabel.catalog.reload",
                    {{"dataset", name},
                     {"gen", obs::EventLog::U64(ds->generation.load(
                                 std::memory_order_acquire))}});
  }
  return Status::OK();
}

Status Catalog::ReloadFrom(const std::string& name, const std::string& dir,
                           std::uint64_t gen) {
  std::shared_ptr<Dataset> ds = Find(name);
  if (ds == nullptr) return Status::NotFound("unknown dataset " + name);
  // Check ordering up front to skip a pointless load; re-checked under
  // the lock before the swap in case installs race.
  if (gen <= ds->generation.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition(
        "dataset " + name + " is already at generation " +
        std::to_string(ds->generation.load(std::memory_order_acquire)) +
        " >= " + std::to_string(gen));
  }
  static const SystemClock kInstallClock;
  const std::uint64_t t0 = kInstallClock.NowMicros();
  // Load before touching any dataset state: a corrupt or truncated
  // directory must leave the currently-serving version untouched.
  auto loaded = PartitionedIndex::Load(dir, ds->labels_in_memory);
  if (!loaded.ok()) return loaded.status();
  auto fresh = std::make_shared<PartitionedIndex>(std::move(loaded).value());
  fresh->InstallMetrics(metrics_);
  {
    MutexLock lock(&ds->mu);
    if (gen <= ds->generation.load(std::memory_order_acquire)) {
      return Status::FailedPrecondition(
          "dataset " + name + " overtook generation " + std::to_string(gen) +
          " during install");
    }
    ds->index = std::move(fresh);
    ds->state = DatasetState::kReady;
    ds->load_status = Status::OK();
    ds->dir = dir;
    ds->SetGeneration(gen);
    ds->loaded_cv.NotifyAll();  // an install also resolves WaitReady
  }
  // Publish-then-bump, exactly as Reload.
  if (ds->cache != nullptr) ds->cache->BumpGeneration();
  ds->reloads->Inc();
  metrics_
      ->GetHistogram("islabel_catalog_reload_seconds",
                     "Reload/install duration (load + swap)")
      ->Record(kInstallClock.NowMicros() - t0);
  if (event_log_ != nullptr) {
    event_log_->Log(obs::EventLevel::kInfo, "islabel.catalog.reload",
                    {{"dataset", name},
                     {"gen", obs::EventLog::U64(gen)},
                     {"dir", dir}});
  }
  return Status::OK();
}

std::uint64_t Catalog::Generation(const std::string& name) const {
  std::shared_ptr<Dataset> ds = Find(name);
  return ds == nullptr ? 0
                       : ds->generation.load(std::memory_order_acquire);
}

std::string Catalog::Dir(const std::string& name) const {
  std::shared_ptr<Dataset> ds = Find(name);
  if (ds == nullptr) return "";
  MutexLock lock(&ds->mu);
  return ds->dir;
}

Status Catalog::SetDistanceCache(const std::string& name,
                                 std::shared_ptr<DistanceCache> cache) {
  std::shared_ptr<Dataset> ds = Find(name);
  if (ds == nullptr) return Status::NotFound("unknown dataset " + name);
  ds->cache = std::move(cache);
  return Status::OK();
}

std::vector<std::string> Catalog::Names() const {
  MutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(datasets_.size());
  for (const auto& ds : datasets_) names.push_back(ds->name);
  return names;
}

std::vector<DatasetInfo> Catalog::List() const {
  std::vector<std::shared_ptr<Dataset>> datasets;
  {
    MutexLock lock(&mu_);
    datasets = datasets_;
  }
  std::vector<DatasetInfo> infos;
  infos.reserve(datasets.size());
  for (const auto& ds : datasets) {
    DatasetInfo info;
    info.name = ds->name;
    info.requests = ds->requests->Value();
    info.errors = ds->errors->Value();
    info.reloads = ds->reloads->Value();
    info.generation = ds->generation.load(std::memory_order_acquire);
    info.cache = ds->cache;
    {
      MutexLock dlock(&ds->mu);
      info.state = ds->state;
      if (ds->index != nullptr) {
        info.parts = ds->index->num_parts();
        info.vertices = ds->index->NumVertices();
        info.backends = ds->index->BackendSummary();
        const DistanceIndexInfo index_info = ds->index->Info();
        info.index_entries = index_info.entries;
        info.index_bytes = index_info.bytes;
      }
    }
    infos.push_back(std::move(info));
  }
  return infos;
}

}  // namespace islabel
