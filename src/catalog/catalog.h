// Catalog: named multi-dataset hosting with hot-swap reload.
//
// One process, many indexes: the catalog maps dataset names to
// PartitionedIndex instances, loads them on background threads, and can
// atomically replace a dataset's index from its directory while queries
// are in flight ("reload"). The serving layer (stdin loop and TCP
// server) routes each connection's requests to its selected dataset.
//
// Lifetime model — why reload is safe under load:
//   * the current index of a dataset is held as a shared_ptr; Handle
//     query calls snapshot it, so an in-flight query keeps the old index
//     alive until the call returns, no matter how many reloads land;
//   * the swap itself is a pointer assignment under the dataset mutex —
//     queries never block on a reload (they only take the mutex for the
//     snapshot copy).
//
// Cache coherence across a swap: each dataset may carry a DistanceCache
// (installed by the serving layer). Handle::Query snapshots the cache
// generation BEFORE snapshotting the index, and Reload publishes the new
// index BEFORE bumping the generation. Any answer computed on the old
// index therefore inserts under a generation that has moved on by the
// time the new index is visible, so the cache (whose Insert drops
// stale-generation entries by contract) can never serve an answer that
// outlives a swapped index. See DESIGN.md §12 for the interleaving
// argument.

#ifndef ISLABEL_CATALOG_CATALOG_H_
#define ISLABEL_CATALOG_CATALOG_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "catalog/partitioned_index.h"
#include "core/distance_cache.h"
#include "obs/log.h"
#include "util/mutex.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace islabel {

/// Load state of a catalog dataset.
enum class DatasetState : std::uint8_t {
  kLoading = 0,
  kReady = 1,
  kFailed = 2,
  /// Registered but holding no data yet (a replica awaiting its first
  /// snapshot). Queries answer FailedPrecondition until an install.
  kEmpty = 3,
};

/// Returns "loading" / "ready" / "failed" / "empty".
const char* DatasetStateName(DatasetState state);

/// Point-in-time counters for one dataset (the `stats` verb and the
/// `datasets` listing).
struct DatasetInfo {
  std::string name;
  DatasetState state = DatasetState::kLoading;
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t reloads = 0;
  /// Monotonic data version: 1 once the initial load completes, bumped by
  /// every Reload, set explicitly by ReloadFrom (snapshot installs). 0
  /// while no data has ever been served. The replication protocol ships
  /// and compares exactly this number.
  std::uint64_t generation = 0;
  std::uint32_t parts = 0;
  std::uint64_t vertices = 0;
  /// Per-part backend summary (PartitionedIndex::BackendSummary), empty
  /// until the index is loaded.
  std::string backends;
  /// Aggregate index size across parts (label entries / up-edges and
  /// their bytes), from DistanceIndex::Info.
  std::uint64_t index_entries = 0;
  std::uint64_t index_bytes = 0;
  /// The dataset's distance cache (null if none installed) — surfaced
  /// here so stats assembly needs no per-dataset catalog lookups.
  std::shared_ptr<DistanceCache> cache;
};

class Catalog {
 public:
  /// A catalog always has a metric registry (DESIGN.md §16): the
  /// injected one when given, an owned one otherwise. Per-dataset
  /// request/error/reload counters, the generation gauge and the reload
  /// duration histogram register there, and every loaded index gets
  /// InstallMetrics so backend pools feed the same registry. An injected
  /// registry must outlive the catalog.
  explicit Catalog(obs::MetricRegistry* metrics = nullptr);
  ~Catalog();

  obs::MetricRegistry* metrics() const { return metrics_; }

  /// Structured event log for load/reload outcomes (DESIGN.md §17).
  /// Install before Add/serving starts; must outlive the catalog.
  void set_event_log(obs::EventLog* log) { event_log_ = log; }
  obs::EventLog* event_log() const { return event_log_; }

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  struct Dataset;

  /// Ref-counted dataset handle — itself a DistanceIndex, so the serving
  /// layer programs against one query surface whether it holds a raw
  /// backend, a partitioned index, or a hot-swappable catalog dataset.
  /// Copyable and cheap; keeps the dataset record (not any particular
  /// index version) alive. Query calls snapshot the current index, so
  /// they are safe across Reload.
  ///
  /// Caching: the dataset's DistanceCache (SetDistanceCache) is consulted
  /// inside QueryUncached with the generation-before-snapshot ordering
  /// described above — NOT via DistanceIndex::set_distance_cache, whose
  /// per-instance cache would not survive Handle copies.
  class Handle : public DistanceIndex {
   public:
    Handle() = default;
    Handle(const Handle&) = default;
    Handle(Handle&&) = default;
    Handle& operator=(const Handle&) = default;
    Handle& operator=(Handle&&) = default;

    explicit operator bool() const { return dataset_ != nullptr; }
    const std::string& name() const;
    DatasetState state() const;
    /// The load error when state() == kFailed.
    Status load_status() const;

    /// Snapshot of the current index (nullptr until loaded). Holding the
    /// returned pointer pins that index version across reloads.
    std::shared_ptr<PartitionedIndex> index() const;

    /// The dataset's distance cache, if the serving layer installed one.
    DistanceCache* cache() const;

    // -- DistanceIndex surface: routes to the current index snapshot,
    // consults the dataset cache (stats-free Query only), and bumps the
    // per-dataset request/error counters. All thread-safe. --
    Status ShortestPath(VertexId s, VertexId t, std::vector<VertexId>* path,
                        Distance* dist) override;
    Status QueryOneToMany(VertexId s, const std::vector<VertexId>& targets,
                          std::vector<Distance>* out,
                          QueryStats* stats = nullptr) override;

    /// 0 until the dataset finishes loading (queries before then fail in
    /// QueryUncached with FailedPrecondition, not OutOfRange — see
    /// CheckQueryable).
    VertexId NumVertices() const override;
    bool has_vias() const override;
    /// The current index's Info, or state()-only info while not ready.
    DistanceIndexInfo Info() const override;

   protected:
    /// Counters + dataset cache + index snapshot + route; the full
    /// uncached query path for one validated pair.
    Status QueryUncached(VertexId s, VertexId t, Distance* out,
                         QueryStats* stats) override;
    /// Always OK: range validation belongs to the index snapshot taken
    /// inside QueryUncached. The base range check against NumVertices()
    /// would misreport a still-loading dataset (0 vertices) as
    /// OutOfRange instead of FailedPrecondition.
    Status CheckQueryable(VertexId s, VertexId t) const override;

   private:
    friend class Catalog;
    explicit Handle(std::shared_ptr<Dataset> dataset)
        : dataset_(std::move(dataset)) {}

    Status Ready(std::shared_ptr<PartitionedIndex>* index) const;

    std::shared_ptr<Dataset> dataset_;
  };

  /// Registers `name` and starts loading `dir` on a background thread
  /// (PartitionedIndex::Load — both catalog and plain index directories).
  /// Fails if the name is already registered.
  Status Add(const std::string& name, const std::string& dir,
             bool labels_in_memory = true);

  /// Registers an already-built index under `name` (ready immediately).
  /// `dir` may be empty; Reload then fails until one is set via Add.
  Status AddIndex(const std::string& name, PartitionedIndex index,
                  std::string dir = "");

  /// Registers `name` with no data (state kEmpty) — how a replica creates
  /// a dataset it has only heard of. Queries fail with FailedPrecondition
  /// until the first ReloadFrom installs a snapshot.
  Status AddEmpty(const std::string& name);

  /// Blocks until every registered dataset has finished loading; returns
  /// the first load error (all loads still run to completion).
  Status WaitReady();

  /// Handle for `name`; an empty Handle if the name is unknown.
  Handle Get(const std::string& name) const;

  /// Reloads `name` from its directory and atomically swaps the fresh
  /// index in. In-flight queries keep the old index alive; the dataset's
  /// cache generation is bumped after the swap so no cached answer
  /// outlives it. Blocking (call from a worker, not the event loop).
  Status Reload(const std::string& name);

  /// Installs a fully-written index directory as generation `gen` of
  /// `name`: loads it, atomically swaps it in through the same
  /// publish-then-bump path as Reload, and repoints the dataset's backing
  /// directory at `dir`. Rejects gen <= the current generation
  /// (FailedPrecondition) so installs are strictly generation-ordered —
  /// a stale or duplicated snapshot can never roll a replica back. The
  /// load runs before any state changes: a corrupt directory leaves the
  /// old version serving untouched.
  Status ReloadFrom(const std::string& name, const std::string& dir,
                    std::uint64_t gen);

  /// The dataset's current generation (0 if unknown or never loaded).
  std::uint64_t Generation(const std::string& name) const;

  /// The dataset's current backing directory ("" if unknown or none) —
  /// what a primary packs into a snapshot. Tracks ReloadFrom installs.
  std::string Dir(const std::string& name) const;

  /// Installs a distance cache for `name` (consulted by Handle::Query).
  /// Not thread-safe against concurrent queries on the same dataset —
  /// install caches before serving starts.
  Status SetDistanceCache(const std::string& name,
                          std::shared_ptr<DistanceCache> cache);

  /// Registered dataset names, in registration order.
  std::vector<std::string> Names() const;

  /// Counters for every dataset, in registration order.
  std::vector<DatasetInfo> List() const;

 private:
  std::shared_ptr<Dataset> Find(const std::string& name) const;
  std::shared_ptr<Dataset> NewDataset(const std::string& name);

  std::unique_ptr<obs::MetricRegistry> own_metrics_;
  obs::MetricRegistry* metrics_ = nullptr;  // never null after construction
  obs::EventLog* event_log_ = nullptr;      // set before serving starts

  mutable Mutex mu_;
  std::vector<std::shared_ptr<Dataset>> datasets_ GUARDED_BY(mu_);
  std::vector<std::thread> loaders_ GUARDED_BY(mu_);
};

}  // namespace islabel

#endif  // ISLABEL_CATALOG_CATALOG_H_
