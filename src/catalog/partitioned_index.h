// PartitionedIndex: per-connected-component sub-indexes behind the
// DistanceIndex query surface — with a pluggable backend per component.
//
// The paper's large instances (BTC, web-uk, the DIMACS road networks)
// are disconnected in the raw data, yet a monolithic index burns a full
// bidirectional search to conclude "unreachable" for every
// cross-component pair. This layer decomposes the input before indexing:
// ComponentPartitioner splits the graph into connected components with
// densely renumbered per-part vertex ids, Build() indexes each component
// independently (in parallel across components), and queries route
// through the vertex→component map — same-component pairs are translated
// into the owning sub-index (answers and paths are mapped back to
// original ids), cross-component pairs answer kInfDistance in O(1)
// without ever touching a backend.
//
// Each component picks its own backend (PartitionOptions::backend):
// IS-LABEL, CH, or auto — where the registry's road-likeness heuristic
// decides per component, so one dataset can host a road-like component
// on CH next to a scale-free one on IS-LABEL. The manifest records each
// part's backend by name; loading a manifest naming an unknown backend
// fails with Corruption (never a misparse).
//
// Invariants that make routed answers bit-identical to a monolithic
// index on the same graph:
//   * the sub-graph of a component contains exactly its induced edges,
//     so every s-t path of the original graph survives the remap;
//   * local ids are assigned in ascending global-id order per part, and
//     GlobalId(PartOf(v), LocalId(v)) == v for every vertex;
//   * singleton components build no sub-index at all — the only
//     same-component query they can receive is s == t, answered 0
//     directly (and `{s}` for paths), exactly as a backend would.
//
// Thread-safety follows the DistanceIndex contract: the routing arrays
// are immutable after Build/Load and every sub-index entry point leases
// engines/scratch internally, so all query entry points may be called
// concurrently.

#ifndef ISLABEL_CATALOG_PARTITIONED_INDEX_H_
#define ISLABEL_CATALOG_PARTITIONED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/distance_index.h"
#include "core/index.h"
#include "graph/graph.h"
#include "util/result.h"

namespace islabel {

/// One connected component extracted by ComponentPartitioner, with the
/// id remapping that produced it.
struct GraphPart {
  /// The component id (index into GraphPartition::part_of_component).
  std::uint32_t component = 0;
  /// Induced subgraph over the component, vertices renumbered densely in
  /// ascending global-id order.
  Graph graph;
  /// Local id -> original id (ascending).
  std::vector<VertexId> global_ids;
};

/// Full result of a partitioning pass. Components of size 1 get no part
/// (part_of_component[c] == kNoPart): they carry no edges, so there is
/// nothing to index.
struct GraphPartition {
  static constexpr std::uint32_t kNoPart = UINT32_MAX;

  /// component[v] = connected-component id in [0, num_components).
  std::vector<std::uint32_t> component;
  /// local_id[v] = v's dense id inside its part (0 for singletons).
  std::vector<VertexId> local_id;
  /// component id -> part index, or kNoPart for singletons.
  std::vector<std::uint32_t> part_of_component;
  std::vector<GraphPart> parts;
  std::uint32_t num_components = 0;
};

/// Splits a graph into its connected components with per-part dense
/// renumbering (see GraphPartition). Deterministic: components, parts and
/// local ids are all ordered by smallest global vertex id.
class ComponentPartitioner {
 public:
  static GraphPartition Partition(const Graph& g);
};

/// Options for PartitionedIndex::Build.
struct PartitionOptions {
  /// Per-component build options for IS-LABEL parts (σ, forced k, vias,
  /// labeling threads...). CH parts ignore it.
  IndexOptions index;
  /// Worker threads ACROSS components (0 = hardware concurrency). Within
  /// a component, labeling uses index.num_threads as usual.
  std::uint32_t num_threads = 0;
  /// Index family per component; kAuto picks per component via the
  /// registry's road-likeness heuristic, so components may mix.
  BackendKind backend = BackendKind::kISLabel;
};

/// A DistanceIndex composed of one sub-index per connected component,
/// each on its own backend. Movable, not copyable. All query entry
/// points are thread-safe; the index is immutable after Build/Load.
class PartitionedIndex : public DistanceIndex {
 public:
  PartitionedIndex() = default;
  PartitionedIndex(PartitionedIndex&&) = default;
  PartitionedIndex& operator=(PartitionedIndex&&) = default;

  /// Partitions `g` and builds one sub-index per multi-vertex component,
  /// components built in parallel (PartitionOptions::num_threads).
  static Result<PartitionedIndex> Build(const Graph& g,
                                       const PartitionOptions& options = {});

  /// Wraps an already-built monolithic index as a single-part
  /// partitioned index (identity id mapping, every vertex in part 0) —
  /// how plain `islabel build` directories enter the catalog.
  static PartitionedIndex FromMonolithic(ISLabelIndex index);

  /// Same, for any backend instance.
  static PartitionedIndex FromBackend(std::unique_ptr<DistanceIndex> index,
                                      BackendKind backend);

  // ---- Query surface (original-graph ids). Query/QueryBatch/
  // QueryManyToMany come from DistanceIndex; cross-component pairs are
  // answered kInfDistance in O(1) from the partition map. ----

  /// Exact shortest path in original-graph ids (empty + kInfDistance when
  /// disconnected, including the O(1) cross-component case). Thread-safe.
  Status ShortestPath(VertexId s, VertexId t, std::vector<VertexId>* path,
                      Distance* dist) override;

  /// Distances from s to every target. Targets in s's component share one
  /// backend call; targets elsewhere are answered unreachable without
  /// touching it. All endpoints validated up front, any invalid endpoint
  /// fails the whole call. Thread-safe.
  Status QueryOneToMany(VertexId s, const std::vector<VertexId>& targets,
                        std::vector<Distance>* out,
                        QueryStats* stats = nullptr) override;

  // ---- Persistence ----

  /// Writes `<dir>/partition.islp` (the vertex→component/local-id map
  /// plus each part's backend name) and one backend directory per part
  /// under `<dir>/partNNNNN`.
  Status Save(const std::string& dir) const override;

  /// Loads a saved catalog directory. Falls back to a monolithic backend
  /// directory (sniffed by the registry, wrapped via FromBackend) when
  /// `<dir>/partition.islp` is absent, so both layouts are servable.
  /// A manifest naming an unknown backend yields Corruption with the
  /// offending name.
  static Result<PartitionedIndex> Load(const std::string& dir,
                                       bool labels_in_memory = true);

  // ---- Introspection ----

  /// Forwards to every part's backend, so a mixed-backend catalog feeds
  /// the shared pool gauges from all of its IS-LABEL parts.
  void InstallMetrics(obs::MetricRegistry* registry) override {
    for (auto& part : parts_) {
      if (part.index != nullptr) part.index->InstallMetrics(registry);
    }
  }

  VertexId NumVertices() const override {
    return static_cast<VertexId>(component_.size());
  }
  std::uint32_t num_components() const { return num_components_; }
  std::uint32_t num_parts() const {
    return static_cast<std::uint32_t>(parts_.size());
  }
  std::uint32_t ComponentOf(VertexId v) const { return component_[v]; }
  /// Part owning v, or GraphPartition::kNoPart for singleton vertices.
  std::uint32_t PartOf(VertexId v) const {
    return part_of_component_[component_[v]];
  }
  VertexId LocalId(VertexId v) const { return local_id_[v]; }
  VertexId GlobalId(std::uint32_t part, VertexId local) const {
    return parts_[part].global_ids[local];
  }
  const DistanceIndex& part(std::uint32_t p) const {
    return *parts_[p].index;
  }
  DistanceIndex* mutable_part(std::uint32_t p) {
    return parts_[p].index.get();
  }
  BackendKind part_backend(std::uint32_t p) const {
    return parts_[p].backend;
  }
  const std::vector<VertexId>& part_global_ids(std::uint32_t p) const {
    return parts_[p].global_ids;
  }
  bool has_vias() const override { return vias_enabled_; }

  /// Aggregated across parts: entries/bytes summed, backend naming the
  /// single family or "mixed", detail = BackendSummary().
  DistanceIndexInfo Info() const override;

  /// Per-part "p<idx>=<backend>/<entries>" summary (comma-joined, first
  /// 8 parts, "+N" for the rest) for the `stats` verb — colon- and
  /// space-free so it stays one wire token.
  std::string BackendSummary() const;

  /// Queries answered unreachable straight from the partition map (no
  /// engine lease) / routed into a sub-index, since construction.
  std::uint64_t cross_component_queries() const {
    return counters_->cross_component.load(std::memory_order_relaxed);
  }
  std::uint64_t routed_queries() const {
    return counters_->routed.load(std::memory_order_relaxed);
  }

 protected:
  /// Routes one validated pair: O(1) for cross-component/singleton,
  /// otherwise the owning part's backend.
  Status QueryUncached(VertexId s, VertexId t, Distance* out,
                       QueryStats* stats) override;
  Status CheckQueryable(VertexId s, VertexId t) const override;

 private:
  struct PartEntry {
    std::uint32_t component = 0;
    std::vector<VertexId> global_ids;
    std::unique_ptr<DistanceIndex> index;
    BackendKind backend = BackendKind::kISLabel;
  };
  /// Heap-allocated so the index stays movable despite the atomics.
  struct Counters {
    std::atomic<std::uint64_t> cross_component{0};
    std::atomic<std::uint64_t> routed{0};
  };

  std::vector<std::uint32_t> component_;
  std::vector<VertexId> local_id_;
  std::vector<std::uint32_t> part_of_component_;
  std::vector<PartEntry> parts_;
  std::uint32_t num_components_ = 0;
  bool vias_enabled_ = true;
  std::unique_ptr<Counters> counters_ = std::make_unique<Counters>();
};

}  // namespace islabel

#endif  // ISLABEL_CATALOG_PARTITIONED_INDEX_H_
