// PartitionedIndex: per-connected-component sub-indexes behind the
// ISLabelIndex query surface.
//
// The paper's large instances (BTC, web-uk, the DIMACS road networks)
// are disconnected in the raw data, yet a monolithic index burns a full
// bidirectional search to conclude "unreachable" for every
// cross-component pair. This layer decomposes the input before labeling:
// ComponentPartitioner splits the graph into connected components with
// densely renumbered per-part vertex ids, Build() labels each component
// independently (in parallel across components), and queries route
// through the vertex→component map — same-component pairs are translated
// into the owning sub-index (answers and paths are mapped back to
// original ids), cross-component pairs answer kInfDistance in O(1)
// without ever leasing a query engine.
//
// Invariants that make routed answers bit-identical to a monolithic
// index on the same graph:
//   * the sub-graph of a component contains exactly its induced edges,
//     so every s-t path of the original graph survives the remap;
//   * local ids are assigned in ascending global-id order per part, and
//     GlobalId(PartOf(v), LocalId(v)) == v for every vertex;
//   * singleton components build no sub-index at all — the only
//     same-component query they can receive is s == t, answered 0
//     directly (and `{s}` for paths), exactly as the engine would.
//
// Thread-safety matches ISLabelIndex: the routing arrays are immutable
// after Build/Load and every sub-index entry point leases engines
// internally, so all query entry points may be called concurrently.

#ifndef ISLABEL_CATALOG_PARTITIONED_INDEX_H_
#define ISLABEL_CATALOG_PARTITIONED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/index.h"
#include "graph/graph.h"
#include "util/result.h"

namespace islabel {

/// One connected component extracted by ComponentPartitioner, with the
/// id remapping that produced it.
struct GraphPart {
  /// The component id (index into GraphPartition::part_of_component).
  std::uint32_t component = 0;
  /// Induced subgraph over the component, vertices renumbered densely in
  /// ascending global-id order.
  Graph graph;
  /// Local id -> original id (ascending).
  std::vector<VertexId> global_ids;
};

/// Full result of a partitioning pass. Components of size 1 get no part
/// (part_of_component[c] == kNoPart): they carry no edges, so there is
/// nothing to index.
struct GraphPartition {
  static constexpr std::uint32_t kNoPart = UINT32_MAX;

  /// component[v] = connected-component id in [0, num_components).
  std::vector<std::uint32_t> component;
  /// local_id[v] = v's dense id inside its part (0 for singletons).
  std::vector<VertexId> local_id;
  /// component id -> part index, or kNoPart for singletons.
  std::vector<std::uint32_t> part_of_component;
  std::vector<GraphPart> parts;
  std::uint32_t num_components = 0;
};

/// Splits a graph into its connected components with per-part dense
/// renumbering (see GraphPartition). Deterministic: components, parts and
/// local ids are all ordered by smallest global vertex id.
class ComponentPartitioner {
 public:
  static GraphPartition Partition(const Graph& g);
};

/// Options for PartitionedIndex::Build.
struct PartitionOptions {
  /// Per-component build options (σ, forced k, vias, labeling threads...).
  IndexOptions index;
  /// Worker threads ACROSS components (0 = hardware concurrency). Within
  /// a component, labeling uses index.num_threads as usual.
  std::uint32_t num_threads = 0;
};

/// An ISLabelIndex-shaped index composed of one sub-index per connected
/// component. Movable, not copyable. All query entry points are
/// thread-safe; the index is immutable after Build/Load.
class PartitionedIndex {
 public:
  PartitionedIndex() = default;
  PartitionedIndex(PartitionedIndex&&) = default;
  PartitionedIndex& operator=(PartitionedIndex&&) = default;

  /// Partitions `g` and builds one sub-index per multi-vertex component,
  /// components built in parallel (PartitionOptions::num_threads).
  static Result<PartitionedIndex> Build(const Graph& g,
                                       const PartitionOptions& options = {});

  /// Wraps an already-built monolithic index as a single-part
  /// partitioned index (identity id mapping, every vertex in part 0) —
  /// how plain `islabel build` directories enter the catalog.
  static PartitionedIndex FromMonolithic(ISLabelIndex index);

  // ---- Query surface (mirrors ISLabelIndex; original-graph ids) ----

  /// Exact distance; kInfDistance for cross-component pairs, answered in
  /// O(1) from the partition map without leasing an engine. Thread-safe.
  Status Query(VertexId s, VertexId t, Distance* out,
               QueryStats* stats = nullptr);

  /// Exact shortest path in original-graph ids (empty + kInfDistance when
  /// disconnected, including the O(1) cross-component case). Thread-safe.
  Status ShortestPath(VertexId s, VertexId t, std::vector<VertexId>* path,
                      Distance* dist);

  /// Answers every pair; same per-pair error semantics as
  /// ISLabelIndex::QueryBatch. Cross-component pairs cost O(1) each.
  /// Thread-safe.
  Status QueryBatch(const std::vector<std::pair<VertexId, VertexId>>& pairs,
                    std::vector<Distance>* out, std::uint32_t num_threads = 0,
                    std::vector<Status>* statuses = nullptr);

  /// Distances from s to every target. Targets in s's component share one
  /// forward ball in the owning sub-index; targets elsewhere are answered
  /// unreachable without touching it. All endpoints validated up front,
  /// any invalid endpoint fails the whole call (ISLabelIndex semantics).
  /// Thread-safe.
  Status QueryOneToMany(VertexId s, const std::vector<VertexId>& targets,
                        std::vector<Distance>* out,
                        QueryStats* stats = nullptr);

  // ---- Persistence ----

  /// Writes `<dir>/partition.islp` (the vertex→component/local-id map)
  /// plus one ISLabelIndex directory per part under `<dir>/partNNNNN`.
  Status Save(const std::string& dir) const;

  /// Loads a saved catalog directory. Falls back to a monolithic
  /// ISLabelIndex directory (wrapped via FromMonolithic) when
  /// `<dir>/partition.islp` is absent, so both layouts are servable.
  static Result<PartitionedIndex> Load(const std::string& dir,
                                       bool labels_in_memory = true);

  // ---- Introspection ----

  VertexId NumVertices() const {
    return static_cast<VertexId>(component_.size());
  }
  std::uint32_t num_components() const { return num_components_; }
  std::uint32_t num_parts() const {
    return static_cast<std::uint32_t>(parts_.size());
  }
  std::uint32_t ComponentOf(VertexId v) const { return component_[v]; }
  /// Part owning v, or GraphPartition::kNoPart for singleton vertices.
  std::uint32_t PartOf(VertexId v) const {
    return part_of_component_[component_[v]];
  }
  VertexId LocalId(VertexId v) const { return local_id_[v]; }
  VertexId GlobalId(std::uint32_t part, VertexId local) const {
    return parts_[part].global_ids[local];
  }
  const ISLabelIndex& part(std::uint32_t p) const { return parts_[p].index; }
  ISLabelIndex* mutable_part(std::uint32_t p) { return &parts_[p].index; }
  const std::vector<VertexId>& part_global_ids(std::uint32_t p) const {
    return parts_[p].global_ids;
  }
  bool has_vias() const { return vias_enabled_; }

  /// Queries answered unreachable straight from the partition map (no
  /// engine lease) / routed into a sub-index, since construction.
  std::uint64_t cross_component_queries() const {
    return counters_->cross_component.load(std::memory_order_relaxed);
  }
  std::uint64_t routed_queries() const {
    return counters_->routed.load(std::memory_order_relaxed);
  }

 private:
  struct PartEntry {
    std::uint32_t component = 0;
    std::vector<VertexId> global_ids;
    ISLabelIndex index;
  };
  /// Heap-allocated so the index stays movable despite the atomics.
  struct Counters {
    std::atomic<std::uint64_t> cross_component{0};
    std::atomic<std::uint64_t> routed{0};
  };

  Status CheckIds(VertexId s, VertexId t) const;

  std::vector<std::uint32_t> component_;
  std::vector<VertexId> local_id_;
  std::vector<std::uint32_t> part_of_component_;
  std::vector<PartEntry> parts_;
  std::uint32_t num_components_ = 0;
  bool vias_enabled_ = true;
  std::unique_ptr<Counters> counters_ = std::make_unique<Counters>();
};

}  // namespace islabel

#endif  // ISLABEL_CATALOG_PARTITIONED_INDEX_H_
