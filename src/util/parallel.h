// Minimal deterministic fork-join parallelism for the build pipeline.
//
// ParallelFor statically partitions [0, n) into one contiguous chunk per
// worker. Work items must be independent (no two items write the same
// location); under that contract results are byte-identical for every
// thread count, which the labeling determinism tests assert.

#ifndef ISLABEL_UTIL_PARALLEL_H_
#define ISLABEL_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace islabel {

/// Resolves a thread-count option: 0 means one per hardware thread.
inline unsigned EffectiveThreads(std::uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

/// Calls fn(i) for every i in [0, n), split across `num_threads` workers
/// (0 = hardware concurrency). Runs inline when one worker suffices. fn
/// must not throw. `min_items_per_worker` caps the worker count for small
/// ranges so thread spawn/join (~tens of µs each) cannot exceed the work
/// itself — tune it to the per-item cost.
template <typename Fn>
void ParallelFor(std::size_t n, std::uint32_t num_threads, Fn&& fn,
                 std::size_t min_items_per_worker = 1) {
  std::size_t workers = std::min<std::size_t>(EffectiveThreads(num_threads), n);
  if (min_items_per_worker > 1) {
    workers = std::min(workers,
                       std::max<std::size_t>(1, n / min_items_per_worker));
  }
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  auto run_chunk = [&fn, n, workers](std::size_t w) {
    const std::size_t begin = n * w / workers;
    const std::size_t end = n * (w + 1) / workers;
    for (std::size_t i = begin; i < end; ++i) fn(i);
  };
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back(run_chunk, w);
  }
  run_chunk(0);
  for (std::thread& t : pool) t.join();
}

}  // namespace islabel

#endif  // ISLABEL_UTIL_PARALLEL_H_
