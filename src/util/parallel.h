// Minimal deterministic fork-join parallelism for the build pipeline.
//
// ParallelFor statically partitions [0, n) into one contiguous chunk per
// worker. Work items must be independent (no two items write the same
// location); under that contract results are byte-identical for every
// thread count, which the labeling determinism tests assert.

#ifndef ISLABEL_UTIL_PARALLEL_H_
#define ISLABEL_UTIL_PARALLEL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

namespace islabel {

/// Resolves a thread-count option: 0 means one per hardware thread.
inline unsigned EffectiveThreads(std::uint32_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw != 0 ? hw : 1;
}

/// Calls fn(worker, begin, end) for each of `workers` static contiguous
/// chunks of [0, n) — the chunk-level primitive behind ParallelFor, for
/// callers that carry per-worker state across a whole chunk (one leased
/// query engine per worker, accumulators, ...). `workers` is clamped to
/// [1, n]; chunk 0 runs on the calling thread. fn must not throw.
template <typename Fn>
void ParallelForChunks(std::size_t n, std::size_t workers, Fn&& fn) {
  if (n == 0) return;
  workers = std::min(std::max<std::size_t>(workers, 1), n);
  if (workers == 1) {
    fn(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) {
    pool.emplace_back([&fn, n, workers, w] {
      fn(w, n * w / workers, n * (w + 1) / workers);
    });
  }
  fn(std::size_t{0}, std::size_t{0}, n / workers);
  for (std::thread& t : pool) t.join();
}

/// Calls fn(i) for every i in [0, n), split across `num_threads` workers
/// (0 = hardware concurrency). Runs inline when one worker suffices. fn
/// must not throw. `min_items_per_worker` caps the worker count for small
/// ranges so thread spawn/join (~tens of µs each) cannot exceed the work
/// itself — tune it to the per-item cost.
template <typename Fn>
void ParallelFor(std::size_t n, std::uint32_t num_threads, Fn&& fn,
                 std::size_t min_items_per_worker = 1) {
  std::size_t workers = std::min<std::size_t>(EffectiveThreads(num_threads), n);
  if (min_items_per_worker > 1) {
    workers = std::min(workers,
                       std::max<std::size_t>(1, n / min_items_per_worker));
  }
  ParallelForChunks(n, workers,
                    [&fn](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) fn(i);
                    });
}

}  // namespace islabel

#endif  // ISLABEL_UTIL_PARALLEL_H_
