#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace islabel {

namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("ISLABEL_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level(static_cast<int>(LevelFromEnv()));
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}

}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(LevelStorage().load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  LevelStorage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Keep only the basename to stay readable.
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
  if (level_ == LogLevel::kError) std::fflush(stderr);
}

}  // namespace internal
}  // namespace islabel
