#include "util/random.h"

namespace islabel {

namespace {

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t* state) {
  std::uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::Uniform(std::uint64_t bound) {
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = Next();
      m = static_cast<unsigned __int128>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  Uniform(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace islabel
