// I/O accounting shared by the external-memory substrate.
//
// The paper analyzes its algorithms in the standard external-memory model
// (scan(N), sort(N)) and reports query label-fetch times dominated by one
// ~10 ms seek of a 7200 RPM disk. Physical disks in the test environment are
// much faster, so every component that touches disk counts logical block
// reads/writes here, and benches derive a *modeled* HDD time from the counts
// alongside the measured wall time (see DESIGN.md §3).

#ifndef ISLABEL_UTIL_IO_STATS_H_
#define ISLABEL_UTIL_IO_STATS_H_

#include <cstdint>

namespace islabel {

/// Counters for logical block I/O. Not thread-safe (the library is
/// single-threaded by design, matching the paper's setting).
struct IoStats {
  std::uint64_t block_reads = 0;
  std::uint64_t block_writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Random accesses (seeks) as opposed to sequential continuation reads.
  std::uint64_t seeks = 0;

  void Clear() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& o) {
    block_reads += o.block_reads;
    block_writes += o.block_writes;
    bytes_read += o.bytes_read;
    bytes_written += o.bytes_written;
    seeks += o.seeks;
    return *this;
  }

  /// Modeled elapsed time on the paper's hardware: a 7200 RPM SATA disk with
  /// ~10 ms per random access and ~100 MB/s sequential bandwidth.
  double ModeledHddSeconds(double seek_ms = 10.0,
                           double seq_mb_per_s = 100.0) const {
    double seek_s = static_cast<double>(seeks) * seek_ms * 1e-3;
    double stream_s = static_cast<double>(bytes_read + bytes_written) /
                      (seq_mb_per_s * 1e6);
    return seek_s + stream_s;
  }
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_IO_STATS_H_
