// Clock: the injectable time source of the replication layer.
//
// Everything in src/repl/ that needs "now" — heartbeat ages, poll
// due-ness, retry deadlines — reads it through this interface so tests
// can drive the whole state machine with a ManualClock and zero real
// sleeps. Production code uses SystemClock (steady_clock, monotonic);
// wall-clock time never enters any protocol decision.

#ifndef ISLABEL_UTIL_CLOCK_H_
#define ISLABEL_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace islabel {

/// Monotonic millisecond clock. Implementations must be thread-safe.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t NowMs() const = 0;
};

/// The real monotonic clock.
class SystemClock : public Clock {
 public:
  std::uint64_t NowMs() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Test clock: time moves only when told to. Thread-safe so a server
/// worker can read stats ages while the test thread advances time.
class ManualClock : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_ms = 0) : now_ms_(start_ms) {}
  std::uint64_t NowMs() const override {
    return now_ms_.load(std::memory_order_acquire);
  }
  void AdvanceMs(std::uint64_t delta_ms) {
    now_ms_.fetch_add(delta_ms, std::memory_order_acq_rel);
  }
  void SetMs(std::uint64_t now_ms) {
    now_ms_.store(now_ms, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> now_ms_;
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_CLOCK_H_
