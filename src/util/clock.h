// Clock: the injectable time source of the replication and telemetry
// layers.
//
// Everything in src/repl/ that needs "now" — heartbeat ages, poll
// due-ness, retry deadlines — reads it through this interface so tests
// can drive the whole state machine with a ManualClock and zero real
// sleeps, and src/obs/ measures query latencies through the same seam
// so trace tests are deterministic too. Production code uses
// SystemClock (steady_clock, monotonic); wall-clock time never enters
// any protocol decision.

#ifndef ISLABEL_UTIL_CLOCK_H_
#define ISLABEL_UTIL_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace islabel {

/// Monotonic clock. Implementations must be thread-safe. NowMs is the
/// protocol-level resolution (heartbeats, deadlines); NowMicros exists
/// for latency measurement, where a millisecond tick would flatten every
/// sub-ms query into zero.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual std::uint64_t NowMs() const = 0;
  virtual std::uint64_t NowMicros() const { return NowMs() * 1000; }
};

/// The real monotonic clock.
class SystemClock : public Clock {
 public:
  std::uint64_t NowMs() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
  std::uint64_t NowMicros() const override {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

/// Test clock: time moves only when told to. Thread-safe so a server
/// worker can read stats ages while the test thread advances time.
/// Stores microseconds internally; the ms interface is unchanged.
class ManualClock : public Clock {
 public:
  explicit ManualClock(std::uint64_t start_ms = 0)
      : now_us_(start_ms * 1000) {}
  std::uint64_t NowMs() const override {
    return now_us_.load(std::memory_order_acquire) / 1000;
  }
  std::uint64_t NowMicros() const override {
    return now_us_.load(std::memory_order_acquire);
  }
  void AdvanceMs(std::uint64_t delta_ms) {
    now_us_.fetch_add(delta_ms * 1000, std::memory_order_acq_rel);
  }
  void AdvanceMicros(std::uint64_t delta_us) {
    now_us_.fetch_add(delta_us, std::memory_order_acq_rel);
  }
  void SetMs(std::uint64_t now_ms) {
    now_us_.store(now_ms * 1000, std::memory_order_release);
  }

 private:
  std::atomic<std::uint64_t> now_us_;
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_CLOCK_H_
