// Result<T>: a value-or-Status return type (Arrow-style), for fallible
// operations that produce a value on success.

#ifndef ISLABEL_UTIL_RESULT_H_
#define ISLABEL_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace islabel {

/// Holds either a T or a non-OK Status. Construction from a T yields an OK
/// result; construction from a non-OK Status yields an error result.
/// [[nodiscard]] like Status: dropping one swallows an error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Error result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    assert(!status_.ok() && "Result constructed from OK status without value");
  }
  /// Success result.
  Result(T value)  // NOLINT(implicit)
      : status_(Status::OK()), value_(std::move(value)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or a fallback if this is an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace islabel

/// Assigns the value of a Result expression to `lhs`, or propagates the
/// error Status out of the current function.
#define ISLABEL_ASSIGN_OR_RETURN(lhs, expr)       \
  auto ISLABEL_CONCAT_(_res_, __LINE__) = (expr); \
  if (!ISLABEL_CONCAT_(_res_, __LINE__).ok())     \
    return ISLABEL_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(ISLABEL_CONCAT_(_res_, __LINE__)).value();

#define ISLABEL_CONCAT_(a, b) ISLABEL_CONCAT_IMPL_(a, b)
#define ISLABEL_CONCAT_IMPL_(a, b) a##b

#endif  // ISLABEL_UTIL_RESULT_H_
