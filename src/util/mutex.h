// Mutex / MutexLock / CondVar: the project's annotated locking
// primitives — thin zero-cost wrappers over std::mutex and
// std::condition_variable that carry the Clang thread-safety
// capability attributes (util/thread_annotations.h).
//
// All first-party code locks through these types; raw std::mutex /
// std::lock_guard / std::condition_variable outside this header are
// rejected by tools/lint_invariants.py. The reason is leverage: a
// GUARDED_BY annotation is only provable when the lock itself is a
// CAPABILITY type, so funneling every lock through one wrapper makes
// the whole serving stack's lock discipline machine-checkable at once.
//
// Usage:
//
//   Mutex mu_;
//   std::deque<Work> queue_ GUARDED_BY(mu_);
//   CondVar cv_;
//
//   {
//     MutexLock lock(&mu_);
//     while (queue_.empty() && !shutdown_) cv_.Wait(&mu_);
//     ...
//   }
//   cv_.NotifyOne();
//
// Condition waits are explicit while-loops (not the predicate overload)
// so the predicate's guarded reads stay inside the analyzed critical
// section — see DESIGN.md §15.

#ifndef ISLABEL_UTIL_MUTEX_H_
#define ISLABEL_UTIL_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "util/thread_annotations.h"

namespace islabel {

/// An exclusive lock. Same cost and semantics as std::mutex; the
/// CAPABILITY attribute is what lets Clang prove GUARDED_BY contracts.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section (std::lock_guard with annotations). Not
/// movable: a lock's scope IS its critical section.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to a Mutex at each wait. Wait() atomically
/// releases and reacquires the mutex (the REQUIRES annotation holds at
/// entry and exit, which is all callers can observe).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified; may wake spuriously — always wait in a
  /// `while (pred)` loop.
  void Wait(Mutex* mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // the caller's MutexLock still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_MUTEX_H_
