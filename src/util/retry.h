// Retry helpers: capped jittered exponential backoff and deadlines.
//
// Used by the replication layer (ReplicaSetClient failover, the replica
// pull loop) but dependency-free on purpose: both the RNG and the clock
// are injected, so every retry schedule is reproducible bit-for-bit in
// tests — no real sleeps, no wall-clock reads.
//
// Jitter model: each delay is the exponential base delay scaled by a
// uniform factor in [1 - jitter, 1]. Jittering DOWN from the cap (rather
// than up past it) keeps the configured max_delay_ms a hard bound, which
// is what a failover path wants: the cap is the worst-case added
// latency, not a suggestion.

#ifndef ISLABEL_UTIL_RETRY_H_
#define ISLABEL_UTIL_RETRY_H_

#include <cstdint>

#include "util/clock.h"
#include "util/random.h"

namespace islabel {

struct BackoffPolicy {
  /// Delay before the first retry (pre-jitter).
  std::uint64_t initial_delay_ms = 50;
  /// Hard upper bound on any delay, jitter included.
  std::uint64_t max_delay_ms = 5000;
  /// Growth factor per consecutive failure (values < 1 are treated as 1,
  /// i.e. constant delay).
  double multiplier = 2.0;
  /// Fraction of the base delay that jitter may remove, in [0, 1]:
  /// delay = base * uniform(1 - jitter, 1). 0 = deterministic.
  double jitter = 0.5;
};

/// Tracks consecutive failures and computes the next retry delay.
/// Not thread-safe; owners serialize access (one Backoff per node).
class Backoff {
 public:
  /// `rng` must outlive the Backoff and is owned by the caller so that
  /// test schedules replay exactly from a seed.
  Backoff(const BackoffPolicy& policy, Rng* rng)
      : policy_(policy), rng_(rng) {}

  /// Registers a failure and returns the delay to wait before the next
  /// attempt. The first call returns ~initial_delay_ms.
  std::uint64_t NextDelayMs() {
    double base = static_cast<double>(policy_.initial_delay_ms);
    const double multiplier =
        policy_.multiplier < 1.0 ? 1.0 : policy_.multiplier;
    for (std::uint32_t i = 0; i < failures_; ++i) {
      base *= multiplier;
      if (base >= static_cast<double>(policy_.max_delay_ms)) {
        base = static_cast<double>(policy_.max_delay_ms);
        break;
      }
    }
    if (failures_ < UINT32_MAX) ++failures_;
    if (base > static_cast<double>(policy_.max_delay_ms)) {
      base = static_cast<double>(policy_.max_delay_ms);
    }
    double jitter = policy_.jitter;
    if (jitter < 0.0) jitter = 0.0;
    if (jitter > 1.0) jitter = 1.0;
    const double factor =
        jitter == 0.0 ? 1.0 : 1.0 - jitter * rng_->NextDouble();
    return static_cast<std::uint64_t>(base * factor);
  }

  /// A success resets the schedule to initial_delay_ms.
  void Reset() { failures_ = 0; }

  std::uint32_t failures() const { return failures_; }

 private:
  BackoffPolicy policy_;
  Rng* rng_;
  std::uint32_t failures_ = 0;
};

/// A point in injected-clock time. Cheap value type.
class Deadline {
 public:
  /// A deadline `timeout_ms` from now on `clock` (which must outlive any
  /// Expired()/RemainingMs() call).
  static Deadline After(std::uint64_t timeout_ms, const Clock* clock) {
    return Deadline(clock, clock->NowMs() + timeout_ms);
  }
  /// A deadline that never expires.
  static Deadline Infinite(const Clock* clock) {
    return Deadline(clock, UINT64_MAX);
  }

  bool Expired() const { return clock_->NowMs() >= at_ms_; }

  /// Milliseconds left, 0 once expired (clamps, never underflows).
  std::uint64_t RemainingMs() const {
    const std::uint64_t now = clock_->NowMs();
    return now >= at_ms_ ? 0 : at_ms_ - now;
  }

 private:
  Deadline(const Clock* clock, std::uint64_t at_ms)
      : clock_(clock), at_ms_(at_ms) {}

  const Clock* clock_;
  std::uint64_t at_ms_;
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_RETRY_H_
