// Indexed binary min-heap with decrease-key, the priority queue the paper
// prescribes for Dijkstra runs ("a binary heap can be used", §6.2).
//
// Keys are 64-bit distances; items are dense ids in [0, capacity). The index
// array gives O(log n) DecreaseKey and O(1) Contains.

#ifndef ISLABEL_UTIL_INDEXED_HEAP_H_
#define ISLABEL_UTIL_INDEXED_HEAP_H_

#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace islabel {

/// Binary min-heap over items 0..capacity-1 with 64-bit keys.
class IndexedHeap {
 public:
  static constexpr std::uint32_t kInvalidPos =
      std::numeric_limits<std::uint32_t>::max();

  IndexedHeap() = default;
  explicit IndexedHeap(std::uint32_t capacity) { Reset(capacity); }

  /// Clears the heap and resizes for ids in [0, capacity).
  void Reset(std::uint32_t capacity) {
    heap_.clear();
    pos_.assign(capacity, kInvalidPos);
  }

  bool Empty() const { return heap_.empty(); }
  std::size_t Size() const { return heap_.size(); }
  std::uint32_t Capacity() const {
    return static_cast<std::uint32_t>(pos_.size());
  }

  bool Contains(std::uint32_t item) const {
    return item < pos_.size() && pos_[item] != kInvalidPos;
  }

  /// Key of an item currently in the heap.
  std::uint64_t KeyOf(std::uint32_t item) const {
    assert(Contains(item));
    return heap_[pos_[item]].key;
  }

  /// Smallest key in the heap; heap must be non-empty.
  std::uint64_t MinKey() const {
    assert(!Empty());
    return heap_[0].key;
  }
  /// Item with the smallest key; heap must be non-empty.
  std::uint32_t MinItem() const {
    assert(!Empty());
    return heap_[0].item;
  }

  /// Inserts a new item (must not be present).
  void Push(std::uint32_t item, std::uint64_t key) {
    assert(item < pos_.size());
    assert(!Contains(item));
    heap_.push_back(Entry{key, item});
    pos_[item] = static_cast<std::uint32_t>(heap_.size() - 1);
    SiftUp(static_cast<std::uint32_t>(heap_.size() - 1));
  }

  /// Lowers the key of an existing item; `key` must be <= current key.
  void DecreaseKey(std::uint32_t item, std::uint64_t key) {
    assert(Contains(item));
    std::uint32_t i = pos_[item];
    assert(key <= heap_[i].key);
    heap_[i].key = key;
    SiftUp(i);
  }

  /// Push if absent, otherwise decrease-key if the new key is smaller.
  /// Returns true if the stored key changed.
  bool PushOrDecrease(std::uint32_t item, std::uint64_t key) {
    if (!Contains(item)) {
      Push(item, key);
      return true;
    }
    if (key < KeyOf(item)) {
      DecreaseKey(item, key);
      return true;
    }
    return false;
  }

  /// Removes and returns the (item, key) with the smallest key.
  std::pair<std::uint32_t, std::uint64_t> PopMin() {
    assert(!Empty());
    Entry top = heap_[0];
    pos_[top.item] = kInvalidPos;
    Entry last = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
      heap_[0] = last;
      pos_[last.item] = 0;
      SiftDown(0);
    }
    return {top.item, top.key};
  }

 private:
  struct Entry {
    std::uint64_t key;
    std::uint32_t item;
  };

  void SiftUp(std::uint32_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      std::uint32_t parent = (i - 1) / 2;
      if (heap_[parent].key <= e.key) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].item] = i;
      i = parent;
    }
    heap_[i] = e;
    pos_[e.item] = i;
  }

  void SiftDown(std::uint32_t i) {
    Entry e = heap_[i];
    const std::uint32_t n = static_cast<std::uint32_t>(heap_.size());
    while (true) {
      std::uint32_t child = 2 * i + 1;
      if (child >= n) break;
      if (child + 1 < n && heap_[child + 1].key < heap_[child].key) ++child;
      if (heap_[child].key >= e.key) break;
      heap_[i] = heap_[child];
      pos_[heap_[i].item] = i;
      i = child;
    }
    heap_[i] = e;
    pos_[e.item] = i;
  }

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;  // item -> heap slot, kInvalidPos if absent
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_INDEXED_HEAP_H_
