#include "util/status.h"

namespace islabel {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace islabel
