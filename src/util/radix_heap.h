// Monotone radix heap for integer keys.
//
// Dijkstra with non-negative integer weights extracts keys in non-decreasing
// order, which a radix heap exploits for amortized O(1) push and O(log C)
// bucket redistribution. Backs the label-seeded bidirectional Dijkstra of
// both query engines (each search side is monotone: every push key is the
// popped key plus a positive edge weight); bench_micro compares it against
// the indexed binary heap.

#ifndef ISLABEL_UTIL_RADIX_HEAP_H_
#define ISLABEL_UTIL_RADIX_HEAP_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace islabel {

/// Monotone priority queue: Push(key) requires key >= last popped key.
/// Duplicate items are allowed (lazy deletion is the caller's concern).
class RadixHeap {
 public:
  RadixHeap() { Clear(); }

  void Clear() {
    for (auto& b : buckets_) b.clear();
    size_ = 0;
    last_ = 0;
  }

  bool Empty() const { return size_ == 0; }
  std::size_t Size() const { return size_; }

  /// Inserts an (item, key) pair; key must be >= the last PopMin key.
  void Push(std::uint32_t item, std::uint64_t key) {
    assert(key >= last_);
    buckets_[BucketFor(key)].push_back(Entry{key, item});
    ++size_;
  }

  /// Removes and returns the entry with the smallest key.
  std::pair<std::uint32_t, std::uint64_t> PopMin() {
    assert(!Empty());
    if (buckets_[0].empty()) Redistribute();
    Entry e = buckets_[0].back();
    buckets_[0].pop_back();
    --size_;
    return {e.item, e.key};
  }

  /// Returns the entry with the smallest key without removing it (the
  /// bi-Dijkstra stop rule needs min(FQ)/min(RQ) every round).
  std::pair<std::uint32_t, std::uint64_t> PeekMin() {
    assert(!Empty());
    if (buckets_[0].empty()) Redistribute();
    const Entry& e = buckets_[0].back();
    return {e.item, e.key};
  }

 private:
  struct Entry {
    std::uint64_t key;
    std::uint32_t item;
  };

  // Bucket i holds keys whose highest differing bit from last_ is i-1;
  // bucket 0 holds keys equal to last_.
  static constexpr int kBuckets = 65;

  int BucketFor(std::uint64_t key) const {
    if (key == last_) return 0;
    return 64 - std::countl_zero(key ^ last_);
  }

  void Redistribute() {
    int i = 1;
    while (buckets_[i].empty()) ++i;
    // New reference point: the minimum of the first non-empty bucket.
    std::uint64_t min_key = std::numeric_limits<std::uint64_t>::max();
    for (const Entry& e : buckets_[i]) min_key = std::min(min_key, e.key);
    last_ = min_key;
    // Swap through the member scratch so both the emptied bucket and the
    // scratch keep their capacity — redistribution allocates nothing once
    // warm (the query hot path depends on this).
    scratch_.swap(buckets_[i]);
    for (const Entry& e : scratch_) buckets_[BucketFor(e.key)].push_back(e);
    scratch_.clear();
  }

  std::vector<Entry> buckets_[kBuckets];
  std::vector<Entry> scratch_;
  std::size_t size_;
  std::uint64_t last_;
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_RADIX_HEAP_H_
