// Wall-clock timers used by the benchmark harness and index construction
// statistics.

#ifndef ISLABEL_UTIL_TIMER_H_
#define ISLABEL_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace islabel {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Adds the scope's elapsed seconds to `*sink` on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(double* sink) : sink_(sink) {}
  ~ScopedTimer() { *sink_ += timer_.ElapsedSeconds(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  double* sink_;
  WallTimer timer_;
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_TIMER_H_
