// Status: lightweight error-carrying return type used across the library.
//
// Library code never throws across public API boundaries; fallible
// operations return Status (or Result<T> from result.h). The design follows
// the RocksDB / Arrow convention: a Status is cheap to pass by value, an OK
// status carries no allocation, and error statuses carry a code plus a
// human-readable message.

#ifndef ISLABEL_UTIL_STATUS_H_
#define ISLABEL_UTIL_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace islabel {

/// Error categories used across the library.
enum class StatusCode : unsigned char {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kCorruption = 3,
  kIOError = 4,
  kNotSupported = 5,
  kOutOfRange = 6,
  kFailedPrecondition = 7,
  kInternal = 8,
  kUnavailable = 9,
  kDeadlineExceeded = 10,
};

/// Returns a stable human-readable name for a StatusCode ("OK", "IOError"...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status is either OK (the common, allocation-free case) or an error with
/// a code and message. Copyable, movable, cheap when OK.
///
/// [[nodiscard]]: a dropped Status is a swallowed error; every caller must
/// check, propagate, or explicitly `(void)` it with a reason.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  explicit operator bool() const { return ok(); }

  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }

  /// Error message; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code() == b.code() && a.message() == b.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(std::make_shared<Rep>(Rep{code, std::move(msg)})) {}

  // shared_ptr keeps Status copyable without bespoke deep-copy code; error
  // statuses are rare and never mutated after construction.
  std::shared_ptr<const Rep> rep_;
};

}  // namespace islabel

/// Propagates an error Status out of the current function.
#define ISLABEL_RETURN_IF_ERROR(expr)             \
  do {                                            \
    ::islabel::Status _st = (expr);               \
    if (!_st.ok()) return _st;                    \
  } while (false)

#endif  // ISLABEL_UTIL_STATUS_H_
