// Deterministic, fast pseudo-random number generation.
//
// All stochastic components of the library (graph generators, query workload
// sampling, property tests) take an explicit seed so every experiment is
// reproducible bit-for-bit. The engine is xoshiro256** seeded via SplitMix64,
// which is both faster and statistically stronger than std::mt19937 for our
// use and has a trivially copyable state.

#ifndef ISLABEL_UTIL_RANDOM_H_
#define ISLABEL_UTIL_RANDOM_H_

#include <cstdint>

namespace islabel {

/// SplitMix64 step; used for seeding and cheap hash mixing.
std::uint64_t SplitMix64(std::uint64_t* state);

/// xoshiro256** PRNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t Next();

  /// Uniform in [0, bound); bound must be > 0. Uses Lemire's unbiased
  /// multiply-shift rejection method.
  std::uint64_t Uniform(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

 private:
  std::uint64_t s_[4];
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_RANDOM_H_
