// Minimal leveled logger. Intended for construction progress reporting and
// debugging; benches/tests default to kWarn to keep output machine-parseable.

#ifndef ISLABEL_UTIL_LOGGING_H_
#define ISLABEL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace islabel {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Global minimum level; messages below it are dropped. Default: kWarn,
/// overridable with the ISLABEL_LOG environment variable
/// (debug|info|warn|error|off) read on first use.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Stream-style message builder; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace islabel

#define ISLABEL_LOG(level)                                          \
  if (::islabel::LogLevel::level < ::islabel::GetLogLevel()) {      \
  } else                                                            \
    ::islabel::internal::LogMessage(::islabel::LogLevel::level,     \
                                    __FILE__, __LINE__)

#define ISLABEL_DCHECK(cond)                                         \
  if (cond) {                                                        \
  } else                                                             \
    ::islabel::internal::LogMessage(::islabel::LogLevel::kError,     \
                                    __FILE__, __LINE__)              \
        << "Check failed: " #cond " "

#endif  // ISLABEL_UTIL_LOGGING_H_
