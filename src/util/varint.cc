#include "util/varint.h"

namespace islabel {

void PutVarint64(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void PutVarintSigned64(std::string* out, std::int64_t v) {
  // Zigzag: maps small-magnitude signed values to small unsigned values.
  std::uint64_t u =
      (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
  PutVarint64(out, u);
}

void PutFixed32(std::string* out, std::uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v);
  buf[1] = static_cast<char>(v >> 8);
  buf[2] = static_cast<char>(v >> 16);
  buf[3] = static_cast<char>(v >> 24);
  out->append(buf, 4);
}

void PutFixed64(std::string* out, std::uint64_t v) {
  char buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<char>(v >> (8 * i));
  out->append(buf, 8);
}

bool Decoder::GetVarint64(std::uint64_t* v) {
  std::uint64_t result = 0;
  int shift = 0;
  while (cur_ < end_ && shift <= 63) {
    std::uint8_t byte = static_cast<std::uint8_t>(*cur_++);
    if (shift == 63 && (byte & 0x7f) > 1) return false;  // overflow
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return true;
    }
    shift += 7;
  }
  return false;
}

bool Decoder::GetVarintSigned64(std::int64_t* v) {
  std::uint64_t u;
  if (!GetVarint64(&u)) return false;
  *v = static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
  return true;
}

bool Decoder::GetFixed32(std::uint32_t* v) {
  if (Remaining() < 4) return false;
  std::uint32_t r = 0;
  for (int i = 0; i < 4; ++i) {
    r |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(cur_[i]))
         << (8 * i);
  }
  cur_ += 4;
  *v = r;
  return true;
}

bool Decoder::GetFixed64(std::uint64_t* v) {
  if (Remaining() < 8) return false;
  std::uint64_t r = 0;
  for (int i = 0; i < 8; ++i) {
    r |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(cur_[i]))
         << (8 * i);
  }
  cur_ += 8;
  *v = r;
  return true;
}

bool Decoder::GetBytes(void* dst, std::size_t n) {
  if (Remaining() < n) return false;
  std::memcpy(dst, cur_, n);
  cur_ += n;
  return true;
}

}  // namespace islabel
