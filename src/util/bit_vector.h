// Compact fixed-size bit vector with word-level population count.

#ifndef ISLABEL_UTIL_BIT_VECTOR_H_
#define ISLABEL_UTIL_BIT_VECTOR_H_

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace islabel {

/// Dense bitset sized at construction (resizable), used for visited sets and
/// independent-set membership marks on vertex id ranges.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t n, bool value = false) { Resize(n, value); }

  void Resize(std::size_t n, bool value = false) {
    size_ = n;
    words_.assign((n + 63) / 64, value ? ~0ULL : 0ULL);
    TrimTail();
  }

  std::size_t size() const { return size_; }

  bool Get(std::size_t i) const {
    assert(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  bool operator[](std::size_t i) const { return Get(i); }

  void Set(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] |= (1ULL << (i & 63));
  }
  void Clear(std::size_t i) {
    assert(i < size_);
    words_[i >> 6] &= ~(1ULL << (i & 63));
  }
  void Assign(std::size_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Clear(i);
    }
  }

  /// Sets all bits to zero, keeping the size.
  void Reset() { words_.assign(words_.size(), 0ULL); }

  /// Number of set bits.
  std::size_t Count() const {
    std::size_t n = 0;
    for (std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  /// Index of the first set bit at or after `from`, or size() if none.
  std::size_t FindNextSet(std::size_t from) const {
    if (from >= size_) return size_;
    std::size_t wi = from >> 6;
    std::uint64_t w = words_[wi] & (~0ULL << (from & 63));
    while (true) {
      if (w != 0) {
        std::size_t bit = (wi << 6) +
                          static_cast<std::size_t>(std::countr_zero(w));
        return bit < size_ ? bit : size_;
      }
      if (++wi >= words_.size()) return size_;
      w = words_[wi];
    }
  }

 private:
  void TrimTail() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (~0ULL >> (64 - (size_ % 64)));
    }
  }

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_BIT_VECTOR_H_
