// Clang thread-safety annotation macros (the Abseil / RocksDB
// convention). Annotating which mutex guards which member turns the
// lock-discipline arguments of DESIGN.md §12.4 and §14.3 into
// compile-time proofs: a Clang build with -Wthread-safety
// -Wthread-safety-beta -Werror (the `tidy` CMake preset) rejects any
// access to a GUARDED_BY member outside its mutex, any REQUIRES
// function called without the lock, and any unbalanced acquire/release.
//
// On non-Clang compilers every macro expands to nothing, so the
// annotated tree builds identically under GCC/MSVC — the annotations
// are machine-checked documentation, never behavior.
//
// Conventions (see DESIGN.md §15):
//   * every mutex-protected member carries GUARDED_BY(mu);
//   * a private helper that expects the caller to hold the lock is
//     annotated REQUIRES(mu) instead of re-locking;
//   * condition waits are written as explicit `while (pred) cv.Wait(&mu)`
//     loops inside a MutexLock scope so the predicate's guarded reads
//     stay inside the analyzed critical section;
//   * NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry a
//     justification comment.

#ifndef ISLABEL_UTIL_THREAD_ANNOTATIONS_H_
#define ISLABEL_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define ISLABEL_TS_ATTRIBUTE__(x) __attribute__((x))
#else
#define ISLABEL_TS_ATTRIBUTE__(x)  // no-op: only Clang proves, everyone parses
#endif

// A class that is a lockable capability (islabel::Mutex).
#ifndef CAPABILITY
#define CAPABILITY(x) ISLABEL_TS_ATTRIBUTE__(capability(x))
#endif

// An RAII class whose lifetime is a critical section (islabel::MutexLock).
#ifndef SCOPED_CAPABILITY
#define SCOPED_CAPABILITY ISLABEL_TS_ATTRIBUTE__(scoped_lockable)
#endif

// Data member readable/writable only with the given mutex held.
#ifndef GUARDED_BY
#define GUARDED_BY(x) ISLABEL_TS_ATTRIBUTE__(guarded_by(x))
#endif

// Pointer member whose *pointee* is guarded by the given mutex.
#ifndef PT_GUARDED_BY
#define PT_GUARDED_BY(x) ISLABEL_TS_ATTRIBUTE__(pt_guarded_by(x))
#endif

// Lock-ordering declarations (the §15 hierarchy, checked under
// -Wthread-safety-beta).
#ifndef ACQUIRED_BEFORE
#define ACQUIRED_BEFORE(...) ISLABEL_TS_ATTRIBUTE__(acquired_before(__VA_ARGS__))
#endif
#ifndef ACQUIRED_AFTER
#define ACQUIRED_AFTER(...) ISLABEL_TS_ATTRIBUTE__(acquired_after(__VA_ARGS__))
#endif

// The function must be called with the given mutex(es) held.
#ifndef REQUIRES
#define REQUIRES(...) ISLABEL_TS_ATTRIBUTE__(requires_capability(__VA_ARGS__))
#endif
#ifndef REQUIRES_SHARED
#define REQUIRES_SHARED(...) \
  ISLABEL_TS_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))
#endif

// The function acquires / releases the given mutex(es).
#ifndef ACQUIRE
#define ACQUIRE(...) ISLABEL_TS_ATTRIBUTE__(acquire_capability(__VA_ARGS__))
#endif
#ifndef ACQUIRE_SHARED
#define ACQUIRE_SHARED(...) \
  ISLABEL_TS_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))
#endif
#ifndef RELEASE
#define RELEASE(...) ISLABEL_TS_ATTRIBUTE__(release_capability(__VA_ARGS__))
#endif
#ifndef RELEASE_SHARED
#define RELEASE_SHARED(...) \
  ISLABEL_TS_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))
#endif

// The function acquires the mutex iff it returns the given value.
#ifndef TRY_ACQUIRE
#define TRY_ACQUIRE(...) \
  ISLABEL_TS_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))
#endif

// The function must NOT be called with the given mutex held (it locks
// it itself; re-entry would deadlock).
#ifndef EXCLUDES
#define EXCLUDES(...) ISLABEL_TS_ATTRIBUTE__(locks_excluded(__VA_ARGS__))
#endif

// Runtime assertion that the capability is held (for code the analysis
// cannot follow, e.g. a lock taken by a caller across a type boundary).
#ifndef ASSERT_CAPABILITY
#define ASSERT_CAPABILITY(x) ISLABEL_TS_ATTRIBUTE__(assert_capability(x))
#endif

// The function returns a reference to the given capability.
#ifndef RETURN_CAPABILITY
#define RETURN_CAPABILITY(x) ISLABEL_TS_ATTRIBUTE__(lock_returned(x))
#endif

// Opts a function out of analysis entirely. Last resort; justify inline.
#ifndef NO_THREAD_SAFETY_ANALYSIS
#define NO_THREAD_SAFETY_ANALYSIS \
  ISLABEL_TS_ATTRIBUTE__(no_thread_safety_analysis)
#endif

#endif  // ISLABEL_UTIL_THREAD_ANNOTATIONS_H_
