// Variable-length and fixed-width little-endian integer coding for on-disk
// structures (graph binary format, label store).

#ifndef ISLABEL_UTIL_VARINT_H_
#define ISLABEL_UTIL_VARINT_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "util/status.h"

namespace islabel {

/// Appends a LEB128 varint encoding of `v` to `*out`.
void PutVarint64(std::string* out, std::uint64_t v);

/// Appends a zigzag-encoded signed varint.
void PutVarintSigned64(std::string* out, std::int64_t v);

/// Appends fixed-width little-endian integers.
void PutFixed32(std::string* out, std::uint32_t v);
void PutFixed64(std::string* out, std::uint64_t v);

/// Cursor-style decoder over a byte range. All Get* methods return false on
/// truncation/overflow and leave the cursor unspecified.
class Decoder {
 public:
  Decoder(const char* data, std::size_t size)
      : cur_(data), end_(data + size) {}
  explicit Decoder(const std::string& s) : Decoder(s.data(), s.size()) {}

  bool GetVarint64(std::uint64_t* v);
  bool GetVarintSigned64(std::int64_t* v);
  bool GetFixed32(std::uint32_t* v);
  bool GetFixed64(std::uint64_t* v);
  bool GetBytes(void* dst, std::size_t n);

  /// Bytes remaining.
  std::size_t Remaining() const { return static_cast<std::size_t>(end_ - cur_); }
  bool Done() const { return cur_ == end_; }
  const char* Position() const { return cur_; }

 private:
  const char* cur_;
  const char* end_;
};

}  // namespace islabel

#endif  // ISLABEL_UTIL_VARINT_H_
