// ReplicaAgent: the replica side of the replication protocol — a
// deterministic pull/install state machine.
//
// The agent periodically polls the primary's `version` line, pulls a
// framed snapshot (repl/primary.h) for every dataset whose generation
// is behind, stages the container into
// `<root>/<dataset>/.staging-<gen>`, renames it to
// `<root>/<dataset>/gen-<gen>`, and publishes through
// Catalog::ReloadFrom — the proven generation-ordered hot-swap path. A
// transfer that dies mid-stream leaves the staging directory behind
// and the old version serving; a truncated or bit-flipped container is
// rejected as Corruption before a byte is written. Between successful
// polls the replica keeps answering queries from whatever generation
// it has (stale-but-consistent) and reports its lag in `stats`.
//
// Determinism: time comes from an injected Clock, the network from an
// injected Transport — drive Tick() with a ManualClock and a
// FaultInjectingTransport and the whole failover story runs without
// real networks or sleeps. Production wires SystemClock + TcpTransport
// and RunBackground(), which just calls Tick() on a cadence.
//
// The agent doubles as the replica's ReplicationHooks: its server
// answers `version` (own generations — how clients measure staleness),
// `heartbeat`, and reports lag counters in `stats`. `replicate` is
// refused — chained replication is out of scope.

#ifndef ISLABEL_REPL_REPLICA_H_
#define ISLABEL_REPL_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "catalog/catalog.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "repl/transport.h"
#include "server/dispatcher.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/thread_annotations.h"

namespace islabel {
namespace repl {

struct ReplicaOptions {
  /// The primary's "host:port".
  std::string primary;
  /// Root directory for staged/installed snapshot generations.
  std::string root;
  /// How often to poll the primary when healthy.
  std::uint64_t poll_interval_ms = 1000;
  /// Per network exchange (connect, one request/response round).
  std::uint64_t request_timeout_ms = 10'000;
  /// The primary counts as down once it has been silent this long.
  std::uint64_t primary_timeout_ms = 5000;
  /// Snapshots larger than this are refused before allocation.
  std::uint64_t max_snapshot_bytes = 1ull << 32;
  /// Backoff between failed sync attempts (capped, jittered).
  BackoffPolicy backoff;
  /// Structured event log for sync/install outcomes (DESIGN.md §17).
  /// Null disables. Must outlive the agent.
  obs::EventLog* event_log = nullptr;
};

class ReplicaAgent : public server::ReplicationHooks {
 public:
  /// All pointees must outlive the agent. `catalog` is the replica's
  /// serving catalog; datasets discovered on the primary are
  /// auto-registered (Catalog::AddEmpty) on first contact.
  ReplicaAgent(Catalog* catalog, Transport* transport, Clock* clock,
               Rng* rng, ReplicaOptions options);
  ~ReplicaAgent() override;

  /// Runs one step of the state machine: syncs with the primary if the
  /// next poll (or backoff retry) is due, else does nothing. Returns
  /// true iff a sync was attempted. Not reentrant; call from one driver
  /// (test loop or RunBackground thread).
  bool Tick();

  /// Forces a sync attempt now, regardless of schedule.
  Status SyncNow();

  /// Spawns a thread that calls Tick() on a short real-time cadence.
  void RunBackground();
  void StopBackground();

  /// True while the last contact with the primary is fresher than
  /// primary_timeout_ms.
  bool primary_up() const;

  struct Stats {
    std::uint64_t polls = 0;      // sync attempts
    std::uint64_t pulls = 0;      // snapshot streams received
    std::uint64_t installs = 0;   // generations published
    std::uint64_t failures = 0;   // failed sync attempts
    std::uint64_t lag_gens = 0;   // sum over datasets of primary - local
    std::uint64_t ms_since_contact = ~0ull;  // ~0 before first contact
    bool primary_up = false;
  };
  Stats stats() const;
  /// The last sync error (OK after a clean sync).
  Status last_status() const;

  // -- ReplicationHooks: the serving face of a replica. --
  std::string HandleVersion() override;
  std::string HandleHeartbeat() override;
  std::string HandleReplicate(const std::string& name,
                              std::uint64_t have_gen) override;
  void FillStats(server::ServeStats* stats) override;

 private:
  Status SyncOnce(std::uint64_t trace_id);
  Status PullDataset(Channel* channel, const std::string& name,
                     std::uint64_t local_gen, std::uint64_t target_gen,
                     std::uint64_t trace_id);
  /// Registers the replica's counters and the live lag / contact /
  /// primary-up callback gauges in the catalog's registry. The dtor
  /// re-registers the callbacks with frozen final values, since the
  /// registry (owned by the catalog) outlives the agent.
  void InstallMetrics();
  void FreezeMetrics();

  Catalog* catalog_;
  Transport* transport_;
  Clock* clock_;
  Rng* rng_;  // mints the per-sync trace id (DESIGN.md §17)
  ReplicaOptions options_;

  mutable Mutex mu_;
  Backoff backoff_ GUARDED_BY(mu_);
  std::uint64_t next_due_ms_ GUARDED_BY(mu_) = 0;  // next scheduled sync
  bool contacted_ GUARDED_BY(mu_) = false;  // ever heard from the primary
  // last_contact_ms_ is meaningless until contacted_.
  std::uint64_t last_contact_ms_ GUARDED_BY(mu_) = 0;
  std::uint64_t lag_gens_ GUARDED_BY(mu_) = 0;
  Status last_status_ GUARDED_BY(mu_);
  // Registry series (catalog registry, DESIGN.md §16) — atomics, bumped
  // wherever convenient without mu_.
  obs::Counter* polls_c_;
  obs::Counter* pulls_c_;
  obs::Counter* installs_c_;
  obs::Counter* failures_c_;

  std::atomic<bool> bg_stop_{false};
  std::thread bg_thread_;
};

}  // namespace repl
}  // namespace islabel

#endif  // ISLABEL_REPL_REPLICA_H_
