#include "repl/transport.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

namespace islabel {
namespace repl {

namespace {

/// Splits "host:port" (last ':' wins, so IPv6 literals with brackets are
/// out of scope — the serving tier binds v4 loopback/interfaces).
bool SplitEndpoint(const std::string& endpoint, std::string* host,
                   std::string* port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == endpoint.size()) {
    return false;
  }
  *host = endpoint.substr(0, colon);
  *port = endpoint.substr(colon + 1);
  return true;
}

class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override { Close(); }

  Status Send(std::string_view data) override {
    if (fd_ < 0) return Status::Unavailable("connection closed");
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EINTR)) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        // Blocking socket; EAGAIN means SO_SNDTIMEO fired.
        return Status::DeadlineExceeded("send timed out");
      }
      return Status::Unavailable(std::string("send failed: ") +
                                 std::strerror(errno));
    }
    return Status::OK();
  }

  Status Recv(char* buf, std::size_t cap, std::size_t* received,
              const Deadline& deadline) override {
    *received = 0;
    if (fd_ < 0) return Status::Unavailable("connection closed");
    for (;;) {
      const std::uint64_t remaining = deadline.RemainingMs();
      if (remaining == 0) return Status::DeadlineExceeded("recv timed out");
      struct pollfd pfd = {fd_, POLLIN, 0};
      const int timeout_ms = static_cast<int>(
          std::min<std::uint64_t>(remaining, 60'000));
      const int pr = ::poll(&pfd, 1, timeout_ms);
      if (pr < 0) {
        if (errno == EINTR) continue;
        return Status::Unavailable(std::string("poll failed: ") +
                                   std::strerror(errno));
      }
      if (pr == 0) continue;  // re-check the deadline
      const ssize_t n = ::recv(fd_, buf, cap, 0);
      if (n > 0) {
        *received = static_cast<std::size_t>(n);
        return Status::OK();
      }
      if (n == 0) return Status::Unavailable("connection closed by peer");
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(std::string("recv failed: ") +
                                 std::strerror(errno));
    }
  }

  void Close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

}  // namespace

Result<std::unique_ptr<Connection>> TcpTransport::Connect(
    const std::string& endpoint, std::uint64_t timeout_ms) {
  std::string host, port;
  if (!SplitEndpoint(endpoint, &host, &port)) {
    return Status::InvalidArgument("bad endpoint '" + endpoint +
                                   "' (want host:port)");
  }
  struct addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &res);
  if (gai != 0) {
    return Status::Unavailable("cannot resolve " + endpoint + ": " +
                               gai_strerror(gai));
  }
  Status last = Status::Unavailable("no addresses for " + endpoint);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK,
                            ai->ai_protocol);
    if (fd < 0) {
      last = Status::Unavailable(std::string("socket failed: ") +
                                 std::strerror(errno));
      continue;
    }
    int rc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (rc != 0 && errno == EINPROGRESS) {
      struct pollfd pfd = {fd, POLLOUT, 0};
      const int pr = ::poll(&pfd, 1, static_cast<int>(std::min<std::uint64_t>(
                                        timeout_ms, 1u << 30)));
      if (pr > 0) {
        int err = 0;
        socklen_t len = sizeof(err);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        rc = err == 0 ? 0 : -1;
        errno = err;
      } else {
        rc = -1;
        errno = ETIMEDOUT;
      }
    }
    if (rc != 0) {
      last = Status::Unavailable("connect to " + endpoint + " failed: " +
                                 std::strerror(errno));
      ::close(fd);
      continue;
    }
    // Back to blocking for sends; reads stay deadline-driven via poll().
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    ::freeaddrinfo(res);
    return std::unique_ptr<Connection>(new TcpConnection(fd));
  }
  ::freeaddrinfo(res);
  return last;
}

Status Channel::SendLine(std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  return conn_->Send(framed);
}

Status Channel::ReadLine(std::string* out, const Deadline& deadline,
                         std::size_t max_line_bytes) {
  for (;;) {
    const std::size_t nl = buf_.find('\n');
    if (nl != std::string::npos) {
      out->assign(buf_, 0, nl);
      if (!out->empty() && out->back() == '\r') out->pop_back();
      buf_.erase(0, nl + 1);
      return Status::OK();
    }
    if (buf_.size() > max_line_bytes) {
      return Status::Corruption("oversized protocol line (" +
                                std::to_string(buf_.size()) + " bytes)");
    }
    char chunk[1 << 14];
    std::size_t n = 0;
    ISLABEL_RETURN_IF_ERROR(conn_->Recv(chunk, sizeof(chunk), &n, deadline));
    buf_.append(chunk, n);
  }
}

Status Channel::ReadExact(std::string* out, std::size_t n,
                          const Deadline& deadline) {
  // Drain the line buffer first — it may already hold payload bytes.
  const std::size_t from_buf = std::min(n, buf_.size());
  out->append(buf_, 0, from_buf);
  buf_.erase(0, from_buf);
  std::size_t need = n - from_buf;
  char chunk[1 << 14];
  while (need > 0) {
    std::size_t got = 0;
    ISLABEL_RETURN_IF_ERROR(
        conn_->Recv(chunk, std::min(need, sizeof(chunk)), &got, deadline));
    out->append(chunk, got);
    need -= got;
  }
  return Status::OK();
}

}  // namespace repl
}  // namespace islabel
