#include "repl/replica.h"

#include <charconv>
#include <chrono>
#include <filesystem>
#include <system_error>
#include <utility>

#include "obs/trace.h"
#include "repl/primary.h"
#include "repl/snapshot.h"

namespace islabel {
namespace repl {

namespace {

bool ParseU64Token(std::string_view token, std::uint64_t* out) {
  std::uint64_t value = 0;
  const char* end = token.data() + token.size();
  auto [ptr, ec] = std::from_chars(token.data(), end, value, 10);
  if (ec != std::errc() || ptr != end) return false;
  *out = value;
  return true;
}

std::vector<std::string_view> Split(std::string_view line, char sep) {
  std::vector<std::string_view> out;
  std::size_t begin = 0;
  while (begin <= line.size()) {
    const std::size_t end = std::min(line.find(sep, begin), line.size());
    if (end > begin) out.push_back(line.substr(begin, end - begin));
    if (end == line.size()) break;
    begin = end + 1;
  }
  return out;
}

}  // namespace

ReplicaAgent::ReplicaAgent(Catalog* catalog, Transport* transport,
                           Clock* clock, Rng* rng, ReplicaOptions options)
    : catalog_(catalog),
      transport_(transport),
      clock_(clock),
      rng_(rng),
      options_(std::move(options)),
      backoff_(options_.backoff, rng) {
  InstallMetrics();
}

ReplicaAgent::~ReplicaAgent() {
  StopBackground();
  FreezeMetrics();
}

void ReplicaAgent::InstallMetrics() {
  obs::MetricRegistry* reg = catalog_->metrics();
  polls_c_ = reg->GetCounter("islabel_repl_polls_total",
                             "Sync attempts against the primary.");
  pulls_c_ = reg->GetCounter("islabel_repl_pulls_total",
                             "Snapshot streams received.");
  installs_c_ = reg->GetCounter("islabel_repl_installs_total",
                                "Generations published via ReloadFrom.");
  failures_c_ = reg->GetCounter("islabel_repl_failures_total",
                                "Failed sync attempts.");
  // Live levels come from callbacks evaluated at scrape time — lag is
  // recomputed per sync, but ms-since-contact and primary-up decay with
  // wall time, which a stored gauge cannot express.
  reg->RegisterCallbackGauge(
      "islabel_repl_lag_gens",
      "Sum over datasets of primary generation minus local.", {},
      [this] { return static_cast<double>(stats().lag_gens); });
  reg->RegisterCallbackGauge(
      "islabel_repl_ms_since_contact",
      "Milliseconds since the primary last answered; -1 before first "
      "contact.",
      {}, [this] {
        const Stats s = stats();
        return s.ms_since_contact == ~0ull
                   ? -1.0
                   : static_cast<double>(s.ms_since_contact);
      });
  reg->RegisterCallbackGauge(
      "islabel_repl_primary_up",
      "1 while the last primary contact is fresher than the timeout.", {},
      [this] { return stats().primary_up ? 1.0 : 0.0; });
}

void ReplicaAgent::FreezeMetrics() {
  // The registry outlives this agent; replace the this-capturing
  // callbacks with the final observed values so a later scrape cannot
  // call into freed memory.
  const Stats last = stats();
  obs::MetricRegistry* reg = catalog_->metrics();
  reg->RegisterCallbackGauge(
      "islabel_repl_lag_gens",
      "Sum over datasets of primary generation minus local.", {},
      [v = static_cast<double>(last.lag_gens)] { return v; });
  reg->RegisterCallbackGauge(
      "islabel_repl_ms_since_contact",
      "Milliseconds since the primary last answered; -1 before first "
      "contact.",
      {}, [v = last.ms_since_contact == ~0ull
                   ? -1.0
                   : static_cast<double>(last.ms_since_contact)] {
        return v;
      });
  reg->RegisterCallbackGauge(
      "islabel_repl_primary_up",
      "1 while the last primary contact is fresher than the timeout.", {},
      [v = last.primary_up ? 1.0 : 0.0] { return v; });
}

bool ReplicaAgent::Tick() {
  {
    MutexLock lock(&mu_);
    if (clock_->NowMs() < next_due_ms_) return false;
  }
  // The sync outcome is recorded in last_status_ (and drives backoff);
  // Tick's contract is only "was a sync attempted".
  (void)SyncNow();
  return true;
}

Status ReplicaAgent::SyncNow() {
  // One trace id per sync attempt: the version poll, every replicate
  // pull within it, and the install/failure events all share it, so the
  // primary's flight recorder and both event logs stitch one story.
  std::uint64_t tid = rng_->Next();
  if (tid == 0) tid = 1;
  const Status st = SyncOnce(tid);
  const std::uint64_t now = clock_->NowMs();
  polls_c_->Inc();
  if (!st.ok()) {
    failures_c_->Inc();
    if (options_.event_log != nullptr) {
      options_.event_log->Log(obs::EventLevel::kWarn,
                              "islabel.repl.sync_failed",
                              {{"tid", obs::FormatTraceId(tid)},
                               {"primary", options_.primary},
                               {"error", st.ToString()}});
    }
  }
  MutexLock lock(&mu_);
  last_status_ = st;
  if (st.ok()) {
    backoff_.Reset();
    next_due_ms_ = now + options_.poll_interval_ms;
  } else {
    next_due_ms_ = now + backoff_.NextDelayMs();
  }
  return st;
}

Status ReplicaAgent::SyncOnce(std::uint64_t trace_id) {
  Result<std::unique_ptr<Connection>> conn =
      transport_->Connect(options_.primary, options_.request_timeout_ms);
  if (!conn.ok()) return conn.status();
  Channel channel(std::move(conn).value());

  // Tag the poll with this sync's trace id so the primary's flight
  // recorder shows the whole pull under one `tracez id` (the tid=
  // token is stripped before per-verb token counts, protocol.h).
  const std::string tid_token = " tid=" + obs::FormatTraceId(trace_id);
  std::string line;
  {
    const Deadline deadline =
        Deadline::After(options_.request_timeout_ms, clock_);
    ISLABEL_RETURN_IF_ERROR(channel.SendLine("version" + tid_token));
    ISLABEL_RETURN_IF_ERROR(channel.ReadLine(&line, deadline));
  }
  if (line.rfind("version:", 0) != 0) {
    return Status::Corruption("unexpected version reply: " + line);
  }
  {
    MutexLock lock(&mu_);
    contacted_ = true;
    last_contact_ms_ = clock_->NowMs();
  }

  // "version: NAME:GEN NAME:GEN ..."
  std::vector<std::pair<std::string, std::uint64_t>> primary_gens;
  for (std::string_view token :
       Split(std::string_view(line).substr(8), ' ')) {
    const std::size_t colon = token.rfind(':');
    std::uint64_t gen = 0;
    if (colon == std::string_view::npos || colon == 0 ||
        !ParseU64Token(token.substr(colon + 1), &gen)) {
      return Status::Corruption("bad version entry '" + std::string(token) +
                                "'");
    }
    primary_gens.emplace_back(std::string(token.substr(0, colon)), gen);
  }

  Status first_error = Status::OK();
  std::uint64_t lag = 0;
  for (const auto& [name, primary_gen] : primary_gens) {
    if (!catalog_->Get(name)) {
      // First time we hear of this dataset: register it empty so the
      // serving side can already answer `use` (queries report
      // FailedPrecondition until the first install).
      const Status st = catalog_->AddEmpty(name);
      if (!st.ok() && first_error.ok()) first_error = st;
    }
    const std::uint64_t local = catalog_->Generation(name);
    if (primary_gen > local) {
      const Status st =
          PullDataset(&channel, name, local, primary_gen, trace_id);
      if (!st.ok() && first_error.ok()) first_error = st;
    }
    const std::uint64_t now_local = catalog_->Generation(name);
    lag += primary_gen > now_local ? primary_gen - now_local : 0;
  }
  {
    MutexLock lock(&mu_);
    lag_gens_ = lag;
    if (first_error.ok()) {
      contacted_ = true;
      last_contact_ms_ = clock_->NowMs();
    }
  }
  return first_error;
}

Status ReplicaAgent::PullDataset(Channel* channel, const std::string& name,
                                 std::uint64_t local_gen,
                                 std::uint64_t target_gen,
                                 std::uint64_t trace_id) {
  (void)target_gen;  // informational; the stream header is authoritative
  const Deadline deadline =
      Deadline::After(options_.request_timeout_ms, clock_);
  ISLABEL_RETURN_IF_ERROR(channel->SendLine(
      "replicate " + name + " " + std::to_string(local_gen) + " tid=" +
      obs::FormatTraceId(trace_id)));
  std::string header;
  ISLABEL_RETURN_IF_ERROR(channel->ReadLine(&header, deadline));
  if (header.rfind("uptodate ", 0) == 0) return Status::OK();
  if (header.rfind("error: ", 0) == 0) {
    return Status::Unavailable("primary refused replicate " + name + ": " +
                               header);
  }
  const std::vector<std::string_view> head = Split(header, ' ');
  std::uint64_t gen = 0, nchunks = 0, total = 0;
  if (head.size() != 5 || head[0] != "snapshot" || head[1] != name ||
      !ParseU64Token(head[2], &gen) || !ParseU64Token(head[3], &nchunks) ||
      !ParseU64Token(head[4], &total)) {
    return Status::Corruption("bad snapshot header: " + header);
  }
  if (total > options_.max_snapshot_bytes) {
    return Status::Corruption("snapshot for " + name + " too large (" +
                              std::to_string(total) + " bytes)");
  }

  std::string blob;
  blob.reserve(static_cast<std::size_t>(total));
  for (std::uint64_t i = 0; i < nchunks; ++i) {
    std::string chunk_line;
    ISLABEL_RETURN_IF_ERROR(channel->ReadLine(&chunk_line, deadline));
    const std::vector<std::string_view> ch = Split(chunk_line, ' ');
    std::uint64_t idx = 0, nbytes = 0, crc = 0;
    if (ch.size() != 4 || ch[0] != "chunk" || !ParseU64Token(ch[1], &idx) ||
        !ParseU64Token(ch[2], &nbytes) || !ParseU64Token(ch[3], &crc) ||
        idx != i || blob.size() + nbytes > total) {
      return Status::Corruption("bad chunk header: " + chunk_line);
    }
    const std::size_t off = blob.size();
    ISLABEL_RETURN_IF_ERROR(channel->ReadExact(
        &blob, static_cast<std::size_t>(nbytes), deadline));
    if (Crc32(std::string_view(blob).substr(off)) !=
        static_cast<std::uint32_t>(crc)) {
      return Status::Corruption("chunk " + std::to_string(i) +
                                " checksum mismatch for " + name);
    }
    // The raw bytes are terminated by a newline before the next chunk
    // header (or the trailer); anything else on that line is garbage.
    std::string separator;
    ISLABEL_RETURN_IF_ERROR(channel->ReadLine(&separator, deadline));
    if (!separator.empty()) {
      return Status::Corruption("trailing bytes after chunk " +
                                std::to_string(i) + ": " + separator);
    }
  }
  std::string end_line;
  ISLABEL_RETURN_IF_ERROR(channel->ReadLine(&end_line, deadline));
  const std::vector<std::string_view> tail = Split(end_line, ' ');
  std::uint64_t container_crc = 0;
  if (tail.size() != 2 || tail[0] != "end" ||
      !ParseU64Token(tail[1], &container_crc)) {
    return Status::Corruption("bad snapshot trailer: " + end_line);
  }
  if (blob.size() != total ||
      Crc32(blob) != static_cast<std::uint32_t>(container_crc)) {
    return Status::Corruption("snapshot stream checksum mismatch for " +
                              name);
  }
  pulls_c_->Inc();
  if (options_.event_log != nullptr) {
    options_.event_log->Log(obs::EventLevel::kInfo, "islabel.repl.pull",
                            {{"tid", obs::FormatTraceId(trace_id)},
                             {"dataset", name},
                             {"gen", obs::EventLog::U64(gen)},
                             {"bytes", obs::EventLog::U64(total)}});
  }

  // Validate fully, stage, rename, publish — a failure anywhere leaves
  // the currently-serving generation untouched.
  ISLABEL_RETURN_IF_ERROR(ValidateSnapshot(blob, nullptr));
  namespace fs = std::filesystem;
  const fs::path base = fs::path(options_.root) / name;
  const fs::path staging = base / (".staging-" + std::to_string(gen));
  const fs::path final_dir = base / ("gen-" + std::to_string(gen));
  std::error_code ec;
  fs::remove_all(staging, ec);
  ISLABEL_RETURN_IF_ERROR(InstallSnapshot(blob, staging.string()));
  fs::remove_all(final_dir, ec);
  ec.clear();
  fs::rename(staging, final_dir, ec);
  if (ec) {
    return Status::IOError("cannot publish " + final_dir.string() + ": " +
                           ec.message());
  }
  ISLABEL_RETURN_IF_ERROR(
      catalog_->ReloadFrom(name, final_dir.string(), gen));
  installs_c_->Inc();
  if (options_.event_log != nullptr) {
    options_.event_log->Log(obs::EventLevel::kInfo, "islabel.repl.install",
                            {{"tid", obs::FormatTraceId(trace_id)},
                             {"dataset", name},
                             {"gen", obs::EventLog::U64(gen)},
                             {"from_gen", obs::EventLog::U64(local_gen)}});
  }

  // Best-effort cleanup of superseded generations and stale staging
  // directories; in-flight queries pin the old index in memory, not on
  // disk, so removal is safe after the swap.
  const std::string keep = final_dir.filename().string();
  for (fs::directory_iterator it(base, ec), dir_end; !ec && it != dir_end;
       it.increment(ec)) {
    const std::string entry = it->path().filename().string();
    if (entry == keep) continue;
    if (entry.rfind("gen-", 0) == 0 || entry.rfind(".staging-", 0) == 0) {
      std::error_code rm_ec;
      fs::remove_all(it->path(), rm_ec);
    }
  }
  return Status::OK();
}

void ReplicaAgent::RunBackground() {
  if (bg_thread_.joinable()) return;
  bg_stop_.store(false, std::memory_order_release);
  bg_thread_ = std::thread([this] {
    while (!bg_stop_.load(std::memory_order_acquire)) {
      Tick();
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });
}

void ReplicaAgent::StopBackground() {
  bg_stop_.store(true, std::memory_order_release);
  if (bg_thread_.joinable()) bg_thread_.join();
}

bool ReplicaAgent::primary_up() const {
  MutexLock lock(&mu_);
  return contacted_ &&
         clock_->NowMs() - last_contact_ms_ <= options_.primary_timeout_ms;
}

ReplicaAgent::Stats ReplicaAgent::stats() const {
  Stats s;
  s.polls = polls_c_->Value();
  s.pulls = pulls_c_->Value();
  s.installs = installs_c_->Value();
  s.failures = failures_c_->Value();
  MutexLock lock(&mu_);
  s.lag_gens = lag_gens_;
  const std::uint64_t now = clock_->NowMs();
  s.ms_since_contact = contacted_ ? now - last_contact_ms_ : ~0ull;
  s.primary_up =
      contacted_ && now - last_contact_ms_ <= options_.primary_timeout_ms;
  return s;
}

Status ReplicaAgent::last_status() const {
  MutexLock lock(&mu_);
  return last_status_;
}

std::string ReplicaAgent::HandleVersion() {
  return FormatVersionLine(*catalog_);
}

std::string ReplicaAgent::HandleHeartbeat() { return "pong"; }

std::string ReplicaAgent::HandleReplicate(const std::string& name,
                                          std::uint64_t /*have_gen*/) {
  return "error: NotSupported: replica does not serve snapshots (" + name +
         ")";
}

void ReplicaAgent::FillStats(server::ServeStats* stats) {
  const Stats s = this->stats();
  stats->extra.emplace_back("repl_replica", 1);
  stats->extra.emplace_back("repl_primary_up", s.primary_up ? 1 : 0);
  stats->extra.emplace_back("repl_lag_gens", s.lag_gens);
  stats->extra.emplace_back("repl_polls", s.polls);
  stats->extra.emplace_back("repl_pulls", s.pulls);
  stats->extra.emplace_back("repl_installs", s.installs);
  stats->extra.emplace_back("repl_failures", s.failures);
  stats->extra.emplace_back("repl_ms_since_contact", s.ms_since_contact);
}

}  // namespace repl
}  // namespace islabel
