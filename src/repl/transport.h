// Transport: the injectable byte-stream seam of the replication layer.
//
// Every client-side network interaction in src/repl/ — the replica's
// pull loop, ReplicaSetClient queries, heartbeats — opens connections
// through this interface instead of calling socket() directly. That one
// seam is what makes the whole tier testable: production wires in
// TcpTransport (real sockets, poll-based deadlines); tests wrap any
// transport in a FaultInjector (fault_injector.h) to drop, cut, corrupt
// or duplicate traffic deterministically, with no real networks and no
// sleeps.
//
// Deadlines: every read takes an explicit Deadline (util/retry.h) and
// returns DeadlineExceeded when it expires, so a silent peer can never
// hang a caller. Writes are complete-or-error.

#ifndef ISLABEL_REPL_TRANSPORT_H_
#define ISLABEL_REPL_TRANSPORT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/result.h"
#include "util/retry.h"
#include "util/status.h"

namespace islabel {
namespace repl {

/// One bidirectional byte stream. Not thread-safe; one owner at a time.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Sends all of `data` or fails (Unavailable once the peer is gone).
  virtual Status Send(std::string_view data) = 0;

  /// Receives at least 1 and at most `cap` bytes into `buf`. Returns
  /// Unavailable on EOF/peer reset, DeadlineExceeded when the deadline
  /// expires first.
  virtual Status Recv(char* buf, std::size_t cap, std::size_t* received,
                      const Deadline& deadline) = 0;

  virtual void Close() = 0;
};

/// Connection factory. Thread-safe.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Opens a connection to `endpoint` ("host:port"). Unavailable if the
  /// peer refuses or the timeout expires.
  virtual Result<std::unique_ptr<Connection>> Connect(
      const std::string& endpoint, std::uint64_t timeout_ms) = 0;
};

/// Real TCP sockets: nonblocking connect with timeout, poll()-based
/// receive deadlines, TCP_NODELAY.
class TcpTransport : public Transport {
 public:
  Result<std::unique_ptr<Connection>> Connect(
      const std::string& endpoint, std::uint64_t timeout_ms) override;
};

/// Buffered line/blob reader over a Connection — the protocol-side
/// currency of the replication clients. Owns the connection.
class Channel {
 public:
  explicit Channel(std::unique_ptr<Connection> conn)
      : conn_(std::move(conn)) {}

  /// Sends `line` plus the terminating '\n'.
  Status SendLine(std::string_view line);

  /// Next '\n'-terminated line, without the '\n' (a trailing '\r' is
  /// stripped). `max_line_bytes` bounds buffering against a hostile peer.
  Status ReadLine(std::string* out, const Deadline& deadline,
                  std::size_t max_line_bytes = 1u << 20);

  /// Exactly `n` raw bytes appended to `*out`.
  Status ReadExact(std::string* out, std::size_t n, const Deadline& deadline);

  Connection* connection() { return conn_.get(); }

 private:
  std::unique_ptr<Connection> conn_;
  std::string buf_;
};

}  // namespace repl
}  // namespace islabel

#endif  // ISLABEL_REPL_TRANSPORT_H_
