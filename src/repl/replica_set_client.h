// ReplicaSetClient: failover-aware query client over a set of serving
// endpoints (a primary and its replicas).
//
// Queries spread round-robin across healthy endpoints. An endpoint
// that fails a request or misses a heartbeat is marked down and
// skipped; the request fails over to the next endpoint immediately.
// When a whole round of endpoints fails, the client backs off with
// capped jittered delays (util/retry.h) and retries until the
// per-request deadline expires — so a replica set survives the primary
// dying mid-flight with at most one failed round of latency. Down
// endpoints are re-probed by the next round or by CheckHeartbeats(),
// so a recovered peer rejoins rotation automatically.
//
// Deterministic by construction: time from an injected Clock, sockets
// from an injected Transport, jitter from an injected Rng, and the
// inter-round sleep through an injectable hook (tests advance a
// ManualClock instead of sleeping).

#ifndef ISLABEL_REPL_REPLICA_SET_CLIENT_H_
#define ISLABEL_REPL_REPLICA_SET_CLIENT_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "repl/transport.h"
#include "util/clock.h"
#include "util/mutex.h"
#include "util/random.h"
#include "util/result.h"
#include "util/retry.h"
#include "util/thread_annotations.h"

namespace islabel {
namespace repl {

struct ReplicaSetOptions {
  /// "host:port" per serving endpoint, primary included.
  std::vector<std::string> endpoints;
  /// Per network exchange (connect, one request/response round).
  std::uint64_t request_timeout_ms = 5000;
  /// Total budget for one Query() including failover and retries.
  std::uint64_t overall_timeout_ms = 15'000;
  /// Backoff between failed full rounds over the endpoint set.
  BackoffPolicy backoff;
  /// Inter-round sleep hook; defaults to a real sleep. Tests inject a
  /// function that advances their ManualClock.
  std::function<void(std::uint64_t)> sleep_ms;
  /// Optional registry: when set, the failover count is also exposed as
  /// islabel_client_failovers_total (must outlive the client).
  obs::MetricRegistry* metrics = nullptr;
};

class ReplicaSetClient {
 public:
  /// All pointees must outlive the client.
  ReplicaSetClient(Transport* transport, Clock* clock, Rng* rng,
                   ReplicaSetOptions options);

  /// Sends one request line and returns the single response line.
  /// Fails over across endpoints and retries with backoff until the
  /// overall deadline; Unavailable when every endpoint stays down.
  /// Thread-compatible (one Query at a time).
  ///
  /// Trace propagation (DESIGN.md §17): a line with no `tid=` token is
  /// stamped with one minted from the injected Rng, and the SAME
  /// stamped line is sent to every endpoint tried — so a request that
  /// fails over appears under one trace id in every replica's flight
  /// recorder (`tracez id HEX`). last_trace_id() reports the id used.
  Result<std::string> Query(const std::string& line);

  /// The trace id carried by the most recent Query (minted or caller
  /// supplied). 0 before the first Query.
  std::uint64_t last_trace_id() const;

  /// Probes every endpoint with `heartbeat`; endpoints that miss are
  /// marked down (skipped by Query until they answer again). Returns
  /// the number of healthy endpoints.
  std::size_t CheckHeartbeats();

  struct EndpointStats {
    std::string endpoint;
    bool healthy = true;   // optimistic until proven down
    std::uint64_t failures = 0;
    std::uint64_t requests_ok = 0;
  };
  std::vector<EndpointStats> endpoint_stats() const;
  /// Requests that had to leave their first-choice endpoint.
  std::uint64_t failovers() const;

 private:
  struct Endpoint {
    std::string address;
    std::unique_ptr<Channel> channel;  // persistent; reopened on demand
    bool healthy = true;
    std::uint64_t failures = 0;
    std::uint64_t requests_ok = 0;
  };

  /// One request/response exchange against endpoint `i`, reconnecting
  /// if needed. Marks health on the way out. Called with mu_ held by
  /// Query / CheckHeartbeats (they own the whole round).
  Status ExchangeOn(std::size_t i, const std::string& line,
                    std::string* response) REQUIRES(mu_);

  Transport* transport_;
  Clock* clock_;
  Rng* rng_;
  ReplicaSetOptions options_;

  mutable Mutex mu_;
  std::vector<Endpoint> endpoints_ GUARDED_BY(mu_);
  std::size_t cursor_ GUARDED_BY(mu_) = 0;
  std::uint64_t last_trace_id_ GUARDED_BY(mu_) = 0;
  // One counter system: the private instrument unless options.metrics
  // re-points it at a registry series (DESIGN.md §16).
  obs::Counter own_failovers_;
  obs::Counter* failovers_c_ = &own_failovers_;
};

}  // namespace repl
}  // namespace islabel

#endif  // ISLABEL_REPL_REPLICA_SET_CLIENT_H_
