#include "repl/snapshot.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "util/varint.h"

namespace islabel {
namespace repl {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x49534E50;  // "PNSI" on disk
constexpr std::uint32_t kSnapshotVersion = 1;
/// A container smaller than the fixed header + trailing CRC is garbage.
constexpr std::size_t kMinContainerBytes = 4 + 4 + 4 + 8 + 4;

/// Lazily built CRC-32 lookup table (IEEE reflected polynomial).
const std::uint32_t* CrcTable() {
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// True iff `path` is a safe relative path: non-empty, no leading '/',
/// no empty or "." / ".." components, no backslashes or NULs.
bool IsSafeRelativePath(std::string_view path) {
  if (path.empty() || path.size() > 4096) return false;
  if (path.front() == '/') return false;
  std::size_t begin = 0;
  while (begin <= path.size()) {
    const std::size_t end = std::min(path.find('/', begin), path.size());
    const std::string_view part = path.substr(begin, end - begin);
    if (part.empty() || part == "." || part == "..") return false;
    for (char c : part) {
      if (c == '\0' || c == '\\') return false;
    }
    if (end == path.size()) break;
    begin = end + 1;
  }
  return true;
}

Status ReadFileFully(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  out->clear();
  char buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return Status::IOError("cannot read " + path);
  return Status::OK();
}

/// One parsed file entry during validation; `data` points into the blob.
struct FileEntry {
  std::string path;
  std::string_view data;
};

/// Shared strict walk used by Validate and Install. On success `entries`
/// (nullable) holds a view per file.
Status ParseSnapshot(std::string_view blob, SnapshotInfo* info,
                     std::vector<FileEntry>* entries) {
  if (blob.size() < kMinContainerBytes) {
    return Status::Corruption("snapshot container truncated (" +
                              std::to_string(blob.size()) + " bytes)");
  }
  // The container checksum covers everything before its own 4 bytes.
  const std::string_view body = blob.substr(0, blob.size() - 4);
  Decoder tail(blob.data() + blob.size() - 4, 4);
  std::uint32_t stored_crc = 0;
  tail.GetFixed32(&stored_crc);
  if (Crc32(body) != stored_crc) {
    return Status::Corruption("snapshot container checksum mismatch");
  }

  Decoder dec(body.data(), body.size());
  std::uint32_t magic = 0, version = 0, file_count = 0;
  std::uint64_t payload_bytes = 0;
  if (!dec.GetFixed32(&magic) || magic != kSnapshotMagic) {
    return Status::Corruption("bad snapshot magic");
  }
  if (!dec.GetFixed32(&version) || version != kSnapshotVersion) {
    return Status::Corruption("unsupported snapshot version " +
                              std::to_string(version));
  }
  if (!dec.GetFixed32(&file_count) || !dec.GetFixed64(&payload_bytes)) {
    return Status::Corruption("truncated snapshot header");
  }
  // Plausibility before any allocation: every file needs at least its
  // 13-byte fixed overhead, and the payload cannot exceed the blob.
  if (file_count > body.size() / 13 || payload_bytes > body.size()) {
    return Status::Corruption("implausible snapshot header (" +
                              std::to_string(file_count) + " files, " +
                              std::to_string(payload_bytes) + " bytes)");
  }

  std::uint64_t seen_payload = 0;
  if (info != nullptr) {
    info->paths.clear();
    info->paths.reserve(file_count);
  }
  for (std::uint32_t i = 0; i < file_count; ++i) {
    std::uint64_t path_len = 0;
    if (!dec.GetVarint64(&path_len) || path_len > dec.Remaining()) {
      return Status::Corruption("truncated snapshot entry " +
                                std::to_string(i));
    }
    std::string path(static_cast<std::size_t>(path_len), '\0');
    if (path_len > 0 && !dec.GetBytes(path.data(), path.size())) {
      return Status::Corruption("truncated snapshot entry " +
                                std::to_string(i));
    }
    if (!IsSafeRelativePath(path)) {
      return Status::Corruption("unsafe path in snapshot: '" + path + "'");
    }
    std::uint64_t size = 0;
    std::uint32_t crc = 0;
    if (!dec.GetFixed64(&size) || !dec.GetFixed32(&crc) ||
        size > dec.Remaining()) {
      return Status::Corruption("truncated snapshot file " + path);
    }
    const std::string_view data(dec.Position(),
                                static_cast<std::size_t>(size));
    // Step over the payload without copying it.
    dec = Decoder(dec.Position() + size,
                  dec.Remaining() - static_cast<std::size_t>(size));
    if (Crc32(data) != crc) {
      return Status::Corruption("checksum mismatch for snapshot file " +
                                path);
    }
    seen_payload += size;
    if (info != nullptr) info->paths.push_back(path);
    if (entries != nullptr) entries->push_back(FileEntry{std::move(path), data});
  }
  if (!dec.Done()) {
    return Status::Corruption("trailing garbage in snapshot container");
  }
  if (seen_payload != payload_bytes) {
    return Status::Corruption("snapshot payload size mismatch");
  }
  if (info != nullptr) {
    info->file_count = file_count;
    info->payload_bytes = payload_bytes;
  }
  return Status::OK();
}

}  // namespace

std::uint32_t Crc32Extend(std::uint32_t crc, std::string_view data) {
  const std::uint32_t* table = CrcTable();
  crc ^= 0xFFFFFFFFu;
  for (unsigned char c : data) {
    crc = table[(crc ^ c) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint32_t Crc32(std::string_view data) { return Crc32Extend(0, data); }

Status BuildSnapshot(const std::string& dir, std::string* out) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return Status::IOError("snapshot source is not a directory: " + dir);
  }
  std::vector<std::string> paths;
  for (fs::recursive_directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      paths.push_back(fs::relative(it->path(), dir, ec).generic_string());
    }
  }
  if (ec) {
    return Status::IOError("cannot walk " + dir + ": " + ec.message());
  }
  std::sort(paths.begin(), paths.end());

  out->clear();
  PutFixed32(out, kSnapshotMagic);
  PutFixed32(out, kSnapshotVersion);
  PutFixed32(out, static_cast<std::uint32_t>(paths.size()));
  const std::size_t payload_at = out->size();
  PutFixed64(out, 0);  // payload_bytes, patched below

  std::uint64_t payload_bytes = 0;
  std::string contents;
  for (const std::string& rel : paths) {
    if (!IsSafeRelativePath(rel)) {
      return Status::IOError("refusing to pack unsafe path '" + rel + "'");
    }
    ISLABEL_RETURN_IF_ERROR(ReadFileFully(dir + "/" + rel, &contents));
    PutVarint64(out, rel.size());
    out->append(rel);
    PutFixed64(out, contents.size());
    PutFixed32(out, Crc32(contents));
    out->append(contents);
    payload_bytes += contents.size();
  }
  std::string patched;
  PutFixed64(&patched, payload_bytes);
  out->replace(payload_at, patched.size(), patched);
  PutFixed32(out, Crc32(*out));
  return Status::OK();
}

Status ValidateSnapshot(std::string_view blob, SnapshotInfo* info) {
  return ParseSnapshot(blob, info, nullptr);
}

Status InstallSnapshot(std::string_view blob, const std::string& dest_dir) {
  std::vector<FileEntry> entries;
  ISLABEL_RETURN_IF_ERROR(ParseSnapshot(blob, nullptr, &entries));

  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dest_dir, ec);
  if (ec) {
    return Status::IOError("cannot create " + dest_dir + ": " +
                           ec.message());
  }
  for (const FileEntry& entry : entries) {
    const std::string path = dest_dir + "/" + entry.path;
    const fs::path parent = fs::path(path).parent_path();
    fs::create_directories(parent, ec);
    if (ec) {
      return Status::IOError("cannot create " + parent.string() + ": " +
                             ec.message());
    }
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IOError("cannot create " + path);
    const std::size_t written =
        entry.data.empty()
            ? 0
            : std::fwrite(entry.data.data(), 1, entry.data.size(), f);
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (written != entry.data.size() || !flushed) {
      return Status::IOError("short write to " + path);
    }
  }
  return Status::OK();
}

}  // namespace repl
}  // namespace islabel
