#include "repl/replica_set_client.h"

#include <chrono>
#include <thread>
#include <utility>

#include "obs/trace.h"

namespace islabel {
namespace repl {

namespace {

/// True when `line` already carries a trailing `tid=` token (a caller
/// propagating an upstream trace id).
bool HasTraceToken(const std::string& line) {
  const std::size_t pos = line.rfind("tid=");
  if (pos == std::string::npos) return false;
  return pos == 0 || line[pos - 1] == ' ' || line[pos - 1] == '\t';
}

}  // namespace

ReplicaSetClient::ReplicaSetClient(Transport* transport, Clock* clock,
                                   Rng* rng, ReplicaSetOptions options)
    : transport_(transport),
      clock_(clock),
      rng_(rng),
      options_(std::move(options)) {
  if (options_.metrics != nullptr) {
    failovers_c_ = options_.metrics->GetCounter(
        "islabel_client_failovers_total",
        "Requests that had to leave their first-choice endpoint.");
  }
  if (!options_.sleep_ms) {
    options_.sleep_ms = [](std::uint64_t ms) {
      std::this_thread::sleep_for(std::chrono::milliseconds(ms));
    };
  }
  MutexLock lock(&mu_);  // unpublished; lock only for the analysis
  for (const std::string& address : options_.endpoints) {
    Endpoint ep;
    ep.address = address;
    endpoints_.push_back(std::move(ep));
  }
}

Status ReplicaSetClient::ExchangeOn(std::size_t i, const std::string& line,
                                    std::string* response) {
  Endpoint& ep = endpoints_[i];
  // One transparent reconnect: a persistent connection may have been
  // closed by the peer (restart, idle timeout) since the last request.
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (ep.channel == nullptr) {
      Result<std::unique_ptr<Connection>> conn =
          transport_->Connect(ep.address, options_.request_timeout_ms);
      if (!conn.ok()) {
        ep.healthy = false;
        ++ep.failures;
        return conn.status();
      }
      ep.channel = std::make_unique<Channel>(std::move(conn).value());
    }
    const Deadline deadline =
        Deadline::After(options_.request_timeout_ms, clock_);
    Status st = ep.channel->SendLine(line);
    if (st.ok()) st = ep.channel->ReadLine(response, deadline);
    if (st.ok()) {
      ep.healthy = true;
      ++ep.requests_ok;
      return Status::OK();
    }
    ep.channel.reset();
    if (attempt == 1 || !st.IsUnavailable()) {
      ep.healthy = false;
      ++ep.failures;
      return st;
    }
  }
  return Status::Unavailable("unreachable");  // not reached
}

Result<std::string> ReplicaSetClient::Query(const std::string& line) {
  MutexLock lock(&mu_);
  if (endpoints_.empty()) {
    return Status::InvalidArgument("replica set has no endpoints");
  }
  // Stamp the line with a minted trace id unless the caller already
  // carries one. The stamped line is what EVERY endpoint attempt sends,
  // so retries/failovers stitch into one logical trace across replicas.
  std::string stamped = line;
  if (HasTraceToken(line)) {
    std::uint64_t id = 0;
    const std::size_t pos = line.rfind("tid=");
    if (obs::ParseTraceId(line.substr(pos + 4), &id)) last_trace_id_ = id;
  } else {
    std::uint64_t id = rng_->Next();
    if (id == 0) id = 1;
    last_trace_id_ = id;
    stamped += " tid=";
    stamped += obs::FormatTraceId(id);
  }
  const Deadline deadline =
      Deadline::After(options_.overall_timeout_ms, clock_);
  Backoff backoff(options_.backoff, rng_);
  Status last = Status::Unavailable("no endpoint tried");
  bool first_choice = true;
  for (;;) {
    // One round: every endpoint once, healthy ones first. The cursor
    // advances on success too, spreading load across the set.
    for (int pass = 0; pass < 2; ++pass) {
      for (std::size_t k = 0; k < endpoints_.size(); ++k) {
        const std::size_t i = (cursor_ + k) % endpoints_.size();
        // Pass 0 tries healthy endpoints; pass 1 re-probes down ones
        // (they may have recovered, and skipping everyone forever
        // would wedge the client).
        if ((pass == 0) != endpoints_[i].healthy) continue;
        std::string response;
        const Status st = ExchangeOn(i, stamped, &response);
        if (st.ok()) {
          if (!first_choice) failovers_c_->Inc();
          cursor_ = (i + 1) % endpoints_.size();
          return response;
        }
        last = st;
        first_choice = false;
      }
    }
    const std::uint64_t delay = backoff.NextDelayMs();
    if (deadline.Expired() || delay >= deadline.RemainingMs()) break;
    options_.sleep_ms(delay);
  }
  return Status::Unavailable("all endpoints failed: " + last.ToString());
}

std::size_t ReplicaSetClient::CheckHeartbeats() {
  MutexLock lock(&mu_);
  std::size_t healthy = 0;
  for (std::size_t i = 0; i < endpoints_.size(); ++i) {
    std::string response;
    const Status st = ExchangeOn(i, "heartbeat", &response);
    if (st.ok() && response == "pong") {
      ++healthy;
    } else {
      endpoints_[i].healthy = false;
      endpoints_[i].channel.reset();
    }
  }
  return healthy;
}

std::vector<ReplicaSetClient::EndpointStats>
ReplicaSetClient::endpoint_stats() const {
  MutexLock lock(&mu_);
  std::vector<EndpointStats> out;
  out.reserve(endpoints_.size());
  for (const Endpoint& ep : endpoints_) {
    EndpointStats s;
    s.endpoint = ep.address;
    s.healthy = ep.healthy;
    s.failures = ep.failures;
    s.requests_ok = ep.requests_ok;
    out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t ReplicaSetClient::failovers() const {
  return failovers_c_->Value();
}

std::uint64_t ReplicaSetClient::last_trace_id() const {
  MutexLock lock(&mu_);
  return last_trace_id_;
}

}  // namespace repl
}  // namespace islabel
