#include "repl/primary.h"

#include "repl/snapshot.h"

namespace islabel {
namespace repl {

PrimaryHooks::PrimaryHooks(Catalog* catalog, std::size_t chunk_bytes)
    : catalog_(catalog), chunk_bytes_(chunk_bytes) {
  obs::MetricRegistry* reg = catalog_->metrics();
  heartbeats_ = reg->GetCounter("islabel_repl_heartbeats_total",
                                "Heartbeat requests answered.");
  snapshots_sent_ = reg->GetCounter("islabel_repl_snapshots_sent_total",
                                    "Snapshot streams served to replicas.");
  snapshot_bytes_sent_ =
      reg->GetCounter("islabel_repl_snapshot_bytes_sent_total",
                      "Container bytes shipped in snapshot streams.");
  snapshot_chunks_sent_ =
      reg->GetCounter("islabel_repl_snapshot_chunks_sent_total",
                      "Checksummed chunks shipped in snapshot streams.");
  uptodate_replies_ = reg->GetCounter(
      "islabel_repl_uptodate_replies_total",
      "replicate requests answered uptodate (caller was current).");
}

std::string FormatVersionLine(const Catalog& catalog) {
  std::string out = "version:";
  for (const std::string& name : catalog.Names()) {
    out += ' ';
    out += name;
    out += ':';
    out += std::to_string(catalog.Generation(name));
  }
  return out;
}

std::string PrimaryHooks::HandleVersion() {
  return FormatVersionLine(*catalog_);
}

std::string PrimaryHooks::HandleHeartbeat() {
  heartbeats_->Inc();
  return "pong";
}

std::string PrimaryHooks::HandleReplicate(const std::string& name,
                                          std::uint64_t have_gen) {
  if (!catalog_->Get(name)) {
    return "error: NotFound: unknown dataset " + name;
  }
  // A reload can land while we pack; the generation is re-read after
  // packing and the pack retried so one stream never mixes two versions.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const std::uint64_t gen = catalog_->Generation(name);
    if (gen <= have_gen) {
      uptodate_replies_->Inc();
      return "uptodate " + name + " " + std::to_string(gen);
    }
    const std::string dir = catalog_->Dir(name);
    if (dir.empty()) {
      return "error: FailedPrecondition: dataset " + name +
             " has no backing directory to snapshot";
    }
    std::string blob;
    const Status st = BuildSnapshot(dir, &blob);
    if (!st.ok()) return "error: " + st.ToString();
    if (catalog_->Generation(name) != gen) continue;  // torn pack: retry

    const std::size_t nchunks =
        blob.empty() ? 0 : (blob.size() + chunk_bytes_ - 1) / chunk_bytes_;
    std::string out = "snapshot " + name + " " + std::to_string(gen) + " " +
                      std::to_string(nchunks) + " " +
                      std::to_string(blob.size());
    for (std::size_t i = 0; i < nchunks; ++i) {
      const std::string_view chunk =
          std::string_view(blob).substr(i * chunk_bytes_, chunk_bytes_);
      out += "\nchunk " + std::to_string(i) + " " +
             std::to_string(chunk.size()) + " " +
             std::to_string(Crc32(chunk));
      out += '\n';
      out.append(chunk.data(), chunk.size());
    }
    out += "\nend " + std::to_string(Crc32(blob));
    snapshots_sent_->Inc();
    snapshot_bytes_sent_->Inc(blob.size());
    snapshot_chunks_sent_->Inc(nchunks);
    return out;
  }
  return "error: Unavailable: dataset " + name +
         " keeps reloading mid-snapshot, retry";
}

void PrimaryHooks::FillStats(server::ServeStats* stats) {
  stats->extra.emplace_back("repl_primary", 1);
  stats->extra.emplace_back("repl_heartbeats", heartbeats_->Value());
  stats->extra.emplace_back("repl_snapshots_sent", snapshots_sent_->Value());
  stats->extra.emplace_back("repl_snapshot_bytes_sent",
                            snapshot_bytes_sent_->Value());
  stats->extra.emplace_back("repl_uptodate_replies",
                            uptodate_replies_->Value());
}

}  // namespace repl
}  // namespace islabel
