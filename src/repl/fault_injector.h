// FaultInjector: deterministic network misbehaviour for the replication
// tests (mongodb-repl style). A FaultInjectingTransport wraps any
// Transport; rules registered on the shared FaultInjector fire on
// matching endpoints and make connects fail, cut a connection after N
// delivered bytes (a peer dying mid-snapshot-transfer), flip a byte at
// an exact stream offset, time a read out, or drop / duplicate /
// truncate a send — all without real networks, partitions or sleeps.
// Each rule fires a bounded number of times, so "the first transfer
// dies, the retry succeeds" is a two-line setup.

#ifndef ISLABEL_REPL_FAULT_INJECTOR_H_
#define ISLABEL_REPL_FAULT_INJECTOR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "repl/transport.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace islabel {
namespace repl {

struct FaultRule {
  enum class Kind {
    /// Connect() to a matching endpoint fails with Unavailable.
    kFailConnect,
    /// The connection is severed once `arg` bytes have been delivered to
    /// the reader — the deterministic "peer killed mid-transfer".
    kCutAfterRecvBytes,
    /// XOR-flips the low bit of the received byte at stream offset `arg`.
    kCorruptRecvByte,
    /// One Recv call fails with DeadlineExceeded (a stalled peer).
    kTimeoutRecv,
    /// Send silently discards the payload and reports success.
    kDropSend,
    /// Send transmits the payload twice (a retransmit-style duplicate).
    kDuplicateSend,
    /// Send writes only the first `arg` bytes, then severs the
    /// connection and reports Unavailable (a partial write).
    kPartialSend,
  };

  Kind kind = Kind::kFailConnect;
  /// Applies to endpoints containing this substring ("" matches all).
  std::string endpoint_substr;
  /// Byte count / offset, per Kind.
  std::uint64_t arg = 0;
  /// How many times the rule triggers before going inert (-1 = forever).
  int fire_count = 1;
};

/// Trigger counters, for test assertions.
struct FaultStats {
  std::uint64_t connects_failed = 0;
  std::uint64_t connections_cut = 0;
  std::uint64_t bytes_corrupted = 0;
  std::uint64_t recv_timeouts = 0;
  std::uint64_t sends_dropped = 0;
  std::uint64_t sends_duplicated = 0;
  std::uint64_t sends_truncated = 0;
};

/// Shared rule table. Thread-safe; register rules before or between
/// operations and they apply to subsequent matching traffic.
class FaultInjector {
 public:
  void AddRule(FaultRule rule);
  void Clear();
  FaultStats stats() const;

  // -- Used by FaultInjectingTransport and its connections; tests only
  // need AddRule/Clear/stats. --

  /// Consumes one firing of the first live rule of `kind` matching
  /// `endpoint`; returns false if none. `arg` (nullable) receives the
  /// rule's argument.
  bool Fire(FaultRule::Kind kind, const std::string& endpoint,
            std::uint64_t* arg);
  /// Like Fire but does not consume — for rules (cut-after-bytes) that
  /// must stay armed while the stream approaches the trigger point.
  bool Peek(FaultRule::Kind kind, const std::string& endpoint,
            std::uint64_t* arg) const;

 private:
  mutable Mutex mu_;
  std::vector<FaultRule> rules_ GUARDED_BY(mu_);
  FaultStats stats_ GUARDED_BY(mu_);
};

/// Transport decorator applying a FaultInjector's rules. The injector
/// must outlive the transport and every connection it opened.
class FaultInjectingTransport : public Transport {
 public:
  FaultInjectingTransport(Transport* inner, FaultInjector* faults)
      : inner_(inner), faults_(faults) {}

  Result<std::unique_ptr<Connection>> Connect(
      const std::string& endpoint, std::uint64_t timeout_ms) override;

 private:
  Transport* inner_;
  FaultInjector* faults_;
};

}  // namespace repl
}  // namespace islabel

#endif  // ISLABEL_REPL_FAULT_INJECTOR_H_
