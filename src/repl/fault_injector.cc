#include "repl/fault_injector.h"

#include <algorithm>
#include <utility>

namespace islabel {
namespace repl {

namespace {

bool Matches(const FaultRule& rule, FaultRule::Kind kind,
             const std::string& endpoint) {
  return rule.kind == kind && rule.fire_count != 0 &&
         (rule.endpoint_substr.empty() ||
          endpoint.find(rule.endpoint_substr) != std::string::npos);
}

}  // namespace

void FaultInjector::AddRule(FaultRule rule) {
  MutexLock lock(&mu_);
  rules_.push_back(std::move(rule));
}

void FaultInjector::Clear() {
  MutexLock lock(&mu_);
  rules_.clear();
}

FaultStats FaultInjector::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

bool FaultInjector::Fire(FaultRule::Kind kind, const std::string& endpoint,
                         std::uint64_t* arg) {
  MutexLock lock(&mu_);
  for (FaultRule& rule : rules_) {
    if (!Matches(rule, kind, endpoint)) continue;
    if (rule.fire_count > 0) --rule.fire_count;
    if (arg != nullptr) *arg = rule.arg;
    switch (kind) {
      case FaultRule::Kind::kFailConnect: ++stats_.connects_failed; break;
      case FaultRule::Kind::kCutAfterRecvBytes: ++stats_.connections_cut; break;
      case FaultRule::Kind::kCorruptRecvByte: ++stats_.bytes_corrupted; break;
      case FaultRule::Kind::kTimeoutRecv: ++stats_.recv_timeouts; break;
      case FaultRule::Kind::kDropSend: ++stats_.sends_dropped; break;
      case FaultRule::Kind::kDuplicateSend: ++stats_.sends_duplicated; break;
      case FaultRule::Kind::kPartialSend: ++stats_.sends_truncated; break;
    }
    return true;
  }
  return false;
}

bool FaultInjector::Peek(FaultRule::Kind kind, const std::string& endpoint,
                         std::uint64_t* arg) const {
  MutexLock lock(&mu_);
  for (const FaultRule& rule : rules_) {
    if (!Matches(rule, kind, endpoint)) continue;
    if (arg != nullptr) *arg = rule.arg;
    return true;
  }
  return false;
}

namespace {

class FaultConnection : public Connection {
 public:
  FaultConnection(std::unique_ptr<Connection> inner, FaultInjector* faults,
                  std::string endpoint)
      : inner_(std::move(inner)),
        faults_(faults),
        endpoint_(std::move(endpoint)) {}

  Status Send(std::string_view data) override {
    std::uint64_t arg = 0;
    if (faults_->Fire(FaultRule::Kind::kDropSend, endpoint_, nullptr)) {
      return Status::OK();  // swallowed by the "network"
    }
    if (faults_->Fire(FaultRule::Kind::kPartialSend, endpoint_, &arg)) {
      const std::size_t keep =
          std::min<std::size_t>(static_cast<std::size_t>(arg), data.size());
      (void)inner_->Send(data.substr(0, keep));
      inner_->Close();
      return Status::Unavailable("injected partial write");
    }
    if (faults_->Fire(FaultRule::Kind::kDuplicateSend, endpoint_, nullptr)) {
      ISLABEL_RETURN_IF_ERROR(inner_->Send(data));
    }
    return inner_->Send(data);
  }

  Status Recv(char* buf, std::size_t cap, std::size_t* received,
              const Deadline& deadline) override {
    *received = 0;
    if (faults_->Fire(FaultRule::Kind::kTimeoutRecv, endpoint_, nullptr)) {
      return Status::DeadlineExceeded("injected recv timeout");
    }
    std::uint64_t cut_at = 0;
    const bool cut_armed =
        faults_->Peek(FaultRule::Kind::kCutAfterRecvBytes, endpoint_, &cut_at);
    if (cut_armed) {
      if (recv_offset_ >= cut_at) {
        faults_->Fire(FaultRule::Kind::kCutAfterRecvBytes, endpoint_, nullptr);
        inner_->Close();
        return Status::Unavailable("injected connection cut");
      }
      // Clamp so the cut lands on an exact byte boundary.
      cap = std::min<std::size_t>(
          cap, static_cast<std::size_t>(cut_at - recv_offset_));
    }
    ISLABEL_RETURN_IF_ERROR(inner_->Recv(buf, cap, received, deadline));
    std::uint64_t flip_at = 0;
    while (faults_->Peek(FaultRule::Kind::kCorruptRecvByte, endpoint_,
                         &flip_at) &&
           flip_at >= recv_offset_ && flip_at < recv_offset_ + *received) {
      faults_->Fire(FaultRule::Kind::kCorruptRecvByte, endpoint_, nullptr);
      buf[flip_at - recv_offset_] ^= 0x01;
    }
    recv_offset_ += *received;
    return Status::OK();
  }

  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<Connection> inner_;
  FaultInjector* faults_;
  std::string endpoint_;
  std::uint64_t recv_offset_ = 0;
};

}  // namespace

Result<std::unique_ptr<Connection>> FaultInjectingTransport::Connect(
    const std::string& endpoint, std::uint64_t timeout_ms) {
  if (faults_->Fire(FaultRule::Kind::kFailConnect, endpoint, nullptr)) {
    return Status::Unavailable("injected connect failure to " + endpoint);
  }
  Result<std::unique_ptr<Connection>> conn =
      inner_->Connect(endpoint, timeout_ms);
  if (!conn.ok()) return conn;
  return std::unique_ptr<Connection>(new FaultConnection(
      std::move(conn).value(), faults_, endpoint));
}

}  // namespace repl
}  // namespace islabel
