// PrimaryHooks: the primary side of the replication protocol, installed
// on a catalog-mode server via TcpServer::SetReplicationHooks.
//
// The primary is passive: replicas pull. Three verbs:
//
//   version            → "version: NAME:GEN ..." (every hosted dataset)
//   heartbeat          → "pong"
//   replicate NAME GEN → "uptodate NAME GEN" when the caller is current,
//                        otherwise a framed snapshot stream:
//
//     snapshot NAME GEN NCHUNKS TOTALBYTES
//     chunk 0 NBYTES CRC32(chunk)
//     <NBYTES raw container bytes>
//     ...
//     end CRC32(container)
//
// The stream carries the snapshot container of repl/snapshot.h split
// into fixed-size chunks, each with its own CRC so a receiver can abort
// a damaged transfer early; the container self-validates again before
// install. GEN is the catalog generation the container was packed from:
// the primary re-reads the generation after packing and repacks if a
// reload landed mid-pack, so a stream never mixes two versions.

#ifndef ISLABEL_REPL_PRIMARY_H_
#define ISLABEL_REPL_PRIMARY_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "server/dispatcher.h"

namespace islabel {
namespace repl {

class PrimaryHooks : public server::ReplicationHooks {
 public:
  explicit PrimaryHooks(Catalog* catalog,
                        std::size_t chunk_bytes = 256 * 1024)
      : catalog_(catalog), chunk_bytes_(chunk_bytes) {}

  std::string HandleVersion() override;
  std::string HandleHeartbeat() override;
  std::string HandleReplicate(const std::string& name,
                              std::uint64_t have_gen) override;
  void FillStats(server::ServeStats* stats) override;

 private:
  Catalog* catalog_;
  std::size_t chunk_bytes_;
  std::atomic<std::uint64_t> heartbeats_{0};
  std::atomic<std::uint64_t> snapshots_sent_{0};
  std::atomic<std::uint64_t> snapshot_bytes_sent_{0};
  std::atomic<std::uint64_t> uptodate_replies_{0};
};

/// Formats "version: NAME:GEN ..." for `catalog` — shared by the primary
/// and by replicas (which answer `version` about their own catalog so
/// clients and peers can measure lag).
std::string FormatVersionLine(const Catalog& catalog);

}  // namespace repl
}  // namespace islabel

#endif  // ISLABEL_REPL_PRIMARY_H_
