// PrimaryHooks: the primary side of the replication protocol, installed
// on a catalog-mode server via TcpServer::SetReplicationHooks.
//
// The primary is passive: replicas pull. Three verbs:
//
//   version            → "version: NAME:GEN ..." (every hosted dataset)
//   heartbeat          → "pong"
//   replicate NAME GEN → "uptodate NAME GEN" when the caller is current,
//                        otherwise a framed snapshot stream:
//
//     snapshot NAME GEN NCHUNKS TOTALBYTES
//     chunk 0 NBYTES CRC32(chunk)
//     <NBYTES raw container bytes>
//     ...
//     end CRC32(container)
//
// The stream carries the snapshot container of repl/snapshot.h split
// into fixed-size chunks, each with its own CRC so a receiver can abort
// a damaged transfer early; the container self-validates again before
// install. GEN is the catalog generation the container was packed from:
// the primary re-reads the generation after packing and repacks if a
// reload landed mid-pack, so a stream never mixes two versions.

#ifndef ISLABEL_REPL_PRIMARY_H_
#define ISLABEL_REPL_PRIMARY_H_

#include <cstdint>
#include <string>

#include "catalog/catalog.h"
#include "obs/metrics.h"
#include "server/dispatcher.h"

namespace islabel {
namespace repl {

class PrimaryHooks : public server::ReplicationHooks {
 public:
  /// Counters register in the catalog's metric registry (a catalog
  /// always has one), so snapshot traffic shows up in the `metrics`
  /// verb alongside the `stats` extra pairs.
  explicit PrimaryHooks(Catalog* catalog,
                        std::size_t chunk_bytes = 256 * 1024);

  std::string HandleVersion() override;
  std::string HandleHeartbeat() override;
  std::string HandleReplicate(const std::string& name,
                              std::uint64_t have_gen) override;
  void FillStats(server::ServeStats* stats) override;

 private:
  Catalog* catalog_;
  std::size_t chunk_bytes_;
  obs::Counter* heartbeats_;
  obs::Counter* snapshots_sent_;
  obs::Counter* snapshot_bytes_sent_;
  obs::Counter* snapshot_chunks_sent_;
  obs::Counter* uptodate_replies_;
};

/// Formats "version: NAME:GEN ..." for `catalog` — shared by the primary
/// and by replicas (which answer `version` about their own catalog so
/// clients and peers can measure lag).
std::string FormatVersionLine(const Catalog& catalog);

}  // namespace repl
}  // namespace islabel

#endif  // ISLABEL_REPL_PRIMARY_H_
