// Snapshot container: one catalog/index directory packed into a single
// checksummed byte blob — the unit the replication protocol ships.
//
// A snapshot is a recursive pack of every regular file under a
// directory (the partition manifest plus each part's index files), with
// a CRC32 per file and a CRC32 over the whole container. Validation is
// strict and allocation-bounded: sizes are checked against the blob
// length before anything is allocated, paths must be relative with no
// ".." components, and any truncation or bit flip answers
// Status::Corruption naming the offending file — never a crash, hang or
// bad_alloc. InstallSnapshot validates the entire blob before writing
// the first byte, so a rejected snapshot leaves the destination
// untouched; callers stage into a fresh directory and let
// Catalog::ReloadFrom perform the atomic swap.
//
// Layout (all integers little-endian):
//   fixed32 magic "PNSI"        fixed32 version (1)
//   fixed32 file_count          fixed64 payload_bytes (sum of file sizes)
//   file_count times:
//     varint  path_len, path bytes (relative, '/'-separated)
//     fixed64 size                fixed32 crc32(file bytes)
//     size raw bytes
//   fixed32 crc32 of everything above (the container checksum)
// Nothing may follow the container checksum.

#ifndef ISLABEL_REPL_SNAPSHOT_H_
#define ISLABEL_REPL_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace islabel {
namespace repl {

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320) of `data`, seeded so
/// that Crc32(a + b) can be computed incrementally via Crc32Extend.
std::uint32_t Crc32(std::string_view data);
/// Extends a running CRC with more bytes (crc = Crc32Extend(crc, more)).
std::uint32_t Crc32Extend(std::uint32_t crc, std::string_view data);

/// Summary of a validated snapshot.
struct SnapshotInfo {
  std::uint32_t file_count = 0;
  std::uint64_t payload_bytes = 0;
  std::vector<std::string> paths;  // relative, in container order
};

/// Packs every regular file under `dir` (recursively, paths sorted for
/// determinism) into `*out`. Fails with IOError if the directory cannot
/// be read.
Status BuildSnapshot(const std::string& dir, std::string* out);

/// Fully validates `blob` (header plausibility, per-file CRCs, container
/// CRC, exact length, path safety). On success fills `*info` (nullable).
/// Any mutation of a valid snapshot yields Corruption naming the file
/// (or the container when the damage precedes any file).
Status ValidateSnapshot(std::string_view blob, SnapshotInfo* info);

/// Validates `blob` and then writes its files under `dest_dir`
/// (creating directories as needed). Validation failures leave
/// `dest_dir` untouched. `dest_dir` should be a fresh staging directory;
/// the atomic publish step belongs to the caller.
Status InstallSnapshot(std::string_view blob, const std::string& dest_dir);

}  // namespace repl
}  // namespace islabel

#endif  // ISLABEL_REPL_SNAPSHOT_H_
