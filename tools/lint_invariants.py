#!/usr/bin/env python3
"""Project invariant linter: concurrency and layering rules the compiler
cannot see.

The Clang thread-safety pass (the `tidy` preset) proves lock discipline;
this linter proves the conventions that make that proof meaningful:

  raw-mutex        All locking goes through util/mutex.h (Mutex /
                   MutexLock / CondVar). A raw std::mutex has no
                   CAPABILITY attribute, so anything it guards is
                   invisible to the analysis.
  event-loop-block The epoll event loop in server/tcp_server.cc (the
                   section between its "Event loop" and "Workers"
                   markers) never blocks: no sleeps, no connect(), no
                   file I/O, no stdio. One blocked loop thread stalls
                   every connection.
  clock-seam       "now" comes only from util/clock.h (injectable;
                   tests drive a ManualClock). util/timer.h is the one
                   sanctioned exception: wall-clock *measurement* for
                   benchmarks, never protocol decisions.
  rng-seam         Randomness comes only from util/random.h (seedable
                   Rng; deterministic tests). No rand(), no ad-hoc
                   std::mt19937, no std::random_device.
  protocol-verbs   The verb set parsed by server/protocol.cc equals the
                   set pinned in DESIGN.md's `<!-- protocol-verbs: -->`
                   marker, so the wire grammar documentation cannot
                   drift from the parser.
  metric-names     Every metric family registered in src/ (GetCounter /
                   GetGauge / GetHistogram / RegisterCallbackGauge with
                   a literal name) appears in DESIGN.md's
                   `<!-- metric-names: -->` marker and vice versa, and
                   carries the `islabel_` prefix. Registration sites
                   must use a string literal — a computed name cannot
                   be linted, documented, or grepped for.
  log-events       Every structured event emitted in src/ (an
                   EventLog::Log call with a literal name) appears in
                   DESIGN.md's `<!-- log-events: -->` marker and vice
                   versa, and carries the `islabel.` prefix. Emission
                   sites must use a string literal — a computed event
                   name cannot be linted, documented, or grepped for.
  test-registered  Every tests/test_*.cc is registered in
                   tests/CMakeLists.txt — an unregistered test compiles
                   nowhere and silently stops running.

Usage:
  tools/lint_invariants.py [--root REPO]   lint the repository
  tools/lint_invariants.py --self-test     run against the seeded
                                           violation fixtures in
                                           tools/lint_fixtures/

Exits non-zero on any violation (or any self-test mismatch). Stdlib
only; diagnostics are `path:line: [rule] message`, one per line.
"""

import argparse
import os
import re
import sys

# --- Source walking -------------------------------------------------------

SOURCE_EXTS = (".h", ".cc")


def walk_sources(root, subdir):
    """Yields repo-relative paths of C++ sources under `subdir`, sorted."""
    base = os.path.join(root, subdir)
    out = []
    for dirpath, _dirnames, filenames in os.walk(base):
        for name in filenames:
            if name.endswith(SOURCE_EXTS):
                full = os.path.join(dirpath, name)
                out.append(os.path.relpath(full, root))
    return sorted(out)


def read_lines(root, relpath):
    with open(os.path.join(root, relpath), encoding="utf-8") as f:
        return f.read().splitlines()


def code_lines(lines):
    """Yields (lineno, text) with // and /* */ comment text blanked out.

    Line numbers are 1-based. String literals are NOT stripped — the
    forbidden patterns below do not plausibly appear inside project
    string literals, and keeping strings lets the verb rule reuse this.
    """
    in_block = False
    for i, line in enumerate(lines, start=1):
        out = []
        j = 0
        while j < len(line):
            if in_block:
                end = line.find("*/", j)
                if end < 0:
                    j = len(line)
                else:
                    in_block = False
                    j = end + 2
                continue
            if line.startswith("//", j):
                break
            if line.startswith("/*", j):
                in_block = True
                j += 2
                continue
            out.append(line[j])
            j += 1
        yield i, "".join(out)


def scan_forbidden(root, files, patterns, rule, why):
    """One violation per line matching any of `patterns`."""
    violations = []
    compiled = [(re.compile(p), p) for p in patterns]
    for rel in files:
        for lineno, text in code_lines(read_lines(root, rel)):
            for rx, pat in compiled:
                if rx.search(text):
                    violations.append(
                        (rel, lineno, rule, f"'{pat}' forbidden: {why}"))
                    break
    return violations


# --- Rules ----------------------------------------------------------------

RAW_MUTEX_PATTERNS = [
    r"std::(recursive_|timed_|shared_)?mutex\b",
    r"std::lock_guard\b",
    r"std::unique_lock\b",
    r"std::scoped_lock\b",
    r"std::condition_variable\b",
    r"pthread_mutex",
]
RAW_MUTEX_ALLOWED = {os.path.join("src", "util", "mutex.h")}


def rule_raw_mutex(root):
    files = [f for f in walk_sources(root, "src")
             if f not in RAW_MUTEX_ALLOWED]
    return scan_forbidden(
        root, files, RAW_MUTEX_PATTERNS, "raw-mutex",
        "lock through util/mutex.h so Clang can prove GUARDED_BY")


CLOCK_PATTERNS = [
    r"std::chrono::(steady|system|high_resolution)_clock",
    r"\b(steady|system|high_resolution)_clock::now\b",
]
CLOCK_ALLOWED = {
    os.path.join("src", "util", "clock.h"),
    # Wall-clock measurement for benchmarks/build timing only; protocol
    # decisions must use the injectable util/clock.h seam.
    os.path.join("src", "util", "timer.h"),
}


def rule_clock_seam(root):
    files = [f for f in walk_sources(root, "src") if f not in CLOCK_ALLOWED]
    return scan_forbidden(
        root, files, CLOCK_PATTERNS, "clock-seam",
        "read time through util/clock.h (ManualClock-testable)")


RNG_PATTERNS = [
    r"std::random_device\b",
    r"std::mt19937",
    r"\bs?rand\s*\(",
]
RNG_ALLOWED = {
    os.path.join("src", "util", "random.h"),
    os.path.join("src", "util", "random.cc"),
}


def rule_rng_seam(root):
    files = [f for f in walk_sources(root, "src") if f not in RNG_ALLOWED]
    return scan_forbidden(
        root, files, RNG_PATTERNS, "rng-seam",
        "draw randomness through util/random.h (seedable, deterministic)")


EVENT_LOOP_FILE = os.path.join("src", "server", "tcp_server.cc")
EVENT_LOOP_BEGIN = "---- Event loop"
EVENT_LOOP_END = "---- Workers"
BLOCKING_PATTERNS = [
    r"\bsleep\w*\s*\(",          # sleep / usleep / nanosleep / sleep_for
    r"std::this_thread",
    r"::connect\s*\(",
    r"\bfopen\s*\(",
    r"\b[io]?fstream\b",
    r"\bsystem\s*\(",
    r"\bgetline\s*\(",
    r"\bf?printf\s*\(",
    r"std::c(out|err)\b",
]


def rule_event_loop(root):
    path = os.path.join(root, EVENT_LOOP_FILE)
    if not os.path.exists(path):
        return [(EVENT_LOOP_FILE, 1, "event-loop-block", "file not found")]
    lines = read_lines(root, EVENT_LOOP_FILE)
    begin = end = None
    for i, line in enumerate(lines, start=1):
        if EVENT_LOOP_BEGIN in line and begin is None:
            begin = i
        elif EVENT_LOOP_END in line and begin is not None:
            end = i
            break
    if begin is None or end is None:
        # The markers delimit the audited region; losing them silently
        # disables the rule, so their absence IS the violation.
        return [(EVENT_LOOP_FILE, 1, "event-loop-block",
                 f"section markers '{EVENT_LOOP_BEGIN}' / "
                 f"'{EVENT_LOOP_END}' not found")]
    violations = []
    compiled = [(re.compile(p), p) for p in BLOCKING_PATTERNS]
    section = dict(code_lines(lines))
    for lineno in range(begin, end):
        text = section.get(lineno, "")
        for rx, pat in compiled:
            if rx.search(text):
                violations.append(
                    (EVENT_LOOP_FILE, lineno, "event-loop-block",
                     f"'{pat}' blocks the event loop "
                     "(every connection stalls behind it)"))
                break
    return violations


PROTOCOL_FILE = os.path.join("src", "server", "protocol.cc")
DESIGN_FILE = "DESIGN.md"
VERB_MARKER_RE = re.compile(r"<!--\s*protocol-verbs:\s*([^>]*?)\s*-->")
VERB_PARSE_RE = re.compile(r'head\s*==\s*"([a-z]+)"')


def rule_protocol_verbs(root):
    for rel in (PROTOCOL_FILE, DESIGN_FILE):
        if not os.path.exists(os.path.join(root, rel)):
            return [(rel, 1, "protocol-verbs", "file not found")]
    parsed = set()
    for _lineno, text in code_lines(read_lines(root, PROTOCOL_FILE)):
        parsed.update(VERB_PARSE_RE.findall(text))
    design_text = "\n".join(read_lines(root, DESIGN_FILE))
    marker = VERB_MARKER_RE.search(design_text)
    if marker is None:
        return [(DESIGN_FILE, 1, "protocol-verbs",
                 "missing '<!-- protocol-verbs: ... -->' marker")]
    documented = set(marker.group(1).split())
    marker_line = design_text[:marker.start()].count("\n") + 1
    violations = []
    for verb in sorted(parsed - documented):
        violations.append(
            (PROTOCOL_FILE, 1, "protocol-verbs",
             f"verb '{verb}' parsed but absent from the DESIGN.md marker"))
    for verb in sorted(documented - parsed):
        violations.append(
            (DESIGN_FILE, marker_line, "protocol-verbs",
             f"verb '{verb}' documented but not parsed by protocol.cc"))
    return violations


METRIC_MARKER_RE = re.compile(r"<!--\s*metric-names:\s*([^>]*?)\s*-->", re.S)
# A registration call whose first argument is a string literal. Matched
# against the comment-stripped file joined with newlines, so the literal
# may sit on the line after the open paren.
METRIC_CALL_RE = re.compile(
    r"\b(?:GetCounter|GetGauge|GetHistogram|RegisterCallbackGauge)"
    r'\s*\(\s*"([A-Za-z_][A-Za-z0-9_]*)"')
# A registration call whose first argument is NOT a string literal.
METRIC_NONLITERAL_RE = re.compile(
    r"\b(?:GetCounter|GetGauge|GetHistogram|RegisterCallbackGauge)"
    r'\s*\((?!\s*")')
# The registry API itself declares/defines these methods with
# `std::string name` parameters; that is not a computed-name call site.
METRIC_API_FILES = {
    os.path.join("src", "obs", "metrics.h"),
    os.path.join("src", "obs", "metrics.cc"),
}
METRIC_PREFIX = "islabel_"


def rule_metric_names(root):
    if not os.path.exists(os.path.join(root, DESIGN_FILE)):
        return [(DESIGN_FILE, 1, "metric-names", "file not found")]
    violations = []
    registered = {}  # name -> (file, line) of first registration
    for rel in walk_sources(root, "src"):
        joined = "\n".join(
            text for _lineno, text in code_lines(read_lines(root, rel)))
        for m in METRIC_CALL_RE.finditer(joined):
            lineno = joined.count("\n", 0, m.start()) + 1
            name = m.group(1)
            if not name.startswith(METRIC_PREFIX):
                violations.append(
                    (rel, lineno, "metric-names",
                     f"metric '{name}' lacks the '{METRIC_PREFIX}' prefix"))
            elif name not in registered:
                registered[name] = (rel, lineno)
        if rel in METRIC_API_FILES:
            continue
        for m in METRIC_NONLITERAL_RE.finditer(joined):
            lineno = joined.count("\n", 0, m.start()) + 1
            violations.append(
                (rel, lineno, "metric-names",
                 "metric registered under a computed name — use a string "
                 "literal so it can be documented and grepped"))
    design_text = "\n".join(read_lines(root, DESIGN_FILE))
    marker = METRIC_MARKER_RE.search(design_text)
    if marker is None:
        # Mirrors protocol-verbs: losing the marker would silently
        # disable the rule, so its absence IS the violation.
        violations.append((DESIGN_FILE, 1, "metric-names",
                           "missing '<!-- metric-names: ... -->' marker"))
        return violations
    documented = set(marker.group(1).split())
    marker_line = design_text[:marker.start()].count("\n") + 1
    for name in sorted(set(registered) - documented):
        rel, lineno = registered[name]
        violations.append(
            (rel, lineno, "metric-names",
             f"metric '{name}' registered but absent from the DESIGN.md "
             "marker"))
    for name in sorted(documented - set(registered)):
        violations.append(
            (DESIGN_FILE, marker_line, "metric-names",
             f"metric '{name}' documented but never registered in src/"))
    return violations


LOG_MARKER_RE = re.compile(r"<!--\s*log-events:\s*([^>]*?)\s*-->", re.S)
# An emission whose name argument is a string literal: the EventLevel
# first argument distinguishes EventLog::Log from unrelated Log methods.
# Matched against the comment-stripped file joined with newlines, so the
# literal may sit on the line after the level.
LOG_CALL_RE = re.compile(
    r"\bLog\s*\(\s*(?:obs::)?EventLevel::k\w+\s*,\s*"
    r'"([A-Za-z0-9._]+)"')
# An emission whose name argument is NOT a string literal.
LOG_NONLITERAL_RE = re.compile(
    r"\bLog\s*\(\s*(?:obs::)?EventLevel::k\w+\s*,(?!\s*\")")
# The EventLog API itself declares Log with a `const char* event`
# parameter; that is not a computed-name call site.
LOG_API_FILES = {
    os.path.join("src", "obs", "log.h"),
    os.path.join("src", "obs", "log.cc"),
}
LOG_EVENT_PREFIX = "islabel."


def rule_log_events(root):
    if not os.path.exists(os.path.join(root, DESIGN_FILE)):
        return [(DESIGN_FILE, 1, "log-events", "file not found")]
    violations = []
    emitted = {}  # name -> (file, line) of first emission
    for rel in walk_sources(root, "src"):
        joined = "\n".join(
            text for _lineno, text in code_lines(read_lines(root, rel)))
        for m in LOG_CALL_RE.finditer(joined):
            lineno = joined.count("\n", 0, m.start()) + 1
            name = m.group(1)
            if not name.startswith(LOG_EVENT_PREFIX):
                violations.append(
                    (rel, lineno, "log-events",
                     f"event '{name}' lacks the '{LOG_EVENT_PREFIX}' "
                     "prefix"))
            elif name not in emitted:
                emitted[name] = (rel, lineno)
        if rel in LOG_API_FILES:
            continue
        for m in LOG_NONLITERAL_RE.finditer(joined):
            lineno = joined.count("\n", 0, m.start()) + 1
            violations.append(
                (rel, lineno, "log-events",
                 "event emitted under a computed name — use a string "
                 "literal so it can be documented and grepped"))
    design_text = "\n".join(read_lines(root, DESIGN_FILE))
    marker = LOG_MARKER_RE.search(design_text)
    if marker is None:
        # Mirrors metric-names: losing the marker would silently
        # disable the rule, so its absence IS the violation.
        violations.append((DESIGN_FILE, 1, "log-events",
                           "missing '<!-- log-events: ... -->' marker"))
        return violations
    documented = set(marker.group(1).split())
    marker_line = design_text[:marker.start()].count("\n") + 1
    for name in sorted(set(emitted) - documented):
        rel, lineno = emitted[name]
        violations.append(
            (rel, lineno, "log-events",
             f"event '{name}' emitted but absent from the DESIGN.md "
             "marker"))
    for name in sorted(documented - set(emitted)):
        violations.append(
            (DESIGN_FILE, marker_line, "log-events",
             f"event '{name}' documented but never emitted in src/"))
    return violations


TESTS_CMAKE = os.path.join("tests", "CMakeLists.txt")


def rule_tests_registered(root):
    if not os.path.exists(os.path.join(root, TESTS_CMAKE)):
        return [(TESTS_CMAKE, 1, "test-registered", "file not found")]
    cmake_text = "\n".join(read_lines(root, TESTS_CMAKE))
    violations = []
    tests_dir = os.path.join(root, "tests")
    for name in sorted(os.listdir(tests_dir)):
        if not (name.startswith("test_") and name.endswith(".cc")):
            continue
        stem = name[:-len(".cc")]
        if not re.search(r"\b" + re.escape(stem) + r"\b", cmake_text):
            violations.append(
                (os.path.join("tests", name), 1, "test-registered",
                 f"not registered in {TESTS_CMAKE} — it never runs"))
    return violations


RULES = [
    rule_raw_mutex,
    rule_event_loop,
    rule_clock_seam,
    rule_rng_seam,
    rule_protocol_verbs,
    rule_metric_names,
    rule_log_events,
    rule_tests_registered,
]


def run_rules(root):
    violations = []
    for rule in RULES:
        violations.extend(rule(root))
    return violations


# --- Self-test ------------------------------------------------------------

# rule -> number of violations the seeded fixture tree must produce.
SELF_TEST_EXPECTED = {
    "raw-mutex": 2,
    "event-loop-block": 2,
    "clock-seam": 1,
    "rng-seam": 2,
    "protocol-verbs": 2,   # one undocumented verb + one unparsed verb
    # one undocumented metric + one bad prefix + one computed name +
    # one documented-but-unregistered name
    "metric-names": 4,
    # same four shapes for structured events (src/core/bad_events.cc +
    # the fixture DESIGN.md log-events marker)
    "log-events": 4,
    "test-registered": 1,
}


def self_test(script_dir):
    fixtures = os.path.join(script_dir, "lint_fixtures")
    if not os.path.isdir(fixtures):
        print(f"self-test: fixture tree {fixtures} missing", file=sys.stderr)
        return 1
    got = {}
    for rel, lineno, rule, msg in run_rules(fixtures):
        got[rule] = got.get(rule, 0) + 1
        print(f"  (expected) {rel}:{lineno}: [{rule}] {msg}")
    failed = False
    for rule, want in sorted(SELF_TEST_EXPECTED.items()):
        have = got.pop(rule, 0)
        if have != want:
            print(f"self-test: rule '{rule}' fired {have}x, expected "
                  f"{want}x — the rule has gone blind or trigger-happy",
                  file=sys.stderr)
            failed = True
    for rule, have in sorted(got.items()):
        print(f"self-test: unexpected rule '{rule}' fired {have}x",
              file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("self-test: all rules fire on their seeded violations")
    return 0


# --- Entry point ----------------------------------------------------------

def main():
    script_dir = os.path.dirname(os.path.abspath(__file__))
    parser = argparse.ArgumentParser(
        description="Lint project concurrency/layering invariants.")
    parser.add_argument(
        "--root", default=os.path.dirname(script_dir),
        help="repository root (default: parent of this script)")
    parser.add_argument(
        "--self-test", action="store_true",
        help="run the rules against the seeded fixtures and verify "
             "every rule fires")
    args = parser.parse_args()

    if args.self_test:
        return self_test(script_dir)

    violations = run_rules(args.root)
    for rel, lineno, rule, msg in violations:
        print(f"{rel}:{lineno}: [{rule}] {msg}")
    if violations:
        print(f"{len(violations)} invariant violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
