// islabel: command-line front end for the library.
//
//   islabel gen    --type <ba|er|rmat|grid|clique-community> --n N ...
//   islabel stats  --graph FILE
//   islabel build  --graph FILE --index DIR [--sigma S | --k K] [...]
//   islabel partition-build --graph FILE --catalog DIR [--threads N] [...]
//   islabel query  --index DIR [--disk] [--path] S T [S T ...]
//   islabel batch  --index DIR [--disk] [--threads T] [--in FILE]
//   islabel serve  --index DIR | --dataset NAME=DIR [--dataset NAME=DIR...]
//                  [--disk] [--listen HOST:PORT] [--threads N] [--cache-mb M]
//   islabel serve  --replicate-from HOST:PORT --repl-root DIR
//                  [--listen HOST:PORT] [--poll-ms N]
//   islabel query  --endpoints H:P,H:P,... S T [S T ...]
//   islabel repl-status --endpoints H:P,H:P,...
//   islabel bench  --index DIR [--queries N] [--disk]
//
// Graphs are text edge lists ("u v [w]" per line, '#' comments — SNAP
// compatible) or DIMACS ".gr" files (autodetected by extension). Indexes
// are the three-file directories of ISLabelIndex; `partition-build`
// writes a catalog directory (partition map + one sub-index per
// connected component). `batch` answers a file/stdin of "s t" pairs in
// parallel over the engine pool; `serve` speaks the line-oriented wire
// protocol of server/protocol.h on stdin/stdout, or over TCP with
// --listen (see CmdServe). Repeated --dataset flags host several indexes
// in one process behind the `use`/`datasets`/`reload` verbs.
//
// Replication: a catalog-mode TCP server is automatically a primary
// (it answers `version` / `heartbeat` / `replicate`). `serve
// --replicate-from` starts a replica: an initially-empty catalog that
// pulls snapshots from the primary, serves whatever generation it has,
// and keeps polling. `query --endpoints` queries a whole replica set
// with failover; `repl-status` prints per-endpoint generations and
// replication counters.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/dijkstra.h"
#include "catalog/catalog.h"
#include "catalog/partitioned_index.h"
#include "core/index.h"
#include "graph/generators.h"
#include "obs/flight_recorder.h"
#include "obs/io_bridge.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "graph/graph_io.h"
#include "graph/components.h"
#include "graph/stats.h"
#include "repl/primary.h"
#include "repl/replica.h"
#include "repl/replica_set_client.h"
#include "repl/transport.h"
#include "server/dispatcher.h"
#include "server/protocol.h"
#include "server/query_cache.h"
#include "server/tcp_server.h"
#include "util/clock.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;

namespace {

struct Args {
  std::map<std::string, std::string> options;
  /// Every --key value occurrence in order, for repeatable flags
  /// (--dataset); `options` keeps only the last occurrence.
  std::vector<std::pair<std::string, std::string>> ordered;
  std::vector<std::string> positional;

  bool Has(const std::string& key) const { return options.count(key) > 0; }
  std::string Get(const std::string& key, const std::string& dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : it->second;
  }
  std::vector<std::string> GetAll(const std::string& key) const {
    std::vector<std::string> values;
    for (const auto& [k, v] : ordered) {
      if (k == key) values.push_back(v);
    }
    return values;
  }
  long GetInt(const std::string& key, long dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : std::atol(it->second.c_str());
  }
  double GetDouble(const std::string& key, double dflt) const {
    auto it = options.find(key);
    return it == options.end() ? dflt : std::atof(it->second.c_str());
  }
};

bool IsBooleanFlag(const std::string& key) {
  return key == "lcc" || key == "no-vias" || key == "disk" ||
         key == "path" || key == "verify";
}

Args Parse(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      std::string key = argv[i] + 2;
      if (!IsBooleanFlag(key) && i + 1 < argc &&
          std::strncmp(argv[i + 1], "--", 2) != 0) {
        args.options[key] = argv[++i];
        args.ordered.emplace_back(key, argv[i]);
      } else {
        // A named string sidesteps GCC 12's spurious -Wrestrict on
        // short-literal assignment at -O2 (GCC PR105329).
        static const std::string kSet = "1";
        args.options[key] = kSet;
      }
    } else {
      args.positional.push_back(argv[i]);
    }
  }
  return args;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  islabel gen   --type <ba|er|rmat|grid|clique-community> --n N\n"
      "                [--m M] [--weights LO,HI] [--seed S] [--lcc]\n"
      "                --out FILE\n"
      "  islabel stats --graph FILE\n"
      "  islabel build --graph FILE --index DIR [--sigma S] [--k K]\n"
      "                [--no-vias] [--external-mb MB] [--tmp DIR]\n"
      "  islabel partition-build --graph FILE --catalog DIR [--sigma S]\n"
      "                [--k K] [--no-vias] [--threads N]\n"
      "                [--backend islabel|ch|auto]\n"
      "  islabel query --index DIR [--disk] [--path] S T [S T ...]\n"
      "  islabel batch --index DIR [--disk] [--threads T] [--in FILE]\n"
      "  islabel serve --index DIR | --dataset NAME=DIR [--dataset ...]\n"
      "                [--disk] [--listen HOST:PORT] [--threads N]\n"
      "                [--cache-mb M] [--idle-timeout-ms N]\n"
      "                [--max-buffered-kb N] [--slow-query-ms N]\n"
      "                [--flight-recorder-capacity N] [--log-level L]\n"
      "                [--log-file PATH]\n"
      "  islabel serve --replicate-from HOST:PORT --repl-root DIR\n"
      "                [--listen HOST:PORT] [--poll-ms N] [--threads N]\n"
      "  islabel query --endpoints H:P,H:P,... S T [S T ...]\n"
      "  islabel repl-status --endpoints H:P,H:P,... [--timeout-ms N]\n"
      "  islabel bench --index DIR [--queries N] [--disk] [--verify]\n");
  return 2;
}

/// DIMACS road-network files are detected by extension, for both the
/// reader (LoadGraph) and the writer (CmdGen) — one rule, two sides.
bool HasGrExtension(const std::string& path) {
  return path.size() >= 3 && path.compare(path.size() - 3, 3, ".gr") == 0;
}

int CmdGen(const Args& args) {
  const std::string type = args.Get("type", "ba");
  const VertexId n = static_cast<VertexId>(args.GetInt("n", 10000));
  const long m = args.GetInt("m", 4);
  Rng rng(static_cast<std::uint64_t>(args.GetInt("seed", 42)));
  EdgeList edges;
  if (type == "ba") {
    edges = GenerateBarabasiAlbert(n, static_cast<std::uint32_t>(m), &rng);
  } else if (type == "er") {
    edges = GenerateErdosRenyi(n, static_cast<std::uint64_t>(m) * n, &rng);
  } else if (type == "rmat") {
    std::uint32_t scale = 1;
    while ((1u << (scale + 1)) <= n) ++scale;
    edges = GenerateRMat(scale, static_cast<std::uint64_t>(m) * n, 0.57,
                         0.19, 0.19, &rng);
  } else if (type == "grid") {
    std::uint32_t side = 2;
    while ((side + 1) * (side + 1) <= n) ++side;
    edges = GenerateGrid2D(side, side);
  } else if (type == "clique-community") {
    edges = GenerateCliqueCommunity(n, static_cast<VertexId>(m > 1 ? m : 16),
                                    0.3, 0.1, 32.0, &rng);
  } else {
    std::fprintf(stderr, "unknown --type %s\n", type.c_str());
    return 2;
  }
  const std::string weights = args.Get("weights", "");
  if (!weights.empty()) {
    unsigned lo = 1, hi = 1;
    if (std::sscanf(weights.c_str(), "%u,%u", &lo, &hi) != 2 || lo > hi ||
        lo == 0) {
      std::fprintf(stderr, "--weights expects LO,HI\n");
      return 2;
    }
    AssignUniformWeights(&edges, lo, hi, &rng);
  }
  Graph g = Graph::FromEdgeList(std::move(edges));
  if (args.Has("lcc")) g = ExtractLargestComponent(g).graph;
  const std::string out = args.Get("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "--out is required\n");
    return 2;
  }
  // Honor the same extension convention LoadGraph reads by, so a
  // generated .gr file round-trips through build/stats/partition-build.
  Status st =
      HasGrExtension(out) ? WriteDimacsGraph(g, out) : WriteEdgeListText(g, out);
  if (!st.ok()) {
    std::fprintf(stderr, "write failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              g.NumVertices(), static_cast<unsigned long long>(g.NumEdges()));
  return 0;
}

Result<Graph> LoadGraph(const Args& args) {
  const std::string path = args.Get("graph", "");
  if (path.empty()) return Status::InvalidArgument("--graph is required");
  auto edges =
      HasGrExtension(path) ? ReadDimacsGraph(path) : ReadEdgeListText(path);
  if (!edges.ok()) return edges.status();
  return Graph::FromEdgeList(std::move(edges).value());
}

int CmdStats(const Args& args) {
  auto g = LoadGraph(args);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  GraphStats s = ComputeStats(*g);
  ComponentsResult comps = FindComponents(*g);
  std::printf("vertices:       %s\n", HumanCount(s.num_vertices).c_str());
  std::printf("edges:          %s\n", HumanCount(s.num_edges).c_str());
  std::printf("avg degree:     %.2f\n", s.avg_degree);
  std::printf("max degree:     %u\n", s.max_degree);
  std::printf("components:     %u (largest %s)\n", comps.num_components,
              HumanCount(comps.largest_size).c_str());
  std::printf("text size:      %s\n", HumanBytes(s.disk_size_bytes).c_str());
  return 0;
}

int CmdBuild(const Args& args) {
  auto g = LoadGraph(args);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  const std::string dir = args.Get("index", "");
  if (dir.empty()) {
    std::fprintf(stderr, "--index is required\n");
    return 2;
  }
  IndexOptions opts;
  opts.sigma = args.GetDouble("sigma", 0.95);
  opts.forced_k = static_cast<std::uint32_t>(args.GetInt("k", 0));
  opts.keep_vias = !args.Has("no-vias");
  opts.memory_budget_bytes =
      static_cast<std::uint64_t>(args.GetInt("external-mb", 0)) << 20;
  opts.tmp_dir = args.Get("tmp", "/tmp");

  WallTimer t;
  auto built = ISLabelIndex::Build(*g, opts);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const BuildStats& bs = built->build_stats();
  std::printf("built in %.2fs: k=%u, core %s vertices / %s edges, "
              "%s label entries\n",
              t.ElapsedSeconds(), bs.k, HumanCount(bs.core_vertices).c_str(),
              HumanCount(bs.core_edges).c_str(),
              HumanCount(bs.label_entries).c_str());
  Status st = built->Save(dir);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved to %s\n", dir.c_str());
  return 0;
}

// partition-build: splits the graph into connected components, builds one
// sub-index per multi-vertex component (components in parallel), and
// saves the partition map + per-part index dirs as one catalog directory
// servable via `islabel serve --dataset NAME=DIR`.
int CmdPartitionBuild(const Args& args) {
  auto g = LoadGraph(args);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  const std::string dir = args.Get("catalog", "");
  if (dir.empty()) {
    std::fprintf(stderr, "--catalog is required\n");
    return 2;
  }
  PartitionOptions opts;
  opts.index.sigma = args.GetDouble("sigma", 0.95);
  opts.index.forced_k = static_cast<std::uint32_t>(args.GetInt("k", 0));
  opts.index.keep_vias = !args.Has("no-vias");
  opts.num_threads = static_cast<std::uint32_t>(args.GetInt("threads", 0));
  const std::string backend = args.Get("backend", "islabel");
  if (!ParseBackendKind(backend, &opts.backend)) {
    std::fprintf(stderr, "--backend expects islabel, ch or auto, got '%s'\n",
                 backend.c_str());
    return 2;
  }

  WallTimer t;
  auto built = PartitionedIndex::Build(*g, opts);
  if (!built.ok()) {
    std::fprintf(stderr, "partition-build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::printf("partitioned %u vertices into %u components (%u indexed "
              "parts) in %.2fs\n",
              built->NumVertices(), built->num_components(),
              built->num_parts(), t.ElapsedSeconds());
  for (std::uint32_t p = 0; p < built->num_parts(); ++p) {
    const DistanceIndexInfo info = built->part(p).Info();
    std::printf("  part %u: backend=%s, %u vertices, %s entries (%s), %s\n",
                p, info.backend.c_str(), built->part(p).NumVertices(),
                HumanCount(info.entries).c_str(),
                HumanBytes(info.bytes).c_str(), info.detail.c_str());
  }
  Status st = built->Save(dir);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved catalog to %s\n", dir.c_str());
  return 0;
}

/// Splits a comma-separated --endpoints value.
std::vector<std::string> SplitEndpoints(const std::string& value) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= value.size()) {
    const std::size_t end = std::min(value.find(',', begin), value.size());
    if (end > begin) out.push_back(value.substr(begin, end - begin));
    if (end == value.size()) break;
    begin = end + 1;
  }
  return out;
}

/// query --endpoints: sends each pair to a replica set with failover
/// instead of loading a local index.
int QueryReplicaSet(const Args& args) {
  repl::ReplicaSetOptions opts;
  opts.endpoints = SplitEndpoints(args.Get("endpoints", ""));
  if (opts.endpoints.empty()) return Usage();
  opts.request_timeout_ms =
      static_cast<std::uint64_t>(args.GetInt("timeout-ms", 5000));
  repl::TcpTransport transport;
  SystemClock clock;
  Rng rng(0x5e7);
  repl::ReplicaSetClient client(&transport, &clock, &rng, opts);
  int failures = 0;
  for (std::size_t i = 0; i + 1 < args.positional.size(); i += 2) {
    const std::string line =
        args.positional[i] + " " + args.positional[i + 1];
    Result<std::string> response = client.Query(line);
    if (!response.ok()) {
      std::fprintf(stderr, "query '%s' failed: %s\n", line.c_str(),
                   response.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%s %s\n", line.c_str(), response.value().c_str());
  }
  const std::uint64_t n_failovers = client.failovers();
  if (n_failovers > 0) {
    std::fprintf(stderr, "(%llu failovers)\n",
                 static_cast<unsigned long long>(n_failovers));
  }
  return failures == 0 ? 0 : 1;
}

int CmdQuery(const Args& args) {
  if (args.Has("endpoints")) {
    if (args.positional.size() < 2 || args.positional.size() % 2 != 0) {
      return Usage();
    }
    return QueryReplicaSet(args);
  }
  const std::string dir = args.Get("index", "");
  if (dir.empty() || args.positional.size() < 2 ||
      args.positional.size() % 2 != 0) {
    return Usage();
  }
  auto loaded = ISLabelIndex::Load(dir, /*labels_in_memory=*/!args.Has("disk"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  ISLabelIndex index = std::move(loaded).value();
  for (std::size_t i = 0; i + 1 < args.positional.size(); i += 2) {
    const VertexId s =
        static_cast<VertexId>(std::atol(args.positional[i].c_str()));
    const VertexId t =
        static_cast<VertexId>(std::atol(args.positional[i + 1].c_str()));
    if (args.Has("path")) {
      std::vector<VertexId> path;
      Distance d = 0;
      Status st = index.ShortestPath(s, t, &path, &d);
      if (!st.ok()) {
        std::fprintf(stderr, "query (%u,%u) failed: %s\n", s, t,
                     st.ToString().c_str());
        continue;
      }
      if (d == kInfDistance) {
        std::printf("dist(%u, %u) = unreachable\n", s, t);
        continue;
      }
      std::printf("dist(%u, %u) = %llu; path:", s, t,
                  static_cast<unsigned long long>(d));
      for (VertexId v : path) std::printf(" %u", v);
      std::printf("\n");
    } else {
      Distance d = 0;
      QueryStats stats;
      Status st = index.Query(s, t, &d, &stats);
      if (!st.ok()) {
        std::fprintf(stderr, "query (%u,%u) failed: %s\n", s, t,
                     st.ToString().c_str());
        continue;
      }
      if (d == kInfDistance) {
        std::printf("dist(%u, %u) = unreachable\n", s, t);
      } else {
        std::printf("dist(%u, %u) = %llu  (label IOs: %llu, settled: %llu)\n",
                    s, t, static_cast<unsigned long long>(d),
                    static_cast<unsigned long long>(stats.label_ios),
                    static_cast<unsigned long long>(stats.settled));
      }
    }
  }
  return 0;
}

Result<ISLabelIndex> LoadIndexArg(const Args& args) {
  const std::string dir = args.Get("index", "");
  if (dir.empty()) return Status::InvalidArgument("--index is required");
  return ISLabelIndex::Load(dir, /*labels_in_memory=*/!args.Has("disk"));
}

// batch: reads "s t" pairs (one per line, '#' comments) from --in FILE or
// stdin, answers them all with QueryBatch over the engine pool, and prints
// "s t dist" per pair in input order.
int CmdBatch(const Args& args) {
  auto loaded = LoadIndexArg(args);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  ISLabelIndex index = std::move(loaded).value();

  std::istream* in = &std::cin;
  std::ifstream file;
  const std::string in_path = args.Get("in", "");
  if (!in_path.empty()) {
    file.open(in_path);
    if (!file.is_open()) {
      std::fprintf(stderr, "cannot open %s\n", in_path.c_str());
      return 1;
    }
    in = &file;
  }

  std::vector<std::pair<VertexId, VertexId>> pairs;
  std::string line;
  while (std::getline(*in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    VertexId s = 0, t = 0;
    if (!(ls >> s >> t)) {
      std::fprintf(stderr, "skipping malformed line: %s\n", line.c_str());
      continue;
    }
    pairs.emplace_back(s, t);
  }

  const std::uint32_t threads =
      static_cast<std::uint32_t>(args.GetInt("threads", 0));
  std::vector<Distance> dists;
  std::vector<Status> statuses;
  WallTimer t;
  Status st = index.QueryBatch(pairs, &dists, threads, &statuses);
  const double secs = t.ElapsedSeconds();
  if (!st.ok()) {
    std::fprintf(stderr, "batch failed: %s\n", st.ToString().c_str());
    return 1;
  }
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (!statuses[i].ok()) {
      std::printf("%u %u error: %s\n", pairs[i].first, pairs[i].second,
                  statuses[i].ToString().c_str());
    } else if (dists[i] == kInfDistance) {
      std::printf("%u %u unreachable\n", pairs[i].first, pairs[i].second);
    } else {
      std::printf("%u %u %llu\n", pairs[i].first, pairs[i].second,
                  static_cast<unsigned long long>(dists[i]));
    }
  }
  std::fprintf(stderr, "%zu queries in %.3fs (%.0f QPS)\n", pairs.size(),
               secs, secs > 0 ? static_cast<double>(pairs.size()) / secs : 0);
  return 0;
}

// serve: the line-oriented wire protocol of server/protocol.h
// ("S T", "one S T1 T2...", "path S T", "stats", "quit"), one response
// line per request. Default front end is stdin/stdout (trivially
// scriptable); --listen HOST:PORT serves the same protocol over TCP with
// the epoll server (--threads workers, SIGINT/SIGTERM shut it down
// gracefully). --cache-mb M puts a sharded LRU distance cache in front
// of the engine (default 64 MB in TCP mode, off in stdin mode); cache
// entries are invalidated by generation on every index update, so cached
// answers are always identical to freshly computed ones.
/// Parses --listen HOST:PORT into `sopts`. Returns 0, or 2 on bad input.
int ParseListenOption(const Args& args, server::TcpServerOptions* sopts) {
  const std::string listen = args.Get("listen", "");
  const std::size_t colon = listen.rfind(':');
  const std::string port_str =
      colon == std::string::npos ? "" : listen.substr(colon + 1);
  char* port_end = nullptr;
  const unsigned long port =
      port_str.empty() ? 65536ul
                       : std::strtoul(port_str.c_str(), &port_end, 10);
  if (colon == std::string::npos || colon == 0 || port > 65535 ||
      port_end == nullptr || *port_end != '\0') {
    std::fprintf(stderr,
                 "--listen expects HOST:PORT (port 0-65535, 0 = "
                 "ephemeral)\n");
    return 2;
  }
  sopts->host = listen.substr(0, colon);
  sopts->port = static_cast<std::uint16_t>(port);
  sopts->num_workers = static_cast<std::uint32_t>(args.GetInt("threads", 0));
  sopts->install_signal_handlers = true;
  // The CLI server faces real clients: slowloris guard on by default
  // (library default is off). --idle-timeout-ms 0 disables.
  sopts->idle_timeout_ms =
      static_cast<std::uint32_t>(args.GetInt("idle-timeout-ms", 60'000));
  sopts->max_buffered_bytes =
      static_cast<std::size_t>(args.GetInt("max-buffered-kb", 1024)) << 10;
  sopts->slow_query_threshold_ms =
      static_cast<std::uint64_t>(args.GetInt("slow-query-ms", 0));
  return 0;
}

/// The serve-mode observability plane (DESIGN.md §17): a structured
/// JSON-lines event log on stderr or --log-file, and the flight
/// recorder behind the `tracez` verb. Declare it before anything that
/// logs (catalog, servers) so it is destroyed last.
struct ServeObservability {
  FILE* log_file = nullptr;
  std::unique_ptr<obs::EventLog> event_log;
  std::unique_ptr<obs::FlightRecorder> recorder;

  ~ServeObservability() {
    // Members (the event log among them) are destroyed after this body,
    // but EventLog never calls the sink from its destructor, so closing
    // here is safe.
    if (log_file != nullptr) std::fclose(log_file);
  }

  /// Builds the plane from --log-level / --log-file /
  /// --flight-recorder-capacity. Returns 0, or 2 on bad input.
  int Init(const Args& args) {
    obs::EventLogOptions lopts;
    if (!obs::ParseEventLevel(args.Get("log-level", "info"),
                              &lopts.min_level)) {
      std::fprintf(stderr,
                   "--log-level expects debug, info, warn or error\n");
      return 2;
    }
    const std::string path = args.Get("log-file", "");
    if (!path.empty()) {
      log_file = std::fopen(path.c_str(), "a");
      if (log_file == nullptr) {
        std::fprintf(stderr, "cannot open --log-file %s\n", path.c_str());
        return 2;
      }
    }
    // One fprintf per event: the stdio stream lock keeps concurrent
    // workers' lines whole (EventLog calls the sink unlocked).
    FILE* out = log_file != nullptr ? log_file : stderr;
    lopts.sink = [out](const std::string& line) {
      std::fprintf(out, "%s\n", line.c_str());
      std::fflush(out);
    };
    event_log = std::make_unique<obs::EventLog>(lopts);

    const long capacity = args.GetInt("flight-recorder-capacity", 8192);
    if (capacity > 0) {
      obs::FlightRecorderOptions fopts;
      fopts.capacity_per_thread = static_cast<std::size_t>(capacity);
      recorder = std::make_unique<obs::FlightRecorder>(fopts);
    }
    return 0;
  }
};

/// Waits out a started TCP server and reports its counters.
int RunTcpServer(server::TcpServer* tcp_server) {
  tcp_server->Wait();
  const server::TcpServerStats stats = tcp_server->stats();
  std::fprintf(stderr,
               "served %llu requests (%llu errors) over %llu connections\n",
               static_cast<unsigned long long>(stats.requests),
               static_cast<unsigned long long>(stats.errors),
               static_cast<unsigned long long>(stats.connections_accepted));
  return 0;
}

/// The stdin/stdout front end, shared by both serve modes: one response
/// line per request, `stats` assembled here (the dispatcher owns the
/// per-dataset split in catalog mode).
int ServeStdin(server::RequestDispatcher* dispatcher,
               server::QueryCache* cache) {
  server::RequestDispatcher::Session session;
  // Parse timing feeds the QueryTrace, exactly like the TCP front end.
  static const SystemClock kParseClock;
  const bool time_parse = dispatcher->tracing_enabled();
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::uint64_t t0 = time_parse ? kParseClock.NowMicros() : 0;
    server::Request req = server::ParseRequest(line);
    if (time_parse) {
      req.parse_us =
          static_cast<std::uint32_t>(kParseClock.NowMicros() - t0);
    }
    if (req.kind == server::RequestKind::kNone) continue;
    if (req.kind == server::RequestKind::kQuit) break;
    std::string response;
    if (req.kind == server::RequestKind::kStats) {
      dispatcher->CountStatsRequest();
      server::ServeStats stats;
      if (cache != nullptr) {
        const server::QueryCacheStats cs = cache->GetStats();
        stats.cache_hits = cs.hits;
        stats.cache_misses = cs.misses;
        stats.cache_entries = cs.entries;
        stats.cache_generation = cs.generation;
      }
      dispatcher->FillServeStats(&stats);
      response = server::FormatStats(stats);
    } else {
      response = dispatcher->Execute(req, &session);
    }
    std::printf("%s\n", response.c_str());
    std::fflush(stdout);
  }
  return 0;
}

/// Catalog serve: every --dataset NAME=DIR is loaded on its own
/// background thread; once all are ready the front end (stdin or TCP)
/// serves them behind the `use` / `datasets` / `reload` verbs, one
/// generation-invalidated result cache per dataset.
int ServeCatalog(const Args& args,
                 const std::vector<std::string>& dataset_specs) {
  ServeObservability sobs;
  const int obs_rc = sobs.Init(args);
  if (obs_rc != 0) return obs_rc;
  Catalog catalog;
  catalog.set_event_log(sobs.event_log.get());
  std::vector<std::string> names;
  for (const std::string& spec : dataset_specs) {
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
      std::fprintf(stderr, "--dataset expects NAME=DIR, got '%s'\n",
                   spec.c_str());
      return 2;
    }
    const std::string name = spec.substr(0, eq);
    // The wire grammar must be able to address every hosted dataset.
    if (!server::IsValidDatasetName(name)) {
      std::fprintf(stderr,
                   "--dataset name '%s' is not addressable by `use` "
                   "(allowed: [A-Za-z0-9._-])\n",
                   name.c_str());
      return 2;
    }
    Status st = catalog.Add(name, spec.substr(eq + 1),
                            /*labels_in_memory=*/!args.Has("disk"));
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    names.push_back(name);
  }
  Status ready = catalog.WaitReady();
  if (!ready.ok()) {
    std::fprintf(stderr, "dataset load failed: %s\n",
                 ready.ToString().c_str());
    return 1;
  }

  const bool tcp = args.Has("listen");
  const long cache_mb = args.GetInt("cache-mb", tcp ? 64 : 0);
  if (cache_mb > 0) {
    for (const std::string& name : names) {
      server::QueryCacheOptions copts;
      copts.capacity_bytes = static_cast<std::size_t>(cache_mb) << 20;
      copts.metrics = catalog.metrics();
      copts.metrics_dataset = name;
      const Status cache_st = catalog.SetDistanceCache(
          name, std::make_shared<server::QueryCache>(copts));
      if (!cache_st.ok()) {
        std::fprintf(stderr, "cannot install cache for %s: %s\n",
                     name.c_str(), cache_st.ToString().c_str());
        return 1;
      }
    }
  }
  for (const islabel::DatasetInfo& info : catalog.List()) {
    std::fprintf(stderr, "dataset %s: %llu vertices, %u parts\n",
                 info.name.c_str(),
                 static_cast<unsigned long long>(info.vertices), info.parts);
  }

  if (tcp) {
    server::TcpServerOptions sopts;
    const int rc = ParseListenOption(args, &sopts);
    if (rc != 0) return rc;
    sopts.flight_recorder = sobs.recorder.get();
    sopts.event_log = sobs.event_log.get();
    server::TcpServer tcp_server(&catalog, names.front(), sopts);
    // Every catalog-mode TCP server can act as a replication primary:
    // the verbs cost nothing until a replica pulls.
    repl::PrimaryHooks primary_hooks(&catalog);
    tcp_server.SetReplicationHooks(&primary_hooks);
    Status st = tcp_server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "serving %zu datasets (default %s, cache %ld MB/dataset) "
                 "on %s:%u; SIGINT/SIGTERM to stop\n",
                 names.size(), names.front().c_str(),
                 cache_mb > 0 ? cache_mb : 0, sopts.host.c_str(),
                 tcp_server.port());
    return RunTcpServer(&tcp_server);
  }
  std::fprintf(stderr,
               "serving %zu datasets (default %s); 'S T', 'one S T...', "
               "'path S T', 'use NAME', 'datasets', 'reload NAME', "
               "'stats', 'quit'\n",
               names.size(), names.front().c_str());
  server::RequestDispatcher dispatcher(&catalog, names.front());
  server::RequestDispatcher::MetricsOptions mopts;
  mopts.registry = catalog.metrics();
  mopts.flight_recorder = sobs.recorder.get();
  mopts.event_log = sobs.event_log.get();
  mopts.slow_query_threshold_ms =
      static_cast<std::uint64_t>(args.GetInt("slow-query-ms", 0));
  dispatcher.InstallMetrics(mopts);
  return ServeStdin(&dispatcher, nullptr);
}

/// Replica serve: an initially-empty catalog that pulls snapshots from
/// --replicate-from and hot-swaps them in as they arrive, while the TCP
/// front end serves whatever generation is installed
/// (stale-but-consistent during a partition).
int ServeReplica(const Args& args) {
  if (!args.Has("listen")) {
    std::fprintf(stderr, "--replicate-from requires --listen HOST:PORT\n");
    return 2;
  }
  ServeObservability sobs;
  const int obs_rc = sobs.Init(args);
  if (obs_rc != 0) return obs_rc;
  Catalog catalog;
  catalog.set_event_log(sobs.event_log.get());
  repl::TcpTransport transport;
  SystemClock clock;
  Rng rng(0x4e91);

  repl::ReplicaOptions ropts;
  ropts.primary = args.Get("replicate-from", "");
  ropts.root = args.Get("repl-root", "repl-data");
  ropts.poll_interval_ms =
      static_cast<std::uint64_t>(args.GetInt("poll-ms", 1000));
  ropts.event_log = sobs.event_log.get();
  repl::ReplicaAgent agent(&catalog, &transport, &clock, &rng, ropts);

  server::TcpServerOptions sopts;
  const int rc = ParseListenOption(args, &sopts);
  if (rc != 0) return rc;
  sopts.flight_recorder = sobs.recorder.get();
  sopts.event_log = sobs.event_log.get();
  server::TcpServer tcp_server(&catalog, /*default_dataset=*/"", sopts);
  tcp_server.SetReplicationHooks(&agent);
  Status st = tcp_server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }
  agent.RunBackground();
  std::fprintf(stderr,
               "replica of %s serving on %s:%u (root %s, poll %llu ms); "
               "SIGINT/SIGTERM to stop\n",
               ropts.primary.c_str(), sopts.host.c_str(), tcp_server.port(),
               ropts.root.c_str(),
               static_cast<unsigned long long>(ropts.poll_interval_ms));
  const int ret = RunTcpServer(&tcp_server);
  agent.StopBackground();
  return ret;
}

int CmdServe(const Args& args) {
  if (args.Has("replicate-from")) return ServeReplica(args);
  const std::vector<std::string> dataset_specs = args.GetAll("dataset");
  if (!dataset_specs.empty()) return ServeCatalog(args, dataset_specs);

  // Declared before the index so every registered instrument (pool
  // series, cache counters, the io bridge) outlives its writers.
  ServeObservability sobs;
  const int obs_rc = sobs.Init(args);
  if (obs_rc != 0) return obs_rc;
  obs::MetricRegistry registry;
  auto loaded = LoadIndexArg(args);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  ISLabelIndex index = std::move(loaded).value();
  index.InstallMetrics(&registry);
  if (index.labels_on_disk()) {
    obs::BridgeIoStats(&registry, {},
                       [store = index.label_store()] {
                         return store->stats();
                       });
  }
  const bool tcp = args.Has("listen");

  std::shared_ptr<server::QueryCache> cache;
  const long cache_mb = args.GetInt("cache-mb", tcp ? 64 : 0);
  if (cache_mb > 0) {
    server::QueryCacheOptions copts;
    copts.capacity_bytes = static_cast<std::size_t>(cache_mb) << 20;
    copts.metrics = &registry;
    cache = std::make_shared<server::QueryCache>(copts);
    index.set_distance_cache(cache);
  }

  if (tcp) {
    server::TcpServerOptions sopts;
    const int rc = ParseListenOption(args, &sopts);
    if (rc != 0) return rc;
    sopts.metrics = &registry;
    sopts.flight_recorder = sobs.recorder.get();
    sopts.event_log = sobs.event_log.get();
    server::TcpServer tcp_server(&index, cache.get(), sopts);
    Status st = tcp_server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr,
                 "serving %u vertices (%s labels, cache %ld MB) on %s:%u; "
                 "SIGINT/SIGTERM to stop\n",
                 index.NumVertices(), args.Has("disk") ? "disk" : "in-memory",
                 cache_mb > 0 ? cache_mb : 0, sopts.host.c_str(),
                 tcp_server.port());
    return RunTcpServer(&tcp_server);
  }

  std::fprintf(stderr,
               "serving %u vertices (%s labels); 'S T', 'one S T...', "
               "'path S T', 'stats', 'quit'\n",
               index.NumVertices(), args.Has("disk") ? "disk" : "in-memory");
  server::RequestDispatcher dispatcher(&index);
  server::RequestDispatcher::MetricsOptions mopts;
  mopts.registry = &registry;
  mopts.flight_recorder = sobs.recorder.get();
  mopts.event_log = sobs.event_log.get();
  mopts.slow_query_threshold_ms =
      static_cast<std::uint64_t>(args.GetInt("slow-query-ms", 0));
  dispatcher.InstallMetrics(mopts);
  return ServeStdin(&dispatcher, cache.get());
}

// repl-status: one line per endpoint — reachability, dataset
// generations (`version`) and the full `stats` counters, so an
// operator can see replica lag at a glance.
int CmdReplStatus(const Args& args) {
  const std::vector<std::string> endpoints =
      SplitEndpoints(args.Get("endpoints", ""));
  if (endpoints.empty()) return Usage();
  const std::uint64_t timeout_ms =
      static_cast<std::uint64_t>(args.GetInt("timeout-ms", 3000));
  repl::TcpTransport transport;
  SystemClock clock;
  int down = 0;
  for (const std::string& endpoint : endpoints) {
    Result<std::unique_ptr<repl::Connection>> conn =
        transport.Connect(endpoint, timeout_ms);
    if (!conn.ok()) {
      std::printf("%s DOWN %s\n", endpoint.c_str(),
                  conn.status().ToString().c_str());
      ++down;
      continue;
    }
    repl::Channel channel(std::move(conn).value());
    const Deadline deadline = Deadline::After(timeout_ms, &clock);
    std::string version, stats;
    Status st = channel.SendLine("version");
    if (st.ok()) st = channel.ReadLine(&version, deadline);
    if (st.ok()) st = channel.SendLine("stats");
    if (st.ok()) st = channel.ReadLine(&stats, deadline);
    if (!st.ok()) {
      std::printf("%s DOWN %s\n", endpoint.c_str(), st.ToString().c_str());
      ++down;
      continue;
    }
    std::printf("%s UP %s\n", endpoint.c_str(), version.c_str());
    std::printf("%s    %s\n", endpoint.c_str(), stats.c_str());
  }
  return down == 0 ? 0 : 1;
}

int CmdBench(const Args& args) {
  const std::string dir = args.Get("index", "");
  if (dir.empty()) return Usage();
  auto loaded = ISLabelIndex::Load(dir, !args.Has("disk"));
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  ISLabelIndex index = std::move(loaded).value();
  const std::size_t count =
      static_cast<std::size_t>(args.GetInt("queries", 1000));
  Rng rng(7);
  double time_a = 0, time_b = 0;
  std::uint64_t ios = 0;
  WallTimer t;
  for (std::size_t i = 0; i < count; ++i) {
    const VertexId s = static_cast<VertexId>(rng.Uniform(index.NumVertices()));
    const VertexId u = static_cast<VertexId>(rng.Uniform(index.NumVertices()));
    Distance d = 0;
    QueryStats stats;
    if (!index.Query(s, u, &d, &stats).ok()) continue;
    time_a += stats.label_fetch_seconds;
    time_b += stats.search_seconds;
    ios += stats.label_ios;
  }
  std::printf("%zu queries: total %.3f ms/query (Time(a) %.3f ms, Time(b) "
              "%.3f ms, %.2f label IOs/query)\n",
              count, t.ElapsedMillis() / count, time_a * 1e3 / count,
              time_b * 1e3 / count, static_cast<double>(ios) / count);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  Args args = Parse(argc, argv, 2);
  if (cmd == "gen") return CmdGen(args);
  if (cmd == "stats") return CmdStats(args);
  if (cmd == "build") return CmdBuild(args);
  if (cmd == "partition-build") return CmdPartitionBuild(args);
  if (cmd == "query") return CmdQuery(args);
  if (cmd == "batch") return CmdBatch(args);
  if (cmd == "serve") return CmdServe(args);
  if (cmd == "repl-status") return CmdReplStatus(args);
  if (cmd == "bench") return CmdBench(args);
  return Usage();
}
