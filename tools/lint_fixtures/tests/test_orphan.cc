// Seeded violation: a test file absent from tests/CMakeLists.txt —
// it would compile nowhere and never run.
int main() { return 0; }
