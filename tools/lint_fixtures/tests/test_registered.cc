// Registered in the fixture CMakeLists.txt; must NOT fire.
int main() { return 0; }
