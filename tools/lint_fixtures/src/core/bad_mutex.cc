// Seeded violation: raw std::mutex outside util/mutex.h (2 lines).
#include <mutex>

namespace fixture {

std::mutex g_mu;  // violation: raw-mutex

void Touch() {
  std::lock_guard<std::mutex> lock(g_mu);  // violation: raw-mutex
  // A commented std::unique_lock must NOT fire: the linter strips
  // comments before matching.
}

}  // namespace fixture
