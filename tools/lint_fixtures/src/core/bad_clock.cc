// Seeded violation: reading time off the injectable clock seam (1 line).
#include <chrono>

namespace fixture {

long NowMs() {
  // violation: clock-seam — protocol code must use util/clock.h
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace fixture
