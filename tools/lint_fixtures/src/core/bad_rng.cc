// Seeded violation: ad-hoc randomness outside util/random.h (2 lines).
#include <cstdlib>
#include <random>

namespace fixture {

int Roll() {
  std::mt19937 gen(42);       // violation: rng-seam
  return rand() % 6 + (int)gen();  // violation: rng-seam (rand)
}

}  // namespace fixture
