// Seeded log-events violations: an undocumented emission, a name
// without the islabel. prefix, and a computed (unlintable) name. The
// fourth seeded violation for this rule lives in the fixture DESIGN.md
// marker: a documented event no fixture source emits.
#include <string>

void EmitFixtureEvents(EventLog* log, const char* dynamic) {
  log->Log(EventLevel::kInfo, "islabel.fixture.orphan",
           {{"k", "Emitted but missing from the DESIGN.md marker."}});
  log->Log(EventLevel::kWarn, "fixture.unprefixed",
           {{"k", "Name lacks the islabel. prefix."}});
  log->Log(EventLevel::kError, dynamic,
           {{"k", "Computed name: cannot be documented."}});
}
