// Seeded metric-names violations: an undocumented registration, a name
// without the islabel_ prefix, and a computed (unlintable) name. The
// fourth seeded violation for this rule lives in the fixture DESIGN.md
// marker: a documented name no fixture source registers.
#include <string>

void RegisterFixtureMetrics(Registry* reg, const std::string& dynamic) {
  reg->GetCounter("islabel_fixture_orphan_total",
                  "Registered but missing from the DESIGN.md marker.");
  reg->GetGauge("fixture_unprefixed", "Name lacks the islabel_ prefix.");
  reg->GetHistogram(dynamic, "Computed name: cannot be documented.");
}
