// Seeded violation: parser/documentation verb drift (2 findings).
// Parses {quit, ping}; the fixture DESIGN.md documents {quit, stats}:
// 'ping' is parsed-but-undocumented, 'stats' documented-but-unparsed.

namespace fixture {

int Parse(const std::string& head) {
  if (head == "quit") return 0;
  if (head == "ping") return 1;
  return -1;
}

}  // namespace fixture
