// Seeded violation: blocking calls inside the event-loop section
// (2 lines). The markers mirror the real tcp_server.cc delimiters.

namespace fixture {

// ---- Event loop (all fd operations happen on this thread) ----

void EventLoop() {
  std::this_thread::sleep_for(kPause);  // violation: event-loop-block
  std::printf("tick\n");                // violation: event-loop-block
}

// ---- Workers ----

void WorkerLoop() {
  // Blocking is fine here: workers may block without stalling the loop.
  std::this_thread::yield();
}

}  // namespace fixture
