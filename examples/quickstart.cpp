// Quickstart: build an IS-LABEL index over a small weighted graph and
// answer distance + shortest-path queries.
//
//   $ ./examples/quickstart

#include <cstdio>

#include "core/index.h"
#include "graph/graph.h"

using namespace islabel;

int main() {
  // The running example of the paper (Figure 1): vertices a..i = 0..8,
  // unit weights except ω(e, f) = 3.
  enum : VertexId { A, B, C, D, E, F, G, H, I };
  EdgeList edges(9);
  edges.Add(A, B, 1);
  edges.Add(A, E, 1);
  edges.Add(B, C, 1);
  edges.Add(B, E, 1);
  edges.Add(D, E, 1);
  edges.Add(D, G, 1);
  edges.Add(E, F, 3);
  edges.Add(E, I, 1);
  edges.Add(F, H, 1);
  edges.Add(G, H, 1);
  Graph graph = Graph::FromEdgeList(std::move(edges));
  std::printf("graph: %u vertices, %llu edges\n", graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // Build with default options (σ = 0.95, min-degree greedy, paths on).
  auto built = ISLabelIndex::Build(graph);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  ISLabelIndex index = std::move(built).value();
  std::printf("index: k = %u, core = %llu vertices / %llu edges, "
              "%llu label entries\n",
              index.k(),
              static_cast<unsigned long long>(index.build_stats().core_vertices),
              static_cast<unsigned long long>(index.build_stats().core_edges),
              static_cast<unsigned long long>(index.build_stats().label_entries));

  // Distance queries (the paper's Example 4: dist(h,e) = 3, dist(a,g) = 3).
  const char* names = "abcdefghi";
  auto query = [&](VertexId s, VertexId t) {
    Distance d = 0;
    Status st = index.Query(s, t, &d);
    if (!st.ok()) {
      std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
      return;
    }
    std::printf("dist(%c, %c) = %llu\n", names[s], names[t],
                static_cast<unsigned long long>(d));
  };
  query(H, E);
  query(A, G);
  query(C, I);

  // Shortest path with the §8.1 via-expansion.
  std::vector<VertexId> path;
  Distance dist = 0;
  if (index.ShortestPath(C, I, &path, &dist).ok()) {
    std::printf("shortest path c -> i (length %llu):",
                static_cast<unsigned long long>(dist));
    for (VertexId v : path) std::printf(" %c", names[v]);
    std::printf("\n");
  }
  return 0;
}
