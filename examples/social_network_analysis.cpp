// Social-network analytics: degrees-of-separation queries on a synthetic
// preferential-attachment network — the kind of workload the paper's
// introduction motivates (context-aware search, entity ranking).
//
//   $ ./examples/social_network_analysis [num_users]

#include <cstdio>
#include <cstdlib>
#include <map>

#include "baseline/dijkstra.h"
#include "core/index.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;

int main(int argc, char** argv) {
  const VertexId num_users =
      argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 50000;

  // A Barabási–Albert friendship network: heavy-tailed degrees, tiny
  // diameter — the as-Skitter / web-Google regime of Table 2.
  Rng rng(7);
  Graph network = Graph::FromEdgeList(GenerateBarabasiAlbert(num_users, 6,
                                                             &rng));
  GraphStats stats = ComputeStats(network);
  std::printf("network: %s users, %s friendships, avg degree %.2f, "
              "max degree %u\n",
              HumanCount(stats.num_vertices).c_str(),
              HumanCount(stats.num_edges).c_str(), stats.avg_degree,
              stats.max_degree);

  WallTimer build_timer;
  auto built = ISLabelIndex::Build(network);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  ISLabelIndex index = std::move(built).value();
  std::printf("IS-LABEL built in %.2fs: k = %u, core %s vertices, "
              "mean label %.1f entries\n",
              build_timer.ElapsedSeconds(), index.k(),
              HumanCount(index.build_stats().core_vertices).c_str(),
              static_cast<double>(index.build_stats().label_entries) /
                  network.NumVertices());

  // Degrees-of-separation histogram over random user pairs.
  std::map<Distance, int> separation;
  WallTimer query_timer;
  const int kPairs = 2000;
  for (int i = 0; i < kPairs; ++i) {
    VertexId s = static_cast<VertexId>(rng.Uniform(network.NumVertices()));
    VertexId t = static_cast<VertexId>(rng.Uniform(network.NumVertices()));
    Distance d = 0;
    if (!index.Query(s, t, &d).ok()) continue;
    ++separation[d];
  }
  const double mean_us = query_timer.ElapsedMicros() * 1.0 / kPairs;
  std::printf("\n%d random pair queries in %.1f us each\n", kPairs, mean_us);
  std::printf("degrees-of-separation histogram:\n");
  for (const auto& [hops, count] : separation) {
    std::printf("  %llu hops: %5d (%.1f%%)\n",
                static_cast<unsigned long long>(hops), count,
                100.0 * count / kPairs);
  }

  // Sanity: one random pair cross-checked against Dijkstra.
  VertexId s = static_cast<VertexId>(rng.Uniform(network.NumVertices()));
  VertexId t = static_cast<VertexId>(rng.Uniform(network.NumVertices()));
  Distance d_index = 0;
  (void)index.Query(s, t, &d_index);
  std::printf("\nspot check (%u, %u): index=%llu dijkstra=%llu\n", s, t,
              static_cast<unsigned long long>(d_index),
              static_cast<unsigned long long>(DijkstraP2P(network, s, t)));
  return 0;
}
