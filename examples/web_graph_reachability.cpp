// Directed web graph: distance and reachability queries with the §8.2
// directed IS-LABEL (in/out labels), the "fundamental problem of
// reachability" the paper's conclusion highlights.
//
//   $ ./examples/web_graph_reachability [num_pages]

#include <cstdio>
#include <cstdlib>

#include "baseline/dijkstra.h"
#include "core/directed.h"
#include "graph/digraph.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;

int main(int argc, char** argv) {
  const VertexId num_pages =
      argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 20000;

  // A synthetic hyperlink graph: preferential out-links plus a few
  // back-links, giving asymmetric reachability.
  Rng rng(3);
  std::vector<Arc> links;
  for (VertexId page = 1; page < num_pages; ++page) {
    const int out_links = 1 + static_cast<int>(rng.Uniform(4));
    for (int l = 0; l < out_links; ++l) {
      // Preferential attachment by squaring the uniform draw toward 0.
      double u = rng.NextDouble();
      VertexId target = static_cast<VertexId>(u * u * page);
      if (target != page) links.emplace_back(page, target, 1);
    }
    if (rng.Bernoulli(0.25)) {
      VertexId target = static_cast<VertexId>(rng.Uniform(num_pages));
      if (target != page) links.emplace_back(page, target, 1);
    }
  }
  DiGraph web = DiGraph::FromArcs(std::move(links), num_pages);
  std::printf("web graph: %u pages, %llu links\n", web.NumVertices(),
              static_cast<unsigned long long>(web.NumArcs()));

  WallTimer timer;
  auto built = DirectedISLabel::Build(web);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  DirectedISLabel index = std::move(built).value();
  std::printf("directed IS-LABEL built in %.2fs: k=%u, %llu label entries "
              "(in+out)\n",
              timer.ElapsedSeconds(), index.k(),
              static_cast<unsigned long long>(index.TotalLabelEntries()));

  // Asymmetry demo: hop distance page -> hub vs hub -> page.
  int asymmetric = 0, checked = 0;
  for (int i = 0; i < 500; ++i) {
    VertexId a = static_cast<VertexId>(rng.Uniform(num_pages));
    VertexId b = static_cast<VertexId>(rng.Uniform(num_pages));
    Distance ab = 0, ba = 0;
    if (!index.Query(a, b, &ab).ok() || !index.Query(b, a, &ba).ok()) {
      continue;
    }
    ++checked;
    if (ab != ba) ++asymmetric;
  }
  std::printf("directional asymmetry: %d of %d random pairs have "
              "dist(a,b) != dist(b,a)\n", asymmetric, checked);

  // Reachability of the root from random pages (links point "back in
  // time", so most pages reach page 0 but not vice versa).
  int reach_root = 0, root_reaches = 0;
  const int kSamples = 400;
  for (int i = 0; i < kSamples; ++i) {
    VertexId page = static_cast<VertexId>(rng.Uniform(num_pages));
    bool r1 = false, r2 = false;
    (void)index.Reachable(page, 0, &r1);
    (void)index.Reachable(0, page, &r2);
    reach_root += r1;
    root_reaches += r2;
  }
  std::printf("reachability: %d/%d pages reach the root; the root reaches "
              "%d/%d\n", reach_root, kSamples, root_reaches, kSamples);

  // Spot check against directed Dijkstra.
  VertexId s = static_cast<VertexId>(rng.Uniform(num_pages));
  SsspResult truth = DijkstraSssp(web, s);
  VertexId t = static_cast<VertexId>(rng.Uniform(num_pages));
  Distance d = 0;
  (void)index.Query(s, t, &d);
  std::printf("spot check (%u -> %u): index=%lld dijkstra=%lld\n", s, t,
              d == kInfDistance ? -1LL : static_cast<long long>(d),
              truth.dist[t] == kInfDistance
                  ? -1LL
                  : static_cast<long long>(truth.dist[t]));
  return 0;
}
