// Road-network routing: grid topology with travel-time weights, full
// shortest-path recovery (§8.1), and persistence to disk.
//
//   $ ./examples/road_network_routing [grid_side]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/index.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;

int main(int argc, char** argv) {
  const std::uint32_t side =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 120;

  // A side×side street grid; weights are travel minutes in [1, 9].
  Rng rng(42);
  EdgeList streets = GenerateGrid2D(side, side);
  AssignUniformWeights(&streets, 1, 9, &rng);
  Graph city = Graph::FromEdgeList(std::move(streets));
  std::printf("city grid: %u intersections, %llu streets\n",
              city.NumVertices(),
              static_cast<unsigned long long>(city.NumEdges()));

  WallTimer timer;
  auto built = ISLabelIndex::Build(city);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  ISLabelIndex index = std::move(built).value();
  std::printf("index built in %.2fs (k=%u, core %llu vertices)\n",
              timer.ElapsedSeconds(), index.k(),
              static_cast<unsigned long long>(
                  index.build_stats().core_vertices));

  // Route between opposite corners.
  const VertexId nw = 0;
  const VertexId se = city.NumVertices() - 1;
  std::vector<VertexId> route;
  Distance minutes = 0;
  timer.Restart();
  Status st = index.ShortestPath(nw, se, &route, &minutes);
  if (!st.ok()) {
    std::fprintf(stderr, "routing failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("corner-to-corner route: %llu minutes, %zu intersections, "
              "computed in %.2f ms\n",
              static_cast<unsigned long long>(minutes), route.size(),
              timer.ElapsedMillis());
  std::printf("first hops:");
  for (std::size_t i = 0; i < route.size() && i < 8; ++i) {
    std::printf(" (%u,%u)", route[i] / side, route[i] % side);
  }
  std::printf(" ...\n");

  // Persist the index and re-open it disk-resident: queries then cost one
  // label read per endpoint (the paper's disk-based mode).
  const std::string dir = "/tmp/islabel_road_example";
  std::filesystem::create_directories(dir);
  if (index.Save(dir).ok()) {
    auto loaded = ISLabelIndex::Load(dir, /*labels_in_memory=*/false);
    if (loaded.ok()) {
      Distance d = 0;
      QueryStats stats;
      (void)loaded->Query(nw, se, &d, &stats);
      std::printf("\ndisk-resident reopen: dist=%llu with %llu label I/Os "
                  "(modeled HDD time %.1f ms)\n",
                  static_cast<unsigned long long>(d),
                  static_cast<unsigned long long>(stats.label_ios),
                  static_cast<double>(stats.label_ios) * 10.0);
    }
  }
  std::filesystem::remove_all(dir);
  return 0;
}
