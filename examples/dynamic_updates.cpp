// Dynamic update maintenance (§8.3): insert new vertices into a live index
// and delete others, without rebuilding.
//
//   $ ./examples/dynamic_updates

#include <cstdio>

#include "baseline/dijkstra.h"
#include "core/index.h"
#include "graph/generators.h"
#include "util/random.h"
#include "util/timer.h"

using namespace islabel;

int main() {
  // Start from a mid-sized random network.
  Rng rng(11);
  EdgeList el = GenerateErdosRenyi(20000, 60000, &rng);
  AssignUniformWeights(&el, 1, 5, &rng);
  Graph graph = Graph::FromEdgeList(std::move(el));

  auto built = ISLabelIndex::Build(graph);
  if (!built.ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  ISLabelIndex index = std::move(built).value();
  std::printf("initial index: %u vertices, k=%u\n", index.NumVertices(),
              index.k());

  // Insert 20 new vertices, each with a handful of random neighbors. The
  // implementation strengthens the paper's lazy patch into an exact
  // closure (see DESIGN.md), so queries remain exact afterwards.
  WallTimer timer;
  EdgeList mirror = graph.ToEdgeList();  // ground-truth graph alongside
  for (int i = 0; i < 20; ++i) {
    const VertexId v = index.NumVertices();
    std::vector<std::pair<VertexId, Weight>> adj;
    const int degree = 2 + static_cast<int>(rng.Uniform(4));
    for (int j = 0; j < degree; ++j) {
      adj.emplace_back(static_cast<VertexId>(rng.Uniform(v)),
                       static_cast<Weight>(1 + rng.Uniform(5)));
    }
    Status st = index.InsertVertex(v, adj);
    if (!st.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", st.ToString().c_str());
      return 1;
    }
    mirror.EnsureVertices(v + 1);
    for (auto [nbr, w] : adj) mirror.Add(v, nbr, w);
  }
  std::printf("inserted 20 vertices in %.1f ms (now %u vertices)\n",
              timer.ElapsedMillis(), index.NumVertices());

  // Validate a few queries touching the new vertices against Dijkstra.
  Graph updated = Graph::FromEdgeList(std::move(mirror));
  int checked = 0, exact = 0;
  for (int i = 0; i < 50; ++i) {
    VertexId s = updated.NumVertices() - 1 -
                 static_cast<VertexId>(rng.Uniform(20));  // a new vertex
    VertexId t = static_cast<VertexId>(rng.Uniform(updated.NumVertices()));
    Distance got = 0;
    if (!index.Query(s, t, &got).ok()) continue;
    ++checked;
    exact += (got == DijkstraP2P(updated, s, t));
  }
  std::printf("post-insert validation: %d/%d queries exact\n", exact,
              checked);

  // Delete a core vertex (exact when unreferenced; lazy otherwise).
  VertexId victim = 0;
  for (VertexId v = 0; v < index.NumVertices(); ++v) {
    if (index.InCore(v)) {
      victim = v;
      break;
    }
  }
  timer.Restart();
  Status st = index.DeleteVertex(victim);
  std::printf("deleted core vertex %u in %.1f ms: %s\n", victim,
              timer.ElapsedMillis(), st.ToString().c_str());
  Distance d = 0;
  std::printf("querying the deleted vertex now fails: %s\n",
              index.Query(victim, 1, &d).ToString().c_str());
  return 0;
}
