// Update maintenance tests (§8.3): vertex insertion and lazy deletion.
//
// Insertions are validated for exactness against Dijkstra on the updated
// graph (the inserted vertex joins G_k, and the lazy label patches carry
// upper bounds that the G_k search complements). Deletion is the paper's
// lazy scheme: exact for core vertices absent from all labels; for labeled
// vertices the test verifies the bookkeeping and the documented rebuild
// path, not exactness.

#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/dijkstra.h"
#include "core/index.h"
#include "tests/test_common.h"

namespace islabel {
namespace {

using testing::Family;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

// Applies the same insertion to a plain edge list for ground truth.
Graph WithInsertedVertex(const Graph& g,
                         const std::vector<std::pair<VertexId, Weight>>& adj) {
  EdgeList el = g.ToEdgeList();
  const VertexId v = g.NumVertices();
  el.EnsureVertices(v + 1);
  for (const auto& [nbr, w] : adj) el.Add(v, nbr, w);
  return Graph::FromEdgeList(std::move(el));
}

class InsertTest : public ::testing::TestWithParam<Family> {};

TEST_P(InsertTest, SingleInsertExactQueries) {
  Graph g = MakeTestGraph(GetParam(), 120, /*weighted=*/true, 3);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();

  Rng rng(17);
  std::vector<std::pair<VertexId, Weight>> adj;
  for (int i = 0; i < 4; ++i) {
    adj.emplace_back(static_cast<VertexId>(rng.Uniform(g.NumVertices())),
                     static_cast<Weight>(1 + rng.Uniform(5)));
  }
  // Dedupe neighbors (InsertVertex allows duplicates in principle but the
  // ground-truth edge list would min-merge them anyway).
  std::sort(adj.begin(), adj.end());
  adj.erase(std::unique(adj.begin(), adj.end(),
                        [](auto& a, auto& b) { return a.first == b.first; }),
            adj.end());

  const VertexId v = g.NumVertices();
  ASSERT_TRUE(index.InsertVertex(v, adj).ok());
  EXPECT_EQ(index.NumVertices(), v + 1);
  EXPECT_TRUE(index.InCore(v));

  Graph updated = WithInsertedVertex(g, adj);
  for (auto [s, t] : SampleQueryPairs(updated, 120, 29)) {
    Distance got = 0;
    ASSERT_TRUE(index.Query(s, t, &got).ok());
    ASSERT_EQ(got, DijkstraP2P(updated, s, t))
        << "query (" << s << "," << t << ") after insert";
  }
  // Queries touching the new vertex specifically.
  SsspResult sssp = DijkstraSssp(updated, v);
  for (VertexId t = 0; t < updated.NumVertices(); ++t) {
    Distance got = 0;
    ASSERT_TRUE(index.Query(v, t, &got).ok());
    ASSERT_EQ(got, sssp.dist[t]) << "from new vertex to " << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, InsertTest,
                         ::testing::Values(Family::kErdosRenyi, Family::kRMat,
                                           Family::kGrid, Family::kTree,
                                           Family::kBarabasiAlbert),
                         [](const auto& info) {
                           return testing::FamilyName(info.param);
                         });

TEST(Insert, SequenceOfInsertsStaysExact) {
  Graph g = MakeTestGraph(Family::kErdosRenyi, 80, true, 5);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();

  Graph current = g;
  Rng rng(7);
  for (int round = 0; round < 5; ++round) {
    std::vector<std::pair<VertexId, Weight>> adj;
    for (int i = 0; i < 3; ++i) {
      adj.emplace_back(
          static_cast<VertexId>(rng.Uniform(current.NumVertices())),
          static_cast<Weight>(1 + rng.Uniform(4)));
    }
    std::sort(adj.begin(), adj.end());
    adj.erase(std::unique(adj.begin(), adj.end(),
                          [](auto& a, auto& b) { return a.first == b.first; }),
              adj.end());
    const VertexId v = current.NumVertices();
    ASSERT_TRUE(index.InsertVertex(v, adj).ok());
    current = WithInsertedVertex(current, adj);
  }
  for (auto [s, t] : SampleQueryPairs(current, 150, 41)) {
    Distance got = 0;
    ASSERT_TRUE(index.Query(s, t, &got).ok());
    ASSERT_EQ(got, DijkstraP2P(current, s, t));
  }
}

TEST(Insert, IsolatedVertex) {
  Graph g = MakeTestGraph(Family::kPath, 30, false, 1);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  ASSERT_TRUE(index.InsertVertex(30, {}).ok());
  Distance d;
  ASSERT_TRUE(index.Query(30, 0, &d).ok());
  EXPECT_EQ(d, kInfDistance);
  ASSERT_TRUE(index.Query(30, 30, &d).ok());
  EXPECT_EQ(d, 0u);
}

TEST(Insert, ValidationErrors) {
  Graph g = MakeTestGraph(Family::kPath, 10, false, 1);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  // Wrong id.
  EXPECT_TRUE(index.InsertVertex(5, {}).IsInvalidArgument());
  EXPECT_TRUE(index.InsertVertex(12, {}).IsInvalidArgument());
  // Bad neighbors.
  EXPECT_TRUE(index.InsertVertex(10, {{99, 1}}).IsOutOfRange());
  EXPECT_TRUE(index.InsertVertex(10, {{3, 0}}).IsInvalidArgument());
  EXPECT_TRUE(index.InsertVertex(10, {{10, 1}}).IsInvalidArgument());
}

TEST(Delete, CoreVertexAbsentFromLabelsIsExact) {
  // The independent set of every level is maximal, so every core vertex of
  // a freshly built index has a removed IS neighbor whose label references
  // it — searching the build for an unreferenced core vertex can never
  // succeed. A vertex inserted with core-only neighbors is exactly the
  // §8.3 exact-deletion case: it joins G_k via bridge edges and the
  // insertion patches no labels.
  Graph g = MakeTestGraph(Family::kErdosRenyi, 100, true, 11);
  IndexOptions opts;
  opts.forced_k = 2;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();

  std::vector<std::pair<VertexId, Weight>> adj;
  for (VertexId v = 0; v < g.NumVertices() && adj.size() < 3; ++v) {
    if (index.InCore(v)) {
      adj.emplace_back(v, static_cast<Weight>(1 + v % 5));
    }
  }
  ASSERT_EQ(adj.size(), 3u) << "fixture graph has fewer than 3 core vertices";

  const VertexId victim = g.NumVertices();
  ASSERT_TRUE(index.InsertVertex(victim, adj).ok());
  ASSERT_TRUE(index.InCore(victim));
  for (VertexId w = 0; w < index.NumVertices(); ++w) {
    if (w == victim) continue;
    for (const LabelEntry& e : index.labels()[w]) {
      ASSERT_NE(e.node, victim) << "victim referenced in label of " << w;
    }
  }

  ASSERT_TRUE(index.DeleteVertex(victim).ok());
  EXPECT_TRUE(index.IsDeleted(victim));

  // Insert-then-delete of the victim restores the original graph exactly
  // (its bridge edges leave G_k with it; no label ever mentioned it), so
  // every remaining query must match Dijkstra on g.
  for (auto [s, t] : SampleQueryPairs(g, 100, 51)) {
    Distance got = 0;
    ASSERT_TRUE(index.Query(s, t, &got).ok());
    ASSERT_EQ(got, DijkstraP2P(g, s, t))
        << "(" << s << "," << t << ") after exact delete";
  }
}

TEST(Delete, EndpointErrorsAfterDelete) {
  Graph g = MakeTestGraph(Family::kGrid, 49, false, 1);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  ASSERT_TRUE(index.DeleteVertex(5).ok());
  Distance d;
  EXPECT_TRUE(index.Query(5, 1, &d).IsNotFound());
  EXPECT_TRUE(index.Query(1, 5, &d).IsNotFound());
  EXPECT_TRUE(index.DeleteVertex(5).IsInvalidArgument());  // double delete
  std::vector<VertexId> path;
  EXPECT_TRUE(index.ShortestPath(5, 1, &path, &d).IsNotFound());
}

// Deleted endpoints must error in EVERY serving mode — the freshly built
// index, an in-memory reload, a disk-resident reload, and each batched
// entry point — not just the in-memory fast path.
TEST(Delete, EndpointErrorsPersistAcrossAllModes) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 80, /*weighted=*/true, 5);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  const VertexId dead = 7;
  ASSERT_TRUE(index.DeleteVertex(dead).ok());

  auto expect_not_found = [&](ISLabelIndex* idx) {
    Distance d = 0;
    EXPECT_TRUE(idx->Query(dead, 1, &d).IsNotFound());
    EXPECT_TRUE(idx->Query(1, dead, &d).IsNotFound());
    std::vector<Distance> dists;
    EXPECT_TRUE(idx->QueryOneToMany(dead, {1, 2}, &dists).IsNotFound());
    EXPECT_TRUE(idx->QueryOneToMany(1, {2, dead}, &dists).IsNotFound());
    EXPECT_TRUE(
        idx->QueryManyToMany({1, dead}, {2}, &dists, 1).IsNotFound());
    std::vector<Status> statuses;
    EXPECT_TRUE(
        idx->QueryBatch({{1, 2}, {dead, 2}}, &dists, 1, &statuses).ok());
    EXPECT_TRUE(statuses[0].ok());
    EXPECT_TRUE(statuses[1].IsNotFound());
    EXPECT_EQ(dists[1], kInfDistance);
  };
  expect_not_found(&index);

  std::string dir = ::testing::TempDir() + "islabel_upd_modes";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(index.Save(dir).ok());
  auto mem = ISLabelIndex::Load(dir, /*labels_in_memory=*/true);
  ASSERT_TRUE(mem.ok());
  expect_not_found(&mem.value());
  auto disk = ISLabelIndex::Load(dir, /*labels_in_memory=*/false);
  ASSERT_TRUE(disk.ok());
  expect_not_found(&disk.value());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// Pins the documented §8.3 staleness window so a future exact-delete fix
// shows up as a deliberate test change, not an accident: deleting a
// below-core vertex leaves the augmenting core edges derived through it,
// so queries BETWEEN surviving vertices can still route over the deleted
// vertex and silently return the pre-delete distance.
TEST(Delete, StaleTransitDistanceIsPinned) {
  Graph g = MakeTestGraph(Family::kPath, 12, /*weighted=*/true, 4);
  IndexOptions opts;
  opts.forced_k = 2;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();

  // An interior below-core path vertex: its two neighbors are core (an IS
  // never contains adjacent vertices), and peeling it added the augmenting
  // core edge (v-1, v+1) carrying its transit distance.
  VertexId v = kInvalidVertex;
  for (VertexId u = 1; u + 1 < g.NumVertices(); ++u) {
    if (!index.InCore(u)) {
      ASSERT_TRUE(index.InCore(u - 1));
      ASSERT_TRUE(index.InCore(u + 1));
      v = u;
      break;
    }
  }
  ASSERT_NE(v, kInvalidVertex) << "no below-core interior vertex at k=2";
  const VertexId a = v - 1, b = v + 1;
  const Distance transit = g.EdgeWeight(a, v) + g.EdgeWeight(v, b);
  Distance pre = 0;
  ASSERT_TRUE(index.Query(a, b, &pre).ok());
  ASSERT_EQ(pre, transit);  // the unique a-b path runs through v

  ASSERT_TRUE(index.DeleteVertex(v).ok());

  // The deleted vertex itself errors...
  Distance d = 0;
  EXPECT_TRUE(index.Query(a, v, &d).IsNotFound());
  EXPECT_TRUE(index.Query(v, b, &d).IsNotFound());
  // ...but a-b still answers the PRE-delete distance (stale transit): the
  // true post-delete graph is disconnected between a and b.
  Distance post = 0;
  ASSERT_TRUE(index.Query(a, b, &post).ok());
  EXPECT_EQ(post, transit) << "documented §8.3 staleness window changed";
  const EdgeList all = g.ToEdgeList();
  EdgeList survivors(g.NumVertices());
  for (const Edge& e : all.edges()) {
    if (e.u != v && e.v != v) survivors.Add(e.u, e.v, e.w);
  }
  Graph truth = Graph::FromEdgeList(std::move(survivors));
  EXPECT_EQ(DijkstraP2P(truth, a, b), kInfDistance)
      << "fixture lost its uniqueness: a-b must disconnect without v";
}

TEST(Delete, LabeledVertexRemovedFromAllLabels) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 150, false, 9);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  // Pick a low-level vertex (certainly referenced in its own label only)
  // and a popular ancestor.
  VertexId popular = kInvalidVertex;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (index.InCore(v)) {
      popular = v;
      break;
    }
  }
  ASSERT_NE(popular, kInvalidVertex);
  ASSERT_TRUE(index.DeleteVertex(popular).ok());
  for (VertexId w = 0; w < index.NumVertices(); ++w) {
    for (const LabelEntry& e : index.labels()[w]) {
      EXPECT_NE(e.node, popular) << "stale label entry in " << w;
    }
  }
  // Remaining queries still run (distances may be stale per the paper's
  // lazy contract — never crash, never return a value below the true
  // distance of the updated graph... the lazy scheme only guarantees
  // upper-bound validity for deletions of this kind).
  EdgeList el(g.NumVertices());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (std::size_t i = 0; i < g.Neighbors(u).size(); ++i) {
      VertexId w = g.Neighbors(u)[i];
      if (u < w && u != popular && w != popular) {
        el.Add(u, w, g.NeighborWeights(u)[i]);
      }
    }
  }
  Graph without = Graph::FromEdgeList(std::move(el));
  for (auto [s, t] : SampleQueryPairs(without, 60, 77)) {
    if (s == popular || t == popular) continue;
    Distance got = 0;
    ASSERT_TRUE(index.Query(s, t, &got).ok());
    EXPECT_GE(got, DijkstraP2P(without, s, t))
        << "lazy delete must never underestimate";
  }
}

TEST(Delete, RebuildRestoresExactness) {
  Graph g = MakeTestGraph(Family::kRMat, 128, true, 13);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  ASSERT_TRUE(index.DeleteVertex(3).ok());
  ASSERT_TRUE(index.DeleteVertex(10).ok());

  // The paper's remedy: periodically rebuild from the updated graph.
  EdgeList el(g.NumVertices());
  for (VertexId u = 0; u < g.NumVertices(); ++u) {
    for (std::size_t i = 0; i < g.Neighbors(u).size(); ++i) {
      VertexId w = g.Neighbors(u)[i];
      if (u < w && u != 3 && w != 3 && u != 10 && w != 10) {
        el.Add(u, w, g.NeighborWeights(u)[i]);
      }
    }
  }
  Graph updated = Graph::FromEdgeList(std::move(el));
  auto rebuilt = ISLabelIndex::Build(updated, IndexOptions{});
  ASSERT_TRUE(rebuilt.ok());
  ISLabelIndex fresh = std::move(rebuilt).value();
  for (auto [s, t] : SampleQueryPairs(updated, 100, 91)) {
    Distance got = 0;
    ASSERT_TRUE(fresh.Query(s, t, &got).ok());
    ASSERT_EQ(got, DijkstraP2P(updated, s, t));
  }
}

TEST(Updates, RandomizedInsertQueryModelCheck) {
  // Model-based randomized sequence: interleave inserts and queries,
  // validating every query against Dijkstra on a mirrored plain graph.
  Graph g = MakeTestGraph(Family::kRMat, 100, true, 61);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  EdgeList mirror = g.ToEdgeList();
  Graph model = g;
  Rng rng(77);
  for (int step = 0; step < 200; ++step) {
    if (rng.Bernoulli(0.08)) {
      const VertexId v = index.NumVertices();
      std::vector<std::pair<VertexId, Weight>> adj;
      const int deg = static_cast<int>(rng.Uniform(4));  // may be isolated
      for (int i = 0; i < deg; ++i) {
        adj.emplace_back(static_cast<VertexId>(rng.Uniform(v)),
                         static_cast<Weight>(1 + rng.Uniform(6)));
      }
      std::sort(adj.begin(), adj.end());
      adj.erase(std::unique(adj.begin(), adj.end(),
                            [](auto& a, auto& b) {
                              return a.first == b.first;
                            }),
                adj.end());
      ASSERT_TRUE(index.InsertVertex(v, adj).ok()) << "step " << step;
      mirror.EnsureVertices(v + 1);
      for (auto [nbr, w] : adj) mirror.Add(v, nbr, w);
      model = Graph::FromEdgeList(mirror);
      mirror = model.ToEdgeList();
    } else {
      const VertexId s =
          static_cast<VertexId>(rng.Uniform(index.NumVertices()));
      const VertexId t =
          static_cast<VertexId>(rng.Uniform(index.NumVertices()));
      Distance got = 0;
      ASSERT_TRUE(index.Query(s, t, &got).ok());
      ASSERT_EQ(got, DijkstraP2P(model, s, t))
          << "step " << step << " (" << s << "," << t << ")";
    }
  }
}

TEST(Updates, PathQueriesSurviveInserts) {
  Graph g = MakeTestGraph(Family::kGrid, 64, true, 9);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  ASSERT_TRUE(index.InsertVertex(64, {{0, 2}, {63, 3}}).ok());
  EdgeList mirror = g.ToEdgeList();
  mirror.EnsureVertices(65);
  mirror.Add(64, 0, 2);
  mirror.Add(64, 63, 3);
  Graph updated = Graph::FromEdgeList(std::move(mirror));
  std::vector<VertexId> path;
  Distance d = 0;
  ASSERT_TRUE(index.ShortestPath(64, 32, &path, &d).ok());
  ASSERT_EQ(d, DijkstraP2P(updated, 64, 32));
  testing::AssertValidPath(updated, 64, 32, path, d);
}

TEST(Updates, OverflowSideTableTracksOnlyTouchedLabels) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 120, true, 21);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  EXPECT_EQ(index.labels().SideTableSize(), 0u);

  // Insert against a below-core neighbor: the new vertex's label is
  // appended, and the §8.3 closure patches every label that shares an
  // ancestor with the anchor — all via the side-table, slab untouched.
  VertexId anchor = kInvalidVertex;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (!index.InCore(v)) {
      anchor = v;
      break;
    }
  }
  ASSERT_NE(anchor, kInvalidVertex);
  const VertexId inserted = g.NumVertices();
  ASSERT_TRUE(index.InsertVertex(inserted, {{anchor, 2}}).ok());
  EXPECT_TRUE(index.labels().IsPatched(inserted));
  EXPECT_TRUE(LabelView(index.labels()[inserted]) ==
              LabelView(std::vector<LabelEntry>{LabelEntry(inserted, 0)}));
  // The anchor's own label gained the entry for the new vertex.
  EXPECT_TRUE(index.labels().IsPatched(anchor));
  ASSERT_NE(FindEntry(index.labels()[anchor], inserted), nullptr);
  EXPECT_EQ(FindEntry(index.labels()[anchor], inserted)->dist, 2u);
  // Core labels are trivial and share no ancestors below the core; they
  // must not have been copied out.
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    if (index.InCore(v)) {
      EXPECT_FALSE(index.labels().IsPatched(v));
    }
  }
  EXPECT_EQ(index.labels().TotalEntries(),
            index.labels().SlabSize() +
                (index.labels().SideTableSize()));  // one new entry per patch

  // Deleting the inserted vertex erases its entries through the same
  // side-table; labels that never mentioned it stay unpatched.
  const std::size_t patched_before = index.labels().SideTableSize();
  ASSERT_TRUE(index.DeleteVertex(inserted).ok());
  for (VertexId w = 0; w < index.NumVertices(); ++w) {
    for (const LabelEntry& e : index.labels()[w]) {
      ASSERT_NE(e.node, inserted);
    }
  }
  EXPECT_EQ(index.labels().SideTableSize(), patched_before);
}

TEST(Updates, RejectedInDiskMode) {
  Graph g = MakeTestGraph(Family::kPath, 40, false, 1);
  auto built = ISLabelIndex::Build(g, IndexOptions{});
  ASSERT_TRUE(built.ok());
  std::string dir = ::testing::TempDir() + "islabel_upd_disk";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(built->Save(dir).ok());
  auto loaded = ISLabelIndex::Load(dir, /*labels_in_memory=*/false);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->InsertVertex(40, {}).IsFailedPrecondition());
  EXPECT_TRUE(loaded->DeleteVertex(0).IsFailedPrecondition());
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace islabel
