// Tests for the network serving subsystem: the wire protocol parser and
// formatters, the sharded LRU query cache (including generation-based
// invalidation across the §8.3 update paths), the cache hook inside
// ISLabelIndex::Query, and a loopback integration test that drives the
// epoll TCP server with concurrent, pipelined, and partially-written
// requests. The whole file runs under the TSan preset in CI.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/dijkstra.h"
#include "core/index.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs_test_util.h"
#include "server/dispatcher.h"
#include "server/protocol.h"
#include "server/query_cache.h"
#include "server/tcp_server.h"
#include "tests/test_common.h"
#include "util/clock.h"

namespace islabel {
namespace {

using server::ParseRequest;
using server::QueryCache;
using server::QueryCacheOptions;
using server::QueryCacheStats;
using server::Request;
using server::RequestKind;
using server::TcpServer;
using server::TcpServerOptions;
using testing::Family;
using testing::MakeTestGraph;
using testing::SampleQueryPairs;

// ---------------------------------------------------------------------------
// Protocol parsing
// ---------------------------------------------------------------------------

TEST(Protocol, ParsesDistanceRequest) {
  Request r = ParseRequest("17 4242");
  ASSERT_EQ(r.kind, RequestKind::kDistance);
  EXPECT_EQ(r.s, 17u);
  EXPECT_EQ(r.t, 4242u);
  // Extra whitespace (spaces/tabs) is insignificant.
  r = ParseRequest("  17 \t 4242  ");
  ASSERT_EQ(r.kind, RequestKind::kDistance);
  EXPECT_EQ(r.s, 17u);
  EXPECT_EQ(r.t, 4242u);
}

TEST(Protocol, RejectsTrailingGarbageOnDistance) {
  // The PR-3 stdin loop silently ignored the tail of "1 2 junk"; the
  // shared parser pins the strict behavior.
  Request r = ParseRequest("1 2 junk");
  ASSERT_EQ(r.kind, RequestKind::kInvalid);
  EXPECT_EQ(r.error, "error: usage: S T");
  EXPECT_EQ(ParseRequest("1 2 3").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("1").kind, RequestKind::kInvalid);
}

TEST(Protocol, RejectsNonNumericIds) {
  EXPECT_EQ(ParseRequest("1 two").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("1 2x").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("-1 2").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("1.5 2").kind, RequestKind::kInvalid);
  // Larger than uint32: not a valid vertex id.
  EXPECT_EQ(ParseRequest("4294967296 1").kind, RequestKind::kInvalid);
  // Unknown verbs report the full line.
  Request r = ParseRequest("frobnicate 1 2");
  ASSERT_EQ(r.kind, RequestKind::kInvalid);
  EXPECT_EQ(r.error, "error: unrecognized request: frobnicate 1 2");
}

TEST(Protocol, ParsesOneToMany) {
  Request r = ParseRequest("one 7 1 2 3");
  ASSERT_EQ(r.kind, RequestKind::kOneToMany);
  EXPECT_EQ(r.s, 7u);
  EXPECT_EQ(r.targets, (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(ParseRequest("one 7").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("one 7 x").kind, RequestKind::kInvalid);
}

TEST(Protocol, ParsesPathStatsQuit) {
  Request r = ParseRequest("path 3 9");
  ASSERT_EQ(r.kind, RequestKind::kPath);
  EXPECT_EQ(r.s, 3u);
  EXPECT_EQ(r.t, 9u);
  EXPECT_EQ(ParseRequest("path 3").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("path 3 9 2").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("stats").kind, RequestKind::kStats);
  EXPECT_EQ(ParseRequest("stats now").kind, RequestKind::kInvalid);
  EXPECT_EQ(ParseRequest("quit").kind, RequestKind::kQuit);
  EXPECT_EQ(ParseRequest("exit").kind, RequestKind::kQuit);
  EXPECT_EQ(ParseRequest("quit now").kind, RequestKind::kInvalid);
}

TEST(Protocol, SkipsBlankAndComments) {
  EXPECT_EQ(ParseRequest("").kind, RequestKind::kNone);
  EXPECT_EQ(ParseRequest("   \t ").kind, RequestKind::kNone);
  EXPECT_EQ(ParseRequest("# a comment").kind, RequestKind::kNone);
  // CRLF clients work.
  EXPECT_EQ(ParseRequest("1 2\r").kind, RequestKind::kDistance);
  EXPECT_EQ(ParseRequest("\r").kind, RequestKind::kNone);
}

TEST(Protocol, FormatsResponses) {
  EXPECT_EQ(server::FormatDistance(42), "42");
  EXPECT_EQ(server::FormatDistance(kInfDistance), "unreachable");
  EXPECT_EQ(server::FormatDistances({1, kInfDistance, 3}),
            "1 unreachable 3");
  EXPECT_EQ(server::FormatPath(5, {1, 2, 3}), "5: 1 2 3");
  EXPECT_EQ(server::FormatPath(kInfDistance, {}), "unreachable");
  EXPECT_EQ(server::FormatError(Status::NotFound("gone")),
            "error: NotFound: gone");
}

// ---------------------------------------------------------------------------
// QueryCache
// ---------------------------------------------------------------------------

TEST(QueryCache, HitAfterMiss) {
  QueryCache cache;
  Distance d = 0;
  EXPECT_FALSE(cache.Lookup(1, 2, &d));
  cache.Insert(1, 2, 77);
  ASSERT_TRUE(cache.Lookup(1, 2, &d));
  EXPECT_EQ(d, 77u);
  const QueryCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(QueryCache, CanonicalizesUndirectedPairs) {
  QueryCache cache;
  cache.Insert(9, 4, 13);
  Distance d = 0;
  ASSERT_TRUE(cache.Lookup(4, 9, &d));  // (t, s) shares the entry
  EXPECT_EQ(d, 13u);
  EXPECT_EQ(cache.GetStats().entries, 1u);
  cache.Insert(4, 9, 13);  // reinsert under the swapped order: no growth
  EXPECT_EQ(cache.GetStats().entries, 1u);
}

TEST(QueryCache, GenerationInvalidates) {
  QueryCache cache;
  cache.Insert(1, 2, 5);
  cache.BumpGeneration();
  Distance d = 0;
  EXPECT_FALSE(cache.Lookup(1, 2, &d)) << "stale entry must never be served";
  EXPECT_EQ(cache.GetStats().entries, 0u) << "stale entry erased lazily";
  cache.Insert(1, 2, 9);
  ASSERT_TRUE(cache.Lookup(1, 2, &d));
  EXPECT_EQ(d, 9u);
}

TEST(QueryCache, EvictsLeastRecentlyUsedAtCapacity) {
  QueryCacheOptions opts;
  opts.num_shards = 1;
  opts.capacity_bytes = 2 * QueryCache::kBytesPerEntry;  // 2 entries
  QueryCache cache(opts);
  ASSERT_EQ(cache.capacity_entries(), 2u);
  cache.Insert(1, 10, 100);
  cache.Insert(2, 10, 200);
  Distance d = 0;
  ASSERT_TRUE(cache.Lookup(1, 10, &d));  // touch: 1 becomes MRU
  cache.Insert(3, 10, 300);              // evicts 2 (LRU), not 1
  EXPECT_TRUE(cache.Lookup(1, 10, &d));
  EXPECT_FALSE(cache.Lookup(2, 10, &d));
  EXPECT_TRUE(cache.Lookup(3, 10, &d));
  const QueryCacheStats stats = cache.GetStats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(QueryCache, BoundedUnderChurn) {
  QueryCacheOptions opts;
  opts.num_shards = 4;
  opts.capacity_bytes = 64 * QueryCache::kBytesPerEntry;
  QueryCache cache(opts);
  for (VertexId i = 0; i < 10000; ++i) cache.Insert(i, i + 1, i);
  EXPECT_LE(cache.GetStats().entries, cache.capacity_entries());
}

// ---------------------------------------------------------------------------
// The cache hook in ISLabelIndex::Query
// ---------------------------------------------------------------------------

TEST(IndexCache, CachedAnswersMatchUncached) {
  Graph g = MakeTestGraph(Family::kBarabasiAlbert, 300, /*weighted=*/true, 7);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  const auto pairs = SampleQueryPairs(g, 200, 11);

  // Uncached ground truth first.
  std::vector<Distance> expect(pairs.size(), 0);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_TRUE(
        index.Query(pairs[i].first, pairs[i].second, &expect[i]).ok());
  }

  auto cache = std::make_shared<QueryCache>();
  index.set_distance_cache(cache);
  // Pass 1 fills the cache; pass 2 must hit it; pass 3 queries the
  // reversed pairs, which share canonical entries. Every answer must be
  // bit-identical to the uncached one.
  for (int pass = 0; pass < 3; ++pass) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const VertexId s = pass == 2 ? pairs[i].second : pairs[i].first;
      const VertexId t = pass == 2 ? pairs[i].first : pairs[i].second;
      Distance d = 0;
      ASSERT_TRUE(index.Query(s, t, &d).ok());
      ASSERT_EQ(d, expect[i]) << "pair " << i << " pass " << pass;
    }
  }
  const QueryCacheStats stats = cache->GetStats();
  EXPECT_GT(stats.hits, 0u);
  // Passes 2 and 3 are all hits (pass 1 missed at most once per pair).
  EXPECT_GE(stats.hits, 2 * pairs.size());
}

TEST(IndexCache, StatsQueriesBypassTheCache) {
  Graph g = MakeTestGraph(Family::kErdosRenyi, 100, /*weighted=*/true, 3);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  auto cache = std::make_shared<QueryCache>();
  index.set_distance_cache(cache);
  Distance d = 0;
  ASSERT_TRUE(index.Query(1, 2, &d).ok());  // fills the cache
  QueryStats qstats;
  ASSERT_TRUE(index.Query(1, 2, &d, &qstats).ok());
  // An instrumented query must have run the real engine.
  EXPECT_EQ(cache->GetStats().hits, 0u);
}

TEST(IndexCache, InsertVertexInvalidates) {
  // A weighted path: inserting a new vertex adjacent to both endpoints
  // creates a shortcut, so the cached end-to-end distance must change.
  Graph g = MakeTestGraph(Family::kPath, 12, /*weighted=*/true, 4);
  auto built = ISLabelIndex::Build(g);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  const VertexId s = 0, t = g.NumVertices() - 1;

  auto cache = std::make_shared<QueryCache>();
  index.set_distance_cache(cache);
  Distance before = 0;
  ASSERT_TRUE(index.Query(s, t, &before).ok());
  ASSERT_TRUE(index.Query(s, t, &before).ok());  // now cached
  ASSERT_GT(before, 2u);

  const VertexId v = g.NumVertices();
  ASSERT_TRUE(index.InsertVertex(v, {{s, 1}, {t, 1}}).ok());

  Distance after = 0;
  ASSERT_TRUE(index.Query(s, t, &after).ok());
  EXPECT_EQ(after, 2u) << "stale cached distance served across InsertVertex";
  // And the new answer is itself cached and stable.
  Distance again = 0;
  ASSERT_TRUE(index.Query(s, t, &again).ok());
  EXPECT_EQ(again, after);
}

TEST(IndexCache, DeleteVertexInvalidatesAndPinsStaleTransit) {
  // The §8.3 pinned scenario from test_updates.cc, now with the cache in
  // front: after DeleteVertex the generation bump forces a recompute, and
  // the recomputed answer must equal what the engine answers uncached —
  // the documented stale-transit distance, NOT a cache artifact.
  Graph g = MakeTestGraph(Family::kPath, 12, /*weighted=*/true, 4);
  IndexOptions opts;
  opts.forced_k = 2;
  auto built = ISLabelIndex::Build(g, opts);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();

  VertexId v = kInvalidVertex;
  for (VertexId u = 1; u + 1 < g.NumVertices(); ++u) {
    if (!index.InCore(u)) {
      v = u;
      break;
    }
  }
  ASSERT_NE(v, kInvalidVertex);
  const VertexId a = v - 1, b = v + 1;
  const Distance transit = g.EdgeWeight(a, v) + g.EdgeWeight(v, b);

  auto cache = std::make_shared<QueryCache>();
  index.set_distance_cache(cache);
  Distance pre = 0;
  ASSERT_TRUE(index.Query(a, b, &pre).ok());
  ASSERT_EQ(pre, transit);
  Distance via = 0;
  ASSERT_TRUE(index.Query(a, v, &via).ok());  // cache the deleted endpoint

  ASSERT_TRUE(index.DeleteVertex(v).ok());

  // Cached pairs naming the deleted endpoint fail before the cache.
  Distance d = 0;
  EXPECT_TRUE(index.Query(a, v, &d).IsNotFound());
  EXPECT_TRUE(index.Query(v, b, &d).IsNotFound());

  // a-b recomputes under the new generation...
  const std::uint64_t hits_before = cache->GetStats().hits;
  Distance post = 0;
  ASSERT_TRUE(index.Query(a, b, &post).ok());
  EXPECT_EQ(cache->GetStats().hits, hits_before)
      << "a-b was served from a stale cache entry across DeleteVertex";
  // ...and still answers the pinned §8.3 stale-transit distance, exactly
  // as the uncached engine does.
  EXPECT_EQ(post, transit);
  Distance cached_post = 0;
  ASSERT_TRUE(index.Query(a, b, &cached_post).ok());
  EXPECT_EQ(cached_post, post);
  EXPECT_GT(cache->GetStats().hits, hits_before);
}

// ---------------------------------------------------------------------------
// TCP loopback integration
// ---------------------------------------------------------------------------

/// Minimal blocking line client for the loopback tests. A 10 s receive
/// timeout turns a protocol bug into a test failure instead of a hang.
class TestClient {
 public:
  explicit TestClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    EXPECT_TRUE(connected_);
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  void Send(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Next '\n'-terminated line (without the '\n'); "<eof>" on close.
  std::string ReadLine() {
    for (;;) {
      const std::size_t nl = buf_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "<eof>";
      buf_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::vector<std::string> ReadLines(std::size_t count) {
    std::vector<std::string> lines;
    lines.reserve(count);
    for (std::size_t i = 0; i < count; ++i) lines.push_back(ReadLine());
    return lines;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buf_;
};

class TcpServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = MakeTestGraph(Family::kErdosRenyi, 300, /*weighted=*/true, 21);
    auto built = ISLabelIndex::Build(graph_);
    ASSERT_TRUE(built.ok());
    index_ = std::move(built).value();
    cache_ = std::make_shared<QueryCache>();
    index_.set_distance_cache(cache_);

    TcpServerOptions opts;
    opts.port = 0;  // ephemeral
    opts.num_workers = 4;
    server_ = std::make_unique<TcpServer>(&index_, cache_.get(), opts);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);

    // Single-threaded ground truth through a private engine (bypasses
    // both the pool and the cache).
    engine_ = std::make_unique<QueryEngine>(&index_.hierarchy(),
                                            LabelProvider(&index_.labels()));
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->Stop();
      server_->Wait();
    }
  }

  Distance Expected(VertexId s, VertexId t) {
    Distance d = 0;
    EXPECT_TRUE(engine_->Query(s, t, &d).ok());
    return d;
  }

  Graph graph_;
  ISLabelIndex index_;
  std::shared_ptr<QueryCache> cache_;
  std::unique_ptr<TcpServer> server_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(TcpServerTest, AnswersMixedRequests) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("1 2\n");
  EXPECT_EQ(client.ReadLine(), server::FormatDistance(Expected(1, 2)));

  client.Send("one 1 2 3 4\n");
  EXPECT_EQ(client.ReadLine(),
            server::FormatDistances(
                {Expected(1, 2), Expected(1, 3), Expected(1, 4)}));

  client.Send("path 1 5\n");
  const std::string path_line = client.ReadLine();
  const Distance d15 = Expected(1, 5);
  if (d15 == kInfDistance) {
    EXPECT_EQ(path_line, "unreachable");
  } else {
    std::istringstream is(path_line);
    Distance dist = 0;
    char colon = 0;
    ASSERT_TRUE(is >> dist >> colon);
    EXPECT_EQ(dist, d15);
    EXPECT_EQ(colon, ':');
    std::vector<VertexId> path;
    VertexId vertex = 0;
    while (is >> vertex) path.push_back(vertex);
    testing::AssertValidPath(graph_, 1, 5, path, dist);
  }

  client.Send("1 2 junk\n");
  EXPECT_EQ(client.ReadLine(), "error: usage: S T");
  client.Send("bogus\n");
  EXPECT_EQ(client.ReadLine(), "error: unrecognized request: bogus");
  client.Send("9999999 1\n");
  EXPECT_EQ(client.ReadLine(), "error: OutOfRange: vertex id out of range");

  client.Send("stats\n");
  const std::string stats_line = client.ReadLine();
  EXPECT_EQ(stats_line.rfind("stats:", 0), 0u) << stats_line;
  EXPECT_NE(stats_line.find("requests="), std::string::npos);

  client.Send("quit\n");
  EXPECT_EQ(client.ReadLine(), "<eof>");
}

TEST_F(TcpServerTest, PipelinedRequestsAnswerInOrder) {
  const auto pairs = SampleQueryPairs(graph_, 64, 5);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  std::string burst;
  for (const auto& [s, t] : pairs) {
    burst += std::to_string(s) + " " + std::to_string(t) + "\n";
  }
  client.Send(burst);  // everything in one write
  for (const auto& [s, t] : pairs) {
    ASSERT_EQ(client.ReadLine(), server::FormatDistance(Expected(s, t)))
        << "pipelined (" << s << ", " << t << ")";
  }
}

TEST_F(TcpServerTest, PartialWritesReassemble) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // One request dribbled byte-wise across many TCP segments...
  const std::string req = "one 1 2 3\n";
  for (char c : req) {
    client.Send(std::string(1, c));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(client.ReadLine(),
            server::FormatDistances({Expected(1, 2), Expected(1, 3)}));
  // ...and a split that lands mid-token, plus the next request's head in
  // the same segment as the previous tail.
  client.Send("pa");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  client.Send("th 1 5\n7 ");
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  client.Send("9\n");
  const std::string path_line = client.ReadLine();
  const Distance d15 = Expected(1, 5);
  if (d15 == kInfDistance) {
    EXPECT_EQ(path_line, "unreachable");
  } else {
    EXPECT_EQ(path_line.substr(0, path_line.find(':')),
              server::FormatDistance(d15));
  }
  EXPECT_EQ(client.ReadLine(), server::FormatDistance(Expected(7, 9)));
}

TEST_F(TcpServerTest, ConcurrentClientsGetCorrectAnswers) {
  // ≥ 4 concurrent connections, each mixing pipelined bursts, one/path
  // requests, repeated pairs (cache hits), and a stats probe. Every
  // distance is checked against the single-threaded engine.
  constexpr int kClients = 6;
  constexpr std::size_t kPairsPerClient = 40;

  // Precompute per-client workloads and expected answers (the engine is
  // not thread-safe, so ground truth is established up front).
  struct Op {
    std::string request;
    std::string expected;  // empty = skip exact check (stats)
  };
  std::vector<std::vector<Op>> workloads(kClients);
  for (int c = 0; c < kClients; ++c) {
    auto pairs = SampleQueryPairs(graph_, kPairsPerClient,
                                  /*seed=*/100 + c % 3);  // overlap → hits
    std::vector<Op>& ops = workloads[c];
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const auto [s, t] = pairs[i];
      if (i % 10 == 3) {
        ops.push_back({"one " + std::to_string(s) + " " + std::to_string(t) +
                           " " + std::to_string((t + 1) % graph_.NumVertices()),
                       server::FormatDistances(
                           {Expected(s, t),
                            Expected(s, (t + 1) % graph_.NumVertices())})});
      } else if (i % 10 == 7) {
        ops.push_back({"stats", ""});
      } else {
        ops.push_back({std::to_string(s) + " " + std::to_string(t),
                       server::FormatDistance(Expected(s, t))});
      }
    }
  }

  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      TestClient client(server_->port());
      if (!client.connected()) {
        failures[c] = "connect failed";
        return;
      }
      const std::vector<Op>& ops = workloads[c];
      // Mix transport patterns per client: pipelined bursts for even
      // clients, partial writes for odd ones.
      if (c % 2 == 0) {
        std::string burst;
        for (const Op& op : ops) burst += op.request + "\n";
        client.Send(burst);
      } else {
        for (const Op& op : ops) {
          const std::string line = op.request + "\n";
          const std::size_t half = line.size() / 2;
          client.Send(line.substr(0, half));
          client.Send(line.substr(half));
        }
      }
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const std::string got = client.ReadLine();
        if (got == "<eof>") {
          failures[c] = "premature eof at op " + std::to_string(i);
          return;
        }
        if (!ops[i].expected.empty() && got != ops[i].expected) {
          failures[c] = "op " + std::to_string(i) + " (" + ops[i].request +
                        "): got '" + got + "' want '" + ops[i].expected + "'";
          return;
        }
        if (ops[i].expected.empty() && got.rfind("stats:", 0) != 0) {
          failures[c] = "bad stats response: " + got;
          return;
        }
      }
      client.Send("quit\n");
      if (client.ReadLine() != "<eof>") failures[c] = "quit did not close";
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }

  const auto stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_GT(stats.requests, 0u);
  // Overlapping workloads → the shared cache must have been hit.
  EXPECT_GT(cache_->GetStats().hits, 0u);
}

TEST_F(TcpServerTest, RequestsAfterQuitAreDropped) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("1 2\nquit\n3 4\n5 6\n");
  EXPECT_EQ(client.ReadLine(), server::FormatDistance(Expected(1, 2)));
  EXPECT_EQ(client.ReadLine(), "<eof>");
}

TEST_F(TcpServerTest, SurvivesAbruptDisconnect) {
  {
    TestClient client(server_->port());
    ASSERT_TRUE(client.connected());
    client.Send("1 2\n");
    // Close without reading the response or sending quit.
  }
  // The server must still serve new connections.
  TestClient client2(server_->port());
  ASSERT_TRUE(client2.connected());
  client2.Send("3 4\n");
  EXPECT_EQ(client2.ReadLine(), server::FormatDistance(Expected(3, 4)));
}

TEST_F(TcpServerTest, OverlongLineIsRejected) {
  TcpServerOptions opts;
  opts.port = 0;
  opts.num_workers = 1;
  opts.max_line_bytes = 64;
  TcpServer small(&index_, cache_.get(), opts);
  ASSERT_TRUE(small.Start().ok());
  TestClient client(small.port());
  ASSERT_TRUE(client.connected());
  client.Send(std::string(1000, '7'));  // no newline, over the limit
  EXPECT_EQ(client.ReadLine(), "error: request line too long");
  EXPECT_EQ(client.ReadLine(), "<eof>");
  small.Stop();
  small.Wait();
}

TEST_F(TcpServerTest, StopDrainsAndCloses) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("1 2\n");
  EXPECT_EQ(client.ReadLine(), server::FormatDistance(Expected(1, 2)));
  server_->Stop();
  server_->Wait();
  EXPECT_EQ(client.ReadLine(), "<eof>");
  EXPECT_EQ(server_->stats().connections_open, 0u);
}

// ---------------------------------------------------------------------------
// Slowloris guard: idle timeout + buffered-input cap
// ---------------------------------------------------------------------------

TEST_F(TcpServerTest, IdleConnectionIsTimedOut) {
  TcpServerOptions opts;
  opts.port = 0;
  opts.num_workers = 1;
  opts.idle_timeout_ms = 150;
  TcpServer guarded(&index_, cache_.get(), opts);
  ASSERT_TRUE(guarded.Start().ok());
  TestClient idle(guarded.port());
  ASSERT_TRUE(idle.connected());
  // Send nothing; the sweep must close us with an error response.
  EXPECT_EQ(idle.ReadLine(), "error: timeout");
  EXPECT_EQ(idle.ReadLine(), "<eof>");
  EXPECT_GE(guarded.stats().idle_closed, 1u);
  guarded.Stop();
  guarded.Wait();
}

TEST_F(TcpServerTest, ByteDribblingClientIsTimedOut) {
  // The classic slowloris: dribble one byte of a never-finished request
  // line at a rate slow enough to stay under the idle timeout per byte
  // would defeat a naive last-byte-received check — which is why the
  // input cap exists. Dribble fast but never send '\n': the buffered
  // partial line crosses max_buffered_bytes and the connection dies.
  TcpServerOptions opts;
  opts.port = 0;
  opts.num_workers = 1;
  opts.idle_timeout_ms = 10'000;  // idle sweep alone won't fire in time
  opts.max_buffered_bytes = 48;
  TcpServer guarded(&index_, cache_.get(), opts);
  ASSERT_TRUE(guarded.Start().ok());
  TestClient dribbler(guarded.port());
  ASSERT_TRUE(dribbler.connected());
  for (int i = 0; i < 64; ++i) dribbler.Send("7");
  EXPECT_EQ(dribbler.ReadLine(), "error: timeout");
  EXPECT_EQ(dribbler.ReadLine(), "<eof>");
  EXPECT_GE(guarded.stats().idle_closed, 1u);

  // A well-behaved client on the same server is untouched.
  TestClient good(guarded.port());
  ASSERT_TRUE(good.connected());
  good.Send("1 2\n");
  EXPECT_EQ(good.ReadLine(), server::FormatDistance(Expected(1, 2)));
  guarded.Stop();
  guarded.Wait();
}

TEST_F(TcpServerTest, ActiveClientSurvivesIdleSweeps) {
  TcpServerOptions opts;
  opts.port = 0;
  opts.num_workers = 1;
  opts.idle_timeout_ms = 200;
  TcpServer guarded(&index_, cache_.get(), opts);
  ASSERT_TRUE(guarded.Start().ok());
  TestClient client(guarded.port());
  ASSERT_TRUE(client.connected());
  // Keep issuing requests across several idle windows; activity must
  // keep resetting the timer.
  for (int round = 0; round < 6; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    client.Send("1 2\n");
    ASSERT_EQ(client.ReadLine(), server::FormatDistance(Expected(1, 2)))
        << "round " << round;
  }
  guarded.Stop();
  guarded.Wait();
}

TEST_F(TcpServerTest, GuardOffByDefault) {
  // The fixture server runs with both guards disabled; an idle
  // connection must survive well past any plausible sweep interval.
  TestClient idle(server_->port());
  ASSERT_TRUE(idle.connected());
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  idle.Send("1 2\n");
  EXPECT_EQ(idle.ReadLine(), server::FormatDistance(Expected(1, 2)));
  EXPECT_EQ(server_->stats().idle_closed, 0u);
}

// ---------------------------------------------------------------------------
// EMFILE / ENFILE accept shed
// ---------------------------------------------------------------------------

TEST_F(TcpServerTest, AcceptShedsUnderFdPressure) {
  // Lower the process fd limit so accept() hits EMFILE, then keep
  // connecting. The server must shed (close an idle connection or drop
  // the newcomer via the reserve fd) instead of spinning or dying, and
  // must serve normally once pressure lifts.
  rlimit original{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &original), 0);

  // Count currently-open descriptors, then leave just a little headroom.
  std::size_t open_fds = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++open_fds;
  }
  rlimit lowered = original;
  lowered.rlim_cur = open_fds + 10;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &lowered), 0);

  struct RestoreLimit {
    rlimit saved;
    ~RestoreLimit() { ::setrlimit(RLIMIT_NOFILE, &saved); }
  } restore{original};

  // Exhaust the descriptor pool with our own sockets FIRST, then
  // connect them: the kernel completes loopback connects through the
  // listen backlog without the server accepting, so when the event
  // loop drains the backlog there are zero free descriptors and every
  // accept() is an EMFILE — the shed path, deterministically.
  std::vector<int> herd;
  for (int i = 0; i < 64; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;  // pool exhausted: exactly what we want
    herd.push_back(fd);
  }
  ASSERT_FALSE(herd.empty());
  std::size_t connected = 0;
  for (const int fd : herd) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server_->port());
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      ++connected;
    }
  }
  ASSERT_GT(connected, 0u);

  // Give the event loop a beat to work through the accept backlog.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_GE(server_->stats().accept_shed, 1u);

  // Release our fds and the rlimit; the server must still answer.
  for (const int fd : herd) ::close(fd);
  ::setrlimit(RLIMIT_NOFILE, &original);
  TestClient after(server_->port());
  ASSERT_TRUE(after.connected());
  after.Send("1 2\n");
  EXPECT_EQ(after.ReadLine(), server::FormatDistance(Expected(1, 2)));
}

// ---------------------------------------------------------------------------
// Telemetry (DESIGN.md §16)
// ---------------------------------------------------------------------------

TEST_F(TcpServerTest, MetricsVerbWithoutRegistryUsesServerOwnedDefault) {
  // The fixture's server has neither an explicit registry nor a catalog:
  // a single-index server falls back to a registry it owns, so `metrics`
  // and the telemetry counters work out of the box (DESIGN.md §16).
  ASSERT_NE(server_->metrics(), nullptr);
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("1 2\n");
  client.ReadLine();
  client.Send("metrics\n");
  bool saw_requests_series = false;
  for (;;) {
    const std::string line = client.ReadLine();
    ASSERT_NE(line, "<eof>") << "connection died mid-exposition";
    if (line.rfind("islabel_server_requests_total", 0) == 0) {
      saw_requests_series = true;
    }
    if (line == "# EOF") break;
  }
  EXPECT_TRUE(saw_requests_series);
  client.Send("metrics now\n");
  EXPECT_EQ(client.ReadLine(), "error: usage: metrics");
}

// Reads lines until "# EOF" (inclusive) and checks Prometheus text
// shape: HELP/TYPE pairs, parsable sample values, no blank lines.
std::vector<std::string> ReadMetricsResponse(TestClient* client) {
  std::vector<std::string> lines;
  for (;;) {
    const std::string line = client->ReadLine();
    EXPECT_NE(line, "<eof>") << "connection died mid-exposition";
    if (line == "<eof>") break;
    lines.push_back(line);
    if (line == "# EOF") break;
  }
  std::set<std::string> typed;
  for (const std::string& line : lines) {
    EXPECT_FALSE(line.empty());
    if (line.empty() || line == "# EOF") continue;
    if (line.rfind("# HELP ", 0) == 0) continue;
    if (line.rfind("# TYPE ", 0) == 0) {
      std::istringstream t(line.substr(7));
      std::string name, kind;
      t >> name >> kind;
      EXPECT_TRUE(kind == "counter" || kind == "gauge" || kind == "histogram")
          << line;
      typed.insert(name);
      continue;
    }
    const std::size_t sp = line.rfind(' ');
    EXPECT_NE(sp, std::string::npos) << line;
    if (sp == std::string::npos) continue;
    char* end = nullptr;
    (void)std::strtod(line.c_str() + sp + 1, &end);
    EXPECT_EQ(*end, '\0') << "unparsable sample value: " << line;
  }
  EXPECT_FALSE(typed.empty());
  return lines;
}

std::uint64_t MetricValue(const std::vector<std::string>& lines,
                          const std::string& series) {
  for (const std::string& line : lines) {
    if (line.rfind(series + " ", 0) == 0) {
      return std::strtoull(line.c_str() + series.size() + 1, nullptr, 10);
    }
  }
  ADD_FAILURE() << "series not found: " << series;
  return 0;
}

/// Sum over every series of `family` (e.g. the cache's per-shard split).
std::uint64_t MetricSum(const std::vector<std::string>& lines,
                        const std::string& family) {
  std::uint64_t sum = 0;
  bool found = false;
  for (const std::string& line : lines) {
    if (line.rfind(family + "{", 0) == 0 || line.rfind(family + " ", 0) == 0) {
      const std::size_t sp = line.rfind(' ');
      sum += std::strtoull(line.c_str() + sp + 1, nullptr, 10);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "family not found: " << family;
  return sum;
}

TEST(TcpServerMetrics, MetricsVerbRendersPrometheusOverLoopback) {
  Graph graph = MakeTestGraph(Family::kErdosRenyi, 200, true, 7);
  auto built = ISLabelIndex::Build(graph);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  obs::MetricRegistry registry;
  index.InstallMetrics(&registry);
  QueryCacheOptions copts;
  copts.metrics = &registry;
  auto cache = std::make_shared<QueryCache>(copts);
  index.set_distance_cache(cache);
  TcpServerOptions opts;
  opts.port = 0;
  opts.num_workers = 2;
  opts.metrics = &registry;
  TcpServer server(&index, cache.get(), opts);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("1 2\n1 2\none 1 2 3\nmetrics\n");
  (void)client.ReadLine();
  (void)client.ReadLine();
  (void)client.ReadLine();
  const std::vector<std::string> lines = ReadMetricsResponse(&client);
  ASSERT_FALSE(lines.empty());
  EXPECT_EQ(lines.back(), "# EOF");

  // The exposition spans server, cache and pool families.
  EXPECT_EQ(MetricValue(lines, "islabel_server_requests_total"), 4u);
  EXPECT_EQ(MetricValue(lines, "islabel_server_connections_accepted_total"),
            1u);
  EXPECT_EQ(MetricValue(lines,
                        "islabel_server_request_seconds_count{verb="
                        "\"distance\"}"),
            2u);
  EXPECT_EQ(
      MetricValue(lines, "islabel_server_request_seconds_count{verb=\"one\"}"),
      1u);
  // The repeated pair hit the result cache (per-shard series sum up;
  // the one-to-many verb bypasses the pair cache).
  EXPECT_EQ(MetricSum(lines, "islabel_cache_hits_total"), 1u);
  EXPECT_EQ(MetricSum(lines, "islabel_cache_misses_total"), 1u);
  // Every query verb records every stage (zeros included), so each
  // stage's count equals the query-verb count.
  for (const char* stage :
       {"parse", "cache_lookup", "pool_wait", "kernel", "encode"}) {
    EXPECT_EQ(MetricValue(lines,
                          std::string("islabel_query_stage_seconds_count{"
                                      "stage=\"") +
                              stage + "\"}"),
              3u)
        << stage;
  }

  // A second scrape must advance the request counter (the scrape itself
  // is a request) and stay well-formed.
  client.Send("metrics\n");
  const std::vector<std::string> again = ReadMetricsResponse(&client);
  EXPECT_EQ(MetricValue(again, "islabel_server_requests_total"), 5u);

  client.Send("quit\n");
  EXPECT_EQ(client.ReadLine(), "<eof>");
  server.Stop();
  server.Wait();
}

TEST(DispatcherMetrics, SlowQueryLineGoesToSinkWithStageBreakdown) {
  Graph graph = MakeTestGraph(Family::kPath, 32, true, 3);
  auto built = ISLabelIndex::Build(graph);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();

  server::RequestDispatcher dispatcher(&index);
  obs::MetricRegistry registry;
  ManualClock clock;
  std::vector<std::string> slow_lines;
  server::RequestDispatcher::MetricsOptions mopts;
  mopts.registry = &registry;
  mopts.clock = &clock;
  mopts.slow_query_threshold_ms = 1;
  mopts.slow_query_sink = [&slow_lines](const std::string& line) {
    slow_lines.push_back(line);
  };
  dispatcher.InstallMetrics(mopts);

  // The manual clock never advances during execution, so total latency
  // is exactly the parse time the front end reports — deterministic.
  Request fast = ParseRequest("1 2");
  fast.parse_us = 999;  // 0.999ms < 1ms threshold
  (void)dispatcher.Execute(fast);
  EXPECT_TRUE(slow_lines.empty());

  Request slow = ParseRequest("1 2");
  slow.parse_us = 5000;
  (void)dispatcher.Execute(slow);
  ASSERT_EQ(slow_lines.size(), 1u);
  EXPECT_EQ(slow_lines[0].rfind(
                "slow-query verb=distance total_us=5000 parse_us=5000 ", 0),
            0u)
      << slow_lines[0];
  EXPECT_EQ(
      registry.GetCounter("islabel_server_slow_queries_total", "")->Value(),
      1u);
}

TEST(DispatcherMetrics, SlowQueryFallsBackToEventLogWithTraceId) {
  Graph graph = MakeTestGraph(Family::kPath, 32, true, 3);
  auto built = ISLabelIndex::Build(graph);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();

  ManualClock clock;
  Mutex mu;
  std::vector<std::string> events;
  obs::EventLogOptions lopts;
  lopts.clock = &clock;
  lopts.sink = obs_test::CapturingSink(&mu, &events);
  obs::EventLog log(lopts);

  server::RequestDispatcher dispatcher(&index);
  obs::MetricRegistry registry;
  server::RequestDispatcher::MetricsOptions mopts;
  mopts.registry = &registry;
  mopts.clock = &clock;
  mopts.slow_query_threshold_ms = 1;
  mopts.event_log = &log;  // no sink installed: the event log is next
  dispatcher.InstallMetrics(mopts);

  Request slow = ParseRequest("1 2 tid=abc");
  slow.parse_us = 5000;
  (void)dispatcher.Execute(slow);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].find("\"event\":\"islabel.server.slow_query\""),
            std::string::npos)
      << events[0];
  // The dispatcher's TraceScope is active when the event fires, so the
  // request's trace id auto-attaches.
  EXPECT_NE(events[0].find("\"tid\":\"abc\""), std::string::npos)
      << events[0];
  EXPECT_NE(events[0].find("\"verb\":\"distance\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Distributed tracing + flight recorder (DESIGN.md §17)
// ---------------------------------------------------------------------------

TEST_F(TcpServerTest, TrailingTidTokenIsAcceptedOnEveryVerbAndValidated) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // The trailing token is stripped before per-verb arity checks, so it
  // rides on query and admin verbs alike.
  client.Send("1 2 tid=deadbeef\n");
  EXPECT_EQ(client.ReadLine(), server::FormatDistance(Expected(1, 2)));
  client.Send("1 2 tid=DEADBEEF\n");  // either case parses
  EXPECT_EQ(client.ReadLine(), server::FormatDistance(Expected(1, 2)));
  client.Send("stats tid=ff\n");
  EXPECT_EQ(client.ReadLine().rfind("error:", 0), std::string::npos);

  const std::string usage = "error: usage: tid=HEX (1-16 hex digits, nonzero)";
  client.Send("1 2 tid=xyz\n");
  EXPECT_EQ(client.ReadLine(), usage);
  client.Send("1 2 tid=0\n");  // zero is never a valid wire id
  EXPECT_EQ(client.ReadLine(), usage);
  client.Send("1 2 tid=11112222333344445\n");  // 17 hex digits
  EXPECT_EQ(client.ReadLine(), usage);
  client.Send("tid=abc\n");  // a bare tid token tags nothing
  EXPECT_EQ(client.ReadLine(), usage);
}

TEST_F(TcpServerTest, TracezGrammarAndMissingRecorder) {
  // The fixture's server has no flight recorder: well-formed scrapes
  // answer NotSupported, malformed ones fail parsing first.
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.Send("tracez\n");
  EXPECT_EQ(client.ReadLine(),
            "error: NotSupported: flight recorder not enabled");
  const std::string usage = "error: usage: tracez [slow|errors|id HEX] [N]";
  for (const char* bad : {"tracez bogus", "tracez id", "tracez id zz",
                          "tracez id 0", "tracez 0", "tracez slow 5 9",
                          "tracez id abc extra"}) {
    client.Send(std::string(bad) + "\n");
    EXPECT_EQ(client.ReadLine(), usage) << bad;
  }
}

// Reads a tracez response: every line through "# EOF" inclusive.
std::vector<std::string> ReadTracezResponse(TestClient* client) {
  std::vector<std::string> lines;
  for (;;) {
    const std::string line = client->ReadLine();
    EXPECT_NE(line, "<eof>") << "connection died mid-tracez";
    if (line == "<eof>") break;
    lines.push_back(line);
    if (line == "# EOF") break;
  }
  return lines;
}

TEST(TcpServerTracing, FlightRecorderCapturesRequestsAndTracezRetrievesById) {
  Graph graph = MakeTestGraph(Family::kErdosRenyi, 200, true, 7);
  auto built = ISLabelIndex::Build(graph);
  ASSERT_TRUE(built.ok());
  ISLabelIndex index = std::move(built).value();
  obs::FlightRecorderOptions ropts;
  ropts.capacity_per_thread = 64;
  obs::FlightRecorder recorder(ropts);
  TcpServerOptions opts;
  opts.port = 0;
  opts.num_workers = 2;
  opts.flight_recorder = &recorder;
  TcpServer server(&index, nullptr, opts);
  ASSERT_TRUE(server.Start().ok());

  TestClient client(server.port());
  ASSERT_TRUE(client.connected());
  client.Send("1 2 tid=deadbeef\n");
  EXPECT_EQ(client.ReadLine().rfind("error:", 0), std::string::npos);
  client.Send("900000 2 tid=cafe\n");  // out of range: an error response
  EXPECT_EQ(client.ReadLine(), "error: OutOfRange: vertex id out of range");

  // Retrieval by id returns exactly that trace.
  client.Send("tracez id deadbeef\n");
  std::vector<std::string> lines = ReadTracezResponse(&client);
  ASSERT_EQ(lines.size(), 3u);  // header, one trace, terminator
  EXPECT_EQ(lines[0].rfind("tracez: ", 0), 0u);
  EXPECT_NE(lines[0].find("shown=1"), std::string::npos);
  EXPECT_NE(lines[0].find("enabled=1"), std::string::npos);
  EXPECT_EQ(lines[1].rfind("trace id=deadbeef seq=", 0), 0u);
  EXPECT_NE(lines[1].find("verb=distance"), std::string::npos);
  EXPECT_NE(lines[1].find("status=ok"), std::string::npos);
  EXPECT_EQ(lines.back(), "# EOF");

  // The errors view keeps only the failed request.
  client.Send("tracez errors\n");
  lines = ReadTracezResponse(&client);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[1].rfind("trace id=cafe ", 0), 0u);
  EXPECT_NE(lines[1].find("status=error"), std::string::npos);

  // tracez scrapes are themselves never recorded: after two scrapes the
  // recorder still holds exactly the two query requests.
  client.Send("tracez\n");
  lines = ReadTracezResponse(&client);
  EXPECT_NE(lines[0].find("records=2 shown=2"), std::string::npos)
      << lines[0];

  // Disabling the recorder turns Record into a no-op but keeps the
  // scrape path alive.
  recorder.set_enabled(false);
  client.Send("3 4 tid=beef\n");
  (void)client.ReadLine();
  client.Send("tracez\n");
  lines = ReadTracezResponse(&client);
  EXPECT_NE(lines[0].find("records=2"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("enabled=0"), std::string::npos) << lines[0];

  client.Send("quit\n");
  EXPECT_EQ(client.ReadLine(), "<eof>");
  server.Stop();
  server.Wait();
}

}  // namespace
}  // namespace islabel
